// bench_diff: compare two BENCH_*.json files and fail on regression.
//
// Usage:
//   bench_diff [--rel-tol=0.05] [--abs-tol=1e-9] [--show-all]
//              BASELINE CURRENT
//
// Both files are flattened to dotted numeric paths ("workloads.clo
// .fleets[0].methods.CA.max_sustainable_qps") and compared metric by
// metric. Every metric gets a noise band — max(rel-tol x |baseline|,
// abs-tol) — and a direction:
//
//   higher-better  (qps, speedup, reduction, hits, ...): a drop past
//                  the band is a regression;
//   lower-better   (p99, latency, ns/us, shed, violations, burn, ...):
//                  a rise past the band is a regression;
//   neutral        everything else: changes are reported, never fatal
//                  (counts and configuration echoes move legitimately).
//
// Host-noise paths (host wall time, thread counts, trace buffer
// accounting) are ignored entirely — simulated results are the
// contract, wall clock is the weather. A metric present in the
// baseline but missing from the current file is a regression (a bench
// silently dropping a measurement is exactly what this tool exists to
// catch); new metrics are informational.
//
// Exit status: 0 = no regression, 1 = regression(s), 2 = usage/parse
// error. CI's bench-regression job runs the smoke benches and diffs
// the emitted files against the committed bench/baselines/*.json.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.h"
#include "telemetry/json.h"

namespace updlrm {
namespace {

enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

/// Substrings that make a path ignored outright (host-noise).
const char* const kIgnore[] = {"wall_seconds", "host.", "trace.",
                               "threads"};

/// Direction patterns, matched against the lower-cased full path.
/// Higher-better wins ties (checked first) so "qps" beats the "p50"
/// inside "max_sustainable_qps" never arising and "reduction" beats
/// the "ns" it contains.
const char* const kHigherBetter[] = {"qps",     "speedup", "reduction",
                                     "hit",     "jaccard", "throughput",
                                     "completed"};
const char* const kLowerBetter[] = {"p50",   "p95",       "p99",
                                    "ns",    "us",        "latency",
                                    "shed",  "violation", "drop",
                                    "burn",  "imbalance", "stddev",
                                    "stragg"};

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool ContainsAny(const std::string& path, const char* const* patterns,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (path.find(patterns[i]) != std::string::npos) return true;
  }
  return false;
}

Direction Classify(const std::string& path) {
  const std::string lower = Lower(path);
  if (ContainsAny(lower, kHigherBetter, std::size(kHigherBetter))) {
    return Direction::kHigherBetter;
  }
  if (ContainsAny(lower, kLowerBetter, std::size(kLowerBetter))) {
    return Direction::kLowerBetter;
  }
  return Direction::kNeutral;
}

/// Depth-first flatten of numeric leaves into dotted paths. Bools and
/// strings are skipped: they are configuration echoes, not metrics.
void Flatten(const telemetry::JsonValue& value, const std::string& path,
             std::map<std::string, double>& out) {
  if (value.is_number()) {
    out[path] = value.AsNumber();
    return;
  }
  if (value.is_object()) {
    for (const auto& [key, child] : value.AsObject()) {
      Flatten(child, path.empty() ? key : path + "." + key, out);
    }
    return;
  }
  if (value.is_array()) {
    const telemetry::JsonArray& array = value.AsArray();
    for (std::size_t i = 0; i < array.size(); ++i) {
      Flatten(array[i], path + "[" + std::to_string(i) + "]", out);
    }
  }
}

Result<std::map<std::string, double>> LoadMetrics(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = telemetry::ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  std::map<std::string, double> metrics;
  Flatten(*parsed, "", metrics);
  std::map<std::string, double> kept;
  for (const auto& [key, v] : metrics) {
    if (!ContainsAny(Lower(key), kIgnore, std::size(kIgnore))) {
      kept.emplace(key, v);
    }
  }
  return kept;
}

int Run(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 cli.status().ToString().c_str());
    return 2;
  }
  const double rel_tol = cli->GetDouble("rel-tol", 0.05);
  const double abs_tol = cli->GetDouble("abs-tol", 1e-9);
  const bool show_all = cli->GetBool("show-all", false);
  const std::vector<std::string> unused = cli->UnusedFlags();
  if (!unused.empty()) {
    for (const std::string& flag : unused) {
      std::fprintf(stderr, "bench_diff: unknown flag --%s\n",
                   flag.c_str());
    }
    return 2;
  }
  if (cli->positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--rel-tol=F] [--abs-tol=F] "
                 "[--show-all] BASELINE CURRENT\n");
    return 2;
  }
  const std::string& base_path = cli->positional()[0];
  const std::string& cur_path = cli->positional()[1];
  auto base = LoadMetrics(base_path);
  auto cur = LoadMetrics(cur_path);
  if (!base.ok() || !cur.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 (!base.ok() ? base : cur).status().ToString().c_str());
    return 2;
  }

  std::size_t compared = 0;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t changed_neutral = 0;
  for (const auto& [key, was] : *base) {
    const auto it = cur->find(key);
    if (it == cur->end()) {
      std::printf("REGRESSION %s: present in baseline, missing now\n",
                  key.c_str());
      ++regressions;
      continue;
    }
    ++compared;
    const double now = it->second;
    const double band = std::max(rel_tol * std::fabs(was), abs_tol);
    const double delta = now - was;
    if (std::fabs(delta) <= band) {
      if (show_all) {
        std::printf("ok         %s: %g -> %g\n", key.c_str(), was, now);
      }
      continue;
    }
    const Direction dir = Classify(key);
    const bool worse =
        (dir == Direction::kHigherBetter && delta < 0.0) ||
        (dir == Direction::kLowerBetter && delta > 0.0);
    const char* label = dir == Direction::kNeutral
                            ? "changed   "
                            : (worse ? "REGRESSION" : "improved  ");
    std::printf("%s %s: %g -> %g (%+.2f%%, band %.2f%%)\n", label,
                key.c_str(), was, now,
                was != 0.0 ? 100.0 * delta / std::fabs(was) : 0.0,
                100.0 * rel_tol);
    if (dir == Direction::kNeutral) {
      ++changed_neutral;
    } else if (worse) {
      ++regressions;
    } else {
      ++improvements;
    }
  }
  std::size_t added = 0;
  for (const auto& [key, now] : *cur) {
    if (base->find(key) == base->end()) {
      if (show_all) std::printf("new        %s: %g\n", key.c_str(), now);
      ++added;
    }
  }

  std::printf(
      "bench_diff: %zu metric(s) compared (%s vs %s): %zu "
      "regression(s), %zu improvement(s), %zu neutral change(s), %zu "
      "new\n",
      compared, base_path.c_str(), cur_path.c_str(), regressions,
      improvements, changed_neutral, added);
  return regressions == 0 ? 0 : 1;
}

}  // namespace
}  // namespace updlrm

int main(int argc, char** argv) { return updlrm::Run(argc, argv); }
