// trace_check: validate Chrome trace-event JSON files emitted by the
// benches (--trace-out) against the telemetry schema checker.
//
// Usage:
//   trace_check [--min-events=N] [--require=NAME ...]
//               [--require-counter=NAME ...] FILE [FILE ...]
//
// Exit status is 0 only if every file parses, passes the schema check
// with at least N non-metadata events, passes the counter-stream check
// (every "C" series has non-decreasing timestamps and a numeric value),
// and contains every --require'd event name and --require-counter'd
// counter series. CI's trace-smoke step runs this over the traces the
// smoke benches emit, so a malformed or empty trace fails the build
// instead of silently rendering blank in the viewer.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "telemetry/trace_export.h"

namespace updlrm {
namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return std::move(contents).str();
}

int Run(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) {
    std::fprintf(stderr, "trace_check: %s\n",
                 cli.status().ToString().c_str());
    return 2;
  }
  const auto min_events =
      static_cast<std::size_t>(cli->GetInt("min-events", 1));
  // CommandLine keeps one value per flag; a comma-separated list keeps
  // `--require=a,b` usable alongside repeated positional files.
  const auto split = [](const std::string& list) {
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start <= list.size() && !list.empty()) {
      const std::size_t comma = list.find(',', start);
      const std::string name =
          list.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!name.empty()) names.push_back(name);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return names;
  };
  const std::vector<std::string> required =
      split(cli->GetString("require", ""));
  const std::vector<std::string> required_counters =
      split(cli->GetString("require-counter", ""));
  const std::vector<std::string>& files = cli->positional();
  const std::vector<std::string> unused = cli->UnusedFlags();
  if (!unused.empty()) {
    for (const std::string& flag : unused) {
      std::fprintf(stderr, "trace_check: unknown flag --%s\n",
                   flag.c_str());
    }
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: trace_check [--min-events=N] [--require=a,b] "
                 "[--require-counter=a,b] FILE [FILE ...]\n");
    return 2;
  }

  int failures = 0;
  for (const std::string& path : files) {
    auto json = ReadFileToString(path);
    if (!json.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   json.status().ToString().c_str());
      ++failures;
      continue;
    }
    const Status valid =
        telemetry::ValidateChromeTraceJson(*json, min_events);
    if (!valid.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   valid.ToString().c_str());
      ++failures;
      continue;
    }
    const Status counters =
        telemetry::ValidateChromeTraceCounters(*json, required_counters);
    if (!counters.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   counters.ToString().c_str());
      ++failures;
      continue;
    }
    bool missing = false;
    for (const std::string& name : required) {
      auto has = telemetry::ChromeTraceContainsEvent(*json, name);
      if (!has.ok()) {
        std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                     has.status().ToString().c_str());
        missing = true;
        break;
      }
      if (!*has) {
        std::fprintf(stderr, "FAIL %s: no event named \"%s\"\n",
                     path.c_str(), name.c_str());
        missing = true;
      }
    }
    if (missing) {
      ++failures;
      continue;
    }
    std::printf("OK %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace updlrm

int main(int argc, char** argv) { return updlrm::Run(argc, argv); }
