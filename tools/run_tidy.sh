#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party source
# file in the compilation database.
#
# Usage:
#   tools/run_tidy.sh [build_dir] [-- <extra clang-tidy args>]
#
# build_dir defaults to ./build and must contain compile_commands.json
# (the top-level CMakeLists.txt exports it; the same database feeds
# tools/updlrm_lint's CI job). If clang-tidy is not installed the
# script reports that and exits 0 so local workflows on minimal
# containers are not blocked; CI's `analysis` job installs it, making
# the gate binding there. When clang-tidy IS present, any finding is
# fatal: .clang-tidy promotes every enabled check to an error
# (WarningsAsErrors: '*'), so this script exiting 0 means zero
# findings, not zero errors.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_tidy: clang-tidy not found; skipping (install clang-tidy or" \
       "set CLANG_TIDY to make this gate binding)" >&2
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_tidy: ${db} not found; configure with" \
       "cmake -S ${repo_root} -B ${build_dir} first" >&2
  exit 1
fi

# First-party translation units only: skip tests (gtest macros expand
# into patterns tidy dislikes) and anything pulled from the toolchain.
mapfile -t files < <(
  python3 - "${db}" "${repo_root}" <<'EOF'
import json, sys
db, root = sys.argv[1], sys.argv[2]
seen = set()
for entry in json.load(open(db)):
    f = entry["file"]
    if not f.startswith(root):
        continue
    rel = f[len(root) + 1:]
    if rel.startswith(("src/", "bench/", "examples/")):
        seen.add(f)
print("\n".join(sorted(seen)))
EOF
)
if [[ "${#files[@]}" -eq 0 ]]; then
  echo "run_tidy: no first-party files in ${db}" >&2
  exit 1
fi

echo "run_tidy: ${tidy_bin} over ${#files[@]} files (db: ${db})"
status=0
jobs="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${files[@]}" |
  xargs -P "${jobs}" -n 8 "${tidy_bin}" -p "${build_dir}" --quiet "$@" ||
  status=$?
if [[ "${status}" -ne 0 ]]; then
  echo "run_tidy: clang-tidy reported errors (see above)" >&2
  exit "${status}"
fi
echo "run_tidy: clean"
