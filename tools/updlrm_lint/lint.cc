#include "updlrm_lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace updlrm::lint {

namespace fs = std::filesystem;

namespace {

std::string NormalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  // Strip a leading "./" so scoping prefixes match.
  while (path.size() >= 2 && path[0] == '.' && path[1] == '/') {
    path.erase(0, 2);
  }
  return path;
}

std::string RelativeTo(const fs::path& p, const std::string& root) {
  if (root.empty()) return NormalizeSlashes(p.generic_string());
  std::error_code ec;
  const fs::path rel = fs::proximate(p, root, ec);
  if (ec || rel.empty()) return NormalizeSlashes(p.generic_string());
  return NormalizeSlashes(rel.generic_string());
}

void JsonEscape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool IsLintableFile(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string_view ext = std::string_view(path).substr(dot);
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

std::vector<Finding> LintSource(const std::string& path,
                                std::string source) {
  return LintLexedFile(path, Lex(std::move(source)));
}

LintResult LintPaths(const std::vector<std::string>& paths,
                     const std::string& root) {
  LintResult result;

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) &&
            IsLintableFile(it->path().generic_string())) {
          files.push_back(it->path());
        }
      }
    } else {
      files.emplace_back(p);
    }
  }

  // Deterministic report order regardless of directory enumeration.
  std::vector<std::string> rel;
  rel.reserve(files.size());
  for (const fs::path& f : files) rel.push_back(RelativeTo(f, root));
  std::vector<std::size_t> order(files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rel[a] < rel[b];
  });

  for (const std::size_t i : order) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) {
      ++result.unreadable_files;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    result.files.push_back(rel[i]);
    auto findings = LintSource(rel[i], std::move(buf).str());
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  return result;
}

std::string ToText(const LintResult& result) {
  std::ostringstream os;
  for (const Finding& f : result.findings) {
    os << f.file << ":" << f.line << ": [" << RuleCode(f.rule) << "] "
       << RuleName(f.rule) << ": " << f.message << "\n";
  }
  if (!result.findings.empty() || result.unreadable_files > 0) {
    os << "updlrm_lint: " << result.findings.size() << " finding(s) in "
       << result.files.size() << " file(s)";
    if (result.unreadable_files > 0) {
      os << ", " << result.unreadable_files << " unreadable";
    }
    os << "\n";
  }
  return os.str();
}

std::string ToJson(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files.size()
     << ",\n  \"unreadable_files\": " << result.unreadable_files
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \"" << RuleName(f.rule)
       << "\", \"code\": \"" << RuleCode(f.rule) << "\", \"file\": \"";
    JsonEscape(os, f.file);
    os << "\", \"line\": " << f.line << ", \"message\": \"";
    JsonEscape(os, f.message);
    os << "\"}";
  }
  os << (result.findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace updlrm::lint
