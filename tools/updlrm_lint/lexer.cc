#include "updlrm_lint/lexer.h"

#include <cctype>

namespace updlrm::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators the rules care about matching as one token
// (`::`, `->`, `+=`, `-=`). Everything else is one char per token —
// the rules only ever match exact punctuator strings, so splitting
// `<<` into two `<` tokens is harmless.
std::size_t PunctLen(std::string_view s) {
  if (s.size() >= 2) {
    const std::string_view two = s.substr(0, 2);
    if (two == "::" || two == "->" || two == "+=" || two == "-=" ||
        two == "==" || two == "!=" || two == "<=" || two == ">=" ||
        two == "&&" || two == "||" || two == "++" || two == "--") {
      return 2;
    }
  }
  return 1;
}

}  // namespace

LexedFile Lex(std::string source) {
  LexedFile out;
  out.source = std::move(source);
  const std::string_view s = out.source;

  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();

  auto at_line_start_directive = [&](std::size_t pos) {
    // True when the only characters between the last newline and `pos`
    // are horizontal whitespace (so `#` starts a directive).
    while (pos > 0) {
      const char c = s[pos - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      --pos;
    }
    return true;
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t end = start;
      while (end < n && s[end] != '\n') ++end;
      out.comments.push_back({s.substr(start, end - start), line});
      i = end;
      continue;
    }
    // Block comment (may span lines).
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i + 2;
      std::size_t end = start;
      while (end + 1 < n && !(s[end] == '*' && s[end + 1] == '/')) {
        if (s[end] == '\n') ++line;
        ++end;
      }
      out.comments.push_back({s.substr(start, end - start), start_line});
      i = end + 2 <= n ? end + 2 : n;
      continue;
    }

    // Preprocessor directive: record #include targets; keep the rest of
    // the directive's tokens (rules want to see X-macro bodies, and
    // `#define` lines lex fine as ordinary tokens).
    if (c == '#' && at_line_start_directive(i)) {
      std::size_t j = i + 1;
      while (j < n && (s[j] == ' ' || s[j] == '\t')) ++j;
      if (s.substr(j, 7) == "include") {
        j += 7;
        while (j < n && (s[j] == ' ' || s[j] == '\t')) ++j;
        if (j < n && (s[j] == '"' || s[j] == '<')) {
          const bool system = s[j] == '<';
          const char close = system ? '>' : '"';
          const std::size_t p0 = j + 1;
          std::size_t p1 = p0;
          while (p1 < n && s[p1] != close && s[p1] != '\n') ++p1;
          out.includes.push_back({s.substr(p0, p1 - p0), line, system});
          i = p1 < n && s[p1] == close ? p1 + 1 : p1;
          continue;
        }
      }
      ++i;  // other directives: fall through to normal lexing
      continue;
    }

    // String / char literal (handles escapes; raw strings get a
    // best-effort scan to the closing delimiter).
    if (c == '"' || c == '\'') {
      // R"delim( ... )delim"
      if (c == '"' && i >= 1 && s[i - 1] == 'R') {
        std::size_t j = i + 1;
        std::size_t d0 = j;
        while (j < n && s[j] != '(') ++j;
        const std::string delim =
            ")" + std::string(s.substr(d0, j - d0)) + "\"";
        const std::size_t body = j + 1;
        const std::size_t close = s.find(delim, body);
        const std::size_t end = close == std::string_view::npos
                                    ? n
                                    : close + delim.size();
        for (std::size_t k = i; k < end && k < n; ++k) {
          if (s[k] == '\n') ++line;
        }
        out.tokens.push_back({TokenKind::kString,
                              s.substr(i, end - i), line});
        i = end;
        continue;
      }
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        if (s[j] == '\n') ++line;  // unterminated: degrade gracefully
        ++j;
      }
      out.tokens.push_back(
          {TokenKind::kString, s.substr(i + 1, j - (i + 1)), line});
      i = j < n ? j + 1 : n;
      continue;
    }

    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(s[j])) ++j;
      out.tokens.push_back(
          {TokenKind::kIdentifier, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (IsIdentChar(s[j]) || s[j] == '.' ||
                       ((s[j] == '+' || s[j] == '-') &&
                        (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                         s[j - 1] == 'p' || s[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokenKind::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }

    const std::size_t len = PunctLen(s.substr(i));
    out.tokens.push_back({TokenKind::kPunct, s.substr(i, len), line});
    i += len;
  }

  return out;
}

}  // namespace updlrm::lint
