// Lightweight C++ lexer for the project-invariant lint engine.
//
// The lint rules (rules.h) do not need a full parse — they match token
// patterns ("range-for over an identifier declared std::unordered_map",
// "`new` outside a placement form", "#include \"module/...\"") plus
// comment *directives* that scope or suppress rules. So the lexer does
// exactly that much: it splits a translation unit into identifier /
// number / punctuation / string tokens with 1-based line numbers,
// strips comments and string bodies from the token stream (a `new`
// inside a string is not an allocation), and returns the comments
// separately so directive scanning (UPDLRM_NOALLOC_BEGIN/END,
// UPDLRM_LINT_ALLOW) sees them with exact line anchors.
//
// Deliberately freestanding: the lint library depends on nothing in
// src/ so it can audit every layer — including common/ — without
// being part of the layering graph it checks (R4).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace updlrm::lint {

enum class TokenKind {
  kIdentifier,  // names and keywords, including `new`, `for`
  kNumber,
  kPunct,       // one operator/punctuator per token (see lexer.cc)
  kString,      // string or char literal (text excludes quotes)
};

struct Token {
  TokenKind kind = TokenKind::kIdentifier;
  std::string_view text;  // view into the lexed source buffer
  int line = 0;           // 1-based
};

/// One // or /* */ comment; `text` excludes the comment markers.
struct Comment {
  std::string_view text;
  int line = 0;  // line the comment starts on
};

/// An #include directive with a quoted (project) path. Angle-bracket
/// includes are recorded with `system = true` so R4 can ignore them.
struct IncludeDirective {
  std::string_view path;
  int line = 0;
  bool system = false;
};

struct LexedFile {
  // The source buffer all string_views point into. Owned here so a
  // LexedFile is self-contained.
  std::string source;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Lexes `source`. Never fails: malformed input degrades to best-effort
/// tokens (the lint is advisory; the compiler owns syntax errors).
LexedFile Lex(std::string source);

}  // namespace updlrm::lint
