#include "updlrm_lint/rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

namespace updlrm::lint {

namespace {

// ---------------------------------------------------------------- paths

/// Top-level tree a file belongs to, from its repo-relative path.
enum class Tree { kSrc, kBench, kTools, kTests, kExamples, kOther };

Tree ClassifyTree(std::string_view path) {
  // Accept both "src/..." and ".../src/..." spellings.
  auto under = [&](std::string_view dir) {
    const std::string prefix = std::string(dir) + "/";
    if (path.substr(0, prefix.size()) == prefix) return true;
    return path.find("/" + prefix) != std::string_view::npos;
  };
  if (under("src")) return Tree::kSrc;
  if (under("bench")) return Tree::kBench;
  if (under("tools")) return Tree::kTools;
  if (under("tests")) return Tree::kTests;
  if (under("examples")) return Tree::kExamples;
  return Tree::kOther;
}

/// Module of a src/ file ("common", "pim", ...); "" for non-src files.
std::string SrcModule(std::string_view path) {
  const std::size_t src = path.rfind("src/");
  if (src == std::string_view::npos) return "";
  const std::size_t begin = src + 4;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string_view::npos) return "";
  return std::string(path.substr(begin, slash - begin));
}

// ------------------------------------------------------- layering (R4)

/// Direct allowed dependencies between src/ modules. R4 checks against
/// the transitive closure, so adding a layer means one edit here. The
/// intended architecture (DESIGN.md §11): common is the base;
/// telemetry/trace/host sit just above it; the PIM model and the
/// table/cache layers build on those; partitioners and baselines
/// combine them; check audits the model layers; the engine (updlrm)
/// composes everything below it; serve drives the engine; pipeline
/// drives serve.
const std::map<std::string, std::set<std::string>>& DirectDeps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"common", {}},
      {"telemetry", {"common"}},
      {"trace", {"common"}},
      {"host", {"common"}},
      {"cache", {"common", "trace"}},
      {"dlrm", {"common", "trace"}},
      {"pim", {"common", "telemetry"}},
      {"partition", {"common", "trace", "cache", "dlrm", "pim"}},
      {"baselines", {"common", "trace", "dlrm", "host"}},
      {"check", {"common", "telemetry", "pim", "partition"}},
      {"updlrm",
       {"common", "telemetry", "trace", "host", "cache", "dlrm", "pim",
        "partition", "baselines", "check"}},
      {"serve", {"common", "telemetry", "trace", "updlrm"}},
      {"pipeline",
       {"common", "telemetry", "dlrm", "host", "check", "updlrm",
        "serve"}},
  };
  return deps;
}

const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out = DirectDeps();
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [mod, deps] : out) {
        std::set<std::string> grown = deps;
        for (const auto& d : deps) {
          const auto it = out.find(d);
          if (it == out.end()) continue;
          grown.insert(it->second.begin(), it->second.end());
        }
        if (grown.size() != deps.size()) {
          deps = std::move(grown);
          changed = true;
        }
      }
    }
    return out;
  }();
  return closure;
}

// -------------------------------------------------------- suppressions

struct Directives {
  // rule -> lines on which it is suppressed (the ALLOW line and the
  // one after it, so the comment can sit above the flagged statement).
  std::set<std::pair<std::size_t, int>> allowed;
  // Inclusive [begin, end] line ranges of NOALLOC regions.
  std::vector<std::pair<int, int>> noalloc;

  bool Allowed(RuleId rule, int line) const {
    const auto r = static_cast<std::size_t>(rule);
    return allowed.count({r, line}) > 0 || allowed.count({r, line - 1}) > 0;
  }
};

/// True when `text` contains `name` as a standalone directive — i.e.
/// followed by end-of-comment, whitespace, or ':'. Prose like
/// "UPDLRM_NOALLOC_BEGIN/END" (this file's own docs) does not count.
bool HasDirective(std::string_view text, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string_view::npos) {
    const std::size_t end = pos + name.size();
    if (end == text.size() || text[end] == ' ' || text[end] == '\t' ||
        text[end] == ':') {
      return true;
    }
    pos = end;
  }
  return false;
}

Directives ScanDirectives(const std::string& path, const LexedFile& lexed,
                          std::vector<Finding>& findings) {
  Directives d;
  int open_line = -1;
  for (const Comment& c : lexed.comments) {
    const std::string_view text = c.text;
    if (HasDirective(text, "UPDLRM_NOALLOC_BEGIN")) {
      if (open_line >= 0) {
        findings.push_back({RuleId::kNoallocRegion, path, c.line,
                            "nested UPDLRM_NOALLOC_BEGIN (previous region "
                            "opened on line " +
                                std::to_string(open_line) + ")"});
      }
      open_line = c.line;
      continue;
    }
    if (HasDirective(text, "UPDLRM_NOALLOC_END")) {
      if (open_line < 0) {
        findings.push_back({RuleId::kNoallocRegion, path, c.line,
                            "UPDLRM_NOALLOC_END without a matching BEGIN"});
      } else {
        d.noalloc.emplace_back(open_line, c.line);
        open_line = -1;
      }
      continue;
    }
    std::size_t pos = 0;
    while ((pos = text.find("UPDLRM_LINT_ALLOW(", pos)) !=
           std::string_view::npos) {
      const std::size_t p0 = pos + 18;
      const std::size_t p1 = text.find(')', p0);
      if (p1 == std::string_view::npos) break;
      const std::string_view arg = text.substr(p0, p1 - p0);
      // Prose mentions like "UPDLRM_LINT_ALLOW(<rule-name>)" carry
      // non-name characters in the argument; only well-formed names
      // are directives (and a well-formed unknown name is a typo).
      const bool name_like =
          !arg.empty() &&
          std::all_of(arg.begin(), arg.end(), [](char ch) {
            return std::isalnum(static_cast<unsigned char>(ch)) ||
                   ch == '-' || ch == '_';
          });
      if (!name_like) {
        pos = p1;
        continue;
      }
      const RuleId rule = RuleFromName(arg);
      if (rule == RuleId::kNumRules) {
        findings.push_back({RuleId::kNumRules, path, c.line,
                            "UPDLRM_LINT_ALLOW names an unknown rule: '" +
                                std::string(arg) + "'"});
      } else {
        d.allowed.insert({static_cast<std::size_t>(rule), c.line});
      }
      pos = p1;
    }
  }
  if (open_line >= 0) {
    findings.push_back({RuleId::kNoallocRegion, path, open_line,
                        "UPDLRM_NOALLOC_BEGIN never closed"});
  }
  return d;
}

// ------------------------------------------------------- token helpers

using Tokens = std::vector<Token>;

bool Is(const Tokens& t, std::size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}

/// Index of the matching closer for the opener at `i` (handles nesting
/// of the same pair); t.size() when unbalanced.
std::size_t MatchForward(const Tokens& t, std::size_t i,
                         std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

/// Collects names declared with an unordered container type or a
/// floating-point type (per `types`): scans for a type token followed
/// (template args skipped) by the declared identifier.
std::set<std::string, std::less<>> CollectDeclaredNames(
    const Tokens& t, const std::set<std::string_view>& types) {
  std::set<std::string, std::less<>> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier || !types.count(t[i].text)) {
      continue;
    }
    std::size_t j = i + 1;
    // Skip one balanced template-argument list.
    if (Is(t, j, "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    // Skip declarator decorations.
    while (j < t.size() &&
           (t[j].text == "*" || t[j].text == "&" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokenKind::kIdentifier) {
      names.insert(std::string(t[j].text));
    }
  }
  return names;
}

// ---------------------------------------------------------------- R1

void CheckUnorderedIteration(const std::string& path, const Tokens& t,
                             const Directives& d,
                             std::vector<Finding>& findings) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto names = CollectDeclaredNames(t, kUnordered);
  if (names.empty()) return;

  auto flag = [&](int line, const std::string& name, const char* how) {
    if (d.Allowed(RuleId::kUnorderedIteration, line)) return;
    findings.push_back(
        {RuleId::kUnorderedIteration, path, line,
         "iteration over unordered container '" + name + "' (" + how +
             "): hash order is not deterministic across platforms; use a "
             "sorted snapshot or an ordered container on merge paths"});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for: for ( ... : name )
    if (t[i].text == "for" && Is(t, i + 1, "(")) {
      const std::size_t close = MatchForward(t, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].text != ":" || (j > 0 && t[j - 1].text == ":") ||
            Is(t, j + 1, ":")) {
          continue;  // skip `::`
        }
        for (std::size_t k = j + 1; k < close; ++k) {
          if (t[k].kind == TokenKind::kIdentifier &&
              names.count(t[k].text) > 0) {
            flag(t[k].line, std::string(t[k].text), "range-for");
          }
        }
        break;
      }
    }
    // Iterator walk: name.begin( / name.cbegin(
    if (t[i].kind == TokenKind::kIdentifier && names.count(t[i].text) > 0 &&
        Is(t, i + 1, ".") &&
        (Is(t, i + 2, "begin") || Is(t, i + 2, "cbegin") ||
         Is(t, i + 2, "rbegin")) &&
        Is(t, i + 3, "(")) {
      flag(t[i].line, std::string(t[i].text), "iterator walk");
    }
  }
}

// ---------------------------------------------------------------- R2

void CheckNoallocRegions(const std::string& path, const Tokens& t,
                         const Directives& d,
                         std::vector<Finding>& findings) {
  if (d.noalloc.empty()) return;
  auto in_region = [&](int line) {
    for (const auto& [b, e] : d.noalloc) {
      if (line >= b && line <= e) return true;
    }
    return false;
  };
  auto flag = [&](int line, const std::string& what) {
    if (d.Allowed(RuleId::kNoallocRegion, line)) return;
    findings.push_back(
        {RuleId::kNoallocRegion, path, line,
         what + " inside a UPDLRM_NOALLOC region: steady-state paths "
                "must reuse warm capacity (arena / member scratch)"});
  };
  static const std::set<std::string_view> kAllocCalls = {
      "malloc",      "calloc",      "realloc", "aligned_alloc",
      "strdup",      "make_unique", "make_shared", "to_string"};
  static const std::set<std::string_view> kContainers = {
      "vector", "deque", "map", "set", "unordered_map", "unordered_set",
      "list",   "function"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!in_region(t[i].line)) continue;
    const std::string_view x = t[i].text;
    if (t[i].kind != TokenKind::kIdentifier) continue;
    if (x == "new") {
      // `new (addr) T` is placement (the slab idiom) — allowed.
      if (!Is(t, i + 1, "(")) {
        flag(t[i].line, "`new` expression");
      }
      continue;
    }
    if (kAllocCalls.count(x) > 0 && Is(t, i + 1, "(")) {
      flag(t[i].line, "call to " + std::string(x));
      continue;
    }
    // Fresh container / string / function declarations: `std ::
    // vector <` or `std :: string ident`.
    if (x == "std" && Is(t, i + 1, "::") && i + 2 < t.size()) {
      const std::string_view c = t[i + 2].text;
      if (kContainers.count(c) > 0 && Is(t, i + 3, "<")) {
        flag(t[i].line,
             "declaration/construction of std::" + std::string(c));
      } else if (c == "string" && i + 3 < t.size() &&
                 t[i + 3].kind == TokenKind::kIdentifier) {
        flag(t[i].line, "declaration of std::string");
      }
    }
  }
}

// ---------------------------------------------------------------- R3

void CheckClockSources(const std::string& path, const Tokens& t,
                       const Directives& d,
                       std::vector<Finding>& findings) {
  // The two sanctioned homes of entropy and wall-clock time. Only the
  // tracer itself may touch the wall clock — the rest of telemetry/
  // (monitor, health, registry, exporters) runs on simulated time and
  // is checked like any other module.
  if (path.find("common/rng.") != std::string::npos ||
      path.find("src/telemetry/tracer.") != std::string::npos) {
    return;
  }
  static const std::set<std::string_view> kBanned = {
      "random_device", "system_clock",   "high_resolution_clock",
      "mt19937",       "mt19937_64",     "minstd_rand",
      "default_random_engine", "rand_r", "drand48",
      "gettimeofday"};
  auto flag = [&](int line, const std::string& what) {
    if (d.Allowed(RuleId::kClockSource, line)) return;
    findings.push_back(
        {RuleId::kClockSource, path, line,
         what + ": ambient time/randomness outside common/rng.h and "
                "telemetry/tracer breaks seed-reproducibility; draw "
                "from updlrm::Rng (or steady_clock for wall timing)"});
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const std::string_view x = t[i].text;
    if (kBanned.count(x) > 0) {
      flag(t[i].line, "use of " + std::string(x));
      continue;
    }
    // Bare rand()/srand(); `std::time(`/`std::clock(` only with the
    // std:: qualifier (bare `time`/`clock` are common member names).
    if ((x == "rand" || x == "srand") && Is(t, i + 1, "(") &&
        !(i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->"))) {
      flag(t[i].line, "call to " + std::string(x) + "()");
      continue;
    }
    if (x == "std" && Is(t, i + 1, "::") &&
        (Is(t, i + 2, "time") || Is(t, i + 2, "clock")) &&
        Is(t, i + 3, "(")) {
      flag(t[i].line, "call to std::" + std::string(t[i + 2].text) + "()");
    }
  }
}

// ---------------------------------------------------------------- R4

void CheckIncludeLayering(const std::string& path, const LexedFile& lexed,
                          const Directives& d,
                          std::vector<Finding>& findings) {
  const std::string module = SrcModule(path);
  if (module.empty()) return;  // layering applies to src/ only
  const auto& allowed = AllowedDeps();
  const auto self = allowed.find(module);
  if (self == allowed.end()) return;  // unknown (new) module: unchecked
  for (const IncludeDirective& inc : lexed.includes) {
    if (inc.system) continue;
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string_view::npos) continue;
    const std::string target(inc.path.substr(0, slash));
    if (target == module) continue;
    if (allowed.count(target) == 0) continue;  // not a src module path
    if (self->second.count(target) > 0) continue;
    if (d.Allowed(RuleId::kIncludeLayering, inc.line)) continue;
    findings.push_back(
        {RuleId::kIncludeLayering, path, inc.line,
         "module '" + module + "' must not include \"" +
             std::string(inc.path) +
             "\": '" + target +
             "' is not in its allowed dependency closure (DAG: common <- "
             "pim <- updlrm <- serve/pipeline; see DESIGN.md §11)"});
  }
}

// ---------------------------------------------------------------- R5

void CheckCounterXmacro(const std::string& path, const Tokens& t,
                        const Directives& d,
                        std::vector<Finding>& findings) {
  // Applies to any file defining both the X-macro and the struct
  // (pim/dpu.h in the real tree; self-contained fixtures in tests).
  std::set<std::string> macro_fields;
  std::set<std::string> struct_fields;
  int macro_line = -1;
  int struct_line = -1;

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "define" &&
        Is(t, i + 1, "UPDLRM_DPU_COUNTER_FIELDS")) {
      macro_line = t[i].line;
      // Body: a run of `X ( name )` groups (backslash continuations
      // lex as stray punct tokens we skip).
      std::size_t j = i + 2;
      if (Is(t, j, "(")) j = MatchForward(t, j, "(", ")") + 1;
      while (j + 3 < t.size()) {
        if (t[j].text == "\\") {
          ++j;
          continue;
        }
        if (t[j].text == "X" && Is(t, j + 1, "(") &&
            t[j + 2].kind == TokenKind::kIdentifier && Is(t, j + 3, ")")) {
          macro_fields.insert(std::string(t[j + 2].text));
          j += 4;
          continue;
        }
        break;
      }
    }
    if (t[i].text == "struct" && Is(t, i + 1, "DpuStats") &&
        Is(t, i + 2, "{")) {
      struct_line = t[i].line;
      const std::size_t close = MatchForward(t, i + 2, "{", "}");
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (t[j].text == "{") ++depth;
        if (t[j].text == "}") --depth;
        if (depth != 1) continue;
        // field: std :: uint64_t name [= ...] ;
        if (t[j].text == "std" && Is(t, j + 1, "::") &&
            Is(t, j + 2, "uint64_t") && j + 3 < close &&
            t[j + 3].kind == TokenKind::kIdentifier) {
          struct_fields.insert(std::string(t[j + 3].text));
        }
      }
    }
  }
  if (macro_line < 0 || struct_line < 0) return;

  for (const auto& f : struct_fields) {
    if (macro_fields.count(f) == 0 &&
        !d.Allowed(RuleId::kCounterXmacro, struct_line)) {
      findings.push_back(
          {RuleId::kCounterXmacro, path, struct_line,
           "DpuStats counter '" + f +
               "' is missing from UPDLRM_DPU_COUNTER_FIELDS: it would be "
               "silently dropped from aggregation and export"});
    }
  }
  for (const auto& f : macro_fields) {
    if (struct_fields.count(f) == 0 &&
        !d.Allowed(RuleId::kCounterXmacro, macro_line)) {
      findings.push_back(
          {RuleId::kCounterXmacro, path, macro_line,
           "UPDLRM_DPU_COUNTER_FIELDS entry '" + f +
               "' has no matching std::uint64_t field in DpuStats"});
    }
  }
}

// ---------------------------------------------------------------- R6

void CheckFloatAccumulation(const std::string& path, const Tokens& t,
                            const Directives& d,
                            std::vector<Finding>& findings) {
  static const std::set<std::string_view> kFloatTypes = {"float", "double"};
  const auto names = CollectDeclaredNames(t, kFloatTypes);

  auto flag = [&](int line, const std::string& what) {
    if (d.Allowed(RuleId::kFloatAccumulation, line)) return;
    findings.push_back(
        {RuleId::kFloatAccumulation, path, line,
         what + ": floating-point accumulation in a parallel region is "
                "schedule-ordered; use integer/fixed-point lanes or a "
                "post-region fixed-order fold (DESIGN.md §11)"});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // std::atomic<float|double> anywhere: never deterministic as an
    // accumulator, and as a flag it belongs in int/bool.
    if (t[i].text == "atomic" && Is(t, i + 1, "<") &&
        (Is(t, i + 2, "float") || Is(t, i + 2, "double"))) {
      flag(t[i].line, "std::atomic<" + std::string(t[i + 2].text) + ">");
      continue;
    }
    if (t[i].text != "ParallelFor" || !Is(t, i + 1, "(")) continue;
    const std::size_t close = MatchForward(t, i + 1, "(", ")");
    for (std::size_t j = i + 2; j + 1 < close; ++j) {
      if (t[j + 1].text != "+=" && t[j + 1].text != "-=") continue;
      // LHS: plain identifier, or ident[...] indexing.
      std::size_t lhs = j;
      if (t[lhs].text == "]") {
        int depth = 0;
        while (lhs > 0) {
          if (t[lhs].text == "]") ++depth;
          if (t[lhs].text == "[" && --depth == 0) {
            --lhs;
            break;
          }
          --lhs;
        }
      }
      if (t[lhs].kind == TokenKind::kIdentifier &&
          names.count(t[lhs].text) > 0) {
        flag(t[j + 1].line, "'" + std::string(t[lhs].text) +
                                " " + std::string(t[j + 1].text) +
                                "' inside a ParallelFor body");
      }
    }
    i = close;
  }
}

}  // namespace

std::string_view RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kUnorderedIteration:
      return "unordered-iteration";
    case RuleId::kNoallocRegion:
      return "noalloc-region";
    case RuleId::kClockSource:
      return "clock-source";
    case RuleId::kIncludeLayering:
      return "include-layering";
    case RuleId::kCounterXmacro:
      return "counter-xmacro";
    case RuleId::kFloatAccumulation:
      return "float-accumulation";
    case RuleId::kNumRules:
      break;
  }
  return "unknown";
}

std::string_view RuleCode(RuleId rule) {
  switch (rule) {
    case RuleId::kUnorderedIteration:
      return "R1";
    case RuleId::kNoallocRegion:
      return "R2";
    case RuleId::kClockSource:
      return "R3";
    case RuleId::kIncludeLayering:
      return "R4";
    case RuleId::kCounterXmacro:
      return "R5";
    case RuleId::kFloatAccumulation:
      return "R6";
    case RuleId::kNumRules:
      break;
  }
  return "R?";
}

RuleId RuleFromName(std::string_view name) {
  for (std::size_t i = 0; i < kNumLintRules; ++i) {
    const auto rule = static_cast<RuleId>(i);
    if (RuleName(rule) == name || RuleCode(rule) == name) return rule;
  }
  return RuleId::kNumRules;
}

std::vector<Finding> LintLexedFile(const std::string& path,
                                   const LexedFile& lexed) {
  std::vector<Finding> findings;
  const Directives d = ScanDirectives(path, lexed, findings);
  const Tree tree = ClassifyTree(path);
  const Tokens& t = lexed.tokens;

  // R1 guards determinism of shipped results: src + bench. Tests and
  // tools may iterate for assertions/printing.
  if (tree == Tree::kSrc || tree == Tree::kBench) {
    CheckUnorderedIteration(path, t, d, findings);
  }
  // R2/R5 fire only where their anchors (regions, macro+struct) exist.
  CheckNoallocRegions(path, t, d, findings);
  CheckCounterXmacro(path, t, d, findings);
  // R3 applies everywhere: a test seeded from random_device is exactly
  // the flaky kind the contract exists to prevent.
  CheckClockSources(path, t, d, findings);
  // R4: src-module classification returns "" otherwise.
  CheckIncludeLayering(path, lexed, d, findings);
  // R6: parallel merges live in src/ (benches drive them through it).
  if (tree == Tree::kSrc) {
    CheckFloatAccumulation(path, t, d, findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return findings;
}

}  // namespace updlrm::lint
