// updlrm_lint — project-invariant static analysis for the UpDLRM tree.
//
// Usage:
//   updlrm_lint [--root=DIR] [--json=FILE] [path ...]
//
// Paths default to {src, bench, tools, tests} under --root (default:
// the current directory). Exits 1 when any finding survives
// suppression, 2 on usage errors, 0 when clean — so CI can gate on it
// directly. --json writes the machine-readable report ("-" = stdout).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "updlrm_lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root=DIR] [--json=FILE] [path ...]\n"
               "  --root=DIR   repo root for path normalization and "
               "default scan set (default: .)\n"
               "  --json=FILE  write JSON report to FILE (\"-\" = stdout)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    for (const char* d : {"src", "bench", "tools", "tests"}) {
      const std::string p = root + "/" + d;
      std::error_code ec;
      if (std::filesystem::is_directory(p, ec)) paths.push_back(p);
    }
  }

  const updlrm::lint::LintResult result =
      updlrm::lint::LintPaths(paths, root);

  if (!json_path.empty()) {
    const std::string json = updlrm::lint::ToJson(result);
    if (json_path == "-") {
      std::cout << json;
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "updlrm_lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << json;
    }
  }

  std::cerr << updlrm::lint::ToText(result);
  if (result.files.empty()) {
    std::fprintf(stderr, "updlrm_lint: no lintable files found\n");
    return 2;
  }
  return result.Clean() ? 0 : 1;
}
