// The project-invariant rules of updlrm_lint.
//
// Each rule enforces a contract the codebase states in prose (DESIGN.md,
// header comments) but that no compiler flag or sanitizer checks:
//
//   R1 unordered-iteration  Iterating a std::unordered_{map,set}
//      visits elements in hash order — which varies across libstdc++
//      versions and hash seeds — so any output derived from the walk
//      breaks the bit-exact determinism contract. Lookup (find/[],
//      try_emplace) is fine; iteration in src/ and bench/ is not.
//   R2 noalloc-region       Inside a // UPDLRM_NOALLOC_BEGIN/END
//      region, constructs that unconditionally heap-
//      allocate are forbidden: non-placement `new`, malloc family,
//      make_unique/make_shared, std::to_string, and fresh container /
//      std::function declarations. Warm-capacity reuse (assign/resize
//      on member scratch) is the *point* of those regions and stays
//      legal; tests/serve/alloc_test.cc enforces the dynamic side.
//   R3 clock-source         Wall-clock time and ambient randomness
//      (rand/srand, std::random_device, <random> engines,
//      system_clock/high_resolution_clock, std::time) are only
//      allowed in common/rng.* (the one seeded entropy source) and
//      telemetry/ (which owns the host-clock domain). steady_clock is
//      deliberately legal everywhere: monotonic wall timing feeds
//      BENCH_host.json and never leaks into simulated results.
//   R4 include-layering     src/ modules form a DAG
//      (common ← {telemetry,trace,host} ← {cache,dlrm,pim} ←
//       partition/baselines ← check ← updlrm ← serve ← pipeline);
//      a quoted include against an edge not in the closure fails.
//   R5 counter-xmacro       Every std::uint64_t field of DpuStats must
//      appear in the UPDLRM_DPU_COUNTER_FIELDS X-macro and vice versa,
//      so aggregation/export can never silently miss a counter.
//   R6 float-accumulation   Inside a ParallelFor body, compound
//      addition into float/double state is the classic determinism
//      bug (merge order = thread schedule). Reductions must use
//      integer/fixed-point lanes or a post-region fixed-order fold.
//      std::atomic<float/double> is flagged unconditionally.
//
// Suppression: `// UPDLRM_LINT_ALLOW(<rule-name>): reason` on the same
// line or the line above silences that rule there — grep-able, so every
// suppression is an auditable decision, mirroring NOLINT.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "updlrm_lint/lexer.h"

namespace updlrm::lint {

enum class RuleId {
  kUnorderedIteration = 0,  // R1
  kNoallocRegion,           // R2
  kClockSource,             // R3
  kIncludeLayering,         // R4
  kCounterXmacro,           // R5
  kFloatAccumulation,       // R6
  kNumRules,
};

inline constexpr std::size_t kNumLintRules =
    static_cast<std::size_t>(RuleId::kNumRules);

/// Stable kebab-case rule name ("unordered-iteration", ...).
std::string_view RuleName(RuleId rule);
/// Short code ("R1" .. "R6").
std::string_view RuleCode(RuleId rule);
/// Reverse lookup for suppression parsing; kNumRules when unknown.
RuleId RuleFromName(std::string_view name);

struct Finding {
  RuleId rule = RuleId::kNumRules;
  std::string file;
  int line = 0;
  std::string message;
};

/// Runs every rule over one lexed file. `path` is used both for
/// diagnostics and for scoping (src/ module classification, rule
/// applicability); use repo-relative paths.
std::vector<Finding> LintLexedFile(const std::string& path,
                                   const LexedFile& lexed);

}  // namespace updlrm::lint
