// Driver layer of updlrm_lint: file discovery, per-file linting, and
// report rendering (human text + machine JSON for CI).
#pragma once

#include <string>
#include <vector>

#include "updlrm_lint/rules.h"

namespace updlrm::lint {

struct LintResult {
  std::vector<Finding> findings;   // sorted by (file, line, rule)
  std::vector<std::string> files;  // every file linted, sorted
  int unreadable_files = 0;        // paths that could not be opened

  bool Clean() const { return findings.empty() && unreadable_files == 0; }
};

/// True for the extensions the lint understands (.h .hpp .cc .cpp .cxx).
bool IsLintableFile(const std::string& path);

/// Lints one in-memory source; `path` should be repo-relative (it
/// drives rule scoping). Exposed for tests.
std::vector<Finding> LintSource(const std::string& path,
                                std::string source);

/// Lints each path: files are linted directly, directories are walked
/// recursively for lintable files. Paths are normalized relative to
/// `root` (pass the repo root; "" keeps them as given) so diagnostics
/// and rule scoping are stable regardless of invocation directory.
LintResult LintPaths(const std::vector<std::string>& paths,
                     const std::string& root);

/// Human-readable report: "file:line: [R?] rule-name: message" lines
/// plus a summary; empty string when the result is clean.
std::string ToText(const LintResult& result);

/// Machine-readable report for CI artifacts:
/// {"files_scanned":N,"findings":[{"rule","code","file","line","message"},...]}
std::string ToJson(const LintResult& result);

}  // namespace updlrm::lint
