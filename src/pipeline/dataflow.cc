#include "pipeline/dataflow.h"

#include <algorithm>

#include "check/dataflow_audit.h"
#include "dlrm/interaction.h"

namespace updlrm::pipeline {

std::string_view BackendName(Backend b) {
  return b == Backend::kCpu ? "cpu" : "gpu";
}

std::string Name(const DataFlowPlan& plan) {
  std::string name = "d" + std::to_string(plan.depth) + ".split" +
                     std::to_string(plan.bottom_split) + ".";
  name += BackendName(plan.bottom);
  name += "-";
  name += BackendName(plan.top);
  return name;
}

std::vector<DataFlowPlan> EnumerateDataFlows(const DataFlowSpace& space) {
  const std::uint32_t max_depth =
      std::min(std::max<std::uint32_t>(space.max_depth, 1),
               check::kMaxPipelineDepth);
  const std::uint32_t layers = std::max<std::uint32_t>(space.bottom_layers, 1);
  std::vector<DataFlowPlan> plans;
  for (std::uint32_t depth = 1; depth <= max_depth; ++depth) {
    for (std::uint32_t split = 0; split <= layers; ++split) {
      for (const Backend bottom : {Backend::kCpu, Backend::kGpu}) {
        if (bottom == Backend::kGpu && (!space.allow_gpu || split != 0)) {
          continue;  // the GPU runs the whole stack as one offload
        }
        for (const Backend top : {Backend::kCpu, Backend::kGpu}) {
          if (top == Backend::kGpu && !space.allow_gpu) continue;
          DataFlowPlan plan;
          plan.depth = depth;
          plan.bottom_split = split;
          plan.bottom = bottom;
          plan.top = top;
          plans.push_back(plan);
        }
      }
    }
  }
  return plans;
}

namespace {

// MAC FLOPs of bottom-MLP layers [first, last) — dims are
// {dense, hidden..., embedding_dim}, layer l maps dims[l] -> dims[l+1].
std::uint64_t BottomLayerFlops(const dlrm::DlrmConfig& config,
                               std::uint32_t first, std::uint32_t last) {
  std::vector<std::uint32_t> dims;
  dims.push_back(config.dense_features);
  dims.insert(dims.end(), config.bottom_hidden.begin(),
              config.bottom_hidden.end());
  dims.push_back(config.embedding_dim);
  std::uint64_t flops = 0;
  for (std::uint32_t l = first; l < last && l + 1 < dims.size(); ++l) {
    flops += 2ULL * dims[l] * dims[l + 1];
  }
  return flops;
}

}  // namespace

BatchTaskCosts ComputeBatchTaskCosts(const dlrm::DlrmConfig& config,
                                     const host::CpuTimingModel& cpu,
                                     const host::GpuTimingModel& gpu,
                                     const core::BatchResult& batch,
                                     std::size_t batch_size,
                                     const DataFlowPlan& plan) {
  const std::uint64_t n = batch_size;
  const std::uint32_t bottom_layers =
      static_cast<std::uint32_t>(config.bottom_hidden.size()) + 1;
  const std::uint32_t top_layers =
      static_cast<std::uint32_t>(config.top_hidden.size()) + 1;
  const std::uint32_t inter_dim = dlrm::InteractionOutputDim(
      config.interaction, config.num_tables, config.embedding_dim);
  // The interaction reads tables+1 feature vectors per sample (pooled
  // embeddings + the bottom output) — the same stream-pass accounting
  // as the engine's interaction_top term.
  const std::uint64_t interact_bytes =
      n * static_cast<std::uint64_t>(config.num_tables + 1) *
      config.embedding_dim * 4;

  BatchTaskCosts costs;
  costs.emb = batch.stages;

  const std::uint32_t split = std::min(plan.bottom_split, bottom_layers);
  if (plan.bottom == Backend::kCpu) {
    costs.bottom_pre =
        cpu.MlpTime(n * BottomLayerFlops(config, 0, split));
    costs.bottom_post =
        cpu.MlpTime(n * BottomLayerFlops(config, split, bottom_layers));
  } else {
    // One offload: dense rows up, bottom features down, whole stack as
    // per-layer kernels, plus the per-batch sync tax that makes GPU
    // placement batch-size dependent.
    costs.bottom_gpu =
        gpu.MlpTime(n * config.BottomFlopsPerSample(), bottom_layers) +
        gpu.PcieTransfer(n * static_cast<std::uint64_t>(
                                 config.dense_features) * 4) +
        gpu.PcieTransfer(n * static_cast<std::uint64_t>(
                                 config.embedding_dim) * 4) +
        gpu.BatchSyncOverhead();
  }

  costs.interact = cpu.StreamTime(interact_bytes);
  costs.top_mlp = cpu.MlpTime(n * config.TopFlopsPerSample());
  if (plan.top == Backend::kGpu) {
    // Pooled embeddings (+ bottom features when they are host-side) go
    // up, one CTR per sample comes down; the interaction runs as a
    // device-memory stream pass.
    costs.top_gpu =
        gpu.MlpTime(n * config.TopFlopsPerSample(), top_layers) +
        gpu.PcieTransfer(interact_bytes) + gpu.PcieTransfer(n * 4) +
        static_cast<Nanos>(static_cast<double>(n) * inter_dim * 4 /
                           gpu.params().mem_bytes_per_sec *
                           kNanosPerSecond) +
        gpu.BatchSyncOverhead();
  }
  return costs;
}

Nanos PredictFlow(const BatchTaskCosts& c, const DataFlowPlan& plan) {
  const bool bottom_gpu = plan.bottom == Backend::kGpu;
  const bool top_gpu = plan.top == Backend::kGpu;
  // Per-batch busy time on each resource.
  const Nanos host = c.emb.cpu_to_dpu + c.emb.dpu_to_cpu +
                     c.emb.cpu_aggregate +
                     (bottom_gpu ? 0.0 : c.bottom_host()) +
                     (top_gpu ? 0.0 : c.top_host());
  const Nanos dpu = c.emb.dpu_lookup;
  const Nanos gpu = (bottom_gpu ? c.bottom_gpu : 0.0) +
                    (top_gpu ? c.top_gpu : 0.0);
  Nanos period = std::max(host, std::max(dpu, gpu));
  // Depth 1 serializes admission on the previous batch's stage-2
  // completion, so the cut-to-cut period cannot beat push + lookup.
  if (plan.depth <= 1) {
    period = std::max(period, c.emb.cpu_to_dpu + c.emb.dpu_lookup);
  }
  // Single-batch critical path: embedding chain and bottom stack race,
  // then interaction + top.
  const Nanos emb_chain =
      c.emb.cpu_to_dpu + c.emb.dpu_lookup + c.emb.dpu_to_cpu +
      c.emb.cpu_aggregate;
  const Nanos bottom = bottom_gpu ? c.bottom_gpu : c.bottom_host();
  const Nanos top = top_gpu ? c.top_gpu : c.top_host();
  const Nanos critical = std::max(emb_chain, bottom) + top;
  return std::max(period, critical);
}

}  // namespace updlrm::pipeline
