// The asymmetric data-flow auto-tuner.
//
// Which placement of the dense DLRM stages wins is not fixed: GPU
// offload amortizes its per-batch sync tax only at large batch sizes,
// deep overlap helps only when the host has slack between the stage-1
// push and the stage-3 pull, and the bottom-MLP split trades scheduling
// granularity against nothing at all when the stack is cheap. The tuner
// makes the choice empirical: enumerate the legal plans, price one
// probe batch under each with the calibrated cost models, rank by the
// analytic steady-state prediction, then *calibrate* the finalists with
// real simulated serving runs and pick the measured-p99 winner.
// Decisions are memoized per (model shape, batch size, GPU
// availability) so repeated serving runs pay the search once.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "host/gpu_model.h"
#include "pipeline/dataflow.h"
#include "serve/batcher.h"
#include "serve/workload.h"
#include "updlrm/engine.h"

namespace updlrm::pipeline {

struct TunerOptions {
  /// Enumeration bounds. `bottom_layers` is filled in from the engine's
  /// model config; `allow_gpu` is additionally gated on gpu_available.
  DataFlowSpace space;
  /// Candidates (by predicted rank) to calibrate with real simulated
  /// runs; 0 calibrates *every* candidate (the ablation mode — makes
  /// the tuner's pick dominate all static plans by construction).
  std::size_t calibrate_top_n = 3;
  /// Leading requests of the stream used for calibration runs; 0 uses
  /// the whole stream.
  std::size_t calibration_requests = 0;
  /// GPU backend offloaded placements are priced against.
  host::GpuModelParams gpu;
  /// Whether the serving config provisions a GPU at all.
  bool gpu_available = true;
};

/// One enumerated candidate's scorecard.
struct CandidateOutcome {
  DataFlowPlan plan;
  /// Analytic steady-state score (PredictFlow on the probe batch).
  Nanos predicted_ns = 0.0;
  /// Calibrated p99 latency; negative when not calibrated.
  Nanos measured_p99_ns = -1.0;
  bool calibrated = false;
};

struct TunedDataFlow {
  DataFlowPlan best;
  /// Measured p99 of the winning plan's calibration run.
  Nanos best_p99_ns = 0.0;
  /// Every enumerated candidate, in enumeration order.
  std::vector<CandidateOutcome> candidates;
  /// True when this decision came from the memo (no new search ran).
  bool from_cache = false;
};

class DataFlowTuner {
 public:
  explicit DataFlowTuner(TunerOptions options) : options_(options) {}

  /// Picks the data flow for serving `requests` on `engine` under
  /// `batcher`. Winner: lowest calibrated p99, ties broken by lower
  /// predicted score, then enumeration order — deterministic.
  Result<TunedDataFlow> Tune(core::UpDlrmEngine& engine,
                             std::span<const serve::Request> requests,
                             const serve::BatcherOptions& batcher);

  const TunerOptions& options() const { return options_; }

 private:
  TunerOptions options_;
  /// Memo keyed on (model-shape signature, batch size, GPU
  /// availability).
  std::map<std::string, TunedDataFlow> memo_;
};

}  // namespace updlrm::pipeline
