#include "pipeline/executor.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace updlrm::pipeline {

DataFlowExecutor::DataFlowExecutor(const DataFlowPlan& plan) : plan_(plan) {
  UPDLRM_CHECK_MSG(plan.depth >= 1,
                   "executor needs at least one buffer pair");
}

void DataFlowExecutor::Reserve(std::size_t expected_batches) {
  batches_.reserve(expected_batches);
}

Nanos DataFlowExecutor::NextAdmitTime() const {
  if (batches_.size() < plan_.depth) return last_cut_;
  // The next batch reuses the buffer pair of batch (n - depth), free
  // once that batch's stage 2 consumed the indices.
  return std::max(last_cut_,
                  batches_[batches_.size() - plan_.depth].s2_end_ns);
}

Nanos DataFlowExecutor::ReadyTime(std::size_t cls, std::size_t b) const {
  const ExecutedFlowBatch& eb = batches_[b];
  switch (cls) {
    case kS3:
      return eb.s2_end_ns;
    case kTop: {
      // Needs the embedding pull AND the bottom stack.
      if (b >= head_[kS3]) return -1.0;
      const bool bottom_resolved =
          plan_.bottom == Backend::kGpu || b < head_[kBpost];
      if (!bottom_resolved) return -1.0;
      return std::max(eb.s3_end_ns, eb.bottom_done_ns);
    }
    case kBpost:
      if (b >= head_[kBpre]) return -1.0;
      return eb.bpre_end_ns;
    case kBpre:
      return eb.cut_ns;
  }
  return -1.0;
}

void DataFlowExecutor::ScheduleGpuTops() {
  while (next_gpu_top_ < batches_.size()) {
    const std::size_t b = next_gpu_top_;
    if (b >= head_[kS3]) break;
    const bool bottom_resolved =
        plan_.bottom == Backend::kGpu || b < head_[kBpost];
    if (!bottom_resolved) break;
    ExecutedFlowBatch& eb = batches_[b];
    const Nanos ready = std::max(eb.s3_end_ns, eb.bottom_done_ns);
    eb.top_start_ns = std::max(gpu_free_, ready);
    eb.top_end_ns = eb.top_start_ns + eb.costs.top_gpu;
    eb.done_ns = eb.top_end_ns;
    gpu_free_ = eb.top_end_ns;
    gpu_busy_ += eb.costs.top_gpu;
    ++next_gpu_top_;
  }
}

void DataFlowExecutor::Complete(std::size_t cls, std::size_t b, Nanos start,
                                Nanos dur) {
  ExecutedFlowBatch& eb = batches_[b];
  switch (cls) {
    case kS3:
      eb.s3_start_ns = start;
      eb.s3_end_ns = start + dur;
      break;
    case kTop:
      eb.top_start_ns = start;
      eb.top_end_ns = start + dur;
      eb.done_ns = eb.top_end_ns;
      break;
    case kBpost:
      eb.bpost_start_ns = start;
      eb.bpost_end_ns = start + dur;
      eb.bottom_done_ns = eb.bpost_end_ns;
      break;
    case kBpre:
      eb.bpre_start_ns = start;
      eb.bpre_end_ns = start + dur;
      break;
  }
  if (plan_.top == Backend::kGpu && (cls == kS3 || cls == kBpost)) {
    ScheduleGpuTops();
  }
}

void DataFlowExecutor::AdvanceHost(Nanos until) {
  const bool bottom_host = plan_.bottom == Backend::kCpu;
  const bool top_host = plan_.top == Backend::kCpu;
  while (true) {
    std::size_t best_cls = kNumClasses;
    Nanos best_start = std::numeric_limits<double>::infinity();
    // Priority-ordered scan with a strict < keeps the earliest start
    // and breaks ties toward the higher-priority class.
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      if (!top_host && cls == kTop) continue;
      if (!bottom_host && (cls == kBpre || cls == kBpost)) continue;
      const std::size_t b = head_[cls];
      if (b >= batches_.size()) continue;
      const Nanos ready = ReadyTime(cls, b);
      if (ready < 0.0) continue;  // dependencies unresolved
      const Nanos start = std::max(host_free_, ready);
      if (start < best_start) {
        best_start = start;
        best_cls = cls;
      }
    }
    if (best_cls == kNumClasses || best_start >= until) break;
    const std::size_t b = head_[best_cls]++;
    const BatchTaskCosts& c = batches_[b].costs;
    Nanos dur = 0.0;
    switch (best_cls) {
      case kS3:
        dur = c.emb.dpu_to_cpu + c.emb.cpu_aggregate;
        break;
      case kTop:
        dur = c.top_host();
        break;
      case kBpost:
        dur = c.bottom_post;
        break;
      case kBpre:
        dur = c.bottom_pre;
        break;
    }
    Complete(best_cls, b, best_start, dur);
    host_free_ = best_start + dur;
    host_busy_ += dur;
    if (best_cls != kS3) host_mlp_busy_ += dur;
  }
}

std::size_t DataFlowExecutor::Submit(const BatchTaskCosts& costs,
                                     Nanos cut_ns) {
  UPDLRM_CHECK_MSG(!drained_, "Submit after Drain");
  UPDLRM_CHECK_MSG(cut_ns >= NextAdmitTime() - 1e-9,
                   "batch cut before its buffer pair was free");
  // Let the host work up to the cut; tasks that would begin at or
  // after it yield to the new stage-1 push (stage-1 priority on ties
  // keeps the DPUs fed).
  AdvanceHost(cut_ns);

  ExecutedFlowBatch b;
  b.costs = costs;
  b.cut_ns = cut_ns;
  b.s1_start_ns = std::max(cut_ns, host_free_);
  b.s1_end_ns = b.s1_start_ns + costs.emb.cpu_to_dpu;
  host_free_ = b.s1_end_ns;
  host_busy_ += costs.emb.cpu_to_dpu;
  b.s2_start_ns = std::max(b.s1_end_ns, dpu_free_);
  b.s2_end_ns = b.s2_start_ns + costs.emb.dpu_lookup;
  dpu_free_ = b.s2_end_ns;
  dpu_busy_ += costs.emb.dpu_lookup;
  if (plan_.bottom == Backend::kGpu) {
    // One eager offload per batch; the GPU is FIFO in schedule order.
    b.bpre_start_ns = std::max(gpu_free_, cut_ns);
    b.bpre_end_ns = b.bpre_start_ns + costs.bottom_gpu;
    b.bpost_start_ns = b.bpre_end_ns;
    b.bpost_end_ns = b.bpre_end_ns;
    b.bottom_done_ns = b.bpre_end_ns;
    gpu_free_ = b.bpre_end_ns;
    gpu_busy_ += costs.bottom_gpu;
  }
  last_cut_ = cut_ns;
  batches_.push_back(b);
  return batches_.size() - 1;
}

void DataFlowExecutor::Drain() {
  AdvanceHost(std::numeric_limits<double>::infinity());
  if (plan_.top == Backend::kGpu) ScheduleGpuTops();
  drained_ = true;
}

Nanos DataFlowExecutor::MakespanNs() const {
  UPDLRM_CHECK_MSG(drained_, "MakespanNs before Drain");
  // Top tasks run FIFO (per backend) with batch-monotone ready times,
  // so the last batch completes last.
  return batches_.empty() ? 0.0 : batches_.back().done_ns;
}

}  // namespace updlrm::pipeline
