// End-to-end DLRM serving simulation under one DataFlowPlan.
//
// Drives the same open-loop request stream as serve::RunServeSimulation
// through the full request path: dynamic batcher -> per-batch engine
// embedding run (the PIM pipeline) -> DataFlowExecutor scheduling the
// bottom MLP, interaction, and top MLP around the embedding stages per
// the plan. In functional mode (engine built with a model) each batch
// additionally computes real CTR outputs through the batched dense path
// (dlrm::BatchedDlrm), so the result carries per-request predictions —
// bit-exact across host thread counts and tracing on/off.
//
// A request's latency is its batch's *top-MLP completion* minus its
// arrival — the full path, not just the embedding pull.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "check/report.h"
#include "common/status.h"
#include "host/gpu_model.h"
#include "pipeline/executor.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/workload.h"
#include "telemetry/monitor.h"
#include "updlrm/engine.h"

namespace updlrm::pipeline {

struct DataFlowServeOptions {
  serve::BatcherOptions batcher;
  DataFlowPlan plan;
  /// Host workers for the functional batched CTR computation (outputs
  /// are bit-exact at any width; 0 = default pool, 1 = serial).
  std::uint32_t num_threads = 1;
  /// GPU backend the plan's offloaded stages are priced against.
  host::GpuModelParams gpu;
  /// Whether the serving config provisions a GPU at all (audited
  /// against the plan's placements).
  bool gpu_available = true;
  /// Optional audit sink: when set, the run validates the plan shape,
  /// the depth-implied MRAM IO footprint, and the stage ordering of
  /// every executed batch into this report. Observation only.
  check::CheckReport* audit = nullptr;
  /// Optional fleet-health monitor (telemetry/monitor.h), observation
  /// only — same feeding contract as serve::ServeOptions::monitor.
  telemetry::FleetMonitor* monitor = nullptr;
};

struct DataFlowServeResult {
  serve::LatencyHistogram latency;
  /// Completion latency per completed request, in batch-cut order.
  std::vector<Nanos> request_latency_ns;
  /// CTR per completed request, same order as request_latency_ns.
  /// Empty when the engine is timing-only or no dense inputs were
  /// supplied.
  std::vector<float> ctr;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  Nanos makespan_ns = 0.0;
  serve::StageUtilization utilization;
  std::size_t max_queue_depth = 0;
  std::size_t num_batches = 0;
  double avg_batch_size = 0.0;
  /// The executed per-batch schedule under the plan.
  std::vector<ExecutedFlowBatch> schedule;
  /// Request-span sampling accounting (0 unless tracing was enabled).
  std::uint64_t requests_traced = 0;
  std::uint64_t requests_sampled_out = 0;

  serve::SloReport MakeSloReport(double offered_qps, Nanos slo_ns) const;
};

/// Simulates full-path serving of `requests` (time-ordered) on `engine`
/// under `options.plan`. `dense` supplies the continuous features for
/// CTR computation (sample ids index it like the trace); pass nullptr
/// to skip CTR even on a functional engine. Fails if a request
/// references a sample outside the engine's trace.
Result<DataFlowServeResult> RunDataFlowSimulation(
    core::UpDlrmEngine& engine, std::span<const serve::Request> requests,
    const dlrm::DenseInputs* dense, const DataFlowServeOptions& options);

}  // namespace updlrm::pipeline
