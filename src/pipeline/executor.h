// Discrete-event executor of the full DLRM request path under one
// DataFlowPlan.
//
// Extends the embedding-only serve::PipelinedExecutor contract to the
// dense stages. Three simulated resources:
//   * host — single resource running stage-1 pushes, stage-3 pulls +
//     aggregation, and every CPU-placed dense task;
//   * DPU array — stage-2 lookups, FIFO;
//   * GPU — offloaded dense stages, FIFO (absent cost when unused).
//
// Host scheduling contract (deterministic, work-conserving,
// non-preemptive): whenever the host frees, it runs the ready task
// with the earliest possible start; ties break by priority class
//   stage-1 > stage-3 > top > bottom-post > bottom-pre
// then FIFO by batch. Stage-1 keeps the DPUs fed (scheduled directly
// at Submit, exactly like serve::PipelinedExecutor); stage-3 completes
// the embedding path and unblocks tops; the bottom-MLP tasks are
// overlap filler that soaks host idle while the DPUs own the batch.
// Within a class, ready times are monotone in batch order, so each
// class is a FIFO queue and the schedule is independent of host thread
// count (simulated time only).
//
// Admission: `depth` MRAM buffer pairs bound the in-flight window, with
// the same NextAdmitTime contract the batcher already speaks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "pipeline/dataflow.h"

namespace updlrm::pipeline {

/// The executed schedule of one batch under a data-flow plan. The
/// bottom stack runs as [bpre, bpost] on the host, or as one GPU task
/// recorded in the bpre fields (bpost collapses to zero length at its
/// end).
struct ExecutedFlowBatch {
  BatchTaskCosts costs;
  Nanos cut_ns = 0.0;
  Nanos s1_start_ns = 0.0, s1_end_ns = 0.0;  // CPU->DPU index push
  Nanos s2_start_ns = 0.0, s2_end_ns = 0.0;  // DPU lookup/reduce
  Nanos s3_start_ns = 0.0, s3_end_ns = 0.0;  // pull + CPU aggregation
  Nanos bpre_start_ns = 0.0, bpre_end_ns = 0.0;
  Nanos bpost_start_ns = 0.0, bpost_end_ns = 0.0;
  Nanos bottom_done_ns = 0.0;
  /// Interaction + top MLP (host or GPU per the plan). The interact
  /// part occupies [top_start, top_start + costs.interact).
  Nanos top_start_ns = 0.0, top_end_ns = 0.0;
  /// Batch completion == top_end_ns.
  Nanos done_ns = 0.0;
};

class DataFlowExecutor {
 public:
  explicit DataFlowExecutor(const DataFlowPlan& plan);

  const DataFlowPlan& plan() const { return plan_; }

  /// Earliest simulated instant the next batch may be cut (the
  /// depth-bounded buffer window has a free slot). Monotone.
  Nanos NextAdmitTime() const;

  void Reserve(std::size_t expected_batches);

  /// Submits the next batch at its cut instant (>= previous cut, >=
  /// NextAdmitTime()). Stage 1/2 (and a GPU bottom) are scheduled
  /// eagerly; host dense tasks and stage 3 run as host time advances.
  /// Returns the batch index.
  std::size_t Submit(const BatchTaskCosts& costs, Nanos cut_ns);

  /// Runs every resource to completion. Call once after the last
  /// Submit; batches() then has every stage finalized.
  void Drain();

  /// Completion (top end) of the last batch; 0 if none. After Drain.
  Nanos MakespanNs() const;

  const std::vector<ExecutedFlowBatch>& batches() const { return batches_; }
  Nanos host_busy_ns() const { return host_busy_; }
  Nanos dpu_busy_ns() const { return dpu_busy_; }
  Nanos gpu_busy_ns() const { return gpu_busy_; }
  /// Host time spent in dense (MLP/interaction) tasks — a subset of
  /// host_busy_ns.
  Nanos host_mlp_busy_ns() const { return host_mlp_busy_; }
  std::uint32_t depth() const { return plan_.depth; }

 private:
  // Host task classes in priority order (lower = higher priority;
  // stage 1 is scheduled at Submit and never queues).
  enum HostClass : std::size_t { kS3 = 0, kTop, kBpost, kBpre, kNumClasses };

  // Starts pending host tasks whose begin instant falls strictly
  // before `until` (a started task may overrun it).
  void AdvanceHost(Nanos until);
  // Ready time of the head task of `cls` for batch index `b`; negative
  // when its dependencies are not yet resolved.
  Nanos ReadyTime(std::size_t cls, std::size_t b) const;
  // Applies completion of (cls, b): writes the schedule, resolves
  // successors, schedules newly-unblocked GPU tops.
  void Complete(std::size_t cls, std::size_t b, Nanos start, Nanos dur);
  // Schedules GPU top tasks whose dependencies resolved, in batch
  // order.
  void ScheduleGpuTops();

  DataFlowPlan plan_;
  std::vector<ExecutedFlowBatch> batches_;
  // Head index per host class (tasks are FIFO within a class).
  std::size_t head_[kNumClasses] = {0, 0, 0, 0};
  std::size_t next_gpu_top_ = 0;
  Nanos host_free_ = 0.0;
  Nanos dpu_free_ = 0.0;
  Nanos gpu_free_ = 0.0;
  Nanos last_cut_ = 0.0;
  Nanos host_busy_ = 0.0;
  Nanos dpu_busy_ = 0.0;
  Nanos gpu_busy_ = 0.0;
  Nanos host_mlp_busy_ = 0.0;
  bool drained_ = false;
};

}  // namespace updlrm::pipeline
