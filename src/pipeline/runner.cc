#include "pipeline/runner.h"

#include <algorithm>
#include <memory>

#include "check/dataflow_audit.h"
#include "dlrm/batched.h"
#include "telemetry/tracer.h"
#include "updlrm/timeline.h"

namespace updlrm::pipeline {

serve::SloReport DataFlowServeResult::MakeSloReport(double offered_qps,
                                                    Nanos slo_ns) const {
  serve::SloReport report;
  report.offered_qps = offered_qps;
  report.completed = completed;
  report.shed = shed;
  report.achieved_qps =
      makespan_ns <= 0.0 ? 0.0
                         : static_cast<double>(completed) /
                               (makespan_ns / kNanosPerSecond);
  report.p50_ns = latency.PercentileNs(50.0);
  report.p95_ns = latency.PercentileNs(95.0);
  report.p99_ns = latency.PercentileNs(99.0);
  report.mean_ns = latency.MeanNs();
  report.max_ns = latency.max_ns();
  report.slo_ns = slo_ns;
  report.slo_met = shed == 0 && report.p99_ns <= slo_ns;
  return report;
}

namespace {

check::StageInstants FlattenInstants(const ExecutedFlowBatch& b) {
  check::StageInstants t;
  t.cut_ns = b.cut_ns;
  t.bpre_start_ns = b.bpre_start_ns;
  t.bpre_end_ns = b.bpre_end_ns;
  t.s1_start_ns = b.s1_start_ns;
  t.s1_end_ns = b.s1_end_ns;
  t.s2_start_ns = b.s2_start_ns;
  t.s2_end_ns = b.s2_end_ns;
  t.s3_start_ns = b.s3_start_ns;
  t.s3_end_ns = b.s3_end_ns;
  t.bottom_done_ns = b.bottom_done_ns;
  t.top_start_ns = b.top_start_ns;
  t.top_end_ns = b.top_end_ns;
  return t;
}

}  // namespace

Result<DataFlowServeResult> RunDataFlowSimulation(
    core::UpDlrmEngine& engine, std::span<const serve::Request> requests,
    const dlrm::DenseInputs* dense, const DataFlowServeOptions& options) {
  const dlrm::DlrmConfig& config = engine.config();
  const host::GpuTimingModel gpu(options.gpu);
  const DataFlowPlan& plan = options.plan;

  if (options.audit != nullptr) {
    check::DataFlowShape shape;
    shape.depth = plan.depth;
    shape.bottom_overlap_layers =
        plan.bottom == Backend::kGpu ? 0 : plan.bottom_split;
    shape.bottom_layers =
        static_cast<std::uint32_t>(config.bottom_hidden.size()) + 1;
    shape.bottom_on_gpu = plan.bottom == Backend::kGpu;
    shape.top_on_gpu = plan.top == Backend::kGpu;
    shape.gpu_available = options.gpu_available;
    check::AuditDataFlowShape(shape, options.audit);
  }

  serve::DynamicBatcher batcher(options.batcher);
  DataFlowExecutor executor(plan);
  DataFlowServeResult result;
  result.offered = requests.size();

  const bool compute_ctr = dense != nullptr && engine.functional();
  std::unique_ptr<dlrm::BatchedDlrm> batched;
  if (compute_ctr) {
    batched = std::make_unique<dlrm::BatchedDlrm>(*engine.model());
  }

  // Tracing: the serve loop runs on one thread, so all emission below
  // is single-threaded, post-drain, and pure observation (mirrors
  // serve/server.cc).
  const bool tracing = telemetry::TraceEnabled();
  telemetry::Tracer& tracer = telemetry::Tracer::Get();
  const std::uint64_t sample_every =
      tracing ? tracer.options().sample_every : 1;
  using telemetry::Clock;
  using telemetry::kDpuTrack;
  using telemetry::kGpuTrack;
  using telemetry::kHostBusTrack;
  using telemetry::kMlpTrack;
  using telemetry::kPipelinePid;
  using telemetry::kRequestPid;

  // Fleet-health monitor (observation only; mirrors serve/server.cc).
  // The pre-loop sample anchors the cumulative per-DPU counters so
  // window 0's deltas cover the first batch.
  telemetry::FleetMonitor* const monitor =
      telemetry::MonitorEnabled(options.monitor) ? options.monitor
                                                 : nullptr;
  std::vector<std::uint64_t> unit_work;
  auto sample_units = [&](Nanos t) {
    unit_work.clear();
    const pim::DpuSystem& system = engine.dpu_system();
    for (std::uint32_t i = 0; i < system.num_dpus(); ++i) {
      const pim::DpuStats& stats = system.dpu(i).stats();
      unit_work.push_back(stats.kernel_cycles + stats.index_bytes_pushed);
    }
    monitor->OnUnitSample(t, unit_work);
  };
  if (monitor != nullptr) sample_units(0.0);

  const std::size_t expected_batches =
      options.batcher.max_batch_size > 0
          ? requests.size() / options.batcher.max_batch_size + 2
          : requests.size() + 2;
  std::vector<serve::QueuedRequest> request_log;
  request_log.reserve(requests.size());
  std::vector<std::size_t> batch_start;
  batch_start.reserve(expected_batches + 1);
  std::vector<std::size_t> samples;
  samples.reserve(options.batcher.max_batch_size);
  std::vector<float> dense_rows;  // gathered batch dense inputs
  if (compute_ctr) {
    dense_rows.reserve(options.batcher.max_batch_size *
                       config.dense_features);
  }
  std::vector<std::shared_ptr<const core::BatchDpuTrace>> batch_traces;
  executor.Reserve(expected_batches);
  result.request_latency_ns.reserve(requests.size());
  if (compute_ctr) result.ctr.reserve(requests.size());
  std::vector<serve::QueueDepthSample> queue_depth;
  queue_depth.reserve(expected_batches);

  // Worst in-flight buffer pair across the run (capacity audit input).
  std::uint64_t max_index_bytes = 0;
  std::uint64_t max_output_bytes = 0;

  auto offer = [&](const serve::Request& r, Nanos now) {
    if (batcher.Offer(r, now) == serve::Admission::kShed && tracing) {
      tracer.InstantAt(kRequestPid, 0, Clock::kSim, "shed", now, "request",
                       static_cast<double>(r.id));
    }
  };

  // The same discrete-event scan as serve/server.cc: arrivals, batcher
  // deadlines, and executor buffer frees are the only state-change
  // instants, all non-decreasing; arrivals at a tie are offered before
  // the cut is taken.
  std::size_t next = 0;
  while (next < requests.size() || !batcher.Idle()) {
    Nanos t = executor.NextAdmitTime();
    while (next < requests.size() && requests[next].arrival_ns <= t) {
      offer(requests[next], requests[next].arrival_ns);
      ++next;
    }
    while (!batcher.ReadyToCut(t)) {
      const Nanos next_arrival = next < requests.size()
                                     ? requests[next].arrival_ns
                                     : serve::DynamicBatcher::kNever;
      const Nanos deadline = batcher.NextDeadline();
      const Nanos event = std::min(next_arrival, deadline);
      if (event == serve::DynamicBatcher::kNever) break;  // drained
      t = std::max(t, event);
      while (next < requests.size() && requests[next].arrival_ns <= t) {
        offer(requests[next], requests[next].arrival_ns);
        ++next;
      }
    }
    if (!batcher.ReadyToCut(t)) break;  // nothing left to serve

    batch_start.push_back(request_log.size());
    batcher.CutInto(t, request_log);
    samples.clear();
    for (std::size_t i = batch_start.back(); i < request_log.size(); ++i) {
      samples.push_back(request_log[i].request.sample);
    }
    auto batch = engine.RunSamples(samples, nullptr);
    if (!batch.ok()) return batch.status();
    max_index_bytes = std::max(max_index_bytes, batch->max_index_bytes);
    max_output_bytes = std::max(max_output_bytes, batch->max_output_bytes);

    const BatchTaskCosts costs = ComputeBatchTaskCosts(
        config, engine.cpu_model(), gpu, *batch, samples.size(), plan);
    executor.Submit(costs, t);
    if (tracing) batch_traces.push_back(batch->dpu_trace);
    queue_depth.push_back(
        serve::QueueDepthSample{t, batcher.queue_depth()});
    if (monitor != nullptr) sample_units(t);

    if (compute_ctr) {
      if (samples.size() * config.dense_features > dense_rows.capacity()) {
        dense_rows.reserve(samples.size() * config.dense_features);
      }
      dense_rows.clear();
      for (const std::size_t s : samples) {
        if (s >= dense->num_samples()) {
          return Status::InvalidArgument(
              "request sample outside the dense inputs");
        }
        const std::span<const float> row = dense->Sample(s);
        dense_rows.insert(dense_rows.end(), row.begin(), row.end());
      }
      const std::size_t base = result.ctr.size();
      result.ctr.resize(base + samples.size());
      batched->Forward(dense_rows, batch->pooled, samples.size(),
                       std::span<float>(result.ctr.data() + base,
                                        samples.size()),
                       options.num_threads);
    }
  }
  batch_start.push_back(request_log.size());  // closing sentinel

  executor.Drain();
  result.makespan_ns = executor.MakespanNs();
  result.schedule = executor.batches();
  result.num_batches = batch_start.size() - 1;
  result.shed = batcher.shed_count();
  result.max_queue_depth = batcher.max_queue_depth();
  result.utilization.host_busy_ns = executor.host_busy_ns();
  result.utilization.dpu_busy_ns = executor.dpu_busy_ns();
  result.utilization.host_mlp_busy_ns = executor.host_mlp_busy_ns();
  result.utilization.gpu_busy_ns = executor.gpu_busy_ns();
  result.utilization.makespan_ns = result.makespan_ns;

  if (options.audit != nullptr) {
    check::DataFlowCapacity cap;
    cap.depth = plan.depth;
    cap.max_index_bytes = max_index_bytes;
    cap.max_output_bytes = max_output_bytes;
    cap.index_region_bytes = ~0ULL;
    cap.output_region_bytes = ~0ULL;
    for (const core::TableGroup& g : engine.groups()) {
      cap.index_region_bytes =
          std::min(cap.index_region_bytes, g.layout.index_bytes);
      cap.output_region_bytes =
          std::min(cap.output_region_bytes, g.layout.output_bytes);
    }
    check::AuditDataFlowCapacity(cap, options.audit);
    for (std::size_t b = 0; b < result.schedule.size(); ++b) {
      check::AuditStageOrdering(b, FlattenInstants(result.schedule[b]),
                                options.audit);
    }
  }

  const bool uses_gpu =
      plan.bottom == Backend::kGpu || plan.top == Backend::kGpu;
  if (tracing) {
    tracer.SetThreadName(kPipelinePid, kHostBusTrack,
                         "host buses (stage 1/3)");
    tracer.SetThreadName(kPipelinePid, kDpuTrack, "DPU array (stage 2)");
    tracer.SetThreadName(kPipelinePid, kMlpTrack,
                         "host dense (MLP / interaction)");
    if (uses_gpu) {
      tracer.SetThreadName(kPipelinePid, kGpuTrack, "GPU backend");
    }
    for (const serve::QueueDepthSample& s : queue_depth) {
      tracer.Counter(kPipelinePid, Clock::kSim, "queue_depth", s.t_ns,
                     static_cast<double>(s.depth));
    }
  }

  std::uint64_t served = 0;
  for (std::size_t b = 0; b + 1 < batch_start.size(); ++b) {
    const ExecutedFlowBatch& sched = result.schedule[b];
    const Nanos done = sched.done_ns;
    if (tracing) {
      if (b % sample_every == 0) {
        const double batch_id = static_cast<double>(b);
        tracer.Complete(kPipelinePid, kHostBusTrack, Clock::kSim,
                        "stage1.push", sched.s1_start_ns,
                        sched.s1_end_ns - sched.s1_start_ns, "batch",
                        batch_id);
        tracer.Complete(kPipelinePid, kDpuTrack, Clock::kSim,
                        "stage2.kernel", sched.s2_start_ns,
                        sched.s2_end_ns - sched.s2_start_ns);
        tracer.Complete(kPipelinePid, kHostBusTrack, Clock::kSim,
                        "stage3.pull", sched.s3_start_ns,
                        sched.s3_end_ns - sched.s3_start_ns);
        if (plan.bottom == Backend::kGpu) {
          tracer.Complete(kPipelinePid, kGpuTrack, Clock::kSim,
                          "mlp_bottom", sched.bpre_start_ns,
                          sched.bpre_end_ns - sched.bpre_start_ns, "batch",
                          batch_id);
        } else {
          // The bottom stack runs as up to two host slices (the
          // overlapped prefix and the remainder); emit each non-empty
          // one under the same span name.
          if (sched.bpre_end_ns > sched.bpre_start_ns) {
            tracer.Complete(kPipelinePid, kMlpTrack, Clock::kSim,
                            "mlp_bottom", sched.bpre_start_ns,
                            sched.bpre_end_ns - sched.bpre_start_ns,
                            "batch", batch_id);
          }
          if (sched.bpost_end_ns > sched.bpost_start_ns) {
            tracer.Complete(kPipelinePid, kMlpTrack, Clock::kSim,
                            "mlp_bottom", sched.bpost_start_ns,
                            sched.bpost_end_ns - sched.bpost_start_ns,
                            "batch", batch_id);
          }
        }
        if (plan.top == Backend::kGpu) {
          // One offload covers interaction + top stack; the host-time
          // interact/top split does not apply on the device.
          tracer.Complete(kPipelinePid, kGpuTrack, Clock::kSim, "mlp_top",
                          sched.top_start_ns,
                          sched.top_end_ns - sched.top_start_ns, "batch",
                          batch_id);
        } else {
          tracer.Complete(kPipelinePid, kMlpTrack, Clock::kSim, "interact",
                          sched.top_start_ns, sched.costs.interact, "batch",
                          batch_id);
          tracer.Complete(kPipelinePid, kMlpTrack, Clock::kSim, "mlp_top",
                          sched.top_start_ns + sched.costs.interact,
                          sched.top_end_ns -
                              (sched.top_start_ns + sched.costs.interact));
        }
        if (batch_traces[b] != nullptr) {
          core::EmitBatchDpuTimeline(engine.dpu_system(), *batch_traces[b],
                                     b, sched.s2_start_ns,
                                     /*tasklet_detail=*/true);
        }
      } else {
        tracer.CountSampledOut();
      }
    }
    const std::span<const serve::QueuedRequest> batch_requests(
        request_log.data() + batch_start[b],
        batch_start[b + 1] - batch_start[b]);
    if (monitor != nullptr) {
      // Drift accesses at the batch's cut instant; SLO completions at
      // its full-path done instant (both non-decreasing over b).
      const trace::Trace& workload = engine.trace();
      for (const serve::QueuedRequest& q : batch_requests) {
        for (std::uint32_t t = 0; t < workload.num_tables(); ++t) {
          monitor->OnAccess(t, sched.cut_ns,
                            workload.tables[t].Sample(q.request.sample));
        }
        monitor->OnRequest(done, done - q.request.arrival_ns);
      }
    }
    for (const serve::QueuedRequest& q : batch_requests) {
      const Nanos latency = done - q.request.arrival_ns;
      result.latency.Add(latency);
      result.request_latency_ns.push_back(latency);
      ++served;
      if (!tracing) continue;
      if (q.request.id % sample_every != 0) {
        ++result.requests_sampled_out;
        tracer.CountSampledOut();
        continue;
      }
      ++result.requests_traced;
      // Nested async spans sharing the request's id:
      //   lifetime [arrival, top end)
      //     queued  [admission, batch cut)
      //     execute [batch cut, top end)
      tracer.AsyncBegin(kRequestPid, q.request.id, Clock::kSim, "request",
                        "request", q.request.arrival_ns);
      tracer.AsyncBegin(kRequestPid, q.request.id, Clock::kSim, "queued",
                        "request", q.admit_ns);
      tracer.AsyncEnd(kRequestPid, q.request.id, Clock::kSim, "queued",
                      "request", sched.cut_ns);
      tracer.AsyncBegin(kRequestPid, q.request.id, Clock::kSim, "execute",
                        "request", sched.cut_ns);
      tracer.AsyncEnd(kRequestPid, q.request.id, Clock::kSim, "execute",
                      "request", done);
      tracer.AsyncEnd(kRequestPid, q.request.id, Clock::kSim, "request",
                      "request", done);
    }
  }
  result.completed = served;
  if (result.num_batches > 0) {
    result.avg_batch_size = static_cast<double>(served) /
                            static_cast<double>(result.num_batches);
  }
  UPDLRM_CHECK_MSG(result.completed + result.shed == result.offered,
                   "serving accounting mismatch");
  return result;
}

}  // namespace updlrm::pipeline
