#include "pipeline/tuner.h"

#include <algorithm>
#include <numeric>

#include "pipeline/runner.h"

namespace updlrm::pipeline {

namespace {

// Decisions transfer across runs that share the model shape, the batch
// size, and the backend inventory — the inputs ComputeBatchTaskCosts
// and the executor actually read.
std::string CacheKey(const dlrm::DlrmConfig& config,
                     const serve::BatcherOptions& batcher,
                     bool gpu_available) {
  std::string key;
  key += "t" + std::to_string(config.num_tables);
  key += ".d" + std::to_string(config.embedding_dim);
  key += ".f" + std::to_string(config.dense_features);
  key += ".i" + std::to_string(static_cast<int>(config.interaction));
  key += ".b";
  for (const std::uint32_t w : config.bottom_hidden) {
    key += std::to_string(w) + "-";
  }
  key += ".h";
  for (const std::uint32_t w : config.top_hidden) {
    key += std::to_string(w) + "-";
  }
  key += ".n" + std::to_string(batcher.max_batch_size);
  key += gpu_available ? ".gpu" : ".nogpu";
  return key;
}

}  // namespace

Result<TunedDataFlow> DataFlowTuner::Tune(
    core::UpDlrmEngine& engine, std::span<const serve::Request> requests,
    const serve::BatcherOptions& batcher) {
  const dlrm::DlrmConfig& config = engine.config();
  const std::string key = CacheKey(config, batcher, options_.gpu_available);
  if (const auto it = memo_.find(key); it != memo_.end()) {
    TunedDataFlow cached = it->second;
    cached.from_cache = true;
    return cached;
  }
  if (requests.empty()) {
    return Status::InvalidArgument("tuner needs a non-empty request stream");
  }

  // One probe batch at the serving batch size supplies the embedding
  // stage times every candidate is priced against.
  std::vector<std::size_t> probe;
  const std::size_t probe_size =
      std::min<std::size_t>(std::max<std::size_t>(batcher.max_batch_size, 1),
                            requests.size());
  probe.reserve(probe_size);
  for (std::size_t i = 0; i < probe_size; ++i) {
    probe.push_back(requests[i].sample);
  }
  auto probe_batch = engine.RunSamples(probe, nullptr);
  if (!probe_batch.ok()) return probe_batch.status();

  DataFlowSpace space = options_.space;
  space.bottom_layers =
      static_cast<std::uint32_t>(config.bottom_hidden.size()) + 1;
  space.allow_gpu = space.allow_gpu && options_.gpu_available;

  const host::GpuTimingModel gpu(options_.gpu);
  TunedDataFlow tuned;
  for (const DataFlowPlan& plan : EnumerateDataFlows(space)) {
    CandidateOutcome outcome;
    outcome.plan = plan;
    outcome.predicted_ns = PredictFlow(
        ComputeBatchTaskCosts(config, engine.cpu_model(), gpu, *probe_batch,
                              probe.size(), plan),
        plan);
    tuned.candidates.push_back(outcome);
  }

  // Calibration order: predicted rank (stable, so prediction ties keep
  // enumeration order).
  std::vector<std::size_t> rank(tuned.candidates.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::stable_sort(rank.begin(), rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tuned.candidates[a].predicted_ns <
                            tuned.candidates[b].predicted_ns;
                   });
  const std::size_t to_calibrate =
      options_.calibrate_top_n == 0
          ? rank.size()
          : std::min(options_.calibrate_top_n, rank.size());

  const std::span<const serve::Request> calibration =
      options_.calibration_requests == 0
          ? requests
          : requests.subspan(0, std::min(options_.calibration_requests,
                                         requests.size()));
  for (std::size_t i = 0; i < to_calibrate; ++i) {
    CandidateOutcome& outcome = tuned.candidates[rank[i]];
    DataFlowServeOptions serve_options;
    serve_options.batcher = batcher;
    serve_options.plan = outcome.plan;
    serve_options.gpu = options_.gpu;
    serve_options.gpu_available = options_.gpu_available;
    // Timing-only calibration: skip CTR computation.
    auto run = RunDataFlowSimulation(engine, calibration, nullptr,
                                     serve_options);
    if (!run.ok()) return run.status();
    outcome.measured_p99_ns = run->latency.PercentileNs(99.0);
    outcome.calibrated = true;
  }

  // Winner: lowest measured p99 among the calibrated candidates; ties
  // fall to the lower prediction, then to enumeration order (the scan
  // below only replaces on strict improvement).
  std::size_t best = tuned.candidates.size();
  for (std::size_t i = 0; i < tuned.candidates.size(); ++i) {
    const CandidateOutcome& c = tuned.candidates[i];
    if (!c.calibrated) continue;
    if (best == tuned.candidates.size()) {
      best = i;
      continue;
    }
    const CandidateOutcome& b = tuned.candidates[best];
    if (c.measured_p99_ns < b.measured_p99_ns ||
        (c.measured_p99_ns == b.measured_p99_ns &&
         c.predicted_ns < b.predicted_ns)) {
      best = i;
    }
  }
  UPDLRM_CHECK_MSG(best < tuned.candidates.size(),
                   "tuner calibrated no candidate");
  tuned.best = tuned.candidates[best].plan;
  tuned.best_p99_ns = tuned.candidates[best].measured_p99_ns;
  memo_.emplace(key, tuned);
  return tuned;
}

}  // namespace updlrm::pipeline
