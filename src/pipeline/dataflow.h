// Candidate data flows for the end-to-end DLRM serving pipeline.
//
// The full request path has four compute stages — bottom MLP, embedding
// lookup (the PIM pipeline), feature interaction, top MLP — and three
// places to run the dense ones: overlapped on the host while the DPUs
// own the embedding stages, on the host after the pull, or offloaded to
// the GPU backend. Which assignment wins is *asymmetric*: it depends on
// batch size (GPU per-batch fixed overheads amortize only at scale),
// model shape (bottom/top FLOP ratio), and the embedding stage times of
// the particular dataset. This module enumerates the legal assignments
// (DataFlowPlan), prices one batch under each assignment from the same
// calibrated cost models the engine charges (BatchTaskCosts), and
// provides the analytic steady-state prediction the tuner uses to rank
// candidates before calibration (PredictFlow).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dlrm/model.h"
#include "host/cpu_model.h"
#include "host/gpu_model.h"
#include "updlrm/report.h"

namespace updlrm::pipeline {

/// Where a dense stage executes.
enum class Backend : std::uint8_t { kCpu, kGpu };

std::string_view BackendName(Backend b);  // "cpu" / "gpu"

/// One candidate data flow: stage placement + overlap structure.
struct DataFlowPlan {
  /// In-flight batches (MRAM index/output buffer pairs); 1 = serial
  /// admission, 2 = classic double buffering.
  std::uint32_t depth = 2;
  /// Bottom-MLP layers run as the low-priority overlap filler task
  /// (BPRE) while the batch's embedding stages own the DPUs; the
  /// remaining layers run as the higher-priority BPOST task. The split
  /// tunes non-preemptive host scheduling granularity: a long
  /// monolithic bottom task can delay the next batch's stage-1 push,
  /// a fully split one yields between the halves. CPU backend only
  /// (the GPU runs the whole stack as one offload).
  std::uint32_t bottom_split = 0;
  Backend bottom = Backend::kCpu;
  /// Backend of interaction + top MLP.
  Backend top = Backend::kCpu;

  bool operator==(const DataFlowPlan&) const = default;
};

/// Stable display name, e.g. "d2.split1.cpu-cpu".
std::string Name(const DataFlowPlan& plan);

/// The enumeration space.
struct DataFlowSpace {
  /// Largest pipeline depth to enumerate (clamped to
  /// check::kMaxPipelineDepth by EnumerateDataFlows).
  std::uint32_t max_depth = 4;
  /// Total bottom-MLP layers (config.bottom_hidden.size() + 1); bounds
  /// the split enumeration.
  std::uint32_t bottom_layers = 1;
  /// Enumerate GPU placements (a provisioned GPU backend).
  bool allow_gpu = true;
};

/// All legal plans of `space`, deterministic order: depth ascending,
/// then bottom split ascending, then backend mix (cpu-cpu, cpu-gpu,
/// gpu-cpu, gpu-gpu). GPU-bottom plans carry split 0.
std::vector<DataFlowPlan> EnumerateDataFlows(const DataFlowSpace& space);

/// Simulated durations of one batch's tasks under a plan. Embedding
/// stage times come from the engine (BatchResult); dense-stage times
/// are re-derived from the same CpuTimingModel the engine charges plus
/// the GPU model for offloaded placements. The interact / top_mlp
/// split exists so trace spans can partition the TOP task honestly.
struct BatchTaskCosts {
  core::StageBreakdown emb;
  Nanos bottom_pre = 0.0;   // host: overlapped bottom-MLP prefix
  Nanos bottom_post = 0.0;  // host: remaining bottom-MLP layers
  Nanos bottom_gpu = 0.0;   // gpu: whole bottom stack + PCIe + sync
  Nanos interact = 0.0;     // host: feature interaction stream pass
  Nanos top_mlp = 0.0;      // host: top-MLP GEMVs
  Nanos top_gpu = 0.0;      // gpu: interaction + top stack + PCIe + sync

  Nanos top_host() const { return interact + top_mlp; }
  Nanos bottom_host() const { return bottom_pre + bottom_post; }
};

/// Prices one batch of `batch_size` samples under `plan`. `batch`
/// supplies the executed embedding stage times.
BatchTaskCosts ComputeBatchTaskCosts(const dlrm::DlrmConfig& config,
                                     const host::CpuTimingModel& cpu,
                                     const host::GpuTimingModel& gpu,
                                     const core::BatchResult& batch,
                                     std::size_t batch_size,
                                     const DataFlowPlan& plan);

/// Analytic steady-state score of `plan` (lower is better): the larger
/// of the per-resource periods (throughput bound at saturation) and
/// the single-batch critical path (latency floor at low load). A rank
/// heuristic, not a latency promise — the tuner calibrates the
/// finalists with real simulated runs.
Nanos PredictFlow(const BatchTaskCosts& costs, const DataFlowPlan& plan);

}  // namespace updlrm::pipeline
