#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace updlrm::serve {

namespace {
// Bucket width ratio: 10^(1/kBucketsPerDecade).
const double kGrowth = std::pow(10.0, 1.0 / LatencyHistogram::kBucketsPerDecade);
const double kLogGrowth = std::log(kGrowth);
}  // namespace

Nanos LatencyHistogram::BucketLowerNs(int i) {
  if (i <= 0) return 0.0;
  return kMinNs * std::pow(kGrowth, i - 1);
}

Nanos LatencyHistogram::BucketUpperNs(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinNs * std::pow(kGrowth, i);
}

void LatencyHistogram::Add(Nanos latency_ns) {
  latency_ns = std::max(latency_ns, 0.0);
  int bucket;
  if (latency_ns < kMinNs) {
    bucket = 0;
  } else {
    bucket = 1 + static_cast<int>(std::log(latency_ns / kMinNs) /
                                  kLogGrowth);
    // Guard the float boundary: keep the sample inside its [lo, hi).
    while (bucket > 1 && latency_ns < BucketLowerNs(bucket)) --bucket;
    while (bucket < kNumBuckets - 1 &&
           latency_ns >= BucketUpperNs(bucket)) {
      ++bucket;
    }
    bucket = std::min(bucket, kNumBuckets - 1);
  }
  ++buckets_[bucket];
  ++count_;
  sum_ += latency_ns;
  if (count_ == 1) {
    min_ = max_ = latency_ns;
  } else {
    min_ = std::min(min_, latency_ns);
    max_ = std::max(max_, latency_ns);
  }
}

Nanos LatencyHistogram::PercentileNs(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based, nearest-rank with ceil).
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  if (rank >= count_) return max_;  // p100 is the exact observed max
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] >= rank) {
      // Linear interpolation across the bucket's span.
      const double within = buckets_[i] <= 1
                                ? 0.5
                                : (static_cast<double>(rank - seen) - 0.5) /
                                      static_cast<double>(buckets_[i]);
      const Nanos lo = std::max(BucketLowerNs(i), min_);
      const Nanos hi = std::min(
          i == kNumBuckets - 1 ? max_ : BucketUpperNs(i), max_);
      const Nanos value = lo + (std::max(hi, lo) - lo) * within;
      return std::clamp(value, min_, max_);
    }
    seen += buckets_[i];
  }
  return max_;
}

namespace {
std::string FmtDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}
}  // namespace

std::string SloReport::ToJson() const {
  std::ostringstream os;
  os << "{\"offered_qps\": " << FmtDouble(offered_qps)
     << ", \"achieved_qps\": " << FmtDouble(achieved_qps)
     << ", \"completed\": " << completed << ", \"shed\": " << shed
     << ", \"p50_us\": " << FmtDouble(NanosToMicros(p50_ns))
     << ", \"p95_us\": " << FmtDouble(NanosToMicros(p95_ns))
     << ", \"p99_us\": " << FmtDouble(NanosToMicros(p99_ns))
     << ", \"mean_us\": " << FmtDouble(NanosToMicros(mean_ns))
     << ", \"max_us\": " << FmtDouble(NanosToMicros(max_ns))
     << ", \"slo_us\": " << FmtDouble(NanosToMicros(slo_ns))
     << ", \"slo_met\": " << (slo_met ? "true" : "false") << "}";
  return os.str();
}

double MaxSustainableQps(std::span<const RatePoint> points, Nanos slo_ns) {
  double best = 0.0;
  for (const RatePoint& pt : points) {
    if (pt.shed == 0 && pt.p99_ns <= slo_ns) {
      best = std::max(best, pt.offered_qps);
    }
  }
  return best;
}

}  // namespace updlrm::serve
