// Open-loop load generation for the serving subsystem.
//
// A serving experiment replays the trace's multi-hot samples as
// *requests* with arrival timestamps drawn from a seeded arrival
// process. Open-loop means arrivals never wait for the system — the
// generator fixes the full timeline up front, so overload manifests as
// queueing (and shedding), exactly like production traffic. Everything
// is deterministic given (options.seed, options.qps): the same request
// stream reproduces bit-for-bit at any host thread count.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "trace/trace.h"

namespace updlrm::serve {

/// One inference request: a single trace sample (its multi-hot lookups
/// across all tables) arriving at a simulated-time instant.
struct Request {
  std::uint64_t id = 0;       // dense, 0-based, in arrival order
  std::size_t sample = 0;     // trace sample id (== id here)
  Nanos arrival_ns = 0.0;     // open-loop arrival timestamp
};

enum class ArrivalProcess {
  kPoisson,  // exponential inter-arrival gaps at rate qps
  kUniform,  // exact 1/qps spacing (closed-form, no RNG)
  kBursty,   // on/off modulated Poisson: peak/trough rate windows
};

std::string_view ArrivalProcessName(ArrivalProcess p);

/// Parses "poisson" / "uniform" / "bursty" (the --arrival flag values).
Result<ArrivalProcess> ParseArrivalProcess(std::string_view name);

struct ArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Mean offered load, requests per second. Must be > 0.
  double qps = 10'000.0;
  std::uint64_t seed = 1;

  // Bursty process shape: windows of length `burst_period_ns` alternate
  // between a peak phase (the first `burst_fraction` of the window, at
  // qps * burst_factor) and a trough phase whose rate is chosen so the
  // long-run mean stays at `qps`. burst_factor * burst_fraction must be
  // < 1 so the trough rate stays positive.
  double burst_factor = 4.0;
  double burst_fraction = 0.2;
  /// 0 = auto: 32 mean inter-arrival gaps per window.
  Nanos burst_period_ns = 0.0;
};

/// Generates `count` requests (default / 0 = one per trace sample).
/// Request i replays trace sample i, so `count` must be at most
/// trace.num_samples(). Arrival timestamps are strictly ordered.
Result<std::vector<Request>> GenerateRequests(const trace::Trace& trace,
                                              std::size_t count,
                                              const ArrivalOptions& options);

}  // namespace updlrm::serve
