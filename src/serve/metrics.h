// Tail-latency metrics for the serving subsystem.
//
// Serving quality is a distribution, not a mean: SLOs bind the p99, and
// capacity planning asks for the highest load whose tail still meets
// it. This module provides the fixed-bucket latency histogram the
// simulator fills per request, per-stage utilization, a queue-depth
// time series, and the SLO report benches emit as JSON. Buckets are
// fixed (log-spaced, 1 µs .. 10 s at 10 buckets/decade) so histograms
// merge and compare across runs without renormalization, and every
// statistic is a pure function of simulated inputs — bit-exact at any
// host thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace updlrm::serve {

/// Log-spaced fixed-bucket histogram over [1 µs, 10 s), with underflow
/// and overflow buckets. Percentiles interpolate linearly inside a
/// bucket (log-bucket resolution: <= ~26% relative error, the usual
/// fixed-histogram trade) and clamp to the exactly-tracked min/max.
class LatencyHistogram {
 public:
  static constexpr int kBucketsPerDecade = 10;
  static constexpr int kDecades = 7;
  static constexpr double kMinNs = 1.0e3;  // 1 µs
  /// underflow + kDecades * kBucketsPerDecade + overflow
  static constexpr int kNumBuckets = 2 + kDecades * kBucketsPerDecade;

  void Add(Nanos latency_ns);

  std::uint64_t count() const { return count_; }
  Nanos sum_ns() const { return sum_; }
  Nanos min_ns() const { return count_ == 0 ? 0.0 : min_; }
  Nanos max_ns() const { return count_ == 0 ? 0.0 : max_; }
  Nanos MeanNs() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Interpolated percentile, p in [0, 100]. 0 with no samples.
  Nanos PercentileNs(double p) const;

  std::span<const std::uint64_t> buckets() const { return buckets_; }

  /// [lower, upper) bounds of bucket i; the underflow bucket is
  /// [0, kMinNs), the overflow bucket [10 s, +inf).
  static Nanos BucketLowerNs(int i);
  static Nanos BucketUpperNs(int i);

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  Nanos sum_ = 0.0;
  Nanos min_ = 0.0;
  Nanos max_ = 0.0;
};

/// Busy fractions of the pipeline resources over the run. The
/// embedding-only pipeline fills the first two; the full-path data-flow
/// executor (src/pipeline) additionally splits out the host's dense-
/// compute time and the optional GPU backend.
struct StageUtilization {
  Nanos host_busy_ns = 0.0;  // stage 1 + stage 3 + CPU aggregation
  Nanos dpu_busy_ns = 0.0;   // stage 2
  Nanos makespan_ns = 0.0;
  /// Host time spent in MLP / interaction work (a subset of
  /// host_busy_ns: one host resource serves both transfer and dense
  /// compute).
  Nanos host_mlp_busy_ns = 0.0;
  /// GPU backend busy time; 0 when every stage runs on the host.
  Nanos gpu_busy_ns = 0.0;

  double HostUtilization() const {
    return makespan_ns <= 0.0 ? 0.0 : host_busy_ns / makespan_ns;
  }
  double DpuUtilization() const {
    return makespan_ns <= 0.0 ? 0.0 : dpu_busy_ns / makespan_ns;
  }
  double HostMlpUtilization() const {
    return makespan_ns <= 0.0 ? 0.0 : host_mlp_busy_ns / makespan_ns;
  }
  double GpuUtilization() const {
    return makespan_ns <= 0.0 ? 0.0 : gpu_busy_ns / makespan_ns;
  }
};

/// Queue depth observed at a batch-cut instant (post-cut depth).
struct QueueDepthSample {
  Nanos t_ns = 0.0;
  std::size_t depth = 0;
};

/// The serving scorecard for one (configuration, offered load) point.
struct SloReport {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  // completed / makespan
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  Nanos p50_ns = 0.0;
  Nanos p95_ns = 0.0;
  Nanos p99_ns = 0.0;
  Nanos mean_ns = 0.0;
  Nanos max_ns = 0.0;
  Nanos slo_ns = 0.0;  // the p99 SLO this point was judged against
  bool slo_met = false;  // p99 <= slo and nothing shed

  /// One JSON object (no trailing newline), stable key order.
  std::string ToJson() const;
};

/// A swept load point for capacity planning.
struct RatePoint {
  double offered_qps = 0.0;
  Nanos p99_ns = 0.0;
  std::uint64_t shed = 0;
};

/// Max sustainable QPS under a p99 SLO: the highest offered rate whose
/// p99 meets `slo_ns` with nothing shed; 0 if no swept point qualifies.
double MaxSustainableQps(std::span<const RatePoint> points, Nanos slo_ns);

}  // namespace updlrm::serve
