#include "serve/batcher.h"

#include <algorithm>

#include "common/status.h"

namespace updlrm::serve {

DynamicBatcher::DynamicBatcher(BatcherOptions options)
    : options_(options) {
  UPDLRM_CHECK(options_.max_batch_size >= 1);
  UPDLRM_CHECK(options_.max_queue_delay_ns >= 0.0);
}

Admission DynamicBatcher::Offer(const Request& request, Nanos now) {
  thread_checker_.Check();
  const bool bounded = options_.queue_capacity > 0;
  if (bounded && queue_.size() >= options_.queue_capacity) {
    if (options_.policy == AdmissionPolicy::kShed) {
      ++shed_;
      return Admission::kShed;
    }
    // Parked requests get their slab slot now; admit_ns is stamped when
    // a cut frees queue space.
    blocked_.push_back(slab_.Insert(QueuedRequest{request, 0.0}));
    return Admission::kBlocked;
  }
  queue_.push_back(slab_.Insert(QueuedRequest{request, now}));
  max_depth_ = std::max(max_depth_, queue_.size());
  return Admission::kQueued;
}

bool DynamicBatcher::ReadyToCut(Nanos now) const {
  if (queue_.empty()) return false;
  if (queue_.size() >= options_.max_batch_size) return true;
  return now >= queue_.front()->admit_ns + options_.max_queue_delay_ns;
}

Nanos DynamicBatcher::NextDeadline() const {
  if (queue_.empty()) return kNever;
  return queue_.front()->admit_ns + options_.max_queue_delay_ns;
}

std::vector<QueuedRequest> DynamicBatcher::Cut(Nanos now) {
  thread_checker_.Check();
  std::vector<QueuedRequest> batch;
  batch.reserve(std::min(queue_.size(), options_.max_batch_size));
  CutInto(now, batch);
  return batch;
}

void DynamicBatcher::CutInto(Nanos now,
                             std::vector<QueuedRequest>& out) {
  thread_checker_.Check();
  UPDLRM_CHECK_MSG(!queue_.empty(), "Cut on an empty queue");
  const std::size_t n = std::min(queue_.size(), options_.max_batch_size);
  for (std::size_t i = 0; i < n; ++i) {
    QueuedRequest* q = queue_.front();
    queue_.pop_front();
    out.push_back(*q);
    slab_.Erase(q);
  }
  // Backpressure release: parked arrivals take the freed slots in
  // arrival order. Their batching deadline restarts at the admission
  // instant — the time spent parked is the backpressure penalty and
  // shows up in end-to-end latency (measured from arrival), not in the
  // batcher timeout.
  while (!blocked_.empty() &&
         (options_.queue_capacity == 0 ||
          queue_.size() < options_.queue_capacity)) {
    QueuedRequest* q = blocked_.front();
    blocked_.pop_front();
    q->admit_ns = now;
    queue_.push_back(q);
    max_depth_ = std::max(max_depth_, queue_.size());
  }
}

}  // namespace updlrm::serve
