#include "serve/batcher.h"

#include <algorithm>

#include "common/status.h"

namespace updlrm::serve {

DynamicBatcher::DynamicBatcher(BatcherOptions options)
    : options_(options) {
  UPDLRM_CHECK(options_.max_batch_size >= 1);
  UPDLRM_CHECK(options_.max_queue_delay_ns >= 0.0);
}

Admission DynamicBatcher::Offer(const Request& request, Nanos now) {
  const bool bounded = options_.queue_capacity > 0;
  if (bounded && queue_.size() >= options_.queue_capacity) {
    if (options_.policy == AdmissionPolicy::kShed) {
      ++shed_;
      return Admission::kShed;
    }
    blocked_.push_back(request);
    return Admission::kBlocked;
  }
  queue_.push_back(QueuedRequest{request, now});
  max_depth_ = std::max(max_depth_, queue_.size());
  return Admission::kQueued;
}

bool DynamicBatcher::ReadyToCut(Nanos now) const {
  if (queue_.empty()) return false;
  if (queue_.size() >= options_.max_batch_size) return true;
  return now >= queue_.front().admit_ns + options_.max_queue_delay_ns;
}

Nanos DynamicBatcher::NextDeadline() const {
  if (queue_.empty()) return kNever;
  return queue_.front().admit_ns + options_.max_queue_delay_ns;
}

std::vector<QueuedRequest> DynamicBatcher::Cut(Nanos now) {
  UPDLRM_CHECK_MSG(!queue_.empty(), "Cut on an empty queue");
  const std::size_t n = std::min(queue_.size(), options_.max_batch_size);
  std::vector<QueuedRequest> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  // Backpressure release: parked arrivals take the freed slots in
  // arrival order. Their batching deadline restarts at the admission
  // instant — the time spent parked is the backpressure penalty and
  // shows up in end-to-end latency (measured from arrival), not in the
  // batcher timeout.
  while (!blocked_.empty() &&
         (options_.queue_capacity == 0 ||
          queue_.size() < options_.queue_capacity)) {
    queue_.push_back(QueuedRequest{blocked_.front(), now});
    blocked_.pop_front();
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  return batch;
}

}  // namespace updlrm::serve
