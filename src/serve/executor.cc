#include "serve/executor.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace updlrm::serve {

PipelinedExecutor::PipelinedExecutor(std::uint32_t depth) : depth_(depth) {
  UPDLRM_CHECK_MSG(depth >= 1, "executor needs at least one buffer pair");
}

void PipelinedExecutor::Reserve(std::size_t expected_batches) {
  batches_.reserve(expected_batches);
}

Nanos PipelinedExecutor::NextAdmitTime() const {
  if (batches_.size() < depth_) return last_cut_;
  // The next batch reuses the buffer pair of batch (n - depth), which
  // is free once that batch's stage 2 consumed the indices.
  return std::max(last_cut_, batches_[batches_.size() - depth_].s2_end_ns);
}

void PipelinedExecutor::AdvanceHost(Nanos until) {
  while (next_s3_ < batches_.size()) {
    ExecutedBatch& b = batches_[next_s3_];
    const Nanos start = std::max(host_free_, b.s2_end_ns);
    if (start >= until) break;
    const Nanos dur = b.stages.dpu_to_cpu + b.stages.cpu_aggregate;
    b.s3_start_ns = start;
    b.s3_end_ns = start + dur;
    host_free_ = b.s3_end_ns;
    host_busy_ += dur;
    ++next_s3_;
  }
}

std::size_t PipelinedExecutor::Submit(const core::StageBreakdown& stages,
                                      Nanos cut_ns) {
  UPDLRM_CHECK_MSG(!drained_, "Submit after Drain");
  UPDLRM_CHECK_MSG(cut_ns >= NextAdmitTime() - 1e-9,
                   "batch cut before its buffer pair was free");
  // Let the host work up to the cut instant; stage-3 tasks that would
  // begin at or after it yield to the new stage-1 push (stage-1
  // priority on ties keeps the DPUs fed).
  AdvanceHost(cut_ns);

  ExecutedBatch b;
  b.stages = stages;
  b.submit_ns = cut_ns;
  b.s1_start_ns = std::max(cut_ns, host_free_);
  b.s1_end_ns = b.s1_start_ns + stages.cpu_to_dpu;
  host_free_ = b.s1_end_ns;
  host_busy_ += stages.cpu_to_dpu;
  b.s2_start_ns = std::max(b.s1_end_ns, dpu_free_);
  b.s2_end_ns = b.s2_start_ns + stages.dpu_lookup;
  dpu_free_ = b.s2_end_ns;
  dpu_busy_ += stages.dpu_lookup;
  last_cut_ = cut_ns;
  batches_.push_back(b);
  return batches_.size() - 1;
}

void PipelinedExecutor::Drain() {
  AdvanceHost(std::numeric_limits<double>::infinity());
  drained_ = true;
}

Nanos PipelinedExecutor::MakespanNs() const {
  UPDLRM_CHECK_MSG(drained_, "MakespanNs before Drain");
  // Stage-3 tasks run in batch order on the serial host, so the last
  // batch completes last.
  return batches_.empty() ? 0.0 : batches_.back().s3_end_ns;
}

PipelinedExecutor ExecutePipelined(
    std::span<const core::StageBreakdown> batches, std::uint32_t depth) {
  PipelinedExecutor executor(depth);
  executor.Reserve(batches.size());
  for (const core::StageBreakdown& b : batches) {
    executor.Submit(b, executor.NextAdmitTime());
  }
  executor.Drain();
  return executor;
}

}  // namespace updlrm::serve
