// Double-buffered pipelined execution of engine batches in simulated
// time.
//
// The embedding pipeline uses two disjoint resources (Fig. 4): the host
// + DIMM buses for stage 1 (index push), stage 3 (partial-sum pull) and
// the CPU aggregation; the DPUs for stage 2 (lookup/reduce). With
// double-buffered index/output regions in MRAM, batch k+1's stage-1
// push can proceed while batch k occupies the DPUs. This module turns
// that contract into an *executed schedule*: a discrete-event,
// simulated-time loop over the engine's per-batch StageBreakdown
// timings, replacing the optimistic two-resource bound of
// `updlrm/pipelining.h` (which is validated against this executor in
// tests/serve/executor_test.cc).
//
// Scheduling contract (deterministic, work-conserving):
//   * Batches are submitted in cut order; stage 2 executes FIFO on the
//     single DPU resource.
//   * `depth` MRAM buffer pairs bound the in-flight window: batch k may
//     only be *cut* (submitted) once batch k-depth's stage 2 finished
//     and freed its index buffer — NextAdmitTime() exposes this to the
//     batcher, which is how DPU backpressure propagates all the way to
//     the request queue.
//   * The host is a single resource running stage-1 and stage-3 tasks.
//     It is work-conserving (never idles while a task is ready) and
//     gives stage-1 priority on ties: pushing the next batch keeps the
//     DPUs fed, which is the point of double buffering. A stage-3 task
//     already running is never preempted.
//
// Everything is simulated time derived from StageBreakdown values, so
// the schedule is bit-exact at any host thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "updlrm/report.h"

namespace updlrm::serve {

/// The executed schedule of one batch.
struct ExecutedBatch {
  core::StageBreakdown stages;
  Nanos submit_ns = 0.0;    // cut instant (stage 1 may start here)
  Nanos s1_start_ns = 0.0;  // CPU->DPU index push
  Nanos s1_end_ns = 0.0;
  Nanos s2_start_ns = 0.0;  // DPU lookup/reduce
  Nanos s2_end_ns = 0.0;
  Nanos s3_start_ns = 0.0;  // DPU->CPU pull + CPU aggregation
  Nanos s3_end_ns = 0.0;    // batch completion
};

class PipelinedExecutor {
 public:
  /// `depth` = number of MRAM index/output buffer pairs; 2 = the
  /// double-buffered serving loop, 1 degenerates to serial admission.
  explicit PipelinedExecutor(std::uint32_t depth = 2);

  /// Earliest simulated instant the next batch may be cut: the buffer
  /// window has a free slot from this time on. Monotone across Submits.
  Nanos NextAdmitTime() const;

  /// Pre-sizes the executed-schedule vector for `expected_batches`
  /// Submits (the serving loop's requests/max_batch_size hint), so
  /// steady-state Submit never reallocates the StageBreakdown records.
  void Reserve(std::size_t expected_batches);

  /// Submits the next batch at its cut instant (`cut_ns` must be >= the
  /// previous cut and >= NextAdmitTime()). Finalizes the batch's
  /// stage-1 and stage-2 schedule; stage 3 is scheduled lazily as host
  /// time advances. Returns the batch's index.
  std::size_t Submit(const core::StageBreakdown& stages, Nanos cut_ns);

  /// Runs the host to completion (fill + drain of the tail). Call once
  /// after the last Submit; batches() then has every stage finalized.
  void Drain();

  /// Completion time of the last batch (0 if none). Valid after Drain.
  Nanos MakespanNs() const;

  const std::vector<ExecutedBatch>& batches() const { return batches_; }
  Nanos host_busy_ns() const { return host_busy_; }
  Nanos dpu_busy_ns() const { return dpu_busy_; }
  std::uint32_t depth() const { return depth_; }

 private:
  // Starts every pending stage-3 task whose begin instant falls
  // strictly before `until` (work-conserving host; a task may overrun
  // `until` once started).
  void AdvanceHost(Nanos until);

  std::uint32_t depth_;
  std::vector<ExecutedBatch> batches_;
  std::size_t next_s3_ = 0;  // first batch whose stage 3 is unscheduled
  Nanos host_free_ = 0.0;
  Nanos dpu_free_ = 0.0;
  Nanos last_cut_ = 0.0;
  Nanos host_busy_ = 0.0;
  Nanos dpu_busy_ = 0.0;
  bool drained_ = false;
};

/// Convenience: executes a fixed batch sequence with every batch
/// available at t = 0 (the offline-trace analogue of the serving loop,
/// used by bench/abl_pipelining). Returns the drained executor.
PipelinedExecutor ExecutePipelined(
    std::span<const core::StageBreakdown> batches, std::uint32_t depth = 2);

}  // namespace updlrm::serve
