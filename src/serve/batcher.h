// Dynamic request batching with admission control.
//
// The batcher coalesces queued requests into engine batches under two
// classic knobs: a batch is ready to cut when it reaches
// `max_batch_size`, or when its oldest request has waited
// `max_queue_delay_ns` (whichever first). A bounded queue provides the
// backpressure knob: arrivals beyond `queue_capacity` are either shed
// (dropped and counted) or blocked (parked outside the queue and
// admitted in order as cuts free space).
//
// The batcher is a pure simulated-time state machine — the serving
// simulator drives it with `Offer` (arrivals, in time order) and `Cut`
// (when the pipelined executor can accept a batch). It is therefore
// single-writer by contract, not by lock: exactly one thread may drive
// it, which a debug-gated ThreadChecker enforces on every mutating
// call (no capability exists for -Wthread-safety to track, and TSan
// only sees the bug after it happens — the checker makes the contract
// itself executable). Tie-breaking
// contract: an arrival timestamped exactly at the oldest request's
// deadline is offered *before* the deadline cut is taken, so it joins
// that batch (tests/serve/batcher_test.cc pins this boundary).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/thread_checker.h"
#include "common/units.h"
#include "serve/slab.h"
#include "serve/workload.h"

namespace updlrm::serve {

enum class AdmissionPolicy {
  kShed,   // queue full -> drop the arrival, count it
  kBlock,  // queue full -> park the arrival; admit when space frees
};

struct BatcherOptions {
  std::size_t max_batch_size = 64;
  /// Longest time a request may head the queue before a cut is due.
  Nanos max_queue_delay_ns = 1.0e6;  // 1 ms
  /// Bounded-queue backpressure; 0 = unbounded (no shedding/blocking).
  std::size_t queue_capacity = 0;
  AdmissionPolicy policy = AdmissionPolicy::kShed;
};

/// A request admitted to the queue. `admit_ns` is when it entered the
/// bounded queue (== arrival for unblocked requests); the batching
/// deadline counts from admission, end-to-end latency from arrival.
struct QueuedRequest {
  Request request;
  Nanos admit_ns = 0.0;
};

enum class Admission { kQueued, kShed, kBlocked };

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherOptions options);

  /// Offers an arrival at time `now` (must be non-decreasing across
  /// calls, and >= the request's arrival time).
  Admission Offer(const Request& request, Nanos now);

  /// True when a batch is due: the queue holds a full batch, or the
  /// oldest queued request's deadline has passed (>=, see header).
  bool ReadyToCut(Nanos now) const;

  /// The earliest future instant ReadyToCut would turn true without
  /// further arrivals: the oldest request's deadline, or +inf when the
  /// queue is empty (already-full queues report the deadline too; the
  /// caller cuts as soon as the executor admits either way).
  Nanos NextDeadline() const;

  /// Pops up to max_batch_size requests (FIFO) at time `now`, then
  /// admits parked (blocked) arrivals into the freed space in arrival
  /// order with admit_ns = now. Requires a non-empty queue.
  std::vector<QueuedRequest> Cut(Nanos now);

  /// Allocation-free Cut: *appends* the popped requests to `out`
  /// (callers keep one flat request log and record batch boundaries
  /// as offsets into it). Identical semantics otherwise.
  void CutInto(Nanos now, std::vector<QueuedRequest>& out);

  bool Idle() const { return queue_.empty() && blocked_.empty(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t blocked_depth() const { return blocked_.size(); }
  std::uint64_t shed_count() const { return shed_; }
  std::size_t max_queue_depth() const { return max_depth_; }

  static constexpr Nanos kNever = std::numeric_limits<double>::infinity();

 private:
  // Request state lives in the stable-pointer slab; the queues hold
  // pointers only. A request parked under backpressure keeps its slab
  // address across arbitrarily many cuts, and both admission and cut
  // are O(1) with zero steady-state allocation once the high-water
  // depth has been provisioned (serve/slab.h).
  BatcherOptions options_;
  // Enforces the single-driving-thread contract (debug builds only).
  ThreadChecker thread_checker_;
  RequestSlab<QueuedRequest> slab_;
  std::deque<QueuedRequest*> queue_;
  std::deque<QueuedRequest*> blocked_;
  std::uint64_t shed_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace updlrm::serve
