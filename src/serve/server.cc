#include "serve/server.h"

#include <algorithm>
#include <span>

#include "telemetry/tracer.h"
#include "updlrm/scaleout.h"
#include "updlrm/timeline.h"

namespace updlrm::serve {

SloReport ServeResult::MakeSloReport(double offered_qps,
                                     Nanos slo_ns) const {
  SloReport report;
  report.offered_qps = offered_qps;
  report.completed = completed;
  report.shed = shed;
  report.achieved_qps =
      makespan_ns <= 0.0 ? 0.0
                         : static_cast<double>(completed) /
                               (makespan_ns / kNanosPerSecond);
  report.p50_ns = latency.PercentileNs(50.0);
  report.p95_ns = latency.PercentileNs(95.0);
  report.p99_ns = latency.PercentileNs(99.0);
  report.mean_ns = latency.MeanNs();
  report.max_ns = latency.max_ns();
  report.slo_ns = slo_ns;
  report.slo_met = shed == 0 && report.p99_ns <= slo_ns;
  return report;
}

void ServeResult::ExportTo(telemetry::MetricsRegistry& registry,
                           const std::string& prefix) const {
  registry.Increment(prefix + ".offered", static_cast<double>(offered));
  registry.Increment(prefix + ".completed",
                     static_cast<double>(completed));
  registry.Increment(prefix + ".shed", static_cast<double>(shed));
  registry.Increment(prefix + ".batches",
                     static_cast<double>(num_batches));
  registry.Increment(prefix + ".requests_traced",
                     static_cast<double>(requests_traced));
  registry.Increment(prefix + ".requests_sampled_out",
                     static_cast<double>(requests_sampled_out));
  registry.SetGauge(prefix + ".makespan_ns", makespan_ns);
  registry.SetGauge(prefix + ".avg_batch_size", avg_batch_size);
  registry.SetGauge(prefix + ".max_queue_depth",
                    static_cast<double>(max_queue_depth));
  registry.SetGauge(prefix + ".host_utilization",
                    utilization.HostUtilization());
  registry.SetGauge(prefix + ".dpu_utilization",
                    utilization.DpuUtilization());
  for (const Nanos l : request_latency_ns) {
    registry.Observe(prefix + ".latency_ns", l);
  }
}

namespace {

// Per-unit cumulative work proxy for the straggler scorer: kernel
// cycles plus index wire bytes (a stand-in for per-DPU transfer cycles
// — z-scores are scale-free, so the mix only needs to be consistent).
void AppendUnitWork(const pim::DpuSystem& system,
                    std::vector<std::uint64_t>& out) {
  for (std::uint32_t i = 0; i < system.num_dpus(); ++i) {
    const pim::DpuStats& stats = system.dpu(i).stats();
    out.push_back(stats.kernel_cycles + stats.index_bytes_pushed);
  }
}

// Flat engine: units are its DPUs.
void SampleUnitWork(const core::UpDlrmEngine& engine,
                    std::vector<std::uint64_t>& out) {
  out.clear();
  AppendUnitWork(engine.dpu_system(), out);
}

// Sharded fleet: units are every shard's DPUs, concatenated in shard
// order (global unit id = shard * shard_dpus + local dpu).
void SampleUnitWork(const core::ShardedEngine& engine,
                    std::vector<std::uint64_t>& out) {
  out.clear();
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    AppendUnitWork(engine.shard(s).dpu_system(), out);
  }
}

// The loop body is engine-shape agnostic: it only needs RunSamples()
// and dpu_system() (telemetry anchor), which both the flat engine and
// the sharded scale-out engine provide.
template <typename EngineT>
Result<ServeResult> RunServeLoop(EngineT& engine,
                                 std::span<const Request> requests,
                                 const ServeOptions& options) {
  DynamicBatcher batcher(options.batcher);
  PipelinedExecutor executor(options.pipeline_depth);
  ServeResult result;
  result.offered = requests.size();

  // Tracing: the serve loop runs on one thread, so all emission below
  // is single-threaded. Request spans and per-batch timelines are
  // emitted post-drain (only then are stage-3 completions known);
  // everything is simulated-clock and pure observation.
  const bool tracing = telemetry::TraceEnabled();
  telemetry::Tracer& tracer = telemetry::Tracer::Get();
  const std::uint64_t sample_every =
      tracing ? tracer.options().sample_every : 1;
  using telemetry::Clock;
  using telemetry::kDpuTrack;
  using telemetry::kHostBusTrack;
  using telemetry::kPipelinePid;
  using telemetry::kRequestPid;

  // Fleet-health monitor: observation only, fed at the single-threaded
  // loop boundaries. The pre-loop sample anchors the cumulative unit
  // counters so window 0's deltas cover the first batch even when the
  // engine served earlier runs.
  telemetry::FleetMonitor* const monitor =
      telemetry::MonitorEnabled(options.monitor) ? options.monitor
                                                 : nullptr;
  std::vector<std::uint64_t> unit_work;
  if (monitor != nullptr) {
    SampleUnitWork(engine, unit_work);
    monitor->OnUnitSample(0.0, unit_work);
  }

  // Flat request log: every cut appends its requests here (for latency
  // attribution) and records its start offset in batch_start — one
  // up-front reservation instead of a vector<vector> that allocates per
  // batch. batch_start gets a closing sentinel after the serve loop.
  const std::size_t expected_batches =
      options.batcher.max_batch_size > 0
          ? requests.size() / options.batcher.max_batch_size + 2
          : requests.size() + 2;
  std::vector<QueuedRequest> request_log;
  request_log.reserve(requests.size());
  std::vector<std::size_t> batch_start;
  batch_start.reserve(expected_batches + 1);
  std::vector<std::size_t> samples;  // sample-id scratch per cut
  samples.reserve(options.batcher.max_batch_size);
  // Per cut batch: the engine's stage-2 launch records (tracing only).
  std::vector<std::shared_ptr<const core::BatchDpuTrace>> batch_traces;
  executor.Reserve(expected_batches);
  result.batch_stages.reserve(expected_batches);
  result.queue_depth.reserve(expected_batches);
  result.request_latency_ns.reserve(requests.size());

  auto offer = [&](const Request& r, Nanos now) {
    if (batcher.Offer(r, now) == Admission::kShed && tracing) {
      tracer.InstantAt(kRequestPid, 0, Clock::kSim, "shed", now, "request",
                       static_cast<double>(r.id));
    }
  };

  // The discrete-event scan. State changes happen at three kinds of
  // instants — arrivals, batcher deadlines, and executor buffer frees —
  // and all three sequences are non-decreasing, so one forward pass
  // over time suffices. Tie order at equal timestamps: arrivals are
  // offered before a deadline cut is taken (a request arriving exactly
  // at max_queue_delay joins the closing batch), and a cut happens as
  // soon as both the batcher is due and the executor admits.
  std::size_t next = 0;  // next unprocessed arrival
  while (next < requests.size() || !batcher.Idle()) {
    // Earliest instant the executor could accept a cut.
    Nanos t = executor.NextAdmitTime();
    // Offer everything that has already arrived by then.
    while (next < requests.size() && requests[next].arrival_ns <= t) {
      offer(requests[next], requests[next].arrival_ns);
      ++next;
    }
    // Walk forward until the batcher is due.
    while (!batcher.ReadyToCut(t)) {
      const Nanos next_arrival = next < requests.size()
                                     ? requests[next].arrival_ns
                                     : DynamicBatcher::kNever;
      const Nanos deadline = batcher.NextDeadline();
      const Nanos event = std::min(next_arrival, deadline);
      if (event == DynamicBatcher::kNever) break;  // drained
      t = std::max(t, event);
      while (next < requests.size() && requests[next].arrival_ns <= t) {
        offer(requests[next], requests[next].arrival_ns);
        ++next;
      }
    }
    if (!batcher.ReadyToCut(t)) break;  // nothing left to serve

    batch_start.push_back(request_log.size());
    batcher.CutInto(t, request_log);
    samples.clear();
    for (std::size_t i = batch_start.back(); i < request_log.size(); ++i) {
      samples.push_back(request_log[i].request.sample);
    }
    auto batch = engine.RunSamples(samples, nullptr);
    if (!batch.ok()) return batch.status();

    executor.Submit(batch->stages, t);
    result.batch_stages.push_back(batch->stages);
    if (tracing) batch_traces.push_back(batch->dpu_trace);
    result.queue_depth.push_back(QueueDepthSample{t, batcher.queue_depth()});
    if (monitor != nullptr) {
      // Cumulative unit counters only exist mid-run, so the straggler
      // stream samples at cut times; cut times are non-decreasing.
      SampleUnitWork(engine, unit_work);
      monitor->OnUnitSample(t, unit_work);
    }
  }
  batch_start.push_back(request_log.size());  // closing sentinel

  executor.Drain();
  result.makespan_ns = executor.MakespanNs();
  result.schedule = executor.batches();
  result.num_batches = batch_start.size() - 1;
  result.shed = batcher.shed_count();
  result.max_queue_depth = batcher.max_queue_depth();
  result.utilization.host_busy_ns = executor.host_busy_ns();
  result.utilization.dpu_busy_ns = executor.dpu_busy_ns();
  result.utilization.makespan_ns = result.makespan_ns;

  if (tracing) {
    tracer.SetThreadName(kPipelinePid, kHostBusTrack,
                         "host buses (stage 1/3)");
    tracer.SetThreadName(kPipelinePid, kDpuTrack, "DPU array (stage 2)");
    for (const QueueDepthSample& s : result.queue_depth) {
      tracer.Counter(kPipelinePid, Clock::kSim, "queue_depth", s.t_ns,
                     static_cast<double>(s.depth));
    }
  }

  std::uint64_t served = 0;
  for (std::size_t b = 0; b + 1 < batch_start.size(); ++b) {
    const ExecutedBatch& sched = result.schedule[b];
    const Nanos done = sched.s3_end_ns;
    if (tracing) {
      if (b % sample_every == 0) {
        tracer.Complete(kPipelinePid, kHostBusTrack, Clock::kSim, "stage1.push",
                        sched.s1_start_ns,
                        sched.s1_end_ns - sched.s1_start_ns, "batch",
                        static_cast<double>(b));
        tracer.Complete(kPipelinePid, kDpuTrack, Clock::kSim, "stage2.kernel",
                        sched.s2_start_ns,
                        sched.s2_end_ns - sched.s2_start_ns);
        tracer.Complete(kPipelinePid, kHostBusTrack, Clock::kSim, "stage3.pull",
                        sched.s3_start_ns,
                        sched.s3_end_ns - sched.s3_start_ns);
        if (batch_traces[b] != nullptr) {
          core::EmitBatchDpuTimeline(engine.dpu_system(), *batch_traces[b],
                                     b, sched.s2_start_ns,
                                     /*tasklet_detail=*/true);
        }
      } else {
        tracer.CountSampledOut();
      }
    }
    const std::span<const QueuedRequest> batch_requests(
        request_log.data() + batch_start[b],
        batch_start[b + 1] - batch_start[b]);
    if (monitor != nullptr) {
      // Drift stream: every request's table accesses at its batch's cut
      // instant (submit times are non-decreasing over b); SLO stream:
      // completions at the batch's stage-3 end (also non-decreasing —
      // stage 3 drains FIFO).
      const trace::Trace& workload = engine.trace();
      for (const QueuedRequest& q : batch_requests) {
        for (std::uint32_t t = 0; t < workload.num_tables(); ++t) {
          monitor->OnAccess(t, sched.submit_ns,
                            workload.tables[t].Sample(q.request.sample));
        }
        monitor->OnRequest(done, done - q.request.arrival_ns);
      }
    }
    for (const QueuedRequest& q : batch_requests) {
      const Nanos latency = done - q.request.arrival_ns;
      result.latency.Add(latency);
      result.request_latency_ns.push_back(latency);
      ++served;
      if (!tracing) continue;
      // 1-in-N request spans, keyed on the stable request id so the
      // same requests are traced at any thread count.
      if (q.request.id % sample_every != 0) {
        ++result.requests_sampled_out;
        tracer.CountSampledOut();
        continue;
      }
      ++result.requests_traced;
      // Nested async spans sharing the request's id:
      //   lifetime [arrival, s3 end)
      //     queued  [admission, batch cut)
      //     execute [batch cut, s3 end)
      tracer.AsyncBegin(kRequestPid, q.request.id, Clock::kSim,
                        "request", "request", q.request.arrival_ns);
      tracer.AsyncBegin(kRequestPid, q.request.id, Clock::kSim, "queued",
                        "request", q.admit_ns);
      tracer.AsyncEnd(kRequestPid, q.request.id, Clock::kSim, "queued",
                      "request", sched.submit_ns);
      tracer.AsyncBegin(kRequestPid, q.request.id, Clock::kSim, "execute",
                        "request", sched.submit_ns);
      tracer.AsyncEnd(kRequestPid, q.request.id, Clock::kSim, "execute",
                      "request", done);
      tracer.AsyncEnd(kRequestPid, q.request.id, Clock::kSim, "request",
                      "request", done);
    }
  }
  result.completed = served;
  if (result.num_batches > 0) {
    result.avg_batch_size = static_cast<double>(served) /
                            static_cast<double>(result.num_batches);
  }
  UPDLRM_CHECK_MSG(result.completed + result.shed == result.offered,
                   "serving accounting mismatch");
  return result;
}

}  // namespace

Result<ServeResult> RunServeSimulation(core::UpDlrmEngine& engine,
                                       std::span<const Request> requests,
                                       const ServeOptions& options) {
  return RunServeLoop(engine, requests, options);
}

Result<ServeResult> RunServeSimulation(core::ShardedEngine& engine,
                                       std::span<const Request> requests,
                                       const ServeOptions& options) {
  return RunServeLoop(engine, requests, options);
}

}  // namespace updlrm::serve
