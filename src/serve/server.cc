#include "serve/server.h"

#include <algorithm>

namespace updlrm::serve {

SloReport ServeResult::MakeSloReport(double offered_qps,
                                     Nanos slo_ns) const {
  SloReport report;
  report.offered_qps = offered_qps;
  report.completed = completed;
  report.shed = shed;
  report.achieved_qps =
      makespan_ns <= 0.0 ? 0.0
                         : static_cast<double>(completed) /
                               (makespan_ns / kNanosPerSecond);
  report.p50_ns = latency.PercentileNs(50.0);
  report.p95_ns = latency.PercentileNs(95.0);
  report.p99_ns = latency.PercentileNs(99.0);
  report.mean_ns = latency.MeanNs();
  report.max_ns = latency.max_ns();
  report.slo_ns = slo_ns;
  report.slo_met = shed == 0 && report.p99_ns <= slo_ns;
  return report;
}

Result<ServeResult> RunServeSimulation(core::UpDlrmEngine& engine,
                                       std::span<const Request> requests,
                                       const ServeOptions& options) {
  DynamicBatcher batcher(options.batcher);
  PipelinedExecutor executor(options.pipeline_depth);
  ServeResult result;
  result.offered = requests.size();

  // Per cut batch: the requests it carries, for latency attribution.
  std::vector<std::vector<QueuedRequest>> batch_requests;
  std::vector<std::size_t> samples;  // sample-id scratch per cut

  // The discrete-event scan. State changes happen at three kinds of
  // instants — arrivals, batcher deadlines, and executor buffer frees —
  // and all three sequences are non-decreasing, so one forward pass
  // over time suffices. Tie order at equal timestamps: arrivals are
  // offered before a deadline cut is taken (a request arriving exactly
  // at max_queue_delay joins the closing batch), and a cut happens as
  // soon as both the batcher is due and the executor admits.
  std::size_t next = 0;  // next unprocessed arrival
  while (next < requests.size() || !batcher.Idle()) {
    // Earliest instant the executor could accept a cut.
    Nanos t = executor.NextAdmitTime();
    // Offer everything that has already arrived by then.
    while (next < requests.size() && requests[next].arrival_ns <= t) {
      batcher.Offer(requests[next], requests[next].arrival_ns);
      ++next;
    }
    // Walk forward until the batcher is due.
    while (!batcher.ReadyToCut(t)) {
      const Nanos next_arrival = next < requests.size()
                                     ? requests[next].arrival_ns
                                     : DynamicBatcher::kNever;
      const Nanos deadline = batcher.NextDeadline();
      const Nanos event = std::min(next_arrival, deadline);
      if (event == DynamicBatcher::kNever) break;  // drained
      t = std::max(t, event);
      while (next < requests.size() && requests[next].arrival_ns <= t) {
        batcher.Offer(requests[next], requests[next].arrival_ns);
        ++next;
      }
    }
    if (!batcher.ReadyToCut(t)) break;  // nothing left to serve

    std::vector<QueuedRequest> cut = batcher.Cut(t);
    samples.clear();
    samples.reserve(cut.size());
    for (const QueuedRequest& q : cut) samples.push_back(q.request.sample);
    auto batch = engine.RunSamples(samples, nullptr);
    if (!batch.ok()) return batch.status();

    executor.Submit(batch->stages, t);
    result.batch_stages.push_back(batch->stages);
    batch_requests.push_back(std::move(cut));
    result.queue_depth.push_back(QueueDepthSample{t, batcher.queue_depth()});
  }

  executor.Drain();
  result.makespan_ns = executor.MakespanNs();
  result.schedule = executor.batches();
  result.num_batches = batch_requests.size();
  result.shed = batcher.shed_count();
  result.max_queue_depth = batcher.max_queue_depth();
  result.utilization = StageUtilization{executor.host_busy_ns(),
                                        executor.dpu_busy_ns(),
                                        result.makespan_ns};

  std::uint64_t served = 0;
  for (std::size_t b = 0; b < batch_requests.size(); ++b) {
    const Nanos done = result.schedule[b].s3_end_ns;
    for (const QueuedRequest& q : batch_requests[b]) {
      const Nanos latency = done - q.request.arrival_ns;
      result.latency.Add(latency);
      result.request_latency_ns.push_back(latency);
      ++served;
    }
  }
  result.completed = served;
  if (result.num_batches > 0) {
    result.avg_batch_size = static_cast<double>(served) /
                            static_cast<double>(result.num_batches);
  }
  UPDLRM_CHECK_MSG(result.completed + result.shed == result.offered,
                   "serving accounting mismatch");
  return result;
}

}  // namespace updlrm::serve
