// The online serving simulator: request queue -> dynamic batcher ->
// double-buffered pipelined executor -> tail-latency metrics.
//
// Drives one engine through an open-loop request stream in simulated
// time. Arrivals enter the bounded request queue (shed-or-block
// admission control); the dynamic batcher cuts a batch whenever the
// executor has a free buffer pair AND the batch is due (full, or the
// oldest request hit max_queue_delay); the executor overlaps batch
// k+1's stage-1 push with batch k's DPU occupancy. A request's latency
// is its batch's stage-3 completion minus its arrival.
//
// The whole loop runs in *simulated* time — a single logical
// discrete-event scan over (arrival, deadline, buffer-free) instants.
// Host threads only accelerate the engine's per-batch computation of
// StageBreakdown values, which are thread-count invariant, so every
// ServeResult field is bit-exact across --threads (the determinism
// suite pins this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <string>

#include "common/status.h"
#include "serve/batcher.h"
#include "serve/executor.h"
#include "serve/metrics.h"
#include "serve/workload.h"
#include "telemetry/monitor.h"
#include "telemetry/registry.h"
#include "updlrm/engine.h"

namespace updlrm::core {
class ShardedEngine;  // updlrm/scaleout.h
}  // namespace updlrm::core

namespace updlrm::serve {

struct ServeOptions {
  BatcherOptions batcher;
  /// MRAM buffer pairs for the pipelined executor (2 = double-buffered).
  std::uint32_t pipeline_depth = 2;
  /// Optional fleet-health monitor (telemetry/monitor.h). Observation
  /// only: the loop feeds it batch-cut accesses, per-unit work samples
  /// and request completions; results are bit-exact with or without it.
  /// The caller owns it and calls Finalize() after the run.
  telemetry::FleetMonitor* monitor = nullptr;
};

struct ServeResult {
  LatencyHistogram latency;
  /// Completion latency per completed request, in completion order.
  std::vector<Nanos> request_latency_ns;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  Nanos makespan_ns = 0.0;  // last batch completion (sim starts at 0)
  StageUtilization utilization;
  std::vector<QueueDepthSample> queue_depth;  // post-cut depths
  std::size_t max_queue_depth = 0;
  std::size_t num_batches = 0;
  double avg_batch_size = 0.0;
  /// The executed per-batch schedule (for pipelining analysis).
  std::vector<ExecutedBatch> schedule;
  /// Per-batch stage timings, in cut order (feed to
  /// core::EstimatePipelinedEmbedding to compare bound vs executed).
  std::vector<core::StageBreakdown> batch_stages;
  /// Request-span tracing accounting (0 unless tracing was enabled):
  /// spans emitted vs skipped by the 1-in-N sampler — the drop is
  /// always visible, never silent.
  std::uint64_t requests_traced = 0;
  std::uint64_t requests_sampled_out = 0;

  /// Exports the scorecard into `registry` under "<prefix>." keys
  /// (counters for totals, gauges for rates/latencies).
  void ExportTo(telemetry::MetricsRegistry& registry,
                const std::string& prefix) const;

  SloReport MakeSloReport(double offered_qps, Nanos slo_ns) const;
};

/// Simulates serving `requests` (time-ordered, as produced by
/// GenerateRequests) on `engine`. The engine's batch_size option is
/// ignored; the batcher's max_batch_size governs. Fails if a request
/// references a sample outside the engine's trace.
Result<ServeResult> RunServeSimulation(core::UpDlrmEngine& engine,
                                       std::span<const Request> requests,
                                       const ServeOptions& options);

/// Sharded-fleet overload: the same discrete-event loop over a
/// ShardedEngine (per-request shard fan-out + merge happen inside
/// RunSamples; batch timings are the fleet composition).
Result<ServeResult> RunServeSimulation(core::ShardedEngine& engine,
                                       std::span<const Request> requests,
                                       const ServeOptions& options);

}  // namespace updlrm::serve
