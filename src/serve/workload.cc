#include "serve/workload.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace updlrm::serve {

std::string_view ArrivalProcessName(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kUniform:
      return "uniform";
    case ArrivalProcess::kBursty:
      return "bursty";
  }
  return "?";
}

Result<ArrivalProcess> ParseArrivalProcess(std::string_view name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "uniform") return ArrivalProcess::kUniform;
  if (name == "bursty") return ArrivalProcess::kBursty;
  return Status::InvalidArgument("unknown arrival process '" +
                                 std::string(name) +
                                 "' (poisson | uniform | bursty)");
}

namespace {

/// Exponential inter-arrival gap at `rate_per_ns`. 1 - u is in (0, 1],
/// so the log is finite.
Nanos ExponentialGap(Rng& rng, double rate_per_ns) {
  return -std::log(1.0 - rng.NextDouble()) / rate_per_ns;
}

}  // namespace

Result<std::vector<Request>> GenerateRequests(
    const trace::Trace& trace, std::size_t count,
    const ArrivalOptions& options) {
  if (count == 0) count = trace.num_samples();
  if (count > trace.num_samples()) {
    return Status::InvalidArgument(
        "request count exceeds the trace's samples (" +
        std::to_string(count) + " > " +
        std::to_string(trace.num_samples()) + ")");
  }
  if (!(options.qps > 0.0)) {
    return Status::InvalidArgument("qps must be > 0");
  }
  const double rate = options.qps / kNanosPerSecond;  // requests per ns
  const Nanos mean_gap = 1.0 / rate;

  double peak_rate = 0.0, trough_rate = 0.0;
  Nanos period = 0.0, peak_len = 0.0;
  if (options.process == ArrivalProcess::kBursty) {
    if (options.burst_factor <= 1.0 || options.burst_fraction <= 0.0 ||
        options.burst_fraction >= 1.0 ||
        options.burst_factor * options.burst_fraction >= 1.0) {
      return Status::InvalidArgument(
          "bursty arrivals need burst_factor > 1, 0 < burst_fraction < 1 "
          "and burst_factor * burst_fraction < 1");
    }
    period = options.burst_period_ns > 0.0 ? options.burst_period_ns
                                           : 32.0 * mean_gap;
    peak_len = options.burst_fraction * period;
    peak_rate = rate * options.burst_factor;
    // Trough rate balancing the long-run mean back to `rate`.
    trough_rate = rate *
                  (1.0 - options.burst_factor * options.burst_fraction) /
                  (1.0 - options.burst_fraction);
  }

  Rng rng(options.seed ^ 0x5e54111e5ULL);
  std::vector<Request> requests;
  requests.reserve(count);
  Nanos t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    switch (options.process) {
      case ArrivalProcess::kUniform:
        t = static_cast<double>(i + 1) * mean_gap;
        break;
      case ArrivalProcess::kPoisson:
        t += ExponentialGap(rng, rate);
        break;
      case ArrivalProcess::kBursty: {
        // Non-homogeneous Poisson inversion over the piecewise-constant
        // peak/trough rate: draw the total hazard, then consume it
        // phase by phase. Splitting at phase boundaries matters — a
        // single trough-rate draw would routinely overshoot an entire
        // peak phase and bias the long-run mean far below qps.
        double hazard = -std::log(1.0 - rng.NextDouble());
        while (true) {
          const Nanos cycle_start = std::floor(t / period) * period;
          const Nanos peak_end = cycle_start + peak_len;
          const bool in_peak = t < peak_end;
          const double r = in_peak ? peak_rate : trough_rate;
          const Nanos boundary =
              in_peak ? peak_end : cycle_start + period;
          if (hazard <= r * (boundary - t)) {
            t += hazard / r;
            break;
          }
          hazard -= r * (boundary - t);
          // Jump to the absolute boundary time rather than adding the
          // remaining gap: for large t the gap can be below one ulp and
          // `t += gap` would stop advancing, livelocking the loop. The
          // nextafter nudge keeps progress when rounding already put t
          // on (or past) the boundary.
          t = boundary > t
                  ? boundary
                  : std::nextafter(
                        t, std::numeric_limits<double>::infinity());
        }
        break;
      }
    }
    requests.push_back(Request{i, i, t});
  }
  return requests;
}

}  // namespace updlrm::serve
