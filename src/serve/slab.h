// Stable-pointer request slab (the plf::hive / colony idiom).
//
// The serving layer keeps every in-flight request in one of these: a
// segmented pool of geometrically growing blocks whose elements never
// move. Insert and Erase are O(1) — erased slots chain into an
// intrusive free list threaded through the element storage itself and
// are handed back to later inserts — so admission, parking and batch
// cuts never shift or reallocate request state. Pointers returned by
// Insert stay valid until that element is erased (or the slab is
// destroyed), which is what lets the batcher queue raw pointers while
// backpressure holds the same request parked across many cuts.
//
// Compared to the std::deque<QueuedRequest> it replaces:
//   * erase from the middle is O(1), not a shift;
//   * blocks are never freed while the slab lives, so a serving loop
//     reaches zero steady-state allocation once the high-water request
//     count has been provisioned (tests/serve/alloc_test.cc);
//   * pointers are stable across inserts (deque invalidates on
//     pop_front + push_back reuse).
//
// T must be trivially destructible: slots are recycled by overwrite and
// the destructor just frees the blocks. (Requests are plain structs of
// ids and timestamps; this is a static_assert, not a silent contract.)
//
// Concurrency contract: single writer. The intrusive free list is
// deliberately lock-free-by-exclusion — one thread drives the slab
// (the serve loop). A debug-gated ThreadChecker asserts that on every
// mutating call; there is no mutex for -Wthread-safety to track here
// by design (see DESIGN.md §11).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_checker.h"

namespace updlrm::serve {

template <typename T>
class RequestSlab {
  static_assert(std::is_trivially_destructible_v<T>,
                "RequestSlab recycles slots by overwrite; element types "
                "must be trivially destructible");

 public:
  RequestSlab() = default;
  RequestSlab(const RequestSlab&) = delete;
  RequestSlab& operator=(const RequestSlab&) = delete;

  /// Places a copy of `value` into a free slot and returns its stable
  /// address. O(1); allocates only when every provisioned slot is live.
  T* Insert(const T& value) {
    thread_checker_.Check();
    Node* node = PopFree();
    return ::new (static_cast<void*>(node->storage)) T(value);
  }

  /// Constructs in place; same guarantees as Insert.
  template <typename... Args>
  T* Emplace(Args&&... args) {
    thread_checker_.Check();
    Node* node = PopFree();
    return ::new (static_cast<void*>(node->storage))
        T(std::forward<Args>(args)...);
  }

  /// Returns `p`'s slot to the free list. `p` must be a live pointer
  /// previously returned by Insert/Emplace. O(1).
  void Erase(T* p) {
    thread_checker_.Check();
    UPDLRM_CHECK(p != nullptr && live_ > 0);
    Node* node = std::launder(reinterpret_cast<Node*>(p));
    node->next_free = free_;
    free_ = node;
    --live_;
  }

  /// Live (inserted, not yet erased) element count.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  /// Total provisioned slots (live + free); never shrinks.
  std::size_t capacity() const { return capacity_; }

 private:
  // A slot is either a live T or a link in the free list; the free-list
  // pointer lives in the element storage (the hive trick), so the node
  // is exactly max(sizeof(T), sizeof(void*)) payload bytes.
  struct Node {
    union {
      alignas(T) unsigned char storage[sizeof(T)];
      Node* next_free;
    };
  };

  Node* PopFree() {
    if (free_ == nullptr) Grow();
    Node* node = free_;
    free_ = node->next_free;
    ++live_;
    return node;
  }

  void Grow() {
    // Geometric block sizes, capped: doubling keeps the block count
    // logarithmic in the high-water mark while the cap bounds the
    // overshoot for huge serving runs.
    constexpr std::size_t kFirstBlock = 64;
    constexpr std::size_t kMaxBlock = 8192;
    const std::size_t n =
        blocks_.empty()
            ? kFirstBlock
            : std::min<std::size_t>(kMaxBlock, capacity_);
    blocks_.push_back(std::make_unique<Node[]>(n));
    Node* nodes = blocks_.back().get();
    // Chain in reverse so slots hand out in forward (cache-friendly)
    // address order.
    for (std::size_t i = n; i > 0; --i) {
      nodes[i - 1].next_free = free_;
      free_ = &nodes[i - 1];
    }
    capacity_ += n;
  }

  ThreadChecker thread_checker_;
  std::vector<std::unique_ptr<Node[]>> blocks_;
  Node* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace updlrm::serve
