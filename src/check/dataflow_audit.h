// Auditors for the end-to-end serving pipeline's data-flow plans
// (src/pipeline): the tuner's enumerated plan shapes, the in-flight
// MRAM IO footprint a chosen overlap depth implies, and the stage
// ordering of every executed batch.
//
// All inputs are plain parameters — this module must not depend on
// src/pipeline (check is below it in the layer graph), so the pipeline
// layer flattens its plan/batch types into these structs before
// calling. Like every auditor here, violations are reported through
// CheckReport; nothing throws or alters simulated results.
#pragma once

#include <cstddef>
#include <cstdint>

#include "check/report.h"

namespace updlrm::check {

/// Upper bound on the pipeline overlap depth any data-flow plan may
/// request. Each unit of depth keeps one more batch's stage-1/stage-3
/// buffer pair alive in the reserved-IO region; past this bound the
/// region arithmetic (and the serve executor's buffer recycling) no
/// longer holds.
inline constexpr std::uint32_t kMaxPipelineDepth = 8;

/// Shape of one candidate data-flow plan, flattened from
/// pipeline::DataFlowPlan.
struct DataFlowShape {
  /// Pipeline overlap depth (in-flight batches), must be in
  /// [1, kMaxPipelineDepth].
  std::uint32_t depth = 1;
  /// Bottom-MLP layers run before the batch cut (overlapped with the
  /// previous batch's DPU stages); must not exceed bottom_layers.
  std::uint32_t bottom_overlap_layers = 0;
  /// Total layers in the bottom MLP stack.
  std::uint32_t bottom_layers = 0;
  /// Stage placement: true = GPU backend.
  bool bottom_on_gpu = false;
  bool top_on_gpu = false;
  /// Whether the serving config provisions a GPU at all.
  bool gpu_available = true;
};

/// Fires kDataFlowShape when `shape` lies outside the legal plan space:
/// depth 0 or > kMaxPipelineDepth, an overlap split beyond the bottom
/// stack, or a GPU placement without a provisioned GPU.
void AuditDataFlowShape(const DataFlowShape& shape, CheckReport* report);

/// In-flight IO footprint of one executed batch against the per-DPU
/// regions placement actually carved out (MramLayout).
struct DataFlowCapacity {
  std::uint32_t depth = 1;
  /// Worst per-DPU stage-1 / stage-3 buffer bytes of the batch
  /// (BatchResult::max_index_bytes / max_output_bytes).
  std::uint64_t max_index_bytes = 0;
  std::uint64_t max_output_bytes = 0;
  /// Smallest carved index / output region across the engine's groups
  /// (MramLayout::index_bytes / output_bytes).
  std::uint64_t index_region_bytes = 0;
  std::uint64_t output_region_bytes = 0;
};

/// `depth` buffer pairs are alive at once, so depth * worst buffer must
/// fit each carved region. Fires kDataFlowCapacity.
void AuditDataFlowCapacity(const DataFlowCapacity& cap, CheckReport* report);

/// Executed stage instants of one batch, sim nanos
/// (pipeline::ExecutedFlowBatch).
struct StageInstants {
  double cut_ns = 0;
  double bpre_start_ns = 0, bpre_end_ns = 0;  // overlapped bottom-MLP part
  double s1_start_ns = 0, s1_end_ns = 0;
  double s2_start_ns = 0, s2_end_ns = 0;
  double s3_start_ns = 0, s3_end_ns = 0;
  double bottom_done_ns = 0;  // all bottom-MLP layers finished
  double top_start_ns = 0, top_end_ns = 0;  // interaction + top MLP
};

/// Ordering invariants of one executed batch: stages run in dependency
/// order (S1 -> S2 -> S3, each starting no earlier than its
/// predecessor ends), nothing starts before the batch cut, the
/// bottom-MLP prefix finishes before the bottom stack is declared
/// done, and the top task waits for both the embedding pull and the
/// bottom MLP. `slack` absorbs float rounding. Fires kStageOrdering;
/// `batch` tags the offender context.
void AuditStageOrdering(std::size_t batch, const StageInstants& t,
                        CheckReport* report, double slack = 1e-6);

}  // namespace updlrm::check
