#include "check/checker.h"

#include <algorithm>

#include "check/race_check.h"

namespace updlrm::check {

Checker::Checker(const pim::DpuSystemConfig& config,
                 ModelAuditTolerance tolerance)
    : access_(config.num_dpus,
              AccessLimits{.bank_bytes = config.dpu.mram_bytes,
                           .alignment = config.mram_timing.alignment,
                           .max_dma_bytes = config.mram_timing.max_access_bytes},
              &report_),
      model_audit_(config.dpu, config.kernel_cost, config.mram_timing,
                   tolerance, &report_) {
  observers_.reserve(config.num_dpus);
  for (std::uint32_t d = 0; d < config.num_dpus; ++d) {
    observers_.push_back(std::make_unique<DpuObserver>(&access_, d));
  }
  // Debug builds replay the runtime's lock-free protocols through the
  // vector-clock machine on every checker construction: the sweep is a
  // few hundred model events, and a broken happens-before edge then
  // fails every check-mode test, not just the dedicated one.
  if (RaceCheckEnabled()) {
    VerifyAtomicProtocols(&report_);
  }
}

void Checker::Attach(pim::DpuSystem& system) {
  const std::uint32_t n =
      std::min(system.num_dpus(), access_.num_dpus());
  for (std::uint32_t d = 0; d < n; ++d) {
    system.dpu(d).mram().set_observer(observers_[d].get());
  }
}

void Checker::Detach(pim::DpuSystem& system) {
  const std::uint32_t n =
      std::min(system.num_dpus(), access_.num_dpus());
  for (std::uint32_t d = 0; d < n; ++d) {
    pim::Mram& mram = system.dpu(d).mram();
    if (mram.observer() == observers_[d].get()) {
      mram.set_observer(nullptr);
    }
  }
}

pim::MramObserver* Checker::observer(std::uint32_t dpu) {
  return dpu < observers_.size() ? observers_[dpu].get() : nullptr;
}

}  // namespace updlrm::check
