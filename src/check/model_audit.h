// Model/sim cross-audit: kernel_cost vs kernel_sim.
//
// The analytic cost model (EmbeddingKernelCostModel) and the
// event-driven simulator (SimulateEmbeddingKernel) are two independent
// implementations of the same DPU physics, sharing only the phase list
// (EmbeddingKernelPhases). This auditor re-executes every distinct
// kernel-work shape the engine prices and asserts the two agree within
// a declared band: the analytic makespan is a max of lower bounds, so
// the executed makespan may only sit slightly below (rounding) or a
// bounded factor above (tail effects, imperfect phase overlap) the
// claim. Silent drift in either implementation — a phase priced by one
// but not executed by the other, a changed instruction budget — lands
// outside the band and fires kModelSimDivergence.
//
// Simulation is memoized per distinct work shape, so check-mode batch
// loops pay the simulator once per shape, not once per launch.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>

#include "check/report.h"
#include "common/units.h"
#include "pim/dpu_config.h"
#include "pim/kernel_cost.h"
#include "pim/kernel_sim.h"
#include "pim/mram_timing.h"

namespace updlrm::check {

/// Accepted executed/claimed cycle ratio. The defaults bracket the
/// kernel_sim property-test band (0.98x..1.45x across the tested
/// tasklet/row-width/volume grid) with margin for untested mixes; see
/// DESIGN.md §7 for the tolerance policy.
struct ModelAuditTolerance {
  double min_ratio = 0.95;
  double max_ratio = 1.60;
};

class ModelAudit {
 public:
  ModelAudit(pim::DpuConfig dpu, pim::EmbeddingKernelCostParams params,
             pim::MramTimingParams mram_timing, ModelAuditTolerance tol,
             CheckReport* report);

  /// Audits one kernel launch: `claimed` is the cost model's
  /// KernelCycles for `work`; the executed makespan comes from the
  /// (memoized) simulator. Thread-safe.
  void AuditKernel(const pim::EmbeddingKernelWork& work, Cycles claimed);

  /// Distinct work shapes actually simulated (cache misses).
  std::uint64_t simulated() const;

  const ModelAuditTolerance& tolerance() const { return tol_; }

 private:
  using WorkKey = std::array<std::uint64_t, 6>;

  pim::DpuConfig dpu_;
  pim::EmbeddingKernelCostParams params_;
  pim::MramTimingModel mram_;
  ModelAuditTolerance tol_;
  CheckReport* report_;

  mutable std::mutex mu_;
  std::map<WorkKey, Cycles> memo_;
  std::uint64_t simulated_ = 0;
};

}  // namespace updlrm::check
