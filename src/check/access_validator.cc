#include "check/access_validator.h"

#include <string>

namespace updlrm::check {

namespace {

std::string Where(std::uint32_t dpu, std::uint64_t offset,
                  std::uint64_t bytes, std::string_view what) {
  return std::string(what) + " of " + std::to_string(bytes) +
         " bytes at offset " + std::to_string(offset) + " on dpu " +
         std::to_string(dpu);
}

}  // namespace

std::string_view RegionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::kEmt:
      return "emt";
    case RegionKind::kReplica:
      return "replica";
    case RegionKind::kCache:
      return "cache";
    case RegionKind::kIndex:
      return "index";
    case RegionKind::kOutput:
      return "output";
  }
  return "unknown";
}

AccessValidator::AccessValidator(std::uint32_t num_dpus, AccessLimits limits,
                                 CheckReport* report)
    : limits_(limits), report_(report), shadows_(num_dpus) {}

void AccessValidator::CheckBasics(std::uint32_t dpu, std::uint64_t offset,
                                  std::uint64_t bytes,
                                  std::string_view what) {
  if (offset % limits_.alignment != 0) {
    report_->AddViolation(Rule::kDmaAlignment,
                          Where(dpu, offset, bytes, what) +
                              " (offset not " +
                              std::to_string(limits_.alignment) +
                              "-byte aligned)");
  }
  if (offset > limits_.bank_bytes || bytes > limits_.bank_bytes - offset) {
    report_->AddViolation(Rule::kBankBounds,
                          Where(dpu, offset, bytes, what) + " (bank is " +
                              std::to_string(limits_.bank_bytes) +
                              " bytes)");
  }
}

void AccessValidator::RegisterRegion(std::uint32_t dpu, RegionKind kind,
                                     std::uint64_t base,
                                     std::uint64_t bytes) {
  if (dpu >= shadows_.size()) return;
  if (base > limits_.bank_bytes || bytes > limits_.bank_bytes - base) {
    report_->AddViolation(
        Rule::kBankBounds,
        Where(dpu, base, bytes,
              std::string(RegionKindName(kind)) + " region") +
            " (bank is " + std::to_string(limits_.bank_bytes) + " bytes)");
  }
  const std::uint64_t end = base + bytes;
  if (bytes > 0) {
    for (const Region& r : shadows_[dpu].regions) {
      if (r.base < end && base < r.end) {
        report_->AddViolation(
            Rule::kRegionOverlap,
            std::string(RegionKindName(kind)) + " region [" +
                std::to_string(base) + ", " + std::to_string(end) +
                ") overlaps " + std::string(RegionKindName(r.kind)) +
                " region [" + std::to_string(r.base) + ", " +
                std::to_string(r.end) + ") on dpu " + std::to_string(dpu));
      }
    }
  }
  shadows_[dpu].regions.push_back(Region{kind, base, end});
}

void AccessValidator::OnWrite(std::uint32_t dpu, std::uint64_t offset,
                              std::uint64_t bytes) {
  if (dpu >= shadows_.size()) return;
  CheckBasics(dpu, offset, bytes, "write");
  if (bytes == 0) return;
  // Insert [offset, offset + bytes), merging adjacent/overlapping
  // intervals so the map stays canonical.
  auto& written = shadows_[dpu].written;
  std::uint64_t lo = offset;
  std::uint64_t hi = offset + bytes;
  auto it = written.upper_bound(lo);
  if (it != written.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = written.erase(prev);
    }
  }
  while (it != written.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = written.erase(it);
  }
  written.emplace(lo, hi);
}

void AccessValidator::OnRead(std::uint32_t dpu, std::uint64_t offset,
                             std::uint64_t bytes) {
  if (dpu >= shadows_.size()) return;
  CheckBasics(dpu, offset, bytes, "read");
  if (bytes == 0) return;
  if (!IsWritten(dpu, offset, bytes)) {
    report_->AddViolation(Rule::kUninitRead,
                          Where(dpu, offset, bytes, "read") +
                              " touches bytes never written");
  }
}

void AccessValidator::OnDma(std::uint32_t dpu, std::uint64_t offset,
                            std::uint64_t bytes, bool is_write) {
  if (dpu >= shadows_.size()) return;
  const std::string_view what = is_write ? "dma-write" : "dma-read";
  CheckBasics(dpu, offset, bytes, what);
  if (bytes == 0 || bytes > limits_.max_dma_bytes) {
    report_->AddViolation(Rule::kDmaSize,
                          Where(dpu, offset, bytes, what) +
                              " (DPU DMA must move 1.." +
                              std::to_string(limits_.max_dma_bytes) +
                              " bytes)");
  } else if (bytes % limits_.alignment != 0) {
    report_->AddViolation(Rule::kDmaAlignment,
                          Where(dpu, offset, bytes, what) +
                              " (size not " +
                              std::to_string(limits_.alignment) +
                              "-byte aligned)");
  }
}

bool AccessValidator::IsWritten(std::uint32_t dpu, std::uint64_t offset,
                                std::uint64_t bytes) const {
  if (dpu >= shadows_.size()) return false;
  if (bytes == 0) return true;
  const auto& written = shadows_[dpu].written;
  auto it = written.upper_bound(offset);
  if (it == written.begin()) return false;
  const auto& interval = *std::prev(it);
  return interval.second >= offset + bytes;
}

void AccessValidator::Reset() {
  for (DpuShadow& shadow : shadows_) {
    shadow.regions.clear();
    shadow.written.clear();
  }
}

}  // namespace updlrm::check
