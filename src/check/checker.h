// Check-mode orchestrator: one object owning the report and the three
// auditors, wired to a DpuSystem.
//
// The engine creates a Checker when EngineOptions::check_mode is on,
// attaches it (installing one MramObserver per DPU bank so every
// functional MRAM access flows into the AccessValidator's shadow
// state), registers each group's MRAM regions after placement, and
// feeds the per-launch kernel work to the model/sim cross-audit. With
// check_mode off no Checker exists and the only residue on the hot
// path is Mram's null-observer branch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/access_validator.h"
#include "check/model_audit.h"
#include "check/plan_audit.h"
#include "check/report.h"
#include "pim/system.h"

namespace updlrm::check {

class Checker {
 public:
  /// Builds the auditors for `config`'s bank geometry, kernel params
  /// and timing models. Does not touch any system yet.
  explicit Checker(const pim::DpuSystemConfig& config,
                   ModelAuditTolerance tolerance = {});

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Installs this checker's per-DPU observers on every bank of
  /// `system`. The checker must outlive the attachment; call Detach
  /// (the engine does, in its destructor) before destroying it.
  void Attach(pim::DpuSystem& system);

  /// Removes this checker's observers (only its own: a bank observed by
  /// someone else is left alone).
  void Detach(pim::DpuSystem& system);

  CheckReport& report() { return report_; }
  const CheckReport& report() const { return report_; }
  AccessValidator& access() { return access_; }
  ModelAudit& model_audit() { return model_audit_; }

  /// Per-DPU observer adapter (bank callbacks carry no DPU id), exposed
  /// for tests; null for out-of-range ids.
  pim::MramObserver* observer(std::uint32_t dpu);

 private:
  class DpuObserver final : public pim::MramObserver {
   public:
    DpuObserver(AccessValidator* validator, std::uint32_t dpu)
        : validator_(validator), dpu_(dpu) {}
    void OnWrite(std::uint64_t offset, std::uint64_t bytes) override {
      validator_->OnWrite(dpu_, offset, bytes);
    }
    void OnRead(std::uint64_t offset, std::uint64_t bytes) override {
      validator_->OnRead(dpu_, offset, bytes);
    }

   private:
    AccessValidator* validator_;
    std::uint32_t dpu_;
  };

  CheckReport report_;
  AccessValidator access_;
  ModelAudit model_audit_;
  std::vector<std::unique_ptr<DpuObserver>> observers_;
};

}  // namespace updlrm::check
