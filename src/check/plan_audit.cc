#include "check/plan_audit.h"

#include <algorithm>
#include <string>
#include <vector>

namespace updlrm::check {

namespace {

std::string PlanTag(const partition::PartitionPlan& plan) {
  return std::string(partition::MethodShortName(plan.method)) + " plan (" +
         std::to_string(plan.geom.table.rows) + " rows x " +
         std::to_string(plan.geom.row_shards) + " bins, nc " +
         std::to_string(plan.geom.nc) + ")";
}

}  // namespace

void AuditPlan(const partition::PartitionPlan& plan,
               const PlanAuditLimits& limits, CheckReport* report) {
  const partition::GroupGeometry& geom = plan.geom;
  const std::uint64_t rows = geom.table.rows;
  const std::string tag = PlanTag(plan);

  // --- Tile shape: the §3.1 uniform cost model only covers even
  // Nc <= max_model_nc; a plan claiming that model with a wider or odd
  // tile was optimized with invalid physics.
  if (limits.claims_uniform_model &&
      (geom.nc > limits.max_model_nc || geom.nc % 2 != 0)) {
    report->AddViolation(
        Rule::kTileShape,
        tag + ": nc " + std::to_string(geom.nc) +
            " outside the uniform model's claim (even, <= " +
            std::to_string(limits.max_model_nc) + ")");
  }

  // --- Row coverage: every row of the table has exactly one home —
  // its bin's EMT region, or (exclusively) a cache list. row_bin is a
  // function row -> bin, so "non-overlapping" can only break through a
  // wrong size, an out-of-range bin, or a cached row that also claims
  // an EMT slot via an inconsistent item_list.
  if (plan.row_bin.size() != rows) {
    report->AddViolation(Rule::kPlanCoverage,
                         tag + ": row_bin covers " +
                             std::to_string(plan.row_bin.size()) + " of " +
                             std::to_string(rows) + " rows");
    return;  // per-row audits below index row_bin.
  }
  // The capacity audit re-buckets by bin, so it can only run once the
  // bin indices themselves are proven in range.
  bool capacity_auditable = true;
  for (std::uint64_t r = 0; r < rows; ++r) {
    if (plan.row_bin[r] >= geom.row_shards) {
      report->AddViolation(Rule::kPlanCoverage,
                           tag + ": row " + std::to_string(r) +
                               " assigned to bin " +
                               std::to_string(plan.row_bin[r]) +
                               " of " + std::to_string(geom.row_shards));
      capacity_auditable = false;
      break;  // one offender suffices; counts stay bounded.
    }
  }

  // --- Cache co-location and item/list consistency. Each list lives
  // in one bin; the reverse item_list map must agree with the lists so
  // routing reads the subset sum from the bin that stores it.
  const std::size_t num_lists = plan.cache.lists.size();
  if (plan.has_cache()) {
    if (plan.list_bin.size() != num_lists ||
        plan.item_list.size() != rows) {
      report->AddViolation(
          Rule::kCacheColocation,
          tag + ": list_bin/item_list sized " +
              std::to_string(plan.list_bin.size()) + "/" +
              std::to_string(plan.item_list.size()) + ", want " +
              std::to_string(num_lists) + "/" + std::to_string(rows));
      return;
    }
    std::vector<std::int32_t> derived(rows, -1);
    for (std::size_t l = 0; l < num_lists; ++l) {
      if (plan.list_bin[l] < 0 ||
          static_cast<std::uint32_t>(plan.list_bin[l]) >=
              geom.row_shards) {
        report->AddViolation(Rule::kCacheColocation,
                             tag + ": cache list " + std::to_string(l) +
                                 " placed in bin " +
                                 std::to_string(plan.list_bin[l]));
        capacity_auditable = false;
        continue;
      }
      for (const std::uint32_t item : plan.cache.lists[l].items) {
        if (item >= rows) {
          report->AddViolation(Rule::kCacheColocation,
                               tag + ": cache list " + std::to_string(l) +
                                   " references row " +
                                   std::to_string(item) +
                                   " outside the table");
          continue;
        }
        if (derived[item] != -1) {
          report->AddViolation(
              Rule::kPlanCoverage,
              tag + ": row " + std::to_string(item) +
                  " appears in cache lists " +
                  std::to_string(derived[item]) + " and " +
                  std::to_string(l) + " (two homes)");
        }
        derived[item] = static_cast<std::int32_t>(l);
      }
    }
    for (std::uint64_t r = 0; r < rows; ++r) {
      if (plan.item_list[r] != derived[r]) {
        report->AddViolation(
            Rule::kCacheColocation,
            tag + ": item_list[" + std::to_string(r) + "] = " +
                std::to_string(plan.item_list[r]) +
                " disagrees with the lists (want " +
                std::to_string(derived[r]) + ")");
        break;
      }
    }
  }

  // --- Replicated rows must not double as cache-list members (they
  // would have two MRAM homes with different addressing).
  for (const std::uint32_t r : plan.replicated_rows) {
    if (r >= rows) {
      report->AddViolation(Rule::kPlanCoverage,
                           tag + ": replicated row " + std::to_string(r) +
                               " outside the table");
      break;
    }
    if (!plan.item_list.empty() && plan.item_list[r] >= 0) {
      report->AddViolation(Rule::kPlanCoverage,
                           tag + ": row " + std::to_string(r) +
                               " both replicated and cache-listed");
      break;
    }
  }

  // --- Capacity: every bin's EMT tile and cache block fit the regions
  // placement carved out of the 64 MB bank.
  if (!capacity_auditable) return;
  const std::uint64_t row_bytes = geom.row_bytes();
  const std::vector<std::uint64_t> emt_rows = plan.EmtRowsPerBin();
  const std::vector<std::uint64_t> cache_bytes = plan.CacheBytesPerBin();
  for (std::uint32_t b = 0; b < geom.row_shards; ++b) {
    const std::uint64_t emt = emt_rows[b] * row_bytes;
    if (emt > limits.emt_bytes) {
      report->AddViolation(Rule::kPlanCapacity,
                           tag + ": bin " + std::to_string(b) + " needs " +
                               std::to_string(emt) + " EMT bytes of " +
                               std::to_string(limits.emt_bytes));
    }
    if (cache_bytes[b] > limits.cache_bytes) {
      report->AddViolation(Rule::kPlanCapacity,
                           tag + ": bin " + std::to_string(b) + " needs " +
                               std::to_string(cache_bytes[b]) +
                               " cache bytes of " +
                               std::to_string(limits.cache_bytes));
    }
  }
}

void AuditDedupBounds(bool applied, std::uint64_t unique_total,
                      std::uint64_t refs, CheckReport* report) {
  if (!applied) return;
  if (unique_total > 0xffff) {
    report->AddViolation(Rule::kGatherBounds,
                         "dedup plan applied with " +
                             std::to_string(unique_total) +
                             " unique entries (> uint16 gather range)");
  }
  if (refs < unique_total) {
    report->AddViolation(Rule::kGatherBounds,
                         "dedup plan replays " + std::to_string(refs) +
                             " refs for " + std::to_string(unique_total) +
                             " unique entries (refs must cover uniques)");
  }
}

void AuditWramCapacity(std::uint32_t bin, std::uint32_t pinned_rows,
                       std::uint32_t max_rows, CheckReport* report) {
  if (pinned_rows <= max_rows) return;
  report->AddViolation(Rule::kWramCapacity,
                       "bin " + std::to_string(bin) + " pins " +
                           std::to_string(pinned_rows) +
                           " WRAM rows; capacity clamp is " +
                           std::to_string(max_rows));
}

void AuditTransferPlan(Nanos plan_ns, Nanos padded_ns, Nanos ragged_ns,
                       CheckReport* report, double slack) {
  const Nanos best_classic = std::min(padded_ns, ragged_ns);
  if (plan_ns <= best_classic * (1.0 + slack)) return;
  report->AddViolation(Rule::kTransferPlan,
                       "coalesced plan costs " + std::to_string(plan_ns) +
                           " ns; classic paths cost " +
                           std::to_string(padded_ns) + " (padded) / " +
                           std::to_string(ragged_ns) + " (sequential) ns");
}

}  // namespace updlrm::check
