// Machine-readable violation report of the hardware-contract checker.
//
// Every auditor in src/check/ records violations here: one atomic
// counter per rule plus the first offender's human-readable context.
// Counters are plain sums, so totals are thread-count invariant under
// the engine's disjoint-DPU task contract; which offender is recorded
// *first* may vary across thread schedules and is diagnostic only.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace updlrm::check {

/// Hardware / model invariants the checker enforces. Adding a rule:
/// extend this enum (before kNumRules) and RuleName, record violations
/// via CheckReport::AddViolation from the relevant auditor, and add one
/// injected-fault test to tests/check/ proving the rule fires (see
/// DESIGN.md §7).
enum class Rule : std::uint32_t {
  kDmaAlignment = 0,    // MRAM access offset/size not 8-byte aligned
  kDmaSize,             // DPU DMA transfer of 0 or > 2048 bytes
  kBankBounds,          // access beyond the 64 MB MRAM bank
  kUninitRead,          // read of MRAM bytes never written
  kRegionOverlap,       // EMT/replica/cache/index/output regions overlap
  kPlanCoverage,        // row coverage not exact / row with two homes
  kPlanCapacity,        // plan tiles exceed the bin's byte capacity
  kCacheColocation,     // cache list and its items not co-located
  kTileShape,           // Nc not even / > 8 under the §3.1 model claim
  kGatherBounds,        // dedup gather map outside uint16 bounds
  kWramCapacity,        // pinned WRAM tier exceeds leftover WRAM
  kTransferPlan,        // coalesced plan prices worse than classic paths
  kModelSimDivergence,  // kernel_cost vs kernel_sim outside tolerance
  kDataFlowShape,       // data-flow plan outside the legal space
  kDataFlowCapacity,    // in-flight pipeline buffers exceed reserved IO
  kStageOrdering,       // executed batch stages out of order / overlap
  kShardCoverage,       // cross-shard row ownership not exact
  kTierCapacity,        // tier plan exceeds a per-tier capacity clamp
  kReductionShape,      // reduction plan tree malformed / prices worse
  kAtomicProtocol,      // lock-free protocol breaks a happens-before edge
  kNumRules,
};

inline constexpr std::size_t kNumCheckRules =
    static_cast<std::size_t>(Rule::kNumRules);

std::string_view RuleName(Rule rule);

class CheckReport {
 public:
  CheckReport() = default;
  CheckReport(const CheckReport&) = delete;
  CheckReport& operator=(const CheckReport&) = delete;

  /// Records one violation of `rule`; `context` describes the first
  /// offender (kept only for the rule's first violation).
  void AddViolation(Rule rule, std::string context);

  std::uint64_t count(Rule rule) const {
    return counts_[static_cast<std::size_t>(rule)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total() const;
  bool clean() const { return total() == 0; }

  /// Context of the first recorded offender of `rule`; "" when none.
  std::string first_offender(Rule rule) const;

  /// Per-rule table of nonzero counts with first-offender context;
  /// "all checks passed" when clean.
  std::string ToString() const;
  /// {"total": N, "rules": {"<name>": {"count": N, "first": "..."}}}
  std::string ToJson() const;

  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumCheckRules> counts_{};
  mutable Mutex mu_;
  std::array<std::string, kNumCheckRules> first_ GUARDED_BY(mu_);
};

}  // namespace updlrm::check
