#include "check/scaleout_audit.h"

#include <string>
#include <vector>

namespace updlrm::check {

namespace {

std::string TablePrefix(std::uint32_t table) {
  return "table " + std::to_string(table) + ": ";
}

}  // namespace

void AuditShardCoverage(std::uint32_t table,
                        const partition::TableTierPlan& plan,
                        std::uint32_t num_shards, CheckReport* report) {
  const std::size_t rows = plan.owner.size();
  if (plan.local.size() != rows) {
    report->AddViolation(Rule::kShardCoverage,
                         TablePrefix(table) + "owner/local size mismatch");
    return;
  }
  if (plan.shard_rows.size() != num_shards ||
      plan.shard_accesses.size() != num_shards) {
    report->AddViolation(
        Rule::kShardCoverage,
        TablePrefix(table) + "per-shard rollup size != num_shards");
    return;
  }
  // Each owner's local ids must be exactly 0..count-1 in ascending
  // global row order — the dense remap the sub-model extraction relies
  // on. A skipped or repeated local id means a row with no backing
  // sub-table row (or two rows sharing one).
  std::vector<std::uint64_t> next(static_cast<std::size_t>(num_shards) + 1,
                                  0);
  std::uint64_t dram_rows = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint32_t o = plan.owner[r];
    const bool dram = o == partition::kHostDramShard;
    if (!dram && o >= num_shards) {
      report->AddViolation(Rule::kShardCoverage,
                           TablePrefix(table) + "row " + std::to_string(r) +
                               " owned by nonexistent shard " +
                               std::to_string(o));
      return;
    }
    std::uint64_t& counter = next[dram ? num_shards : o];
    if (plan.local[r] != counter) {
      report->AddViolation(Rule::kShardCoverage,
                           TablePrefix(table) + "row " + std::to_string(r) +
                               " local id not dense");
      return;
    }
    ++counter;
    if (dram) ++dram_rows;
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (next[s] != plan.shard_rows[s]) {
      report->AddViolation(
          Rule::kShardCoverage,
          TablePrefix(table) + "shard " + std::to_string(s) +
              " rollup row count disagrees with the owner map");
      return;
    }
  }
  if (dram_rows != plan.dram_rows) {
    report->AddViolation(Rule::kShardCoverage,
                         TablePrefix(table) +
                             "DRAM rollup row count disagrees with the "
                             "owner map");
  }
}

void AuditTierCapacity(std::uint32_t table,
                       const partition::TableTierPlan& plan,
                       const partition::TieringOptions& options,
                       CheckReport* report) {
  if (options.pim_capacity_rows_per_shard > 0) {
    for (std::size_t s = 0; s < plan.shard_rows.size(); ++s) {
      if (plan.shard_rows[s] > options.pim_capacity_rows_per_shard) {
        report->AddViolation(
            Rule::kTierCapacity,
            TablePrefix(table) + "shard " + std::to_string(s) + " holds " +
                std::to_string(plan.shard_rows[s]) +
                " rows, capacity is " +
                std::to_string(options.pim_capacity_rows_per_shard));
        return;
      }
    }
  }
  // Epsilon is a quality target, not a physical limit: DRAM access mass
  // above the budget is only legal when shard capacity forced the spill
  // (every shard full). Without a capacity limit, exceeding epsilon
  // means the CDF split itself is broken.
  if (options.pim_capacity_rows_per_shard == 0 &&
      static_cast<double>(plan.dram_accesses) >
          options.dram_epsilon * static_cast<double>(plan.total_accesses)) {
    report->AddViolation(
        Rule::kTierCapacity,
        TablePrefix(table) + "DRAM tier holds " +
            std::to_string(plan.dram_accesses) + " of " +
            std::to_string(plan.total_accesses) +
            " accesses, above the epsilon budget");
  }
}

void AuditReductionPlan(const pim::ReductionPlan& plan,
                        std::uint32_t num_ranks, CheckReport* report) {
  if (plan.active_ranks > num_ranks) {
    report->AddViolation(Rule::kReductionShape,
                         "plan claims " + std::to_string(plan.active_ranks) +
                             " active ranks on a " +
                             std::to_string(num_ranks) + "-rank fleet");
    return;
  }
  if (plan.levels != pim::Log2Levels(plan.active_ranks)) {
    report->AddViolation(
        Rule::kReductionShape,
        "merge-tree depth " + std::to_string(plan.levels) +
            " != ceil(log2(" + std::to_string(plan.active_ranks) + "))");
    return;
  }
  if (plan.hierarchical && plan.active_ranks <= 1) {
    report->AddViolation(Rule::kReductionShape,
                         "hierarchical schedule on <= 1 active rank");
    return;
  }
  if (plan.hierarchical && plan.hier_ns >= plan.flat_ns) {
    report->AddViolation(
        Rule::kReductionShape,
        "hierarchical schedule chosen without strict improvement");
    return;
  }
  const Nanos expect =
      plan.hierarchical ? plan.hier_ns : plan.flat_ns;
  if (plan.time_ns != expect) {
    report->AddViolation(Rule::kReductionShape,
                         "planned time is not the chosen schedule's time");
  }
}

}  // namespace updlrm::check
