// Auditors for the fleet scale-out layer (DESIGN.md §10): cross-shard
// row coverage, per-tier capacity clamps, and reduction-plan shape.
//
// Like the other static auditors, these re-derive the invariants
// independently of the planners that promise them and report through
// CheckReport instead of failing, so one audit pass surfaces every
// broken invariant at once.
#pragma once

#include <cstdint>

#include "check/report.h"
#include "partition/tiering.h"
#include "pim/reduction.h"

namespace updlrm::check {

/// Audits one table's tier/shard assignment: every row owned exactly
/// once by a legal owner (a shard below `num_shards` or the DRAM
/// sentinel), local ids dense and ascending per owner, and the per-
/// shard row/access rollups consistent with the owner map. Fires
/// kShardCoverage.
void AuditShardCoverage(std::uint32_t table,
                        const partition::TableTierPlan& plan,
                        std::uint32_t num_shards, CheckReport* report);

/// Audits the plan's per-tier capacity clamps: no shard exceeds the
/// PIM row capacity, and the DRAM tier's access mass stays within the
/// epsilon budget unless capacity overflow forced the spill. Fires
/// kTierCapacity.
void AuditTierCapacity(std::uint32_t table,
                       const partition::TableTierPlan& plan,
                       const partition::TieringOptions& options,
                       CheckReport* report);

/// Audits one batch's reduction plan: tree depth matches
/// ceil(log2(active_ranks)), active ranks fit the fleet, the chosen
/// time is the minimum of the two schedules, and the hierarchical
/// choice is a strict improvement. Fires kReductionShape.
void AuditReductionPlan(const pim::ReductionPlan& plan,
                        std::uint32_t num_ranks, CheckReport* report);

}  // namespace updlrm::check
