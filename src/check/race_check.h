// Vector-clock shadow verifier for the runtime's lock-free protocols.
//
// The runtime has two hand-rolled atomic protocols whose correctness
// rests on specific happens-before edges:
//
//   * telemetry ring buffers (telemetry/tracer.h): each thread appends
//     events to its own buffer and publishes the count with a release
//     size store; Snapshot() acquires the size and may then read the
//     published slots. Drop either side of the release/acquire pair and
//     the slot reads race with the writer.
//   * ParallelFor state recycling (common/thread_pool.cc): helpers
//     announce themselves with an acq_rel participants++ and leave with
//     a release participants--; the owner bumps the ticket (acq_rel),
//     spins on an acquire participants load, and only then reinitializes
//     the region descriptor. The participants release/acquire edge is
//     what keeps the reinit writes from racing with a draining helper's
//     field reads.
//
// TSan checks the *implementation* when the scheduler happens to
// produce the conflicting interleaving; this verifier checks the
// *protocol*: it replays each protocol as an explicit, deterministic
// event sequence through a FastTrack-style vector-clock machine
// (per-thread clocks; release stores join thread -> location, acquire
// loads join location -> thread; plain accesses must be ordered against
// every prior conflicting access). Removing a single edge — the
// injected-fault test pattern of tests/check/race_check_test.cc — must
// flip Rule::kAtomicProtocol from 0 to nonzero, proving both that the
// edge is load-bearing and that the machine can see its absence.
//
// The machine is a model executor, not an instrumentation layer: no
// real threads run, so verification is bit-for-bit deterministic and
// cheap enough for every ctest run. RaceCheckEnabled() gates the
// checker-driven sweep to debug builds; tests call the Verify*
// functions directly in any build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/report.h"

namespace updlrm::check {

/// Debug builds run the protocol sweep inside Checker-enabled runs;
/// release builds keep the machine available but default it off.
constexpr bool RaceCheckEnabled() {
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

/// FastTrack-style happens-before machine over model threads and
/// locations. Threads and locations are small dense ids; every check
/// failure is recorded as Rule::kAtomicProtocol on the report passed at
/// construction (which must outlive the machine).
class RaceCheck {
 public:
  using ThreadId = std::uint32_t;
  using Loc = std::uint32_t;

  explicit RaceCheck(CheckReport* report);

  /// Registers a model thread. The first thread is the "main" thread;
  /// later threads start with a copy of `parent`'s clock (fork edge).
  ThreadId NewThread(std::string name);
  ThreadId ForkThread(ThreadId parent, std::string name);
  /// Join edge: `parent` has observed everything `child` did.
  void JoinThread(ThreadId parent, ThreadId child);

  /// A non-atomic memory location (a buffer slot, a struct field).
  Loc NewPlainLoc(std::string name);
  /// An atomic location carrying a synchronization clock.
  Loc NewAtomicLoc(std::string name);

  // --- atomic accesses (legal on atomic locations only) ---
  void ReleaseStore(ThreadId t, Loc loc);
  void AcquireLoad(ThreadId t, Loc loc);
  /// fetch_add/fetch_sub/CAS with memory_order_acq_rel.
  void AcqRelRmw(ThreadId t, Loc loc);
  /// Relaxed accesses: atomic (never a data race on the location
  /// itself) but carrying no ordering — they neither publish nor
  /// acquire the location's synchronization clock.
  void RelaxedStore(ThreadId t, Loc loc);
  void RelaxedLoad(ThreadId t, Loc loc);
  /// fetch_add/fetch_sub with memory_order_relaxed.
  void RelaxedRmw(ThreadId t, Loc loc);

  // --- plain accesses (legal on plain locations only) ---
  /// Must be ordered after every prior access to `loc`.
  void PlainWrite(ThreadId t, Loc loc);
  /// Must be ordered after the prior write to `loc` (reads may be
  /// concurrent with each other).
  void PlainRead(ThreadId t, Loc loc);

  std::uint64_t violations() const { return violations_; }

 private:
  struct Epoch {
    ThreadId tid = 0;
    std::uint64_t clock = 0;  // 0 = never accessed
  };
  struct Location {
    std::string name;
    bool atomic = false;
    std::vector<std::uint64_t> sync;  // atomic: published clock
    Epoch last_write;                 // plain: last writer epoch
    std::vector<Epoch> reads;         // plain: reads since last write
  };

  void Join(std::vector<std::uint64_t>& into,
            const std::vector<std::uint64_t>& from);
  bool OrderedBefore(const Epoch& e, ThreadId t) const;
  void Report(ThreadId t, const Location& loc, const char* what,
              const Epoch& prior);
  void Tick(ThreadId t) { ++clocks_[t][t]; }

  CheckReport* report_;
  std::vector<std::string> thread_names_;
  std::vector<std::vector<std::uint64_t>> clocks_;  // [thread][thread]
  std::vector<Location> locs_;
  std::uint64_t violations_ = 0;
};

/// Happens-before edges a protocol driver can deliberately drop. Each
/// fault removes exactly one edge of one protocol; kNone replays the
/// shipped protocol, which must verify clean.
enum class RaceFault {
  kNone = 0,
  // Telemetry ring buffer (tracer).
  kRingSizeStoreRelaxed,  // writer publishes size with a relaxed store
  kRingSnapshotRelaxed,   // snapshot reads size with a relaxed load
  // ParallelFor state recycling (thread pool).
  kStealNoDrainSpin,   // owner reinitializes without draining helpers
  kStealDoneRelaxed,   // helper leaves with a relaxed participants--
  kStealNoTicketSync,  // helper skips the ticket acquire before reading
};

/// Replays the telemetry per-thread ring-buffer protocol (N writer
/// appends, one snapshot) through `rc`-style machinery against
/// `report`. Returns the number of kAtomicProtocol violations added.
std::uint64_t VerifyTelemetryRingProtocol(RaceFault fault,
                                          CheckReport* report);

/// Replays the ParallelFor region-recycling protocol (one region run by
/// owner + helper, then a recycle and a second run) against `report`.
std::uint64_t VerifyWorkStealProtocol(RaceFault fault, CheckReport* report);

/// The clean sweep the checker runs in debug builds: both protocols,
/// no injected fault.
void VerifyAtomicProtocols(CheckReport* report);

}  // namespace updlrm::check
