// Static auditor of partition plans and the derived per-batch plans.
//
// AuditPlan re-derives, independently of partition::PartitionPlan::
// Validate, the structural invariants the placement and routing layers
// rely on — exact non-overlapping row coverage, per-bin capacity, cache
// co-location, the §3.1 tile-shape claim — and reports violations
// through CheckReport instead of failing, so a single audit pass can
// surface every broken invariant at once. The smaller audits cover the
// per-batch plans the engine derives at run time: the dedup planner's
// uint16 gather-map bound, the WRAM hot-row tier's capacity clamp, and
// the coalesced transfer planner's never-worse-than-classic guarantee.
#pragma once

#include <cstdint>

#include "check/report.h"
#include "common/units.h"
#include "partition/plan.h"

namespace updlrm::check {

/// Byte budgets the plan must fit, plus the tile-shape claim. The
/// engine fills these from the group's MramLayout (what placement
/// actually carved out), so the audit is against the real regions, not
/// the planner's own arithmetic.
struct PlanAuditLimits {
  /// Per-bin EMT-region bytes (uncached, unreplicated rows).
  std::uint64_t emt_bytes = 0;
  /// Per-bin cache-region bytes.
  std::uint64_t cache_bytes = 0;
  /// True when the plan's Nc came from the §3.1 uniform-model tile
  /// optimizer, which is only calibrated for even Nc <= this bound.
  bool claims_uniform_model = false;
  std::uint32_t max_model_nc = 8;
};

/// Audits one table's partition plan. Fires kPlanCoverage,
/// kPlanCapacity, kCacheColocation and kTileShape; a clean plan adds
/// nothing to `report`.
void AuditPlan(const partition::PartitionPlan& plan,
               const PlanAuditLimits& limits, CheckReport* report);

/// Audits one applied dedup plan: gather refs are 16-bit indices into
/// the unique list, so an applied plan with more than 65535 unique
/// entries (or whose per-bin reference count cannot be replayed through
/// uint16 refs) is wire-format corruption. Fires kGatherBounds.
void AuditDedupBounds(bool applied, std::uint64_t unique_total,
                      std::uint64_t refs, CheckReport* report);

/// Audits one bin's pinned WRAM hot-row tier against the kernel's
/// capacity clamp (EmbeddingKernelCostModel::MaxWramCacheRows). Fires
/// kWramCapacity.
void AuditWramCapacity(std::uint32_t bin, std::uint32_t pinned_rows,
                       std::uint32_t max_rows, CheckReport* report);

/// Audits one coalesced transfer plan against the two classic paths it
/// promises never to lose to (padded-parallel and sequential-ragged).
/// `slack` absorbs float rounding. Fires kTransferPlan.
void AuditTransferPlan(Nanos plan_ns, Nanos padded_ns, Nanos ragged_ns,
                       CheckReport* report, double slack = 1e-9);

}  // namespace updlrm::check
