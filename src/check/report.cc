#include "check/report.h"

#include <sstream>

namespace updlrm::check {

std::string_view RuleName(Rule rule) {
  switch (rule) {
    case Rule::kDmaAlignment:
      return "dma-alignment";
    case Rule::kDmaSize:
      return "dma-size";
    case Rule::kBankBounds:
      return "bank-bounds";
    case Rule::kUninitRead:
      return "uninit-read";
    case Rule::kRegionOverlap:
      return "region-overlap";
    case Rule::kPlanCoverage:
      return "plan-coverage";
    case Rule::kPlanCapacity:
      return "plan-capacity";
    case Rule::kCacheColocation:
      return "cache-colocation";
    case Rule::kTileShape:
      return "tile-shape";
    case Rule::kGatherBounds:
      return "gather-bounds";
    case Rule::kWramCapacity:
      return "wram-capacity";
    case Rule::kTransferPlan:
      return "transfer-plan";
    case Rule::kModelSimDivergence:
      return "model-sim-divergence";
    case Rule::kDataFlowShape:
      return "dataflow-shape";
    case Rule::kDataFlowCapacity:
      return "dataflow-capacity";
    case Rule::kStageOrdering:
      return "stage-ordering";
    case Rule::kShardCoverage:
      return "shard-coverage";
    case Rule::kTierCapacity:
      return "tier-capacity";
    case Rule::kReductionShape:
      return "reduction-shape";
    case Rule::kAtomicProtocol:
      return "atomic-protocol";
    case Rule::kNumRules:
      break;
  }
  return "unknown";
}

void CheckReport::AddViolation(Rule rule, std::string context) {
  const auto i = static_cast<std::size_t>(rule);
  const std::uint64_t prior =
      counts_[i].fetch_add(1, std::memory_order_relaxed);
  if (prior == 0) {
    MutexLock lock(mu_);
    if (first_[i].empty()) first_[i] = std::move(context);
  }
}

std::uint64_t CheckReport::total() const {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

std::string CheckReport::first_offender(Rule rule) const {
  MutexLock lock(mu_);
  return first_[static_cast<std::size_t>(rule)];
}

std::string CheckReport::ToString() const {
  if (clean()) return "check: all checks passed (0 violations)\n";
  std::ostringstream out;
  out << "check: " << total() << " violation(s)\n";
  for (std::size_t i = 0; i < kNumCheckRules; ++i) {
    const auto rule = static_cast<Rule>(i);
    const std::uint64_t n = count(rule);
    if (n == 0) continue;
    out << "  [" << RuleName(rule) << "] x" << n << ": "
        << first_offender(rule) << "\n";
  }
  return out.str();
}

std::string CheckReport::ToJson() const {
  std::ostringstream out;
  out << "{\"total\": " << total() << ", \"rules\": {";
  bool first_rule = true;
  for (std::size_t i = 0; i < kNumCheckRules; ++i) {
    const auto rule = static_cast<Rule>(i);
    const std::uint64_t n = count(rule);
    if (n == 0) continue;
    if (!first_rule) out << ", ";
    first_rule = false;
    std::string offender = first_offender(rule);
    for (char& c : offender) {
      if (c == '"') c = '\'';
    }
    out << "\"" << RuleName(rule) << "\": {\"count\": " << n
        << ", \"first\": \"" << offender << "\"}";
  }
  out << "}}";
  return out.str();
}

void CheckReport::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  MutexLock lock(mu_);
  for (auto& f : first_) f.clear();
}

}  // namespace updlrm::check
