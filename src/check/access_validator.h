// Shadow-state validator of simulated MRAM/WRAM/DMA accesses.
//
// Keeps, per DPU, (a) the registered MRAM region map (EMT, replica,
// cache, index buffer, output buffer) and (b) an interval set of bytes
// ever written. Every intercepted access is checked against the UPMEM
// hardware contract: 8-byte alignment, DPU DMA transfers of 8..2048
// bytes, accesses within the 64 MB bank, reads only of written bytes,
// and pairwise-disjoint regions.
//
// Thread safety follows the engine's determinism contract: parallel
// tasks own disjoint DPU ranges, so per-DPU shadow state needs no
// locks; violations land in the shared CheckReport, whose counters are
// atomic.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "check/report.h"

namespace updlrm::check {

/// Hardware limits the validator enforces; defaults are the UPMEM
/// contract (8-byte aligned MRAM transfers, DPU DMA <= 2048 bytes).
struct AccessLimits {
  std::uint64_t bank_bytes = 0;
  std::uint64_t alignment = 8;
  std::uint64_t max_dma_bytes = 2048;
};

/// MRAM region kinds, mirroring core::MramLayout (the engine translates
/// its layout into RegisterRegion calls; check/ cannot depend on core).
enum class RegionKind : std::uint8_t {
  kEmt = 0,
  kReplica,
  kCache,
  kIndex,
  kOutput,
};

std::string_view RegionKindName(RegionKind kind);

class AccessValidator {
 public:
  AccessValidator(std::uint32_t num_dpus, AccessLimits limits,
                  CheckReport* report);

  /// Registers region [base, base + bytes) on `dpu`. Flags kBankBounds
  /// when the region exceeds the bank and kRegionOverlap when it
  /// intersects an already-registered region of the same DPU. Zero-byte
  /// regions are legal and never overlap.
  void RegisterRegion(std::uint32_t dpu, RegionKind kind, std::uint64_t base,
                      std::uint64_t bytes);

  /// Functional-access hooks (wired to pim::MramObserver by the
  /// Checker). Writes extend the DPU's written-byte interval set; reads
  /// of any never-written byte flag kUninitRead.
  void OnWrite(std::uint32_t dpu, std::uint64_t offset, std::uint64_t bytes);
  void OnRead(std::uint32_t dpu, std::uint64_t offset, std::uint64_t bytes);

  /// Validates one modeled DPU-side DMA transfer shape (the engine
  /// reports each distinct per-item shape of a kernel launch once):
  /// alignment of offset and size, size in (0, max_dma_bytes], and bank
  /// bounds. Does not touch the written set — modeled transfers carry
  /// no functional data.
  void OnDma(std::uint32_t dpu, std::uint64_t offset, std::uint64_t bytes,
             bool is_write);

  /// Drops all regions and written intervals (report is left alone).
  void Reset();

  std::uint32_t num_dpus() const {
    return static_cast<std::uint32_t>(shadows_.size());
  }
  const AccessLimits& limits() const { return limits_; }

  /// True when every byte of [offset, offset + bytes) on `dpu` has been
  /// written. Exposed for tests.
  bool IsWritten(std::uint32_t dpu, std::uint64_t offset,
                 std::uint64_t bytes) const;

 private:
  struct Region {
    RegionKind kind;
    std::uint64_t base;
    std::uint64_t end;  // one past the last byte
  };
  struct DpuShadow {
    std::vector<Region> regions;
    /// Written-byte intervals, start -> end, non-adjacent and disjoint.
    std::map<std::uint64_t, std::uint64_t> written;
  };

  // Alignment + bank bounds shared by reads, writes and DMAs.
  void CheckBasics(std::uint32_t dpu, std::uint64_t offset,
                   std::uint64_t bytes, std::string_view what);

  AccessLimits limits_;
  CheckReport* report_;
  std::vector<DpuShadow> shadows_;
};

}  // namespace updlrm::check
