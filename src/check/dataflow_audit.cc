#include "check/dataflow_audit.h"

#include <string>

namespace updlrm::check {

void AuditDataFlowShape(const DataFlowShape& shape, CheckReport* report) {
  if (shape.depth == 0 || shape.depth > kMaxPipelineDepth) {
    report->AddViolation(
        Rule::kDataFlowShape,
        "plan depth " + std::to_string(shape.depth) + " outside [1, " +
            std::to_string(kMaxPipelineDepth) + "]");
  }
  if (shape.bottom_overlap_layers > shape.bottom_layers) {
    report->AddViolation(
        Rule::kDataFlowShape,
        "bottom overlap split " +
            std::to_string(shape.bottom_overlap_layers) + " beyond the " +
            std::to_string(shape.bottom_layers) + "-layer bottom stack");
  }
  if (!shape.gpu_available && (shape.bottom_on_gpu || shape.top_on_gpu)) {
    report->AddViolation(Rule::kDataFlowShape,
                         std::string("plan places the ") +
                             (shape.bottom_on_gpu ? "bottom" : "top") +
                             " stage on a GPU the config does not "
                             "provision");
  }
}

void AuditDataFlowCapacity(const DataFlowCapacity& cap, CheckReport* report) {
  const std::uint64_t depth = cap.depth == 0 ? 1 : cap.depth;
  const std::uint64_t index_need = depth * cap.max_index_bytes;
  if (index_need > cap.index_region_bytes) {
    report->AddViolation(
        Rule::kDataFlowCapacity,
        "depth " + std::to_string(cap.depth) + " x " +
            std::to_string(cap.max_index_bytes) +
            " B in-flight index buffers need " + std::to_string(index_need) +
            " B, index region holds " +
            std::to_string(cap.index_region_bytes) + " B");
  }
  const std::uint64_t output_need = depth * cap.max_output_bytes;
  if (output_need > cap.output_region_bytes) {
    report->AddViolation(
        Rule::kDataFlowCapacity,
        "depth " + std::to_string(cap.depth) + " x " +
            std::to_string(cap.max_output_bytes) +
            " B in-flight output buffers need " +
            std::to_string(output_need) + " B, output region holds " +
            std::to_string(cap.output_region_bytes) + " B");
  }
}

namespace {

// t_after must not precede t_before by more than `slack`.
void CheckEdge(std::size_t batch, const char* edge, double before,
               double after, double slack, CheckReport* report) {
  if (after + slack < before) {
    report->AddViolation(Rule::kStageOrdering,
                         "batch " + std::to_string(batch) + ": " + edge +
                             " (" + std::to_string(after) + " ns < " +
                             std::to_string(before) + " ns)");
  }
}

}  // namespace

void AuditStageOrdering(std::size_t batch, const StageInstants& t,
                        CheckReport* report, double slack) {
  // Everything starts at or after the batch cut.
  CheckEdge(batch, "s1 starts before the cut", t.cut_ns, t.s1_start_ns,
            slack, report);
  CheckEdge(batch, "bottom mlp starts before the cut", t.cut_ns,
            t.bpre_start_ns, slack, report);
  // Each stage spans forward in time.
  CheckEdge(batch, "s1 ends before it starts", t.s1_start_ns, t.s1_end_ns,
            slack, report);
  CheckEdge(batch, "s2 ends before it starts", t.s2_start_ns, t.s2_end_ns,
            slack, report);
  CheckEdge(batch, "s3 ends before it starts", t.s3_start_ns, t.s3_end_ns,
            slack, report);
  CheckEdge(batch, "bottom prefix ends before it starts", t.bpre_start_ns,
            t.bpre_end_ns, slack, report);
  CheckEdge(batch, "top ends before it starts", t.top_start_ns,
            t.top_end_ns, slack, report);
  // Dependency order: S1 -> S2 -> S3 -> top; bottom prefix -> bottom
  // done -> top.
  CheckEdge(batch, "s2 starts before s1 ends", t.s1_end_ns, t.s2_start_ns,
            slack, report);
  CheckEdge(batch, "s3 starts before s2 ends", t.s2_end_ns, t.s3_start_ns,
            slack, report);
  CheckEdge(batch, "top starts before s3 ends", t.s3_end_ns, t.top_start_ns,
            slack, report);
  CheckEdge(batch, "bottom done before its prefix ends", t.bpre_end_ns,
            t.bottom_done_ns, slack, report);
  CheckEdge(batch, "top starts before bottom mlp is done", t.bottom_done_ns,
            t.top_start_ns, slack, report);
}

}  // namespace updlrm::check
