#include "check/model_audit.h"

#include <array>
#include <string>

namespace updlrm::check {

ModelAudit::ModelAudit(pim::DpuConfig dpu,
                       pim::EmbeddingKernelCostParams params,
                       pim::MramTimingParams mram_timing,
                       ModelAuditTolerance tol, CheckReport* report)
    : dpu_(dpu),
      params_(params),
      mram_(mram_timing),
      tol_(tol),
      report_(report) {}

void ModelAudit::AuditKernel(const pim::EmbeddingKernelWork& work,
                             Cycles claimed) {
  if (work.num_lookups + work.num_cache_reads + work.num_samples +
          work.num_wram_hits + work.num_gather_refs ==
      0) {
    // An empty launch must be priced as free by both implementations.
    if (claimed != 0) {
      report_->AddViolation(Rule::kModelSimDivergence,
                            "empty kernel work claimed " +
                                std::to_string(claimed) + " cycles");
    }
    return;
  }
  const WorkKey key{work.num_lookups,   work.num_cache_reads,
                    work.num_samples,   work.row_bytes,
                    work.num_wram_hits, work.num_gather_refs};
  Cycles executed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      executed = it->second;
    } else {
      executed =
          pim::SimulateEmbeddingKernel(dpu_, mram_, params_, work).makespan;
      memo_.emplace(key, executed);
      ++simulated_;
    }
  }
  const double ratio = static_cast<double>(executed) /
                       static_cast<double>(claimed == 0 ? 1 : claimed);
  if (claimed == 0 || ratio < tol_.min_ratio || ratio > tol_.max_ratio) {
    report_->AddViolation(
        Rule::kModelSimDivergence,
        "work {lookups " + std::to_string(work.num_lookups) + ", cache " +
            std::to_string(work.num_cache_reads) + ", samples " +
            std::to_string(work.num_samples) + ", row_bytes " +
            std::to_string(work.row_bytes) + ", wram " +
            std::to_string(work.num_wram_hits) + ", gather " +
            std::to_string(work.num_gather_refs) + "}: model claims " +
            std::to_string(claimed) + " cycles, sim executed " +
            std::to_string(executed) + " (ratio " + std::to_string(ratio) +
            " outside [" + std::to_string(tol_.min_ratio) + ", " +
            std::to_string(tol_.max_ratio) + "])");
  }
}

std::uint64_t ModelAudit::simulated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return simulated_;
}

}  // namespace updlrm::check
