#include "check/race_check.h"

#include <algorithm>

#include "common/status.h"

namespace updlrm::check {

RaceCheck::RaceCheck(CheckReport* report) : report_(report) {
  UPDLRM_CHECK(report != nullptr);
}

RaceCheck::ThreadId RaceCheck::NewThread(std::string name) {
  const auto tid = static_cast<ThreadId>(thread_names_.size());
  thread_names_.push_back(std::move(name));
  clocks_.emplace_back(tid + 1, 0);
  clocks_[tid][tid] = 1;  // clock 0 means "never happened"
  return tid;
}

RaceCheck::ThreadId RaceCheck::ForkThread(ThreadId parent,
                                          std::string name) {
  UPDLRM_CHECK(parent < clocks_.size());
  const ThreadId child = NewThread(std::move(name));
  // Fork edge: the child starts having observed everything the parent
  // did up to the fork.
  Join(clocks_[child], clocks_[parent]);
  Tick(parent);
  return child;
}

void RaceCheck::JoinThread(ThreadId parent, ThreadId child) {
  UPDLRM_CHECK(parent < clocks_.size() && child < clocks_.size());
  Join(clocks_[parent], clocks_[child]);
  Tick(parent);
}

RaceCheck::Loc RaceCheck::NewPlainLoc(std::string name) {
  const auto loc = static_cast<Loc>(locs_.size());
  locs_.push_back(Location{std::move(name), /*atomic=*/false, {}, {}, {}});
  return loc;
}

RaceCheck::Loc RaceCheck::NewAtomicLoc(std::string name) {
  const auto loc = static_cast<Loc>(locs_.size());
  locs_.push_back(Location{std::move(name), /*atomic=*/true, {}, {}, {}});
  return loc;
}

void RaceCheck::Join(std::vector<std::uint64_t>& into,
                     const std::vector<std::uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

bool RaceCheck::OrderedBefore(const Epoch& e, ThreadId t) const {
  if (e.clock == 0) return true;  // location never accessed
  const auto& vc = clocks_[t];
  return e.tid < vc.size() && e.clock <= vc[e.tid];
}

void RaceCheck::Report(ThreadId t, const Location& loc, const char* what,
                       const Epoch& prior) {
  ++violations_;
  report_->AddViolation(
      Rule::kAtomicProtocol,
      std::string("protocol race on '") + loc.name + "': " + what +
          " by thread '" + thread_names_[t] +
          "' is not ordered after the access by thread '" +
          thread_names_[prior.tid] + "' (missing happens-before edge)");
}

void RaceCheck::ReleaseStore(ThreadId t, Loc loc) {
  UPDLRM_CHECK(locs_[loc].atomic);
  Join(locs_[loc].sync, clocks_[t]);
  Tick(t);
}

void RaceCheck::AcquireLoad(ThreadId t, Loc loc) {
  UPDLRM_CHECK(locs_[loc].atomic);
  Join(clocks_[t], locs_[loc].sync);
  Tick(t);
}

void RaceCheck::AcqRelRmw(ThreadId t, Loc loc) {
  UPDLRM_CHECK(locs_[loc].atomic);
  Join(clocks_[t], locs_[loc].sync);
  Join(locs_[loc].sync, clocks_[t]);
  Tick(t);
}

void RaceCheck::RelaxedStore(ThreadId t, Loc loc) {
  UPDLRM_CHECK(locs_[loc].atomic);
  // Atomic, so never a data race on the location itself — but no
  // ordering: the location's sync clock is left untouched.
  Tick(t);
}

void RaceCheck::RelaxedLoad(ThreadId t, Loc loc) {
  UPDLRM_CHECK(locs_[loc].atomic);
  Tick(t);
}

void RaceCheck::RelaxedRmw(ThreadId t, Loc loc) {
  UPDLRM_CHECK(locs_[loc].atomic);
  Tick(t);
}

void RaceCheck::PlainWrite(ThreadId t, Loc loc) {
  Location& l = locs_[loc];
  UPDLRM_CHECK(!l.atomic);
  if (!OrderedBefore(l.last_write, t)) {
    Report(t, l, "plain write", l.last_write);
  }
  for (const Epoch& r : l.reads) {
    if (!OrderedBefore(r, t)) Report(t, l, "plain write (after read)", r);
  }
  l.last_write = Epoch{t, clocks_[t][t]};
  l.reads.clear();
  Tick(t);
}

void RaceCheck::PlainRead(ThreadId t, Loc loc) {
  Location& l = locs_[loc];
  UPDLRM_CHECK(!l.atomic);
  if (!OrderedBefore(l.last_write, t)) {
    Report(t, l, "plain read", l.last_write);
  }
  l.reads.push_back(Epoch{t, clocks_[t][t]});
  Tick(t);
}

// ---------------------------------------------------------------------
// Protocol drivers. Each replays the shipped event order; a fault
// swaps exactly one operation for its unordered variant (or deletes
// it), mirroring the one-line regression it models.

std::uint64_t VerifyTelemetryRingProtocol(RaceFault fault,
                                          CheckReport* report) {
  RaceCheck rc(report);
  constexpr std::uint32_t kEvents = 3;

  // One writer thread appending to its per-thread buffer; the snapshot
  // thread exists from the start (fork edge models process startup, not
  // a publication of the writer's later appends).
  const auto writer = rc.NewThread("trace-writer");
  const auto snapshot = rc.ForkThread(writer, "snapshot");

  const auto size = rc.NewAtomicLoc("ring.size");
  RaceCheck::Loc slots[kEvents];
  for (std::uint32_t i = 0; i < kEvents; ++i) {
    slots[i] = rc.NewPlainLoc("ring.slot[" + std::to_string(i) + "]");
  }

  // Writer: fill slot i, then publish the new count. The release store
  // is the protocol's only outbound edge — everything Snapshot() may
  // read must be ordered behind it.
  for (std::uint32_t i = 0; i < kEvents; ++i) {
    rc.PlainWrite(writer, slots[i]);
    if (fault == RaceFault::kRingSizeStoreRelaxed) {
      rc.RelaxedStore(writer, size);
    } else {
      rc.ReleaseStore(writer, size);
    }
  }

  // Snapshot: acquire the count, then copy the published slots.
  if (fault == RaceFault::kRingSnapshotRelaxed) {
    rc.RelaxedLoad(snapshot, size);
  } else {
    rc.AcquireLoad(snapshot, size);
  }
  for (std::uint32_t i = 0; i < kEvents; ++i) {
    rc.PlainRead(snapshot, slots[i]);
  }
  return rc.violations();
}

std::uint64_t VerifyWorkStealProtocol(RaceFault fault,
                                      CheckReport* report) {
  RaceCheck rc(report);

  const auto owner = rc.NewThread("owner");
  const auto helper = rc.ForkThread(owner, "helper");
  const auto stale = rc.ForkThread(owner, "stale-helper");

  // The recycled ParallelForState: plain region fields guarded by the
  // protocol, plus the three atomics that make it up. Submissions are
  // modeled as one release/acquire location per task (the queue mutex's
  // ordering, reduced to the edge the protocol actually relies on).
  const auto body = rc.NewPlainLoc("state.body");
  const auto n = rc.NewPlainLoc("state.n");
  const auto ticket = rc.NewAtomicLoc("state.ticket");
  const auto participants = rc.NewAtomicLoc("state.participants");
  const auto task1 = rc.NewAtomicLoc("queue.task1");
  const auto task2 = rc.NewAtomicLoc("queue.task2");

  // --- Region 1: init, submit two helper tasks. ---
  rc.PlainWrite(owner, body);
  rc.PlainWrite(owner, n);
  rc.ReleaseStore(owner, task1);
  rc.ReleaseStore(owner, task2);

  // Helper 1 runs promptly: announce, check the ticket, run chunks,
  // leave. The leaving decrement is the edge the owner's recycle spin
  // synchronizes with.
  rc.AcquireLoad(helper, task1);
  rc.AcqRelRmw(helper, participants);  // participants++
  rc.AcquireLoad(helper, ticket);      // ticket matches: run
  rc.PlainRead(helper, body);
  rc.PlainRead(helper, n);
  if (fault == RaceFault::kStealDoneRelaxed) {
    rc.RelaxedRmw(helper, participants);  // participants-- (broken)
  } else {
    rc.AcqRelRmw(helper, participants);  // participants--
  }

  // --- Recycle: invalidate stale helpers, drain, reinitialize. ---
  rc.AcqRelRmw(owner, ticket);  // ticket++ before the drain
  if (fault != RaceFault::kStealNoDrainSpin) {
    rc.AcquireLoad(owner, participants);  // spin observes 0
  }
  rc.PlainWrite(owner, body);  // region 2 init
  rc.PlainWrite(owner, n);

  // Helper 2 wakes late, after the recycle: announce, see the stale
  // ticket, back out without touching the region fields. Skipping the
  // ticket synchronization is exactly the bug where a stale helper
  // reads a reinitialized (or dangling) region.
  rc.AcquireLoad(stale, task2);
  rc.AcqRelRmw(stale, participants);  // participants++
  if (fault == RaceFault::kStealNoTicketSync) {
    rc.PlainRead(stale, body);  // never checked the ticket: runs anyway
    rc.PlainRead(stale, n);
  } else {
    rc.AcquireLoad(stale, ticket);  // mismatch: back out, no reads
  }
  rc.AcqRelRmw(stale, participants);  // participants--
  return rc.violations();
}

void VerifyAtomicProtocols(CheckReport* report) {
  VerifyTelemetryRingProtocol(RaceFault::kNone, report);
  VerifyWorkStealProtocol(RaceFault::kNone, report);
}

}  // namespace updlrm::check
