// Dense multilayer perceptron (the bottom- and top-FC stacks of Fig. 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace updlrm::dlrm {

enum class Activation { kRelu, kSigmoid, kNone };

/// One fully connected layer: y = act(W x + b), W is out x in row-major.
class MlpLayer {
 public:
  static Result<MlpLayer> Create(std::uint32_t in_dim, std::uint32_t out_dim,
                                 Activation act, std::uint64_t seed);

  std::uint32_t in_dim() const { return in_dim_; }
  std::uint32_t out_dim() const { return out_dim_; }
  Activation activation() const { return act_; }

  void Forward(std::span<const float> in, std::span<float> out) const;

  /// Multiply-accumulate FLOPs per sample (2 * in * out).
  std::uint64_t FlopsPerSample() const {
    return 2ULL * in_dim_ * out_dim_;
  }

  /// Read-only parameter views for the batched execution path
  /// (dlrm/batched.h), which re-lays the weights column-major once and
  /// must start from the exact floats Forward uses.
  std::span<const float> weights() const { return weights_; }  // out x in
  std::span<const float> bias() const { return bias_; }

 private:
  MlpLayer(std::uint32_t in_dim, std::uint32_t out_dim, Activation act,
           std::vector<float> weights, std::vector<float> bias)
      : in_dim_(in_dim),
        out_dim_(out_dim),
        act_(act),
        weights_(std::move(weights)),
        bias_(std::move(bias)) {}

  std::uint32_t in_dim_;
  std::uint32_t out_dim_;
  Activation act_;
  std::vector<float> weights_;  // out x in, row-major
  std::vector<float> bias_;
};

/// A stack of FC layers. Hidden layers use ReLU; the final layer's
/// activation is configurable (sigmoid for the CTR head, none for the
/// bottom MLP's feature output... the bottom stack conventionally ends
/// in ReLU, which is the default here).
class Mlp {
 public:
  /// dims = {in, h1, ..., out}; requires >= 2 entries.
  static Result<Mlp> Create(std::span<const std::uint32_t> dims,
                            Activation final_act, std::uint64_t seed);

  std::uint32_t in_dim() const { return layers_.front().in_dim(); }
  std::uint32_t out_dim() const { return layers_.back().out_dim(); }
  std::size_t num_layers() const { return layers_.size(); }
  const MlpLayer& layer(std::size_t l) const { return layers_[l]; }

  /// Single-sample forward.
  std::vector<float> Forward(std::span<const float> in) const;

  std::uint64_t FlopsPerSample() const;

 private:
  explicit Mlp(std::vector<MlpLayer> layers) : layers_(std::move(layers)) {}

  std::vector<MlpLayer> layers_;
};

}  // namespace updlrm::dlrm
