#include "dlrm/embedding.h"

#include <algorithm>

#include "common/fixed_point.h"
#include "common/rng.h"

namespace updlrm::dlrm {

Result<EmbeddingTable> EmbeddingTable::Create(std::uint64_t rows,
                                              std::uint32_t cols,
                                              std::uint64_t seed) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("embedding table dimensions must be > 0");
  }
  std::vector<float> data(rows * cols);
  Rng rng(seed);
  for (auto& v : data) {
    v = static_cast<float>(rng.NextGaussian() * 0.1);
  }
  return EmbeddingTable(TableShape{rows, cols}, std::move(data));
}

Result<EmbeddingTable> EmbeddingTable::FromData(std::uint64_t rows,
                                                std::uint32_t cols,
                                                std::vector<float> data) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("embedding table dimensions must be > 0");
  }
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(
        "embedding table data size does not match rows * cols");
  }
  return EmbeddingTable(TableShape{rows, cols}, std::move(data));
}

std::span<const float> EmbeddingTable::Row(std::uint64_t r) const {
  UPDLRM_CHECK(r < shape_.rows);
  return {data_.data() + r * shape_.cols, shape_.cols};
}

void EmbeddingTable::QuantizedRow(std::uint64_t r,
                                  std::span<std::int32_t> out) const {
  UPDLRM_CHECK(out.size() == shape_.cols);
  const auto row = Row(r);
  for (std::uint32_t c = 0; c < shape_.cols; ++c) {
    out[c] = ToFixed(row[c]);
  }
}

void EmbeddingTable::BagSum(std::span<const std::uint32_t> indices,
                            std::span<float> out) const {
  UPDLRM_CHECK(out.size() == shape_.cols);
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::uint32_t idx : indices) {
    const auto row = Row(idx);
    for (std::uint32_t c = 0; c < shape_.cols; ++c) {
      out[c] += row[c];
    }
  }
}

void EmbeddingTable::BagSumFixed(std::span<const std::uint32_t> indices,
                                 std::span<std::int64_t> out) const {
  UPDLRM_CHECK(out.size() == shape_.cols);
  std::fill(out.begin(), out.end(), std::int64_t{0});
  for (std::uint32_t idx : indices) {
    const auto row = Row(idx);
    for (std::uint32_t c = 0; c < shape_.cols; ++c) {
      out[c] += ToFixed(row[c]);
    }
  }
}

}  // namespace updlrm::dlrm
