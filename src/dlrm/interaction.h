// Feature interaction between the dense feature vector and the pooled
// embeddings.
//
// Fig. 1 of the paper concatenates dense and sparse features before the
// top FC stack (kConcat, the default). Meta's reference DLRM also offers
// pairwise dot-product interaction (kDot); both are provided so the
// model matches either convention.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace updlrm::dlrm {

enum class InteractionKind { kConcat, kDot };

/// Output width of the interaction for `num_tables` embedding vectors of
/// width `dim` plus one dense feature vector of width `dim`.
///   kConcat: (num_tables + 1) * dim
///   kDot:    dim + C(num_tables + 1, 2)   (dense passthrough + pairwise
///            dots of all feature vectors, as in Meta's DLRM)
std::uint32_t InteractionOutputDim(InteractionKind kind,
                                   std::uint32_t num_tables,
                                   std::uint32_t dim);

/// Computes the interaction. `dense` has width dim; `pooled` is
/// num_tables vectors of width dim, concatenated. `out` must have
/// InteractionOutputDim(...) elements.
void ComputeInteraction(InteractionKind kind, std::span<const float> dense,
                        std::span<const float> pooled,
                        std::uint32_t num_tables, std::uint32_t dim,
                        std::span<float> out);

}  // namespace updlrm::dlrm
