// The DLRM reference model (Fig. 1): bottom MLP over dense inputs,
// embedding bags over sparse inputs, feature interaction, top MLP with a
// sigmoid CTR head.
//
// This is the functional ground truth every accelerated implementation
// is validated against: the UpDLRM engine's DPU-simulated embedding path
// must reproduce PooledEmbeddingsFixed() bit-exactly, and end-to-end CTR
// outputs must match ForwardBatch() exactly when both use the same
// embedding arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "dlrm/embedding.h"
#include "dlrm/interaction.h"
#include "dlrm/mlp.h"
#include "trace/trace.h"

namespace updlrm::dlrm {

struct DlrmConfig {
  std::uint32_t num_tables = 8;       // the paper duplicates into 8 EMTs
  std::uint64_t rows_per_table = 0;   // dataset #Items (homogeneous)
  /// Heterogeneous table sizes (size == num_tables when non-empty;
  /// overrides rows_per_table). Real DLRMs mix table sizes widely; the
  /// paper's evaluation duplicates one dataset, so this stays empty
  /// there.
  std::vector<std::uint64_t> table_rows;
  std::uint32_t embedding_dim = 32;   // the paper's embedding dimension
  std::uint32_t dense_features = 13;  // continuous input width

  // Hidden widths; the bottom stack ends in embedding_dim, the top stack
  // in a single sigmoid CTR output (both appended automatically).
  std::vector<std::uint32_t> bottom_hidden = {64, 32};
  std::vector<std::uint32_t> top_hidden = {96, 64};

  InteractionKind interaction = InteractionKind::kConcat;

  // The paper forms the 8 EMTs by duplicating one dataset; sharing the
  // backing store keeps full-scale functional runs within host memory.
  bool share_table_content = true;

  std::uint64_t seed = 1234;

  Status Validate() const;
  bool heterogeneous() const { return !table_rows.empty(); }
  std::uint64_t RowsInTable(std::uint32_t t) const {
    UPDLRM_CHECK(t < num_tables);
    return heterogeneous() ? table_rows[t] : rows_per_table;
  }
  /// Shape of table `t` (all tables when homogeneous).
  TableShape table_shape(std::uint32_t t = 0) const {
    return TableShape{RowsInTable(t), embedding_dim};
  }
  /// Combined size of all EMTs (the CPU gather working set).
  std::uint64_t TotalTableBytes() const;

  /// MLP multiply-accumulate FLOPs per sample, used by the CPU/GPU
  /// timing models.
  std::uint64_t BottomFlopsPerSample() const;
  std::uint64_t TopFlopsPerSample() const;
};

/// Deterministic synthetic continuous features (age, price, ... stand-ins).
class DenseInputs {
 public:
  static DenseInputs Generate(std::size_t num_samples, std::uint32_t dim,
                              std::uint64_t seed);

  std::span<const float> Sample(std::size_t s) const {
    UPDLRM_CHECK(s < num_samples_);
    return {data_.data() + s * dim_, dim_};
  }
  std::size_t num_samples() const { return num_samples_; }
  std::uint32_t dim() const { return dim_; }

 private:
  DenseInputs(std::size_t num_samples, std::uint32_t dim,
              std::vector<float> data)
      : num_samples_(num_samples), dim_(dim), data_(std::move(data)) {}

  std::size_t num_samples_;
  std::uint32_t dim_;
  std::vector<float> data_;
};

class DlrmModel {
 public:
  static Result<DlrmModel> Create(const DlrmConfig& config);

  /// Builds a model around externally-constructed tables (one per
  /// config table; shapes must match the config's table shapes). The
  /// MLP stacks are derived from config.seed exactly as Create does, so
  /// a shard sub-model built from extracted rows shares its reference
  /// MLPs bit-for-bit with the flat model of the same seed.
  static Result<DlrmModel> CreateWithTables(
      const DlrmConfig& config,
      std::vector<std::shared_ptr<const EmbeddingTable>> tables);

  const DlrmConfig& config() const { return config_; }
  const EmbeddingTable& table(std::uint32_t t) const {
    UPDLRM_CHECK(t < tables_.size());
    return *tables_[t];
  }
  const Mlp& bottom_mlp() const { return *bottom_; }
  const Mlp& top_mlp() const { return *top_; }

  /// Float pooled embeddings of one sample: num_tables * dim values.
  void PooledEmbeddings(const trace::Trace& trace, std::size_t sample,
                        std::span<float> out) const;

  /// Fixed-point pooled embeddings (quantize rows, int64-accumulate,
  /// dequantize) — the DPU-equivalent arithmetic.
  void PooledEmbeddingsFixed(const trace::Trace& trace, std::size_t sample,
                             std::span<float> out) const;

  /// CTR for one sample given raw dense inputs and precomputed pooled
  /// embeddings (lets accelerated embedding paths reuse the MLP stacks).
  float ForwardSample(std::span<const float> dense_raw,
                      std::span<const float> pooled) const;

  /// Full-model reference forward over a batch range.
  std::vector<float> ForwardBatch(const DenseInputs& dense,
                                  const trace::Trace& trace,
                                  trace::BatchRange range,
                                  bool fixed_point_embeddings) const;

 private:
  // Shared tail of Create / CreateWithTables: builds the MLP stacks
  // from the config seed and assembles the model.
  static Result<DlrmModel> Finish(
      DlrmConfig config,
      std::vector<std::shared_ptr<const EmbeddingTable>> tables);

  DlrmModel(DlrmConfig config,
            std::vector<std::shared_ptr<const EmbeddingTable>> tables,
            Mlp bottom, Mlp top)
      : config_(std::move(config)),
        tables_(std::move(tables)),
        bottom_(std::make_unique<Mlp>(std::move(bottom))),
        top_(std::make_unique<Mlp>(std::move(top))) {}

  DlrmConfig config_;
  std::vector<std::shared_ptr<const EmbeddingTable>> tables_;
  std::unique_ptr<Mlp> bottom_;
  std::unique_ptr<Mlp> top_;
};

}  // namespace updlrm::dlrm
