// Batched MLP / interaction execution over arena buffers.
//
// The per-sample reference path (DlrmModel::ForwardSample) allocates
// fresh vectors per call — fine for validation, fatal in the serving
// hot loop. This module re-lays each MLP's weights column-major once
// and then walks batches with the SIMD axpy kernel
// (simd::AddScaledF32) and per-worker arena scratch: zero steady-state
// allocations, fanned out over host threads.
//
// Bit-exactness contract (pinned by tests/dlrm/batched_test.cc): the
// batched path reproduces MlpLayer::Forward *exactly*, on both the
// scalar and the AVX2 dispatch legs. Per output o the reference
// computes fl(...fl(fl(bias[o] + w[o][0]*x[0]) + w[o][1]*x[1])...);
// the column-major axpy walk performs the same multiply/add sequence
// on the same operands per accumulator — columns are visited in
// ascending input order and every lane does one un-fused mul + add —
// so no float is reassociated or contracted anywhere. Interaction and
// activations reuse the reference code paths verbatim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "dlrm/mlp.h"
#include "dlrm/model.h"

namespace updlrm::dlrm {

/// One MLP stack prepared for batched execution: column-major weights,
/// arena-scratch forward.
class BatchedMlp {
 public:
  static BatchedMlp Prepare(const Mlp& mlp);

  std::uint32_t in_dim() const { return layers_.front().in_dim; }
  std::uint32_t out_dim() const { return layers_.back().out_dim; }
  std::size_t num_layers() const { return layers_.size(); }

  /// Single-sample forward; `out` must hold out_dim() floats. Scratch
  /// (intermediate activations) comes from `arena`; the caller owns
  /// the arena frame.
  void ForwardSample(std::span<const float> in, std::span<float> out,
                     Arena& arena) const;

  /// Serial batch forward: `in` is count x in_dim() row-major, `out`
  /// count x out_dim(). Equivalent to ForwardSample per row.
  void ForwardBatch(std::span<const float> in, std::size_t count,
                    std::span<float> out, Arena& arena) const;

 private:
  struct Layer {
    std::uint32_t in_dim = 0;
    std::uint32_t out_dim = 0;
    Activation act = Activation::kNone;
    std::vector<float> wt;  // in x out: column j = row j of inputs
    std::vector<float> bias;
  };

  explicit BatchedMlp(std::vector<Layer> layers)
      : layers_(std::move(layers)) {}

  // y = act(W x + b) for one sample, axpy over columns.
  static void ForwardLayer(const Layer& layer, const float* in, float* out);

  std::vector<Layer> layers_;
};

/// The full dense path of one DLRM: bottom MLP -> feature interaction
/// -> top MLP, batched. Embedding pooling stays with the engine (the
/// PIM side); this consumes its pooled output.
class BatchedDlrm {
 public:
  /// `model` must outlive this object.
  explicit BatchedDlrm(const DlrmModel& model);

  /// CTR for `count` samples. `dense` holds count x dense_features
  /// rows gathered in batch order; `pooled` count x (tables * dim)
  /// pooled embeddings (the engine's BatchResult::pooled layout);
  /// `ctr` receives count outputs. Samples fan out over `num_threads`
  /// workers (0 = default pool, 1 = serial); each sample is a pure
  /// function into its own ctr slot, so outputs are bit-exact at any
  /// width and equal to DlrmModel::ForwardSample per sample.
  void Forward(std::span<const float> dense, std::span<const float> pooled,
               std::size_t count, std::span<float> ctr,
               std::uint32_t num_threads = 1) const;

 private:
  const DlrmModel* model_;
  BatchedMlp bottom_;
  BatchedMlp top_;
  std::uint32_t inter_dim_ = 0;
};

}  // namespace updlrm::dlrm
