#include "dlrm/model.h"

#include <string>
#include <utility>

#include "common/fixed_point.h"
#include "common/rng.h"

namespace updlrm::dlrm {

namespace {

std::uint64_t StackFlops(std::uint32_t in,
                         std::span<const std::uint32_t> hidden,
                         std::uint32_t out) {
  std::uint64_t flops = 0;
  std::uint32_t prev = in;
  for (std::uint32_t h : hidden) {
    flops += 2ULL * prev * h;
    prev = h;
  }
  flops += 2ULL * prev * out;
  return flops;
}

}  // namespace

Status DlrmConfig::Validate() const {
  if (num_tables == 0) {
    return Status::InvalidArgument("num_tables must be >= 1");
  }
  if (!table_rows.empty()) {
    if (table_rows.size() != num_tables) {
      return Status::InvalidArgument(
          "table_rows must have one entry per table");
    }
    for (std::uint64_t rows : table_rows) {
      if (rows == 0) {
        return Status::InvalidArgument("every table needs >= 1 row");
      }
    }
  } else if (rows_per_table == 0) {
    return Status::InvalidArgument("rows_per_table must be >= 1");
  }
  if (embedding_dim == 0 || embedding_dim % 2 != 0) {
    return Status::InvalidArgument(
        "embedding_dim must be positive and even (8-byte MRAM alignment)");
  }
  if (dense_features == 0) {
    return Status::InvalidArgument("dense_features must be >= 1");
  }
  return Status::Ok();
}

std::uint64_t DlrmConfig::BottomFlopsPerSample() const {
  return StackFlops(dense_features, bottom_hidden, embedding_dim);
}

std::uint64_t DlrmConfig::TopFlopsPerSample() const {
  return StackFlops(
      InteractionOutputDim(interaction, num_tables, embedding_dim),
      top_hidden, 1);
}

std::uint64_t DlrmConfig::TotalTableBytes() const {
  std::uint64_t total = 0;
  for (std::uint32_t t = 0; t < num_tables; ++t) {
    total += table_shape(t).SizeBytes();
  }
  return total;
}

DenseInputs DenseInputs::Generate(std::size_t num_samples, std::uint32_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(num_samples * dim);
  for (auto& v : data) v = static_cast<float>(rng.NextDouble());
  return DenseInputs(num_samples, dim, std::move(data));
}

Result<DlrmModel> DlrmModel::Create(const DlrmConfig& config) {
  UPDLRM_RETURN_IF_ERROR(config.Validate());

  std::vector<std::shared_ptr<const EmbeddingTable>> tables;
  tables.reserve(config.num_tables);
  for (std::uint32_t t = 0; t < config.num_tables; ++t) {
    // Sharing backing stores requires identical shapes.
    if (config.share_table_content && !config.heterogeneous() && t > 0) {
      tables.push_back(tables.front());
      continue;
    }
    auto table = EmbeddingTable::Create(config.RowsInTable(t),
                                        config.embedding_dim,
                                        config.seed + 17 * (t + 1));
    if (!table.ok()) return table.status();
    tables.push_back(
        std::make_shared<const EmbeddingTable>(std::move(table).value()));
  }

  return Finish(config, std::move(tables));
}

Result<DlrmModel> DlrmModel::CreateWithTables(
    const DlrmConfig& config,
    std::vector<std::shared_ptr<const EmbeddingTable>> tables) {
  UPDLRM_RETURN_IF_ERROR(config.Validate());
  if (tables.size() != config.num_tables) {
    return Status::InvalidArgument("CreateWithTables: table count mismatch");
  }
  for (std::uint32_t t = 0; t < config.num_tables; ++t) {
    if (tables[t] == nullptr) {
      return Status::InvalidArgument("CreateWithTables: null table");
    }
    if (tables[t]->rows() != config.RowsInTable(t) ||
        tables[t]->cols() != config.embedding_dim) {
      return Status::InvalidArgument(
          "CreateWithTables: table " + std::to_string(t) +
          " shape does not match the config");
    }
  }
  return Finish(config, std::move(tables));
}

Result<DlrmModel> DlrmModel::Finish(
    DlrmConfig config,
    std::vector<std::shared_ptr<const EmbeddingTable>> tables) {
  std::vector<std::uint32_t> bottom_dims;
  bottom_dims.push_back(config.dense_features);
  bottom_dims.insert(bottom_dims.end(), config.bottom_hidden.begin(),
                     config.bottom_hidden.end());
  bottom_dims.push_back(config.embedding_dim);
  auto bottom = Mlp::Create(bottom_dims, Activation::kRelu,
                            config.seed + 0xb0770);
  if (!bottom.ok()) return bottom.status();

  std::vector<std::uint32_t> top_dims;
  top_dims.push_back(InteractionOutputDim(
      config.interaction, config.num_tables, config.embedding_dim));
  top_dims.insert(top_dims.end(), config.top_hidden.begin(),
                  config.top_hidden.end());
  top_dims.push_back(1);
  auto top = Mlp::Create(top_dims, Activation::kSigmoid,
                         config.seed + 0x70101);
  if (!top.ok()) return top.status();

  return DlrmModel(std::move(config), std::move(tables),
                   std::move(bottom).value(), std::move(top).value());
}

void DlrmModel::PooledEmbeddings(const trace::Trace& trace,
                                 std::size_t sample,
                                 std::span<float> out) const {
  const std::uint32_t dim = config_.embedding_dim;
  UPDLRM_CHECK(out.size() ==
               static_cast<std::size_t>(config_.num_tables) * dim);
  UPDLRM_CHECK(trace.num_tables() == config_.num_tables);
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    tables_[t]->BagSum(trace.tables[t].Sample(sample),
                       out.subspan(static_cast<std::size_t>(t) * dim, dim));
  }
}

void DlrmModel::PooledEmbeddingsFixed(const trace::Trace& trace,
                                      std::size_t sample,
                                      std::span<float> out) const {
  const std::uint32_t dim = config_.embedding_dim;
  UPDLRM_CHECK(out.size() ==
               static_cast<std::size_t>(config_.num_tables) * dim);
  UPDLRM_CHECK(trace.num_tables() == config_.num_tables);
  std::vector<std::int64_t> acc(dim);
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    tables_[t]->BagSumFixed(trace.tables[t].Sample(sample), acc);
    for (std::uint32_t c = 0; c < dim; ++c) {
      out[static_cast<std::size_t>(t) * dim + c] = FromFixedSum(acc[c]);
    }
  }
}

float DlrmModel::ForwardSample(std::span<const float> dense_raw,
                               std::span<const float> pooled) const {
  const std::vector<float> dense_feat = bottom_->Forward(dense_raw);
  std::vector<float> inter(InteractionOutputDim(
      config_.interaction, config_.num_tables, config_.embedding_dim));
  ComputeInteraction(config_.interaction, dense_feat, pooled,
                     config_.num_tables, config_.embedding_dim, inter);
  return top_->Forward(inter).front();
}

std::vector<float> DlrmModel::ForwardBatch(
    const DenseInputs& dense, const trace::Trace& trace,
    trace::BatchRange range, bool fixed_point_embeddings) const {
  std::vector<float> ctr;
  ctr.reserve(range.size());
  std::vector<float> pooled(
      static_cast<std::size_t>(config_.num_tables) * config_.embedding_dim);
  for (std::size_t s = range.begin; s < range.end; ++s) {
    if (fixed_point_embeddings) {
      PooledEmbeddingsFixed(trace, s, pooled);
    } else {
      PooledEmbeddings(trace, s, pooled);
    }
    ctr.push_back(ForwardSample(dense.Sample(s), pooled));
  }
  return ctr;
}

}  // namespace updlrm::dlrm
