#include "dlrm/interaction.h"

#include <algorithm>

namespace updlrm::dlrm {

std::uint32_t InteractionOutputDim(InteractionKind kind,
                                   std::uint32_t num_tables,
                                   std::uint32_t dim) {
  switch (kind) {
    case InteractionKind::kConcat:
      return (num_tables + 1) * dim;
    case InteractionKind::kDot: {
      const std::uint32_t vectors = num_tables + 1;
      return dim + vectors * (vectors - 1) / 2;
    }
  }
  return 0;
}

void ComputeInteraction(InteractionKind kind, std::span<const float> dense,
                        std::span<const float> pooled,
                        std::uint32_t num_tables, std::uint32_t dim,
                        std::span<float> out) {
  UPDLRM_CHECK(dense.size() == dim);
  UPDLRM_CHECK(pooled.size() == static_cast<std::size_t>(num_tables) * dim);
  UPDLRM_CHECK(out.size() == InteractionOutputDim(kind, num_tables, dim));

  switch (kind) {
    case InteractionKind::kConcat: {
      std::copy(dense.begin(), dense.end(), out.begin());
      std::copy(pooled.begin(), pooled.end(), out.begin() + dim);
      return;
    }
    case InteractionKind::kDot: {
      // Vector 0 is the dense feature; vectors 1..num_tables are pooled
      // embeddings. Emit dense passthrough, then upper-triangle dots.
      auto vec = [&](std::uint32_t v) -> std::span<const float> {
        if (v == 0) return dense;
        return pooled.subspan(static_cast<std::size_t>(v - 1) * dim, dim);
      };
      std::copy(dense.begin(), dense.end(), out.begin());
      std::size_t k = dim;
      const std::uint32_t vectors = num_tables + 1;
      for (std::uint32_t i = 0; i < vectors; ++i) {
        const auto vi = vec(i);
        for (std::uint32_t j = i + 1; j < vectors; ++j) {
          const auto vj = vec(j);
          float dot = 0.0f;
          for (std::uint32_t c = 0; c < dim; ++c) dot += vi[c] * vj[c];
          out[k++] = dot;
        }
      }
      return;
    }
  }
}

}  // namespace updlrm::dlrm
