#include "dlrm/batched.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "dlrm/interaction.h"

namespace updlrm::dlrm {

BatchedMlp BatchedMlp::Prepare(const Mlp& mlp) {
  std::vector<Layer> layers;
  layers.reserve(mlp.num_layers());
  for (std::size_t l = 0; l < mlp.num_layers(); ++l) {
    const MlpLayer& src = mlp.layer(l);
    Layer out;
    out.in_dim = src.in_dim();
    out.out_dim = src.out_dim();
    out.act = src.activation();
    out.bias.assign(src.bias().begin(), src.bias().end());
    // Transpose W (out x in, row-major) into wt (in x out): column j
    // of the axpy walk is the j-th input's weight across all outputs.
    out.wt.resize(static_cast<std::size_t>(out.in_dim) * out.out_dim);
    const std::span<const float> w = src.weights();
    for (std::uint32_t o = 0; o < out.out_dim; ++o) {
      for (std::uint32_t j = 0; j < out.in_dim; ++j) {
        out.wt[static_cast<std::size_t>(j) * out.out_dim + o] =
            w[static_cast<std::size_t>(o) * out.in_dim + j];
      }
    }
    layers.push_back(std::move(out));
  }
  return BatchedMlp(std::move(layers));
}

void BatchedMlp::ForwardLayer(const Layer& layer, const float* in,
                              float* out) {
  // acc[o] = bias[o]; then one un-fused mul + add per (o, j) with j
  // ascending — MlpLayer::Forward's exact per-accumulator sequence.
  std::memcpy(out, layer.bias.data(), layer.out_dim * sizeof(float));
  for (std::uint32_t j = 0; j < layer.in_dim; ++j) {
    simd::AddScaledF32(
        layer.wt.data() + static_cast<std::size_t>(j) * layer.out_dim,
        in[j], out, layer.out_dim);
  }
  switch (layer.act) {
    case Activation::kRelu:
      for (std::uint32_t o = 0; o < layer.out_dim; ++o) {
        out[o] = out[o] > 0.0f ? out[o] : 0.0f;
      }
      break;
    case Activation::kSigmoid:
      for (std::uint32_t o = 0; o < layer.out_dim; ++o) {
        out[o] = 1.0f / (1.0f + std::exp(-out[o]));
      }
      break;
    case Activation::kNone:
      break;
  }
}

void BatchedMlp::ForwardSample(std::span<const float> in,
                               std::span<float> out, Arena& arena) const {
  UPDLRM_CHECK(in.size() == in_dim());
  UPDLRM_CHECK(out.size() == out_dim());
  // Ping-pong between two arena buffers wide enough for any layer.
  std::uint32_t max_dim = in_dim();
  for (const Layer& l : layers_) max_dim = std::max(max_dim, l.out_dim);
  float* a = arena.Alloc<float>(max_dim);
  float* b = arena.Alloc<float>(max_dim);
  std::memcpy(a, in.data(), in.size() * sizeof(float));
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    float* dst = (l + 1 == layers_.size()) ? out.data() : b;
    ForwardLayer(layers_[l], a, dst);
    std::swap(a, b);
  }
}

void BatchedMlp::ForwardBatch(std::span<const float> in, std::size_t count,
                              std::span<float> out, Arena& arena) const {
  UPDLRM_CHECK(in.size() == count * in_dim());
  UPDLRM_CHECK(out.size() == count * out_dim());
  for (std::size_t s = 0; s < count; ++s) {
    ForwardSample(in.subspan(s * in_dim(), in_dim()),
                  out.subspan(s * out_dim(), out_dim()), arena);
  }
}

BatchedDlrm::BatchedDlrm(const DlrmModel& model)
    : model_(&model),
      bottom_(BatchedMlp::Prepare(model.bottom_mlp())),
      top_(BatchedMlp::Prepare(model.top_mlp())),
      inter_dim_(InteractionOutputDim(model.config().interaction,
                                      model.config().num_tables,
                                      model.config().embedding_dim)) {}

void BatchedDlrm::Forward(std::span<const float> dense,
                          std::span<const float> pooled, std::size_t count,
                          std::span<float> ctr,
                          std::uint32_t num_threads) const {
  const dlrm::DlrmConfig& config = model_->config();
  const std::uint32_t dense_dim = config.dense_features;
  const std::uint32_t dim = config.embedding_dim;
  const std::size_t pooled_stride =
      static_cast<std::size_t>(config.num_tables) * dim;
  UPDLRM_CHECK(dense.size() == count * dense_dim);
  UPDLRM_CHECK(pooled.size() == count * pooled_stride);
  UPDLRM_CHECK(ctr.size() == count);

  ParallelFor(
      count,
      [&](std::size_t begin, std::size_t end) {
        Arena& arena = ThreadArena();
        for (std::size_t s = begin; s < end; ++s) {
          ScopedArenaFrame frame(arena);
          float* feat = arena.Alloc<float>(dim);
          bottom_.ForwardSample(dense.subspan(s * dense_dim, dense_dim),
                                {feat, dim}, arena);
          float* inter = arena.Alloc<float>(inter_dim_);
          ComputeInteraction(config.interaction, {feat, dim},
                             pooled.subspan(s * pooled_stride, pooled_stride),
                             config.num_tables, dim, {inter, inter_dim_});
          top_.ForwardSample({inter, inter_dim_}, ctr.subspan(s, 1), arena);
        }
      },
      num_threads);
}

}  // namespace updlrm::dlrm
