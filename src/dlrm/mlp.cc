#include "dlrm/mlp.h"

#include <cmath>

#include "common/rng.h"

namespace updlrm::dlrm {

Result<MlpLayer> MlpLayer::Create(std::uint32_t in_dim,
                                  std::uint32_t out_dim, Activation act,
                                  std::uint64_t seed) {
  if (in_dim == 0 || out_dim == 0) {
    return Status::InvalidArgument("MLP layer dimensions must be > 0");
  }
  Rng rng(seed);
  // He initialization, appropriate for the ReLU stacks.
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  std::vector<float> weights(static_cast<std::size_t>(in_dim) * out_dim);
  for (auto& w : weights) {
    w = static_cast<float>(rng.NextGaussian() * scale);
  }
  std::vector<float> bias(out_dim, 0.0f);
  return MlpLayer(in_dim, out_dim, act, std::move(weights),
                  std::move(bias));
}

void MlpLayer::Forward(std::span<const float> in,
                       std::span<float> out) const {
  UPDLRM_CHECK(in.size() == in_dim_);
  UPDLRM_CHECK(out.size() == out_dim_);
  for (std::uint32_t o = 0; o < out_dim_; ++o) {
    const float* w = weights_.data() + static_cast<std::size_t>(o) * in_dim_;
    float acc = bias_[o];
    for (std::uint32_t i = 0; i < in_dim_; ++i) {
      acc += w[i] * in[i];
    }
    switch (act_) {
      case Activation::kRelu:
        out[o] = acc > 0.0f ? acc : 0.0f;
        break;
      case Activation::kSigmoid:
        out[o] = 1.0f / (1.0f + std::exp(-acc));
        break;
      case Activation::kNone:
        out[o] = acc;
        break;
    }
  }
}

Result<Mlp> Mlp::Create(std::span<const std::uint32_t> dims,
                        Activation final_act, std::uint64_t seed) {
  if (dims.size() < 2) {
    return Status::InvalidArgument("MLP needs at least input and output dims");
  }
  std::vector<MlpLayer> layers;
  layers.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const bool last = (l + 2 == dims.size());
    auto layer = MlpLayer::Create(dims[l], dims[l + 1],
                                  last ? final_act : Activation::kRelu,
                                  seed + l * 0x9e3779b9ULL);
    if (!layer.ok()) return layer.status();
    layers.push_back(std::move(layer).value());
  }
  return Mlp(std::move(layers));
}

std::vector<float> Mlp::Forward(std::span<const float> in) const {
  std::vector<float> current(in.begin(), in.end());
  std::vector<float> next;
  for (const auto& layer : layers_) {
    next.assign(layer.out_dim(), 0.0f);
    layer.Forward(current, next);
    current.swap(next);
  }
  return current;
}

std::uint64_t Mlp::FlopsPerSample() const {
  std::uint64_t total = 0;
  for (const auto& layer : layers_) total += layer.FlopsPerSample();
  return total;
}

}  // namespace updlrm::dlrm
