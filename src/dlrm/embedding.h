// Embedding table and embedding-bag (lookup + sum reduction) reference
// implementation.
//
// Values are initialized N(0, 0.1), deterministically from a seed. The
// table exposes both float rows (for the CPU reference path) and Q15.16
// quantized rows (what gets placed into DPU MRAM); BagSumFixed is the
// bit-exact reference for the simulated DPU kernel output.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace updlrm::dlrm {

/// Shape of an embedding table; the partitioners and timing models only
/// need this, not the contents.
struct TableShape {
  std::uint64_t rows = 0;
  std::uint32_t cols = 0;

  std::uint64_t SizeBytes() const { return rows * cols * 4ULL; }
};

class EmbeddingTable {
 public:
  /// Allocates rows*cols floats; fails for zero dimensions.
  static Result<EmbeddingTable> Create(std::uint64_t rows,
                                       std::uint32_t cols,
                                       std::uint64_t seed);

  /// Wraps externally-built row-major contents (`data.size()` must be
  /// rows * cols). The sharded scale-out engine extracts each shard's
  /// owned rows from a reference table into a dense local table whose
  /// rows are bit-identical to the originals.
  static Result<EmbeddingTable> FromData(std::uint64_t rows,
                                         std::uint32_t cols,
                                         std::vector<float> data);

  /// Raw row-major contents (row extraction by the sharding layer).
  std::span<const float> data() const { return data_; }

  std::uint64_t rows() const { return shape_.rows; }
  std::uint32_t cols() const { return shape_.cols; }
  const TableShape& shape() const { return shape_; }

  std::span<const float> Row(std::uint64_t r) const;

  /// Quantized (Q15.16) copy of row `r` into `out` (size == cols).
  void QuantizedRow(std::uint64_t r, std::span<std::int32_t> out) const;

  /// Float embedding-bag: out[c] = sum over indices of Row(i)[c].
  void BagSum(std::span<const std::uint32_t> indices,
              std::span<float> out) const;

  /// Fixed-point embedding-bag with int64 accumulation — the bit-exact
  /// reference for the DPU pipeline (quantize rows, then sum).
  void BagSumFixed(std::span<const std::uint32_t> indices,
                   std::span<std::int64_t> out) const;

 private:
  EmbeddingTable(TableShape shape, std::vector<float> data)
      : shape_(shape), data_(std::move(data)) {}

  TableShape shape_;
  std::vector<float> data_;  // row-major
};

}  // namespace updlrm::dlrm
