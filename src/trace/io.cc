#include "trace/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace updlrm::trace {

namespace {

constexpr char kMagic[4] = {'U', 'P', 'T', 'R'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  if (!WriteScalar<std::uint64_t>(f, v.size())) return false;
  if (v.empty()) return true;
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadVector(std::FILE* f, std::vector<T>* v,
                std::uint64_t max_elements) {
  std::uint64_t size = 0;
  if (!ReadScalar(f, &size)) return false;
  if (size > max_elements) return false;  // corrupt / hostile header
  v->resize(size);
  if (size == 0) return true;
  return std::fread(v->data(), sizeof(T), size, f) == size;
}

// An upper bound on plausible element counts, to reject corrupt sizes
// before attempting a huge allocation.
constexpr std::uint64_t kMaxElements = 1ULL << 36;

}  // namespace

Status SaveTrace(const Trace& trace, const std::string& path) {
  UPDLRM_RETURN_IF_ERROR(trace.Validate());
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  bool ok = std::fwrite(kMagic, 1, 4, f.get()) == 4 &&
            WriteScalar<std::uint32_t>(f.get(), kTraceFormatVersion) &&
            WriteScalar<std::uint64_t>(f.get(), trace.num_items) &&
            WriteScalar<std::uint32_t>(f.get(), trace.num_tables()) &&
            WriteVector(f.get(), trace.items_per_table);
  for (const auto& table : trace.tables) {
    if (!ok) break;
    const std::vector<std::uint64_t> offsets(table.offsets().begin(),
                                             table.offsets().end());
    const std::vector<std::uint32_t> indices(table.indices().begin(),
                                             table.indices().end());
    ok = WriteVector(f.get(), offsets) && WriteVector(f.get(), indices);
  }
  if (!ok) {
    return Status::FailedPrecondition("short write to " + path);
  }
  return Status::Ok();
}

Result<Trace> LoadTrace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    return Status::NotFound("cannot open: " + path);
  }
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument(path + " is not a trace file");
  }
  std::uint32_t version = 0;
  if (!ReadScalar(f.get(), &version) || version != kTraceFormatVersion) {
    return Status::InvalidArgument("unsupported trace format version");
  }

  Trace trace;
  std::uint32_t num_tables = 0;
  if (!ReadScalar(f.get(), &trace.num_items) ||
      !ReadScalar(f.get(), &num_tables)) {
    return Status::InvalidArgument("truncated trace header");
  }
  if (num_tables == 0 || num_tables > 4096) {
    return Status::InvalidArgument("implausible table count");
  }
  if (!ReadVector(f.get(), &trace.items_per_table, 4096)) {
    return Status::InvalidArgument("truncated items_per_table");
  }

  for (std::uint32_t t = 0; t < num_tables; ++t) {
    std::vector<std::uint64_t> offsets;
    std::vector<std::uint32_t> indices;
    if (!ReadVector(f.get(), &offsets, kMaxElements) ||
        !ReadVector(f.get(), &indices, kMaxElements)) {
      return Status::InvalidArgument("truncated trace table " +
                                     std::to_string(t));
    }
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != indices.size()) {
      return Status::InvalidArgument("inconsistent offsets in table " +
                                     std::to_string(t));
    }
    TableTrace table;
    for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
      if (offsets[s + 1] < offsets[s] || offsets[s + 1] > indices.size()) {
        return Status::InvalidArgument("corrupt offsets in table " +
                                       std::to_string(t));
      }
      const std::span<const std::uint32_t> sample(
          indices.data() + offsets[s], offsets[s + 1] - offsets[s]);
      // Validate before AppendSample (whose preconditions abort).
      if (!std::is_sorted(sample.begin(), sample.end()) ||
          std::adjacent_find(sample.begin(), sample.end()) !=
              sample.end()) {
        return Status::InvalidArgument("unsorted sample in table " +
                                       std::to_string(t));
      }
      table.AppendSample(sample);
    }
    trace.tables.push_back(std::move(table));
  }
  UPDLRM_RETURN_IF_ERROR(trace.Validate());
  return trace;
}

}  // namespace updlrm::trace
