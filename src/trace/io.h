// Trace (de)serialization.
//
// Profiling traces drive every pre-processing decision (partitioning,
// cache mining), so being able to persist and reload them — e.g. a
// production trace captured once and reused across experiments — is
// part of the public API. The format is a little-endian binary layout
// with a magic/version header; Load validates structure and index
// ranges before returning.
#pragma once

#include <string>

#include "common/status.h"
#include "trace/trace.h"

namespace updlrm::trace {

/// Binary format version written by SaveTrace. Version 2 added
/// per-table item counts for heterogeneous workloads.
inline constexpr std::uint32_t kTraceFormatVersion = 2;

/// Writes `trace` to `path` (overwrites). Fails on I/O errors or an
/// invalid trace.
Status SaveTrace(const Trace& trace, const std::string& path);

/// Reads a trace written by SaveTrace. Validates the header, structure
/// and index ranges.
Result<Trace> LoadTrace(const std::string& path);

}  // namespace updlrm::trace
