// Access-trace containers.
//
// A Trace is the sparse-input side of a DLRM inference workload: for each
// sample and each embedding table, the set of active item indices (the
// "ones" of the multi-hot encoding). Storage is CSR-style (flat index
// array + per-sample offsets), which is also exactly the IDX/OFFSET
// layout the UpDLRM engine ships to the DPUs in stage 1 (Fig. 4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace updlrm::trace {

/// Per-table CSR of sample index lists. Indices within a sample are
/// sorted and unique (multi-hot semantics).
class TableTrace {
 public:
  TableTrace() = default;

  /// Appends one sample's (sorted, unique) indices.
  void AppendSample(std::span<const std::uint32_t> indices);

  std::size_t num_samples() const { return offsets_.size() - 1; }
  std::uint64_t num_lookups() const { return indices_.size(); }

  std::span<const std::uint32_t> Sample(std::size_t s) const {
    UPDLRM_CHECK(s < num_samples());
    return {indices_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  std::span<const std::uint32_t> indices() const { return indices_; }
  std::span<const std::uint64_t> offsets() const { return offsets_; }

  /// Mean number of active indices per sample.
  double MeasuredAvgReduction() const;

 private:
  std::vector<std::uint32_t> indices_;
  std::vector<std::uint64_t> offsets_ = {0};
};

/// A full multi-table trace.
struct Trace {
  /// Rows per EMT when all tables are duplicates of one dataset (the
  /// paper's setup). Ignored when `items_per_table` is set.
  std::uint64_t num_items = 0;
  /// Per-table row counts for heterogeneous workloads (size must equal
  /// tables.size() when non-empty).
  std::vector<std::uint64_t> items_per_table;
  std::vector<TableTrace> tables;

  std::size_t num_samples() const {
    return tables.empty() ? 0 : tables.front().num_samples();
  }
  std::uint32_t num_tables() const {
    return static_cast<std::uint32_t>(tables.size());
  }
  std::uint64_t ItemsInTable(std::uint32_t t) const {
    UPDLRM_CHECK(t < tables.size());
    return items_per_table.empty() ? num_items : items_per_table[t];
  }

  /// All tables must have the same sample count and indices within
  /// their table's row count.
  Status Validate() const;
};

/// A contiguous range of samples — the unit of inference execution.
struct BatchRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits [0, num_samples) into batches of `batch_size` (last may be
/// short).
std::vector<BatchRange> MakeBatches(std::size_t num_samples,
                                    std::size_t batch_size);

}  // namespace updlrm::trace
