#include "trace/profiler.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/radix_sort.h"
#include "common/stats.h"

namespace updlrm::trace {

std::vector<std::uint64_t> ItemFrequencies(const TableTrace& table,
                                           std::uint64_t num_items) {
  std::vector<std::uint64_t> freq(num_items, 0);
  for (std::uint32_t idx : table.indices()) {
    UPDLRM_CHECK(idx < num_items);
    ++freq[idx];
  }
  return freq;
}

std::vector<std::uint64_t> RowBlockCounts(
    std::span<const std::uint64_t> freq, std::size_t num_blocks) {
  UPDLRM_CHECK(num_blocks >= 1 && num_blocks <= freq.size());
  const std::size_t block_size = freq.size() / num_blocks;
  std::vector<std::uint64_t> blocks(num_blocks, 0);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    const std::size_t b = std::min(i / block_size, num_blocks - 1);
    blocks[b] += freq[i];
  }
  return blocks;
}

SkewReport AnalyzeSkew(std::span<const std::uint64_t> block_counts) {
  SkewReport report;
  const std::vector<double> loads = ToDoubles(block_counts);
  report.max_min_ratio = MaxMinRatio(loads);
  report.imbalance = ImbalanceRatio(loads);
  report.cv = CoefficientOfVariation(loads);
  report.gini = GiniCoefficient(loads);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total > 0.0) {
    report.top_block_share =
        *std::max_element(loads.begin(), loads.end()) / total;
  }
  return report;
}

double TopKAccessShare(std::span<const std::uint64_t> freq,
                       std::size_t top_k) {
  if (freq.empty() || top_k == 0) return 0.0;
  // Only the top-k *multiset of values* matters, and both sums are
  // exact integer sums (order-insensitive) — a linear-time selection
  // gives the same result as a full descending sort.
  std::vector<std::uint64_t> values(freq.begin(), freq.end());
  top_k = std::min(top_k, values.size());
  std::nth_element(values.begin(), values.begin() + (top_k - 1),
                   values.end(), std::greater<std::uint64_t>());
  const double total = static_cast<double>(
      std::accumulate(values.begin(), values.end(), std::uint64_t{0}));
  if (total == 0.0) return 0.0;
  const double top = static_cast<double>(
      std::accumulate(values.begin(), values.begin() + top_k,
                      std::uint64_t{0}));
  return top / total;
}

std::vector<std::uint32_t> ItemsByFrequency(
    std::span<const std::uint64_t> freq) {
  // Stable descending-by-frequency == stable ascending on ~freq; the
  // radix sort reproduces the stable_sort permutation exactly.
  std::vector<std::uint32_t> ids(freq.size());
  std::iota(ids.begin(), ids.end(), 0U);
  std::vector<std::uint64_t> keys(freq.size());
  for (std::size_t i = 0; i < freq.size(); ++i) {
    keys[i] = AscendingKeyFromDescendingU64(freq[i]);
  }
  StableRadixSortIdsByKey(std::span<std::uint32_t>(ids),
                          std::span<std::uint64_t>(keys));
  return ids;
}

TableProfile ProfileTable(const TableTrace& table,
                          std::uint64_t num_items) {
  TableProfile profile;
  profile.freq = ItemFrequencies(table, num_items);
  profile.by_freq = ItemsByFrequency(profile.freq);
  return profile;
}

}  // namespace updlrm::trace
