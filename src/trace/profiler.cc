#include "trace/profiler.h"

#include <algorithm>
#include <numeric>

#include "common/stats.h"

namespace updlrm::trace {

std::vector<std::uint64_t> ItemFrequencies(const TableTrace& table,
                                           std::uint64_t num_items) {
  std::vector<std::uint64_t> freq(num_items, 0);
  for (std::uint32_t idx : table.indices()) {
    UPDLRM_CHECK(idx < num_items);
    ++freq[idx];
  }
  return freq;
}

std::vector<std::uint64_t> RowBlockCounts(
    std::span<const std::uint64_t> freq, std::size_t num_blocks) {
  UPDLRM_CHECK(num_blocks >= 1 && num_blocks <= freq.size());
  const std::size_t block_size = freq.size() / num_blocks;
  std::vector<std::uint64_t> blocks(num_blocks, 0);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    const std::size_t b = std::min(i / block_size, num_blocks - 1);
    blocks[b] += freq[i];
  }
  return blocks;
}

SkewReport AnalyzeSkew(std::span<const std::uint64_t> block_counts) {
  SkewReport report;
  const std::vector<double> loads = ToDoubles(block_counts);
  report.max_min_ratio = MaxMinRatio(loads);
  report.imbalance = ImbalanceRatio(loads);
  report.cv = CoefficientOfVariation(loads);
  report.gini = GiniCoefficient(loads);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total > 0.0) {
    report.top_block_share =
        *std::max_element(loads.begin(), loads.end()) / total;
  }
  return report;
}

double TopKAccessShare(std::span<const std::uint64_t> freq,
                       std::size_t top_k) {
  if (freq.empty() || top_k == 0) return 0.0;
  std::vector<std::uint64_t> sorted(freq.begin(), freq.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = static_cast<double>(
      std::accumulate(sorted.begin(), sorted.end(), std::uint64_t{0}));
  if (total == 0.0) return 0.0;
  top_k = std::min(top_k, sorted.size());
  const double top = static_cast<double>(
      std::accumulate(sorted.begin(), sorted.begin() + top_k,
                      std::uint64_t{0}));
  return top / total;
}

std::vector<std::uint32_t> ItemsByFrequency(
    std::span<const std::uint64_t> freq) {
  std::vector<std::uint32_t> ids(freq.size());
  std::iota(ids.begin(), ids.end(), 0U);
  std::stable_sort(ids.begin(), ids.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return freq[a] > freq[b];
                   });
  return ids;
}

}  // namespace updlrm::trace
