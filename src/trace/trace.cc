#include "trace/trace.h"

#include <algorithm>

namespace updlrm::trace {

void TableTrace::AppendSample(std::span<const std::uint32_t> indices) {
  UPDLRM_CHECK_MSG(std::is_sorted(indices.begin(), indices.end()),
                   "sample indices must be sorted");
  UPDLRM_CHECK_MSG(
      std::adjacent_find(indices.begin(), indices.end()) == indices.end(),
      "sample indices must be unique");
  indices_.insert(indices_.end(), indices.begin(), indices.end());
  offsets_.push_back(indices_.size());
}

double TableTrace::MeasuredAvgReduction() const {
  if (num_samples() == 0) return 0.0;
  return static_cast<double>(num_lookups()) /
         static_cast<double>(num_samples());
}

Status Trace::Validate() const {
  if (tables.empty()) return Status::InvalidArgument("trace has no tables");
  if (!items_per_table.empty() &&
      items_per_table.size() != tables.size()) {
    return Status::InvalidArgument(
        "items_per_table must match the table count");
  }
  const std::size_t n = tables.front().num_samples();
  for (std::size_t t = 0; t < tables.size(); ++t) {
    if (tables[t].num_samples() != n) {
      return Status::InvalidArgument("table " + std::to_string(t) +
                                     " has mismatched sample count");
    }
    const std::uint64_t items =
        ItemsInTable(static_cast<std::uint32_t>(t));
    for (std::uint32_t idx : tables[t].indices()) {
      if (idx >= items) {
        return Status::OutOfRange(
            "index " + std::to_string(idx) + " >= table " +
            std::to_string(t) + "'s " + std::to_string(items) + " items");
      }
    }
  }
  return Status::Ok();
}

std::vector<BatchRange> MakeBatches(std::size_t num_samples,
                                    std::size_t batch_size) {
  UPDLRM_CHECK(batch_size > 0);
  std::vector<BatchRange> batches;
  for (std::size_t begin = 0; begin < num_samples; begin += batch_size) {
    batches.push_back({begin, std::min(begin + batch_size, num_samples)});
  }
  return batches;
}

}  // namespace updlrm::trace
