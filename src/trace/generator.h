// Synthetic trace generation.
//
// Produces multi-hot access traces whose statistics match a DatasetSpec:
//   * per-sample reduction ~ Poisson(avg_reduction), clamped to >= 1;
//   * item popularity Zipf(zipf_alpha) over popularity *ranks*;
//   * ranks map to row ids through a "noisy-sort" permutation controlled
//     by rank_jitter, reproducing the id/popularity locality that makes
//     Fig. 5's row-block histogram skewed;
//   * popular items form cliques of 2-4 that co-occur within samples with
//     probability clique_prob — the structure GRACE-style caching mines.
//
// Everything is deterministic given (spec.seed, options).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "trace/dataset.h"
#include "trace/trace.h"

namespace updlrm::trace {

struct TraceGeneratorOptions {
  std::size_t num_samples = 12'800;  // the paper samples 12,800 inferences
  std::uint32_t num_tables = 8;      // the paper duplicates into 8 EMTs
  // When > 0, overrides spec.seed.
  std::uint64_t seed_override = 0;

  // Popularity drift: with probability `popularity_drift`, each hot
  // rank's item identity is swapped with a random cold item for the
  // *second half* of the trace. Models the staleness that
  // profile-once/serve-later systems face (the paper partitions from a
  // historical trace); 0 = stationary popularity.
  double popularity_drift = 0.0;

  // Host threads for per-table generation (0 = default pool,
  // 1 = serial). Tables already draw from independent per-table seed
  // streams, so the generated trace is identical at any thread count.
  std::uint32_t num_threads = 0;
};

/// The planted co-occurrence structure: cliques of item ids (ground truth
/// for testing cache miners) plus the rank->id permutation head.
struct CliqueModel {
  // Each clique lists 2-4 item ids; cliques are disjoint.
  std::vector<std::vector<std::uint32_t>> cliques;
  // clique_of_rank[r] = clique index of popularity rank r, or -1.
  std::vector<std::int32_t> clique_of_rank;
};

/// Heterogeneous workloads: one DatasetSpec per table (real DLRMs mix
/// table sizes and skews; the paper's setup duplicates one dataset).
/// Each table is generated from its own spec with an independent seed
/// stream; options.num_tables is ignored (specs.size() tables).
Result<Trace> GenerateHeterogeneousTrace(
    std::span<const DatasetSpec> specs,
    const TraceGeneratorOptions& options);

class TraceGenerator {
 public:
  explicit TraceGenerator(DatasetSpec spec) : spec_(std::move(spec)) {}

  /// Generates the full trace. Fails if the spec is invalid.
  Result<Trace> Generate(const TraceGeneratorOptions& options) const;

  /// Rebuilds the planted clique model for table `table` (deterministic);
  /// exposed for tests and for the oracle cache generator.
  CliqueModel BuildCliqueModel(std::uint32_t table,
                               const TraceGeneratorOptions& options) const;

  const DatasetSpec& spec() const { return spec_; }

 private:
  // rank -> item id map for one table.
  std::vector<std::uint32_t> BuildRankToId(Rng& rng) const;

  // BuildCliqueModel against a rank map the caller already built (the
  // generator reuses one map per table instead of re-deriving it).
  CliqueModel BuildCliqueModelFromRanks(
      std::uint32_t table, std::uint64_t base_seed,
      std::span<const std::uint32_t> rank_to_id) const;

  DatasetSpec spec_;
};

}  // namespace updlrm::trace
