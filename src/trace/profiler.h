// Trace profiling: access-frequency histograms and skew metrics.
//
// The non-uniform and cache-aware partitioners consume the per-item
// access-frequency histogram ("obj_freq" in Algorithm 1); the Fig. 5
// bench consumes the row-block histogram.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.h"

namespace updlrm::trace {

/// Per-item access counts for one table (size == num_items).
std::vector<std::uint64_t> ItemFrequencies(const TableTrace& table,
                                           std::uint64_t num_items);

/// Sum of per-item counts over contiguous row blocks — Fig. 5's
/// "accesses per row block" histogram. Blocks are equal-sized (the last
/// absorbs the remainder). Requires 1 <= num_blocks <= freq.size().
std::vector<std::uint64_t> RowBlockCounts(
    std::span<const std::uint64_t> freq, std::size_t num_blocks);

struct SkewReport {
  double max_min_ratio = 0.0;  // the "340x" metric of Fig. 5
  double imbalance = 0.0;      // max / mean
  double cv = 0.0;             // coefficient of variation
  double gini = 0.0;
  double top_block_share = 0.0;  // fraction of accesses in the max block
};

SkewReport AnalyzeSkew(std::span<const std::uint64_t> block_counts);

/// Fraction of all accesses that hit the `top_k` most frequent items —
/// used to size FAE's GPU-resident hot-item cache and to sanity-check
/// generated skew.
double TopKAccessShare(std::span<const std::uint64_t> freq,
                       std::size_t top_k);

/// Item ids sorted by descending access frequency (ties by id).
std::vector<std::uint32_t> ItemsByFrequency(
    std::span<const std::uint64_t> freq);

/// One table's profile, computed once and shared across every consumer
/// that would otherwise re-derive it: the per-item access histogram and
/// its descending-frequency permutation. Both partitioners and the
/// engine accept these precomputed (the profiling analogue of
/// EngineOptions::premined_cache) — re-profiling the same trace per
/// engine configuration repeats a full radix sort of every table row.
struct TableProfile {
  std::vector<std::uint64_t> freq;     // ItemFrequencies(table, items)
  std::vector<std::uint32_t> by_freq;  // ItemsByFrequency(freq)
};

/// Profiles one table: histogram + descending-frequency order.
TableProfile ProfileTable(const TableTrace& table,
                          std::uint64_t num_items);

}  // namespace updlrm::trace
