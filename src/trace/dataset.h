// Dataset specifications.
//
// The paper evaluates on six real-world workloads (Table 1) grouped by
// "hotness" (average multi-hot reduction), plus three trace-analysis
// datasets (Goodreads / Movie / Twitch) for Figs. 5-6. The raw datasets
// are not redistributable, so each spec captures the properties the
// algorithms actually consume — item count, average reduction, popularity
// skew, id-vs-popularity locality, and co-occurrence strength — and the
// TraceGenerator synthesizes access traces with exactly those properties
// (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace updlrm::trace {

enum class Hotness { kLow, kMedium, kHigh };

std::string_view HotnessName(Hotness h);

struct DatasetSpec {
  std::string name;       // short name used in the paper's figures
  std::string full_name;  // e.g. "AmazonClothes"
  Hotness hotness = Hotness::kLow;

  std::uint64_t num_items = 0;   // EMT rows (Table 1 "#Items")
  double avg_reduction = 0.0;    // Table 1 "Avg.Reduction"

  // Popularity model: P(rank k) ∝ 1/(k+1)^zipf_alpha.
  double zipf_alpha = 0.8;

  // How strongly item id correlates with popularity rank. 0 = ids are
  // exactly popularity-ordered (maximum row-block skew, Fig. 5);
  // 1 = ids fully shuffled (flat row-block histogram).
  double rank_jitter = 0.1;

  // Co-occurrence model: popular items form cliques of 2..4 that appear
  // together in a sample with this probability (drives GRACE caching).
  double clique_prob = 0.3;
  std::uint32_t num_hot_items = 4096;  // clique pool size (top ranks)

  std::uint64_t seed = 42;  // base seed for this dataset's traces

  /// Validates ranges (e.g. num_items >= 1, avg_reduction >= 1).
  Status Validate() const;
};

/// The six Table 1 workloads, in the paper's order:
/// clo, home (Low Hot); meta1, meta2 (Medium Hot); read, read2 (High Hot).
std::span<const DatasetSpec> Table1Workloads();

/// The three trace-analysis datasets of Figs. 5-6: Goodreads, Movie,
/// Twitch.
std::span<const DatasetSpec> AccessPatternDatasets();

/// Look up any built-in dataset by short name ("clo", "read2", "movie",
/// ...). Returns NotFound for unknown names.
Result<DatasetSpec> FindDataset(std::string_view name);

/// A synthetic spec with a balanced access pattern and a given average
/// reduction — the configuration of the paper's sensitivity study
/// (Fig. 11, §4.4).
DatasetSpec MakeBalancedSyntheticSpec(std::uint64_t num_items,
                                      double avg_reduction,
                                      std::uint64_t seed = 7);

}  // namespace updlrm::trace
