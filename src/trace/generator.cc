#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/radix_sort.h"
#include "common/thread_pool.h"

namespace updlrm::trace {

namespace {

// Independent, order-insensitive per-table / per-purpose seed streams.
std::uint64_t DeriveSeed(std::uint64_t base, std::uint32_t table,
                         std::uint64_t purpose) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (table + 1)) ^
                    (0xc2b2ae3d27d4eb4fULL * purpose);
  return SplitMix64(s);
}

constexpr std::uint64_t kPurposePerm = 1;
constexpr std::uint64_t kPurposeClique = 2;
constexpr std::uint64_t kPurposeSamples = 3;
constexpr std::uint64_t kPurposeDrift = 4;

}  // namespace

std::vector<std::uint32_t> TraceGenerator::BuildRankToId(Rng& rng) const {
  const std::uint64_t n = spec_.num_items;
  // "Noisy sort": sort ids by (id + jitter * n * U). jitter == 0 keeps the
  // identity map (ids exactly popularity-ordered); jitter == 1 approaches
  // a uniform random permutation.
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0U);
  if (spec_.rank_jitter <= 0.0) return ids;

  // Keys are non-negative, so their IEEE-754 bit patterns order exactly
  // like the doubles and the stable radix sort reproduces the
  // stable_sort permutation bit for bit (see common/radix_sort.h).
  std::vector<std::uint64_t> keys(n);
  const double noise_scale = spec_.rank_jitter * static_cast<double>(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    keys[i] = AscendingKeyFromNonNegativeDouble(
        static_cast<double>(i) + noise_scale * rng.NextDouble());
  }
  StableRadixSortIdsByKey(std::span<std::uint32_t>(ids),
                          std::span<std::uint64_t>(keys));
  return ids;
}

CliqueModel TraceGenerator::BuildCliqueModel(
    std::uint32_t table, const TraceGeneratorOptions& options) const {
  const std::uint64_t base_seed =
      options.seed_override != 0 ? options.seed_override : spec_.seed;
  Rng perm_rng(DeriveSeed(base_seed, table, kPurposePerm));
  const std::vector<std::uint32_t> rank_to_id = BuildRankToId(perm_rng);
  return BuildCliqueModelFromRanks(table, base_seed, rank_to_id);
}

CliqueModel TraceGenerator::BuildCliqueModelFromRanks(
    std::uint32_t table, std::uint64_t base_seed,
    std::span<const std::uint32_t> rank_to_id) const {
  CliqueModel model;
  const auto num_hot = static_cast<std::uint64_t>(
      std::min<std::uint64_t>(spec_.num_hot_items, spec_.num_items));
  model.clique_of_rank.assign(num_hot, -1);
  if (spec_.clique_prob <= 0.0 || num_hot < 2) return model;

  Rng clique_rng(DeriveSeed(base_seed, table, kPurposeClique));
  std::uint64_t rank = 0;
  while (rank + 1 < num_hot) {
    const std::uint64_t size =
        std::min<std::uint64_t>(2 + clique_rng.NextBounded(3),  // 2..4
                                num_hot - rank);
    if (size < 2) break;
    std::vector<std::uint32_t> clique;
    clique.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      model.clique_of_rank[rank + i] =
          static_cast<std::int32_t>(model.cliques.size());
      clique.push_back(rank_to_id[rank + i]);
    }
    model.cliques.push_back(std::move(clique));
    rank += size;
  }
  return model;
}

Result<Trace> GenerateHeterogeneousTrace(
    std::span<const DatasetSpec> specs,
    const TraceGeneratorOptions& options) {
  if (specs.empty()) {
    return Status::InvalidArgument("need at least one DatasetSpec");
  }
  // Each spec already owns an independent seed stream, so tables
  // generate in parallel and land in their own slot; results are
  // identical at any thread count.
  std::vector<Status> statuses(specs.size());
  std::vector<Trace> per_spec(specs.size());
  ParallelFor(
      specs.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          TraceGeneratorOptions per_table = options;
          per_table.num_tables = 1;
          // Independent per-table seed streams even when specs share a
          // seed.
          std::uint64_t seed =
              (options.seed_override != 0 ? options.seed_override
                                          : specs[t].seed) ^
              (0xd1b54a32d192ed03ULL * (t + 1));
          per_table.seed_override = SplitMix64(seed);
          if (per_table.seed_override == 0) per_table.seed_override = 1;
          auto one = TraceGenerator(specs[t]).Generate(per_table);
          if (!one.ok()) {
            statuses[t] = one.status();
            continue;
          }
          per_spec[t] = std::move(one).value();
        }
      },
      options.num_threads);

  Trace trace;
  trace.items_per_table.reserve(specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    UPDLRM_RETURN_IF_ERROR(statuses[t]);
    trace.tables.push_back(std::move(per_spec[t].tables[0]));
    trace.items_per_table.push_back(specs[t].num_items);
  }
  trace.num_items = 0;
  UPDLRM_RETURN_IF_ERROR(trace.Validate());
  return trace;
}

Result<Trace> TraceGenerator::Generate(
    const TraceGeneratorOptions& options) const {
  UPDLRM_RETURN_IF_ERROR(spec_.Validate());
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  if (options.num_tables == 0) {
    return Status::InvalidArgument("num_tables must be > 0");
  }

  if (options.popularity_drift < 0.0 || options.popularity_drift > 1.0) {
    return Status::InvalidArgument("popularity_drift must be in [0, 1]");
  }
  const std::uint64_t base_seed =
      options.seed_override != 0 ? options.seed_override : spec_.seed;
  const std::uint64_t n = spec_.num_items;
  const ZipfSampler zipf(n, spec_.zipf_alpha);

  Trace trace;
  trace.num_items = n;
  trace.tables.resize(options.num_tables);

  // Tables draw from independent per-table seed streams (DeriveSeed),
  // so they generate in parallel into disjoint slots with a
  // thread-count-invariant result.
  ParallelFor(
      options.num_tables,
      [&](std::size_t table_begin, std::size_t table_end) {
  for (std::uint32_t t = static_cast<std::uint32_t>(table_begin);
       t < table_end; ++t) {
    Rng perm_rng(DeriveSeed(base_seed, t, kPurposePerm));
    const std::vector<std::uint32_t> rank_to_id = BuildRankToId(perm_rng);
    // Reuse the rank map just built — BuildCliqueModel would re-derive
    // the identical permutation from the same seed stream.
    const CliqueModel cliques =
        BuildCliqueModelFromRanks(t, base_seed, rank_to_id);
    Rng rng(DeriveSeed(base_seed, t, kPurposeSamples));

    // clique index -> its member *ranks* (so drifted id maps keep
    // cliques coherent).
    std::vector<std::vector<std::uint32_t>> clique_ranks(
        cliques.cliques.size());
    for (std::uint32_t r = 0; r < cliques.clique_of_rank.size(); ++r) {
      if (cliques.clique_of_rank[r] >= 0) {
        clique_ranks[cliques.clique_of_rank[r]].push_back(r);
      }
    }

    // Second-half id map under popularity drift: hot ranks swap
    // identity with random cold items.
    std::vector<std::uint32_t> drifted = rank_to_id;
    if (options.popularity_drift > 0.0) {
      Rng drift_rng(DeriveSeed(base_seed, t, kPurposeDrift));
      const std::uint64_t hot = std::min<std::uint64_t>(
          std::max<std::uint32_t>(spec_.num_hot_items, 1024), n);
      for (std::uint64_t r = 0; r < hot && hot < n; ++r) {
        if (!drift_rng.NextBernoulli(options.popularity_drift)) continue;
        const std::uint64_t cold = hot + drift_rng.NextBounded(n - hot);
        std::swap(drifted[r], drifted[cold]);
      }
    }
    const std::size_t drift_from =
        options.popularity_drift > 0.0 ? options.num_samples / 2
                                       : options.num_samples;

    std::vector<std::uint32_t> items;
    for (std::size_t s = 0; s < options.num_samples; ++s) {
      const std::vector<std::uint32_t>& id_map =
          s >= drift_from ? drifted : rank_to_id;
      std::uint64_t target =
          std::max<std::uint64_t>(1, rng.NextPoisson(spec_.avg_reduction));
      target = std::min(target, n);

      items.clear();
      // Draw in rounds; sort+unique between rounds keeps multi-hot
      // semantics without per-insert set lookups.
      for (int round = 0; round < 6 && items.size() < target; ++round) {
        const std::size_t need = target - items.size();
        const std::size_t draws = need + need / 4 + 4;
        for (std::size_t d = 0; d < draws && items.size() < target + 8;
             ++d) {
          const std::uint64_t rank = zipf.Sample(rng);
          const bool in_clique =
              rank < cliques.clique_of_rank.size() &&
              cliques.clique_of_rank[rank] >= 0;
          if (in_clique && rng.NextBernoulli(spec_.clique_prob)) {
            for (std::uint32_t member_rank :
                 clique_ranks[cliques.clique_of_rank[rank]]) {
              items.push_back(id_map[member_rank]);
            }
          } else {
            items.push_back(id_map[rank]);
          }
        }
        std::sort(items.begin(), items.end());
        items.erase(std::unique(items.begin(), items.end()), items.end());
      }
      trace.tables[t].AppendSample(items);
    }
  }
      },
      options.num_threads);
  UPDLRM_RETURN_IF_ERROR(trace.Validate());
  return trace;
}

}  // namespace updlrm::trace
