#include "trace/dataset.h"

#include <array>

namespace updlrm::trace {

std::string_view HotnessName(Hotness h) {
  switch (h) {
    case Hotness::kLow:
      return "Low Hot";
    case Hotness::kMedium:
      return "Medium Hot";
    case Hotness::kHigh:
      return "High Hot";
  }
  return "Unknown";
}

Status DatasetSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("dataset name is empty");
  if (num_items < 1) return Status::InvalidArgument("num_items must be >= 1");
  if (avg_reduction < 1.0) {
    return Status::InvalidArgument("avg_reduction must be >= 1");
  }
  if (zipf_alpha < 0.0) {
    return Status::InvalidArgument("zipf_alpha must be >= 0");
  }
  if (rank_jitter < 0.0 || rank_jitter > 1.0) {
    return Status::InvalidArgument("rank_jitter must be in [0, 1]");
  }
  if (clique_prob < 0.0 || clique_prob > 1.0) {
    return Status::InvalidArgument("clique_prob must be in [0, 1]");
  }
  return Status::Ok();
}

namespace {

// Table 1 of the paper. num_items and avg_reduction are the published
// values; zipf_alpha / rank_jitter / clique_prob are calibration knobs
// chosen so the generated traces match the paper's qualitative access
// statistics: "clo" is nearly balanced with a low cache rate, the High
// Hot datasets are strongly skewed with heavy co-occurrence.
constexpr std::uint64_t kBaseSeed = 0x5eedbea7;

const std::array<DatasetSpec, 6>& Table1Array() {
  static const std::array<DatasetSpec, 6> kWorkloads = {{
      {"clo", "AmazonClothes", Hotness::kLow, 2'685'059, 52.91,
       /*zipf_alpha=*/0.35, /*rank_jitter=*/0.8, /*clique_prob=*/0.05,
       /*num_hot_items=*/1024, kBaseSeed + 1},
      {"home", "AmazonHome", Hotness::kLow, 1'301'225, 67.56,
       /*zipf_alpha=*/0.55, /*rank_jitter=*/0.5, /*clique_prob=*/0.15,
       /*num_hot_items=*/2048, kBaseSeed + 2},
      {"meta1", "MetaFBGEMM1", Hotness::kMedium, 5'783'210, 107.2,
       /*zipf_alpha=*/0.8, /*rank_jitter=*/0.25, /*clique_prob=*/0.35,
       /*num_hot_items=*/4096, kBaseSeed + 3},
      {"meta2", "MetaFBGEMM2", Hotness::kMedium, 5'999'981, 188.6,
       /*zipf_alpha=*/0.85, /*rank_jitter=*/0.2, /*clique_prob=*/0.55,
       /*num_hot_items=*/8192, kBaseSeed + 4},
      {"read", "GoodReads", Hotness::kHigh, 2'360'650, 245.8,
       /*zipf_alpha=*/0.9, /*rank_jitter=*/0.12, /*clique_prob=*/0.7,
       /*num_hot_items=*/16384, kBaseSeed + 5},
      {"read2", "GoodReads2", Hotness::kHigh, 2'360'650, 374.08,
       /*zipf_alpha=*/0.95, /*rank_jitter=*/0.1, /*clique_prob=*/0.75,
       /*num_hot_items=*/16384, kBaseSeed + 6},
  }};
  return kWorkloads;
}

// Figs. 5-6 trace-analysis datasets. Item counts follow the public
// dataset cards (MovieLens-scale movie catalog, Twitch streamer pool);
// skews are set to reproduce Fig. 5's ~340x max/min row-block ratio.
const std::array<DatasetSpec, 3>& AccessPatternArray() {
  static const std::array<DatasetSpec, 3> kDatasets = {{
      {"goodreads", "GoodReads (trace study)", Hotness::kHigh, 2'360'650,
       245.8, /*zipf_alpha=*/1.05, /*rank_jitter=*/0.12, /*clique_prob=*/0.6,
       /*num_hot_items=*/8192, kBaseSeed + 10},
      {"movie", "Movie (Amazon Movies&TV)", Hotness::kMedium, 203'970, 89.3,
       /*zipf_alpha=*/1.0, /*rank_jitter=*/0.08, /*clique_prob=*/0.5,
       /*num_hot_items=*/4096, kBaseSeed + 11},
      {"twitch", "Twitch", Hotness::kMedium, 739'991, 77.4,
       /*zipf_alpha=*/0.9, /*rank_jitter=*/0.15, /*clique_prob=*/0.4,
       /*num_hot_items=*/4096, kBaseSeed + 12},
  }};
  return kDatasets;
}

}  // namespace

std::span<const DatasetSpec> Table1Workloads() { return Table1Array(); }

std::span<const DatasetSpec> AccessPatternDatasets() {
  return AccessPatternArray();
}

Result<DatasetSpec> FindDataset(std::string_view name) {
  for (const auto& spec : Table1Array()) {
    if (spec.name == name) return spec;
  }
  for (const auto& spec : AccessPatternArray()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + std::string(name));
}

DatasetSpec MakeBalancedSyntheticSpec(std::uint64_t num_items,
                                      double avg_reduction,
                                      std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "synthetic";
  spec.full_name = "Balanced synthetic (§4.4)";
  spec.hotness = avg_reduction < 100.0   ? Hotness::kLow
                 : avg_reduction < 200.0 ? Hotness::kMedium
                                         : Hotness::kHigh;
  spec.num_items = num_items;
  spec.avg_reduction = avg_reduction;
  spec.zipf_alpha = 0.0;   // uniform popularity == balanced accesses
  spec.rank_jitter = 1.0;  // ids fully shuffled
  spec.clique_prob = 0.0;  // no co-occurrence structure
  spec.num_hot_items = 0;
  spec.seed = seed;
  return spec;
}

}  // namespace updlrm::trace
