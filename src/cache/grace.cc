#include "cache/grace.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "trace/profiler.h"

namespace updlrm::cache {

namespace {

// Pairs counted per sample are capped (a sample with h hot items
// contributes O(h^2) edges). The cap keeps a *random* subset — sampling
// by frequency would count the same head items every time and starve
// mid-popularity cliques; random subsampling scales every pair's
// support by the same expected factor, preserving the ranking.
constexpr std::size_t kMaxHotPerSample = 96;

std::uint64_t PairKey(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// Samples are counted in parallel shards; a per-sample seed keeps the
// (rare) hot-item subsampling independent of both shard boundaries and
// thread count.
std::uint64_t SubsampleSeed(std::size_t sample) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL ^ sample;
  return SplitMix64(state);
}

// Shard grain for the counting / scoring replays: big enough that the
// per-shard hash maps amortize, small enough to load-balance.
std::size_t ReplayGrain(std::size_t num_samples) {
  return std::max<std::size_t>(64, num_samples / 256);
}

// Open-addressed pair-key -> count map (linear probing, power-of-2
// capacity, keys stored +1 so 0 marks an empty slot). The counting
// loop below increments one entry per hot pair per sample — with
// std::unordered_map that is a node allocation + rehash treadmill
// (hundreds of millions of `new`s at full trace scale); a flat table
// makes the increment a hash + probe + add with zero per-entry
// allocation. Counts merge by addition, so determinism is unaffected.
class PairCounts {
 public:
  PairCounts() { slots_.resize(kInitialSlots); }

  void Add(std::uint64_t key, std::uint64_t count) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) Grow();
    Slot& slot = FindSlot(slots_, key);
    if (slot.key_plus_1 == 0) {
      slot.key_plus_1 = key + 1;
      ++size_;
    }
    slot.count += count;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key_plus_1 != 0) fn(slot.key_plus_1 - 1, slot.count);
    }
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr std::size_t kInitialSlots = 1 << 14;

  struct Slot {
    std::uint64_t key_plus_1 = 0;  // 0 = empty
    std::uint64_t count = 0;
  };

  static Slot& FindSlot(std::vector<Slot>& slots, std::uint64_t key) {
    const std::size_t mask = slots.size() - 1;
    std::uint64_t h = key;
    std::size_t i = SplitMix64(h) & mask;
    while (slots[i].key_plus_1 != 0 && slots[i].key_plus_1 != key + 1) {
      i = (i + 1) & mask;
    }
    return slots[i];
  }

  void Grow() {
    std::vector<Slot> bigger(slots_.size() * 2);
    for (const Slot& slot : slots_) {
      if (slot.key_plus_1 == 0) continue;
      Slot& dst = FindSlot(bigger, slot.key_plus_1 - 1);
      dst = slot;
    }
    slots_ = std::move(bigger);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace

Status GraceOptions::Validate() const {
  if (num_hot_items < 2) {
    return Status::InvalidArgument("num_hot_items must be >= 2");
  }
  if (max_list_size < 2 || max_list_size > kMaxCacheListSize) {
    return Status::InvalidArgument("max_list_size must be in [2, " +
                                   std::to_string(kMaxCacheListSize) + "]");
  }
  if (max_lists == 0) {
    return Status::InvalidArgument("max_lists must be >= 1");
  }
  return Status::Ok();
}

GraceMiner::GraceMiner(GraceOptions options) : options_(options) {}

Result<CacheRes> GraceMiner::Mine(const trace::TableTrace& table,
                                  std::uint64_t num_items,
                                  const trace::TableProfile* profile) const {
  UPDLRM_RETURN_IF_ERROR(options_.Validate());
  if (num_items == 0) {
    return Status::InvalidArgument("num_items must be > 0");
  }
  if (profile != nullptr && (profile->freq.size() != num_items ||
                             profile->by_freq.size() != num_items)) {
    return Status::InvalidArgument(
        "profile does not match the table shape");
  }

  trace::TableProfile own_profile;
  if (profile == nullptr) {
    own_profile = trace::ProfileTable(table, num_items);
    profile = &own_profile;
  }
  const std::span<const std::uint64_t> freq(profile->freq);

  // Hot set: the most frequent items with nonzero counts.
  const std::span<const std::uint32_t> by_freq(profile->by_freq);
  std::vector<bool> is_hot(num_items, false);
  std::size_t hot_count = 0;
  for (std::uint32_t id : by_freq) {
    if (hot_count >= options_.num_hot_items || freq[id] == 0) break;
    is_hot[id] = true;
    ++hot_count;
  }

  // Pairwise co-occurrence graph over hot items, counted in parallel
  // sample shards. Each shard fills a private map; shard maps merge
  // into the global one by summing counts — integer addition is
  // commutative, so the merged counts (and everything derived from
  // them) do not depend on shard boundaries or merge order.
  PairCounts pair_counts;
  std::mutex merge_mu;
  ParallelFor(
      table.num_samples(),
      [&](std::size_t begin, std::size_t end) {
        PairCounts local;
        std::vector<std::uint32_t> hot_in_sample;
        for (std::size_t s = begin; s < end; ++s) {
          hot_in_sample.clear();
          for (std::uint32_t idx : table.Sample(s)) {
            if (is_hot[idx]) hot_in_sample.push_back(idx);
          }
          if (hot_in_sample.size() > kMaxHotPerSample) {
            Rng subsample_rng(SubsampleSeed(s));
            subsample_rng.Shuffle(hot_in_sample);
            hot_in_sample.resize(kMaxHotPerSample);
          }
          for (std::size_t i = 0; i < hot_in_sample.size(); ++i) {
            for (std::size_t j = i + 1; j < hot_in_sample.size(); ++j) {
              local.Add(PairKey(hot_in_sample[i], hot_in_sample[j]), 1);
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        local.ForEach([&](std::uint64_t key, std::uint64_t count) {
          pair_counts.Add(key, count);
        });
      },
      options_.num_threads, ReplayGrain(table.num_samples()));

  // Heaviest edges first.
  struct Edge {
    std::uint64_t count;
    std::uint32_t a, b;
  };
  std::vector<Edge> edges;
  edges.reserve(pair_counts.size());
  pair_counts.ForEach([&](std::uint64_t key, std::uint64_t count) {
    if (count < options_.min_pair_count) return;
    edges.push_back({count, static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xffffffffU)});
  });
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.count != y.count) return x.count > y.count;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  // Greedy group growth from heavy edges.
  std::unordered_map<std::uint32_t, std::int32_t> group_of;
  std::vector<std::vector<std::uint32_t>> groups;
  for (const Edge& e : edges) {
    const auto ita = group_of.find(e.a);
    const auto itb = group_of.find(e.b);
    const std::int32_t ga = ita == group_of.end() ? -1 : ita->second;
    const std::int32_t gb = itb == group_of.end() ? -1 : itb->second;
    if (ga == -1 && gb == -1) {
      group_of[e.a] = static_cast<std::int32_t>(groups.size());
      group_of[e.b] = static_cast<std::int32_t>(groups.size());
      groups.push_back({e.a, e.b});
    } else if (ga >= 0 && gb == -1 &&
               groups[ga].size() < options_.max_list_size) {
      group_of[e.b] = ga;
      groups[ga].push_back(e.b);
    } else if (gb >= 0 && ga == -1 &&
               groups[gb].size() < options_.max_list_size) {
      group_of[e.a] = gb;
      groups[gb].push_back(e.a);
    }
    // Both already grouped: keep groups disjoint (no merges; subset
    // storage is exponential in list size).
  }

  CacheRes res;
  for (auto& group : groups) {
    std::sort(group.begin(), group.end());
    res.lists.push_back(CacheList{std::move(group), 0.0});
  }

  res = ScoreCacheLists(table, num_items, res, options_.num_threads);
  if (res.lists.size() > options_.max_lists) {
    res.lists.resize(options_.max_lists);
  }
  UPDLRM_RETURN_IF_ERROR(res.Validate(num_items));
  return res;
}

CacheRes ScoreCacheLists(const trace::TableTrace& table,
                         std::uint64_t num_items, const CacheRes& res,
                         std::uint32_t num_threads) {
  CacheRes scored = res;
  for (auto& list : scored.lists) list.benefit = 0.0;
  if (scored.lists.empty()) return scored;

  const std::vector<std::int32_t> item_to_list =
      scored.BuildItemToList(num_items);

  // Parallel replay: per-shard integer benefit counters merged by
  // addition (order-insensitive), then assigned to the double-valued
  // benefit field once. Benefits stay exact integers well below 2^53,
  // so the result is bit-identical at every thread count.
  std::vector<std::uint64_t> benefit(scored.lists.size(), 0);
  std::mutex merge_mu;
  ParallelFor(
      table.num_samples(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t> local(scored.lists.size(), 0);
        std::vector<std::uint32_t> hits(scored.lists.size(), 0);
        std::vector<std::uint32_t> touched;
        for (std::size_t s = begin; s < end; ++s) {
          touched.clear();
          for (std::uint32_t idx : table.Sample(s)) {
            const std::int32_t l = item_to_list[idx];
            if (l < 0) continue;
            if (hits[l]++ == 0) {
              touched.push_back(static_cast<std::uint32_t>(l));
            }
          }
          for (std::uint32_t l : touched) {
            // An intersection of c >= 2 items collapses into one
            // cached read.
            if (hits[l] >= 2) local[l] += hits[l] - 1;
            hits[l] = 0;
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        for (std::size_t l = 0; l < local.size(); ++l) {
          benefit[l] += local[l];
        }
      },
      num_threads, ReplayGrain(table.num_samples()));
  for (std::size_t l = 0; l < benefit.size(); ++l) {
    scored.lists[l].benefit = static_cast<double>(benefit[l]);
  }

  std::stable_sort(scored.lists.begin(), scored.lists.end(),
                   [](const CacheList& a, const CacheList& b) {
                     return a.benefit > b.benefit;
                   });
  while (!scored.lists.empty() && scored.lists.back().benefit <= 0.0) {
    scored.lists.pop_back();
  }
  return scored;
}

}  // namespace updlrm::cache
