#include "cache/grace.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "trace/profiler.h"

namespace updlrm::cache {

namespace {

// Pairs counted per sample are capped (a sample with h hot items
// contributes O(h^2) edges). The cap keeps a *random* subset — sampling
// by frequency would count the same head items every time and starve
// mid-popularity cliques; random subsampling scales every pair's
// support by the same expected factor, preserving the ranking.
constexpr std::size_t kMaxHotPerSample = 96;

std::uint64_t PairKey(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Status GraceOptions::Validate() const {
  if (num_hot_items < 2) {
    return Status::InvalidArgument("num_hot_items must be >= 2");
  }
  if (max_list_size < 2 || max_list_size > kMaxCacheListSize) {
    return Status::InvalidArgument("max_list_size must be in [2, " +
                                   std::to_string(kMaxCacheListSize) + "]");
  }
  if (max_lists == 0) {
    return Status::InvalidArgument("max_lists must be >= 1");
  }
  return Status::Ok();
}

GraceMiner::GraceMiner(GraceOptions options) : options_(options) {}

Result<CacheRes> GraceMiner::Mine(const trace::TableTrace& table,
                                  std::uint64_t num_items) const {
  UPDLRM_RETURN_IF_ERROR(options_.Validate());
  if (num_items == 0) {
    return Status::InvalidArgument("num_items must be > 0");
  }

  const std::vector<std::uint64_t> freq =
      trace::ItemFrequencies(table, num_items);

  // Hot set: the most frequent items with nonzero counts.
  const std::vector<std::uint32_t> by_freq = trace::ItemsByFrequency(freq);
  std::vector<bool> is_hot(num_items, false);
  std::size_t hot_count = 0;
  for (std::uint32_t id : by_freq) {
    if (hot_count >= options_.num_hot_items || freq[id] == 0) break;
    is_hot[id] = true;
    ++hot_count;
  }

  // Pairwise co-occurrence graph over hot items.
  std::unordered_map<std::uint64_t, std::uint64_t> pair_counts;
  std::vector<std::uint32_t> hot_in_sample;
  Rng subsample_rng(0x9e3779b97f4a7c15ULL);  // deterministic mining
  for (std::size_t s = 0; s < table.num_samples(); ++s) {
    hot_in_sample.clear();
    for (std::uint32_t idx : table.Sample(s)) {
      if (is_hot[idx]) hot_in_sample.push_back(idx);
    }
    if (hot_in_sample.size() > kMaxHotPerSample) {
      subsample_rng.Shuffle(hot_in_sample);
      hot_in_sample.resize(kMaxHotPerSample);
    }
    for (std::size_t i = 0; i < hot_in_sample.size(); ++i) {
      for (std::size_t j = i + 1; j < hot_in_sample.size(); ++j) {
        ++pair_counts[PairKey(hot_in_sample[i], hot_in_sample[j])];
      }
    }
  }

  // Heaviest edges first.
  struct Edge {
    std::uint64_t count;
    std::uint32_t a, b;
  };
  std::vector<Edge> edges;
  edges.reserve(pair_counts.size());
  for (const auto& [key, count] : pair_counts) {
    if (count < options_.min_pair_count) continue;
    edges.push_back({count, static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xffffffffU)});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.count != y.count) return x.count > y.count;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  // Greedy group growth from heavy edges.
  std::unordered_map<std::uint32_t, std::int32_t> group_of;
  std::vector<std::vector<std::uint32_t>> groups;
  for (const Edge& e : edges) {
    const auto ita = group_of.find(e.a);
    const auto itb = group_of.find(e.b);
    const std::int32_t ga = ita == group_of.end() ? -1 : ita->second;
    const std::int32_t gb = itb == group_of.end() ? -1 : itb->second;
    if (ga == -1 && gb == -1) {
      group_of[e.a] = static_cast<std::int32_t>(groups.size());
      group_of[e.b] = static_cast<std::int32_t>(groups.size());
      groups.push_back({e.a, e.b});
    } else if (ga >= 0 && gb == -1 &&
               groups[ga].size() < options_.max_list_size) {
      group_of[e.b] = ga;
      groups[ga].push_back(e.b);
    } else if (gb >= 0 && ga == -1 &&
               groups[gb].size() < options_.max_list_size) {
      group_of[e.a] = gb;
      groups[gb].push_back(e.a);
    }
    // Both already grouped: keep groups disjoint (no merges; subset
    // storage is exponential in list size).
  }

  CacheRes res;
  for (auto& group : groups) {
    std::sort(group.begin(), group.end());
    res.lists.push_back(CacheList{std::move(group), 0.0});
  }

  res = ScoreCacheLists(table, num_items, res);
  if (res.lists.size() > options_.max_lists) {
    res.lists.resize(options_.max_lists);
  }
  UPDLRM_RETURN_IF_ERROR(res.Validate(num_items));
  return res;
}

CacheRes ScoreCacheLists(const trace::TableTrace& table,
                         std::uint64_t num_items, const CacheRes& res) {
  CacheRes scored = res;
  for (auto& list : scored.lists) list.benefit = 0.0;
  if (scored.lists.empty()) return scored;

  const std::vector<std::int32_t> item_to_list =
      scored.BuildItemToList(num_items);

  std::vector<std::uint32_t> hits(scored.lists.size(), 0);
  std::vector<std::uint32_t> touched;
  for (std::size_t s = 0; s < table.num_samples(); ++s) {
    touched.clear();
    for (std::uint32_t idx : table.Sample(s)) {
      const std::int32_t l = item_to_list[idx];
      if (l < 0) continue;
      if (hits[l]++ == 0) touched.push_back(static_cast<std::uint32_t>(l));
    }
    for (std::uint32_t l : touched) {
      // An intersection of c >= 2 items collapses into one cached read.
      if (hits[l] >= 2) scored.lists[l].benefit += hits[l] - 1;
      hits[l] = 0;
    }
  }

  std::stable_sort(scored.lists.begin(), scored.lists.end(),
                   [](const CacheList& a, const CacheList& b) {
                     return a.benefit > b.benefit;
                   });
  while (!scored.lists.empty() && scored.lists.back().benefit <= 0.0) {
    scored.lists.pop_back();
  }
  return scored;
}

}  // namespace updlrm::cache
