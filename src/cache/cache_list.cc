#include "cache/cache_list.h"

#include <algorithm>

namespace updlrm::cache {

Status CacheList::Validate(std::uint64_t num_items) const {
  if (items.size() < 2 || items.size() > kMaxCacheListSize) {
    return Status::InvalidArgument("cache list must hold 2.." +
                                   std::to_string(kMaxCacheListSize) +
                                   " items");
  }
  if (!std::is_sorted(items.begin(), items.end())) {
    return Status::InvalidArgument("cache list items must be sorted");
  }
  if (std::adjacent_find(items.begin(), items.end()) != items.end()) {
    return Status::InvalidArgument("cache list items must be unique");
  }
  if (items.back() >= num_items) {
    return Status::OutOfRange("cache list item out of table range");
  }
  if (benefit < 0.0) {
    return Status::InvalidArgument("cache list benefit must be >= 0");
  }
  return Status::Ok();
}

std::uint64_t CacheRes::TotalStorageBytes(std::uint32_t row_bytes) const {
  std::uint64_t total = 0;
  for (const auto& list : lists) total += list.StorageBytes(row_bytes);
  return total;
}

double CacheRes::TotalBenefit() const {
  double total = 0.0;
  for (const auto& list : lists) total += list.benefit;
  return total;
}

std::vector<std::int32_t> CacheRes::BuildItemToList(
    std::uint64_t num_items) const {
  std::vector<std::int32_t> item_to_list(num_items, -1);
  for (std::size_t l = 0; l < lists.size(); ++l) {
    for (std::uint32_t item : lists[l].items) {
      UPDLRM_CHECK(item < num_items);
      UPDLRM_CHECK_MSG(item_to_list[item] == -1,
                       "item appears in multiple cache lists");
      item_to_list[item] = static_cast<std::int32_t>(l);
    }
  }
  return item_to_list;
}

Status CacheRes::Validate(std::uint64_t num_items) const {
  std::vector<bool> seen(num_items, false);
  double prev_benefit = -1.0;
  for (std::size_t l = 0; l < lists.size(); ++l) {
    UPDLRM_RETURN_IF_ERROR(lists[l].Validate(num_items));
    if (l > 0 && lists[l].benefit > prev_benefit) {
      return Status::InvalidArgument(
          "cache lists must be sorted by descending benefit");
    }
    prev_benefit = lists[l].benefit;
    for (std::uint32_t item : lists[l].items) {
      if (seen[item]) {
        return Status::InvalidArgument("item " + std::to_string(item) +
                                       " appears in multiple cache lists");
      }
      seen[item] = true;
    }
  }
  return Status::Ok();
}

CacheRes CacheRes::TrimToBudgetFraction(std::uint32_t row_bytes,
                                        double fraction) const {
  UPDLRM_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const auto budget = static_cast<std::uint64_t>(
      fraction * static_cast<double>(TotalStorageBytes(row_bytes)));
  return TrimToBudgetBytes(row_bytes, budget);
}

CacheRes CacheRes::TrimToBudgetBytes(std::uint32_t row_bytes,
                                     std::uint64_t budget_bytes) const {
  CacheRes trimmed;
  std::uint64_t used = 0;
  for (const auto& list : lists) {
    const std::uint64_t need = list.StorageBytes(row_bytes);
    if (used + need > budget_bytes) continue;  // keep probing smaller lists
    used += need;
    trimmed.lists.push_back(list);
  }
  return trimmed;
}

std::uint32_t IntersectionMask(std::span<const std::uint32_t> sample_sorted,
                               std::span<const std::uint32_t> list_items) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < list_items.size(); ++i) {
    if (std::binary_search(sample_sorted.begin(), sample_sorted.end(),
                           list_items[i])) {
      mask |= 1U << i;
    }
  }
  return mask;
}

}  // namespace updlrm::cache
