// A co-occurrence-oblivious cache-list generator.
//
// §5 notes UpDLRM "does not rely on GRACE and can work with any other
// caching technique". This is the simplest such technique — and the
// natural strawman for GRACE's co-occurrence graph: pair items purely
// by popularity rank (hottest with second-hottest, and so on), hoping
// popular items happen to co-occur. Benefits are still scored by trace
// replay, so lists that never co-occur are dropped.
//
// bench/abl_cache_miner compares the two: frequency pairing recovers a
// fraction of GRACE's traffic cut — popularity alone implies *some*
// co-occurrence under skew — but misses the deliberately co-accessed
// groups that make partial-sum caching pay.
#pragma once

#include <cstdint>

#include "cache/cache_list.h"
#include "common/status.h"
#include "trace/trace.h"

namespace updlrm::cache {

struct FreqPairOptions {
  /// The top `num_hot_items` by frequency are paired rank-adjacently.
  std::size_t num_hot_items = 8192;
  /// Items per list (2..kMaxCacheListSize).
  std::size_t list_size = 2;
  /// Maximum lists to emit (after benefit scoring).
  std::size_t max_lists = 8192;

  Status Validate() const;
};

class FreqPairMiner {
 public:
  explicit FreqPairMiner(FreqPairOptions options = {});

  /// Groups the hottest items rank-adjacently, scores each group by
  /// replaying the trace, drops zero-benefit groups, and returns the
  /// collection sorted by descending benefit.
  Result<CacheRes> Mine(const trace::TableTrace& table,
                        std::uint64_t num_items) const;

 private:
  FreqPairOptions options_;
};

}  // namespace updlrm::cache
