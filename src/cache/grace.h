// GRACE-style co-occurrence mining.
//
// The paper uses GRACE [Ye et al., ASPLOS'23] as a black box that turns
// an access trace into `cache_res`: groups of hot items that frequently
// coexist in a sample, with an estimated memory-access benefit per
// group. GraceMiner reproduces that artifact with the same graph-based
// idea: build the pairwise co-occurrence graph over the hottest items,
// then greedily grow high-weight groups (up to kMaxCacheListSize items)
// from the heaviest edges, and finally score each group by replaying the
// trace ("benefit" = accesses avoided when every >=2-item intersection
// collapses to a single cached-partial-sum read). The paper notes
// UpDLRM works with any cache-list generator; this one is ours.
#pragma once

#include <cstdint>

#include "cache/cache_list.h"
#include "common/status.h"
#include "trace/profiler.h"
#include "trace/trace.h"

namespace updlrm::cache {

struct GraceOptions {
  // Only the `num_hot_items` most frequent items enter the graph
  // (co-occurrence counting over all items is quadratic in sample size).
  std::size_t num_hot_items = 16384;
  // Minimum pair co-occurrence count for an edge to be considered.
  std::uint64_t min_pair_count = 4;
  // Maximum number of lists to emit (highest benefit first).
  std::size_t max_lists = 8192;
  // Maximum items per list; capped at kMaxCacheListSize.
  std::size_t max_list_size = kMaxCacheListSize;
  // Host threads for the per-shard pair counting and the scoring
  // replay (0 = default pool, 1 = serial). Mined results are
  // thread-count invariant: shards merge by commutative integer sums
  // and ties break on item ids.
  std::uint32_t num_threads = 0;

  Status Validate() const;
};

class GraceMiner {
 public:
  explicit GraceMiner(GraceOptions options = {});

  /// Mines cache lists from one table's trace. Lists are disjoint,
  /// benefit-scored on the same trace, and sorted by descending benefit;
  /// zero-benefit groups are dropped. `profile` optionally supplies the
  /// table's precomputed freq/by_freq (trace::ProfileTable) so callers
  /// that already profiled the trace skip the miner's own pass; null =
  /// profile internally. Results are identical either way.
  Result<CacheRes> Mine(const trace::TableTrace& table,
                        std::uint64_t num_items,
                        const trace::TableProfile* profile = nullptr) const;

  const GraceOptions& options() const { return options_; }

 private:
  GraceOptions options_;
};

/// Replays `table` and recomputes the benefit of each list in `res`
/// (avoided accesses). Used to score externally supplied or trimmed
/// cache lists; returns a copy with updated, re-sorted benefits.
/// Sample shards are replayed in parallel (`num_threads`: 0 = default
/// pool, 1 = serial); per-list benefits are exact integer counts, so
/// the shard merge is order-insensitive and the result thread-count
/// invariant.
CacheRes ScoreCacheLists(const trace::TableTrace& table,
                         std::uint64_t num_items, const CacheRes& res,
                         std::uint32_t num_threads = 0);

}  // namespace updlrm::cache
