#include "cache/freq_pairs.h"

#include <algorithm>

#include "cache/grace.h"
#include "trace/profiler.h"

namespace updlrm::cache {

Status FreqPairOptions::Validate() const {
  if (num_hot_items < 2) {
    return Status::InvalidArgument("num_hot_items must be >= 2");
  }
  if (list_size < 2 || list_size > kMaxCacheListSize) {
    return Status::InvalidArgument("list_size must be in [2, " +
                                   std::to_string(kMaxCacheListSize) + "]");
  }
  if (max_lists == 0) {
    return Status::InvalidArgument("max_lists must be >= 1");
  }
  return Status::Ok();
}

FreqPairMiner::FreqPairMiner(FreqPairOptions options) : options_(options) {}

Result<CacheRes> FreqPairMiner::Mine(const trace::TableTrace& table,
                                     std::uint64_t num_items) const {
  UPDLRM_RETURN_IF_ERROR(options_.Validate());
  if (num_items == 0) {
    return Status::InvalidArgument("num_items must be > 0");
  }
  const auto freq = trace::ItemFrequencies(table, num_items);
  const auto by_freq = trace::ItemsByFrequency(freq);

  CacheRes res;
  std::vector<std::uint32_t> group;
  for (std::uint32_t id : by_freq) {
    if (res.lists.size() * options_.list_size + group.size() >=
            options_.num_hot_items ||
        freq[id] == 0) {
      break;
    }
    group.push_back(id);
    if (group.size() == options_.list_size) {
      std::sort(group.begin(), group.end());
      res.lists.push_back(CacheList{group, 0.0});
      group.clear();
    }
  }

  res = ScoreCacheLists(table, num_items, res);
  if (res.lists.size() > options_.max_lists) {
    res.lists.resize(options_.max_lists);
  }
  UPDLRM_RETURN_IF_ERROR(res.Validate(num_items));
  return res;
}

}  // namespace updlrm::cache
