// Cache lists of co-occurring items and their partial-sum storage.
//
// §3.3 of the paper: a cache list {a, b, c} means items a, b, c
// frequently coexist in the same sample, so the partial sums of *every
// non-empty subset* (a, b, c, a+b, a+c, b+c, a+b+c) are cached — one
// MRAM read then serves any subset of the list a sample requests. A list
// of k items therefore needs (2^k - 1) slots of one row-slice each.
//
// CacheRes is the paper's `cache_res` input to Algorithm 1: the list
// collection plus each list's estimated benefit (the number of memory
// accesses it avoids on the profiled trace, GRACE's `list[-1]`).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace updlrm::cache {

/// Hard cap on list size; subset storage is exponential in it.
inline constexpr std::size_t kMaxCacheListSize = 4;

struct CacheList {
  std::vector<std::uint32_t> items;  // sorted item ids, 2..kMaxCacheListSize
  double benefit = 0.0;  // avoided memory accesses on the profiled trace

  Status Validate(std::uint64_t num_items) const;

  /// Slots needed for all non-empty subset sums.
  std::uint64_t NumSlots() const { return (1ULL << items.size()) - 1; }

  /// Cache-region bytes for a row slice of `row_bytes`.
  std::uint64_t StorageBytes(std::uint32_t row_bytes) const {
    return NumSlots() * row_bytes;
  }
};

struct CacheRes {
  std::vector<CacheList> lists;  // descending benefit

  std::uint64_t TotalStorageBytes(std::uint32_t row_bytes) const;
  double TotalBenefit() const;

  /// item id -> list index (or -1). Size num_items. Items appear in at
  /// most one list.
  std::vector<std::int32_t> BuildItemToList(std::uint64_t num_items) const;

  /// All lists valid, benefit-sorted, items disjoint across lists.
  Status Validate(std::uint64_t num_items) const;

  /// Keeps the highest-benefit prefix of lists whose combined storage
  /// fits `fraction` of the full requirement — the paper's cache
  /// capacity knob (§3.3: 40% / 70% / 100%).
  CacheRes TrimToBudgetFraction(std::uint32_t row_bytes,
                                double fraction) const;

  /// Same, with an absolute per-system byte budget.
  CacheRes TrimToBudgetBytes(std::uint32_t row_bytes,
                             std::uint64_t budget_bytes) const;
};

/// Bitmask of `sample ∩ list` with bit i set when list.items[i] is in
/// `sample_sorted` (both sorted ascending). Mask value m > 0 maps to
/// cache slot m - 1.
std::uint32_t IntersectionMask(std::span<const std::uint32_t> sample_sorted,
                               std::span<const std::uint32_t> list_items);

}  // namespace updlrm::cache
