#include "pim/mram_timing.h"

#include <cmath>

namespace updlrm::pim {

Status MramTimingParams::Validate() const {
  if (!IsPowerOfTwo(alignment)) {
    return Status::InvalidArgument("alignment must be a power of two");
  }
  if (max_access_bytes == 0 || !IsAligned(max_access_bytes, alignment)) {
    return Status::InvalidArgument("max_access_bytes must be aligned");
  }
  if (cycles_per_byte < 0.0 || engine_cycles_per_byte < 0.0) {
    return Status::InvalidArgument("cycle costs must be non-negative");
  }
  return Status::Ok();
}

MramTimingModel::MramTimingModel(MramTimingParams params)
    : params_(params) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(), "invalid MramTimingParams");
}

Status MramTimingModel::ValidateAccess(std::uint64_t offset,
                                       std::uint32_t bytes) const {
  if (bytes == 0) {
    return Status::InvalidArgument("MRAM access size must be > 0");
  }
  if (!IsAligned(offset, params_.alignment)) {
    return Status::InvalidArgument("MRAM offset must be 8-byte aligned");
  }
  if (!IsAligned(bytes, params_.alignment)) {
    return Status::InvalidArgument("MRAM access size must be 8-byte aligned");
  }
  if (bytes > params_.max_access_bytes) {
    return Status::OutOfRange("MRAM access exceeds 2048-byte maximum");
  }
  return Status::Ok();
}

Cycles MramTimingModel::AccessLatency(std::uint32_t bytes) const {
  const std::uint32_t over =
      bytes > params_.flat_until_bytes ? bytes - params_.flat_until_bytes : 0;
  return params_.base_latency +
         static_cast<Cycles>(std::llround(params_.cycles_per_byte *
                                          static_cast<double>(over)));
}

Cycles MramTimingModel::EngineOccupancy(std::uint32_t bytes) const {
  return params_.engine_setup +
         static_cast<Cycles>(std::llround(params_.engine_cycles_per_byte *
                                          static_cast<double>(bytes)));
}

double MramTimingModel::StreamingBandwidth(std::uint32_t bytes,
                                           double clock_hz) const {
  const Cycles occ = EngineOccupancy(bytes);
  if (occ == 0) return 0.0;
  return static_cast<double>(bytes) * clock_hz / static_cast<double>(occ);
}

}  // namespace updlrm::pim
