// Cycle-driven simulation of the embedding kernel on one DPU.
//
// The analytic PipelineModel prices a kernel with closed-form resource
// bounds (issue slots, DMA-engine occupancy, per-tasklet latency
// chains). This module *executes* the same kernel structure on a
// cycle-by-cycle model of the DPU front end — round-robin issue across
// tasklets, the revolver constraint (one instruction per tasklet per
// `revolver_depth` cycles), and a single DMA engine that serializes
// transfers while the issuing tasklet blocks for the access latency.
//
// It exists to validate the analytic model: tests assert the simulated
// makespan stays within a tight band above the analytic lower bound
// across tasklet counts, access sizes and work mixes.
//
// Two engines produce cycle-identical results:
//   * kPeriodic (default): event-driven execution that detects the
//     steady state of a homogeneous phase — every phase here issues the
//     same instruction/DMA budget per item — and advances whole periods
//     analytically instead of cycle by cycle. Orders of magnitude
//     faster on large phases.
//   * kExactCycle: the reference simulator, advancing one cycle per
//     loop iteration with O(tasklets) scans. Kept behind this flag for
//     validation; the property tests assert both engines report
//     identical cycles and counters on randomized phases.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "pim/dpu_config.h"
#include "pim/kernel_cost.h"
#include "pim/mram_timing.h"

namespace updlrm::pim {

struct KernelSimResult {
  Cycles makespan = 0;
  std::uint64_t instructions_issued = 0;
  std::uint64_t dma_transfers = 0;
  /// Fraction of cycles with an instruction issued (pipeline
  /// utilization).
  double issue_utilization = 0.0;
};

/// Which phase-execution engine to run (see file comment).
enum class PhaseEngine {
  kPeriodic,
  kExactCycle,
};

/// One homogeneous kernel phase: `num_items` work items, each costing
/// `instr_per_item` issue slots and (optionally) one DMA transfer with
/// the given latency (tasklet blocks) and engine occupancy (DMA engine
/// serializes).
struct KernelPhase {
  std::uint64_t num_items = 0;
  Cycles instr_per_item = 0;
  Cycles dma_latency = 0;
  Cycles dma_occupancy = 0;
};

/// Per-tasklet timing of one executed phase, for the telemetry
/// timeline. `tasklet_finish[t]` is the cycle (relative to the phase's
/// start) at which tasklet t retired its last item — 0 when the tasklet
/// had no items. Finish times are defined at the state machine's two
/// retirement transitions (final instruction issues: cycle + 1; final
/// DMA completes: dma_done), which both engines reach at identical
/// cycles, so a trace captured under kPeriodic equals the kExactCycle
/// reference (tests/pim/kernel_sim_trace_test.cc pins this).
struct PhaseTrace {
  Cycles start = 0;     // from kernel launch, boot included
  Cycles makespan = 0;  // this phase's span (barrier to barrier)
  std::uint64_t num_items = 0;
  /// Cycles the (single) DMA engine was occupied during the phase —
  /// the "MRAM DMA" share of the slice; the rest is compute/issue.
  Cycles dma_busy = 0;
  std::vector<Cycles> tasklet_finish;
  std::vector<std::uint64_t> tasklet_items;
};

/// Full kernel timeline: one PhaseTrace per EmbeddingKernelPhases entry
/// (kEmbeddingKernelPhaseNames gives display names), empty for a
/// zero-work kernel.
struct KernelTimeline {
  Cycles boot_cycles = 0;
  std::uint32_t tasklets = 0;
  std::vector<PhaseTrace> phases;
};

/// Executes one phase to completion on `tasklets` tasklets and returns
/// its makespan; `instructions` / `dmas` accumulate issued counts.
/// `tasklet_finish`, when non-null, is resized to `tasklets` and filled
/// with per-tasklet retirement cycles (see PhaseTrace); recording is
/// pure observation and never changes the simulated result.
/// Exposed for the engine-equivalence property tests.
Cycles SimulatePhase(const KernelPhase& phase, std::uint32_t tasklets,
                     std::uint32_t revolver_depth, PhaseEngine engine,
                     std::uint64_t* instructions, std::uint64_t* dmas,
                     std::vector<Cycles>* tasklet_finish = nullptr);

/// Executes the three-phase embedding kernel (index streaming, row
/// reads + accumulation, per-sample output) with the same per-item
/// instruction budgets as EmbeddingKernelCostModel. Work items are
/// distributed round-robin over the configured tasklets; phases are
/// separated by barriers, as in the analytic model. `timeline`, when
/// non-null, receives the per-phase/per-tasklet trace.
KernelSimResult SimulateEmbeddingKernel(
    const DpuConfig& dpu, const MramTimingModel& mram,
    const EmbeddingKernelCostParams& params,
    const EmbeddingKernelWork& work,
    PhaseEngine engine = PhaseEngine::kPeriodic,
    KernelTimeline* timeline = nullptr);

}  // namespace updlrm::pim
