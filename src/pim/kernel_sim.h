// Cycle-driven simulation of the embedding kernel on one DPU.
//
// The analytic PipelineModel prices a kernel with closed-form resource
// bounds (issue slots, DMA-engine occupancy, per-tasklet latency
// chains). This module *executes* the same kernel structure on a
// cycle-by-cycle model of the DPU front end — round-robin issue across
// tasklets, the revolver constraint (one instruction per tasklet per
// `revolver_depth` cycles), and a single DMA engine that serializes
// transfers while the issuing tasklet blocks for the access latency.
//
// It exists to validate the analytic model: tests assert the simulated
// makespan stays within a tight band above the analytic lower bound
// across tasklet counts, access sizes and work mixes. It is not used on
// the timing fast path (it is orders of magnitude slower).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "pim/dpu_config.h"
#include "pim/kernel_cost.h"
#include "pim/mram_timing.h"

namespace updlrm::pim {

struct KernelSimResult {
  Cycles makespan = 0;
  std::uint64_t instructions_issued = 0;
  std::uint64_t dma_transfers = 0;
  /// Fraction of cycles with an instruction issued (pipeline
  /// utilization).
  double issue_utilization = 0.0;
};

/// Executes the three-phase embedding kernel (index streaming, row
/// reads + accumulation, per-sample output) with the same per-item
/// instruction budgets as EmbeddingKernelCostModel. Work items are
/// distributed round-robin over the configured tasklets; phases are
/// separated by barriers, as in the analytic model.
KernelSimResult SimulateEmbeddingKernel(
    const DpuConfig& dpu, const MramTimingModel& mram,
    const EmbeddingKernelCostParams& params,
    const EmbeddingKernelWork& work);

}  // namespace updlrm::pim
