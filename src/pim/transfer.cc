#include "pim/transfer.h"

#include <algorithm>
#include <numeric>

namespace updlrm::pim {

Status HostTransferParams::Validate() const {
  if (push_bytes_per_sec_per_rank <= 0.0 ||
      pull_bytes_per_sec_per_rank <= 0.0 || serial_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (transfer_launch_ns < 0.0 || kernel_launch_ns < 0.0) {
    return Status::InvalidArgument("launch overheads must be >= 0");
  }
  return Status::Ok();
}

HostTransferModel::HostTransferModel(HostTransferParams params,
                                     std::uint32_t num_dpus,
                                     std::uint32_t dpus_per_rank)
    : params_(params),
      num_dpus_(num_dpus),
      dpus_per_rank_(dpus_per_rank) {
  UPDLRM_CHECK(num_dpus_ > 0);
  UPDLRM_CHECK(dpus_per_rank_ > 0);
  UPDLRM_CHECK_MSG(params_.Validate().ok(), "invalid HostTransferParams");
  num_ranks_ = static_cast<std::uint32_t>(CeilDiv(num_dpus_, dpus_per_rank_));
}

Nanos HostTransferModel::TransferTime(
    std::span<const std::uint64_t> bytes_per_dpu, bool pad_to_max,
    double rank_bw) const {
  UPDLRM_CHECK_MSG(bytes_per_dpu.size() == num_dpus_,
                   "bytes_per_dpu must cover every DPU");
  const std::uint64_t max_bytes =
      *std::max_element(bytes_per_dpu.begin(), bytes_per_dpu.end());
  if (max_bytes == 0) return 0.0;

  const bool all_equal =
      std::all_of(bytes_per_dpu.begin(), bytes_per_dpu.end(),
                  [&](std::uint64_t b) { return b == max_bytes; });

  if (all_equal || pad_to_max) {
    // Parallel path: every rank streams its (padded) buffer matrix
    // concurrently; the slowest rank bounds the call. Padding makes each
    // rank's matrix dpus_per_rank * max_bytes.
    std::uint64_t worst_rank_bytes = 0;
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
      const std::uint32_t lo = r * dpus_per_rank_;
      const std::uint32_t hi =
          std::min(num_dpus_, lo + dpus_per_rank_);
      worst_rank_bytes =
          std::max<std::uint64_t>(worst_rank_bytes,
                                  static_cast<std::uint64_t>(hi - lo) *
                                      max_bytes);
    }
    return params_.transfer_launch_ns +
           TransferNanos(worst_rank_bytes, rank_bw);
  }

  // Sequential path: ragged buffers are copied one DPU at a time.
  const std::uint64_t total = std::accumulate(
      bytes_per_dpu.begin(), bytes_per_dpu.end(), std::uint64_t{0});
  return params_.transfer_launch_ns +
         TransferNanos(total, params_.serial_bytes_per_sec);
}

Nanos HostTransferModel::PushTime(
    std::span<const std::uint64_t> bytes_per_dpu, bool pad_to_max) const {
  return TransferTime(bytes_per_dpu, pad_to_max,
                      params_.push_bytes_per_sec_per_rank);
}

Nanos HostTransferModel::PullTime(
    std::span<const std::uint64_t> bytes_per_dpu, bool pad_to_max) const {
  return TransferTime(bytes_per_dpu, pad_to_max,
                      params_.pull_bytes_per_sec_per_rank);
}

Nanos HostTransferModel::BroadcastTime(std::uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  // A broadcast writes the same buffer to every DPU of every rank in
  // parallel; each rank streams dpus_per_rank copies.
  const std::uint64_t rank_bytes =
      static_cast<std::uint64_t>(dpus_per_rank_) * bytes;
  return params_.transfer_launch_ns +
         TransferNanos(rank_bytes, params_.push_bytes_per_sec_per_rank);
}

}  // namespace updlrm::pim
