#include "pim/transfer.h"

#include <algorithm>

#include "common/simd.h"

namespace updlrm::pim {

Status HostTransferParams::Validate() const {
  if (push_bytes_per_sec_per_rank <= 0.0 ||
      pull_bytes_per_sec_per_rank <= 0.0 || serial_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (transfer_launch_ns < 0.0 || kernel_launch_ns < 0.0) {
    return Status::InvalidArgument("launch overheads must be >= 0");
  }
  return Status::Ok();
}

namespace {

std::uint32_t ComputeNumRanks(std::uint32_t num_dpus,
                              std::uint32_t dpus_per_rank) {
  UPDLRM_CHECK(num_dpus > 0);
  UPDLRM_CHECK(dpus_per_rank > 0);
  return static_cast<std::uint32_t>(CeilDiv(num_dpus, dpus_per_rank));
}

}  // namespace

HostTransferModel::HostTransferModel(HostTransferParams params,
                                     std::uint32_t num_dpus,
                                     std::uint32_t dpus_per_rank,
                                     FleetTopologyConfig topology)
    : params_(params),
      num_dpus_(num_dpus),
      dpus_per_rank_(dpus_per_rank),
      num_ranks_(ComputeNumRanks(num_dpus, dpus_per_rank)),
      topology_(topology, num_ranks_) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(), "invalid HostTransferParams");
}

Nanos HostTransferModel::TransferTime(
    std::span<const std::uint64_t> bytes_per_dpu, bool pad_to_max,
    double rank_bw) const {
  if (bytes_per_dpu.empty()) return 0.0;
  UPDLRM_CHECK_MSG(bytes_per_dpu.size() == num_dpus_,
                   "bytes_per_dpu must cover every DPU");
  const std::uint64_t max_bytes =
      simd::MaxU64(bytes_per_dpu.data(), bytes_per_dpu.size());
  if (max_bytes == 0) return 0.0;

  // A zero-byte DPU transfers nothing: it is absent from the transfer
  // matrix and must not force the ragged (sequential) path when every
  // participating buffer is the same size.
  const bool all_equal = simd::AllZeroOrEqualU64(
      bytes_per_dpu.data(), bytes_per_dpu.size(), max_bytes);

  if (all_equal || pad_to_max) {
    // Parallel path: every rank streams its (padded) buffer matrix
    // concurrently; the slowest rank bounds the call. Padding makes
    // each rank's matrix dpus_per_rank * max_bytes; ranks owned by a
    // remote host additionally pay the cross-host ingress hop, so the
    // bound is per-rank, not a single worst-bytes division.
    Nanos bound = 0.0;
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
      const std::uint32_t lo = r * dpus_per_rank_;
      const std::uint32_t hi =
          std::min(num_dpus_, lo + dpus_per_rank_);
      const std::uint64_t rank_bytes =
          static_cast<std::uint64_t>(hi - lo) * max_bytes;
      bound = std::max(bound, TransferNanos(rank_bytes, rank_bw) +
                                  topology_.IngressExtra(r, rank_bytes));
    }
    return params_.transfer_launch_ns + bound;
  }

  // Sequential path: ragged buffers are copied one DPU at a time.
  const std::uint64_t total =
      simd::SumU64(bytes_per_dpu.data(), bytes_per_dpu.size());
  return params_.transfer_launch_ns +
         TransferNanos(total, params_.serial_bytes_per_sec) +
         SequentialIngress(bytes_per_dpu);
}

Nanos HostTransferModel::SequentialIngress(
    std::span<const std::uint64_t> bytes_per_dpu) const {
  if (topology_.single_host()) return 0.0;
  Nanos extra = 0.0;
  for (std::uint32_t r = 0; r < num_ranks_; ++r) {
    const std::uint32_t lo = r * dpus_per_rank_;
    const std::uint32_t hi = std::min(
        static_cast<std::uint32_t>(bytes_per_dpu.size()),
        lo + dpus_per_rank_);
    if (lo >= hi) break;
    const std::uint64_t rank_bytes =
        simd::SumU64(bytes_per_dpu.data() + lo, hi - lo);
    extra += topology_.IngressExtra(r, rank_bytes);
  }
  return extra;
}

std::pair<Nanos, std::uint64_t> HostTransferModel::PaddedStream(
    std::span<const std::uint64_t> bytes_per_dpu, std::uint32_t lo,
    std::uint32_t hi, double rank_bw) const {
  const std::uint64_t call_max =
      simd::MaxU64(bytes_per_dpu.data() + lo, hi - lo);
  if (call_max == 0) return {0.0, 0};
  // Each rank streams its participating (nonzero) buffers, padded to the
  // call-wide max, concurrently with the other ranks; the fullest rank
  // (including any cross-host ingress hop) bounds the call.
  Nanos bound = 0.0;
  std::uint64_t streamed = 0;
  const std::uint32_t first_rank = lo / dpus_per_rank_;
  const std::uint32_t last_rank = (hi - 1) / dpus_per_rank_;
  for (std::uint32_t r = first_rank; r <= last_rank; ++r) {
    const std::uint32_t rlo = std::max(lo, r * dpus_per_rank_);
    const std::uint32_t rhi = std::min(hi, (r + 1) * dpus_per_rank_);
    const std::uint64_t pop =
        simd::CountNonZeroU64(bytes_per_dpu.data() + rlo, rhi - rlo);
    const std::uint64_t rank_bytes = pop * call_max;
    bound = std::max(bound, TransferNanos(rank_bytes, rank_bw) +
                                topology_.IngressExtra(r, rank_bytes));
    streamed += rank_bytes;
  }
  return {bound, streamed};
}

TransferPlan HostTransferModel::PlanTransfer(
    std::span<const std::uint64_t> bytes_per_dpu,
    std::span<const std::uint32_t> group_start, double rank_bw) const {
  TransferPlan plan;
  if (bytes_per_dpu.empty()) return plan;
  UPDLRM_CHECK_MSG(bytes_per_dpu.size() == num_dpus_,
                   "bytes_per_dpu must cover every DPU");
  UPDLRM_CHECK_MSG(group_start.size() >= 2, "need at least one group");
  UPDLRM_CHECK_MSG(group_start.front() == 0 &&
                       group_start.back() == bytes_per_dpu.size(),
                   "group_start must cover [0, num_dpus]");

  const std::uint64_t total =
      simd::SumU64(bytes_per_dpu.data(), bytes_per_dpu.size());
  if (total == 0) return plan;  // nothing moves: no launch, zero cost

  // Candidate 1: one coalesced call padded to the call-wide nonzero max.
  const auto [coal_stream, coal_bytes] =
      PaddedStream(bytes_per_dpu, 0, num_dpus_, rank_bw);
  const Nanos coal_time = params_.transfer_launch_ns + coal_stream;

  // Candidate 2: one call per nonzero group, each padded only to its own
  // max. Groups are issued back to back (the SDK serializes calls).
  Nanos group_time = 0.0;
  std::uint64_t group_bytes = 0;
  std::uint32_t group_launches = 0;
  for (std::size_t g = 0; g + 1 < group_start.size(); ++g) {
    const auto [t, b] = PaddedStream(bytes_per_dpu, group_start[g],
                                     group_start[g + 1], rank_bw);
    if (b == 0) continue;
    group_time += params_.transfer_launch_ns + t;
    group_bytes += b;
    ++group_launches;
  }

  // Candidate 3: one ragged call, buffers copied serially (no padding).
  const Nanos seq_time = params_.transfer_launch_ns +
                         TransferNanos(total, params_.serial_bytes_per_sec) +
                         SequentialIngress(bytes_per_dpu);

  // Deterministic choice: strict improvement required to leave the
  // coalesced path, so ties resolve coalesced > per-group > sequential.
  plan.path = TransferPlan::Path::kCoalescedPadded;
  plan.time = coal_time;
  plan.streamed_bytes = coal_bytes;
  plan.launches = 1;
  if (group_time < plan.time) {
    plan.path = TransferPlan::Path::kPerGroupPadded;
    plan.time = group_time;
    plan.streamed_bytes = group_bytes;
    plan.launches = group_launches;
  }
  if (seq_time < plan.time) {
    plan.path = TransferPlan::Path::kSequential;
    plan.time = seq_time;
    plan.streamed_bytes = total;
    plan.launches = 1;
  }
  return plan;
}

TransferPlan HostTransferModel::PlanPush(
    std::span<const std::uint64_t> bytes_per_dpu,
    std::span<const std::uint32_t> group_start) const {
  return PlanTransfer(bytes_per_dpu, group_start,
                      params_.push_bytes_per_sec_per_rank);
}

TransferPlan HostTransferModel::PlanPull(
    std::span<const std::uint64_t> bytes_per_dpu,
    std::span<const std::uint32_t> group_start) const {
  return PlanTransfer(bytes_per_dpu, group_start,
                      params_.pull_bytes_per_sec_per_rank);
}

Nanos HostTransferModel::PushTime(
    std::span<const std::uint64_t> bytes_per_dpu, bool pad_to_max) const {
  return TransferTime(bytes_per_dpu, pad_to_max,
                      params_.push_bytes_per_sec_per_rank);
}

Nanos HostTransferModel::PullTime(
    std::span<const std::uint64_t> bytes_per_dpu, bool pad_to_max) const {
  return TransferTime(bytes_per_dpu, pad_to_max,
                      params_.pull_bytes_per_sec_per_rank);
}

Nanos HostTransferModel::BroadcastTime(std::uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  // A broadcast writes the same buffer to every DPU of every rank in
  // parallel; each rank streams dpus_per_rank copies. Remote-host ranks
  // ingest the source buffer over the fabric first.
  const std::uint64_t rank_bytes =
      static_cast<std::uint64_t>(dpus_per_rank_) * bytes;
  Nanos bound =
      TransferNanos(rank_bytes, params_.push_bytes_per_sec_per_rank);
  if (!topology_.single_host()) {
    bound += topology_.HopTime(TransferHop::kCrossHost, bytes);
  }
  return params_.transfer_launch_ns + bound;
}

}  // namespace updlrm::pim
