// The full UPMEM system: DPU array + shared timing models.
//
// The paper's testbed is two UPMEM modules totalling 256 DPUs at
// 350 MHz, 14 tasklets each (Table 2); those are the defaults here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "pim/dpu.h"
#include "pim/dpu_config.h"
#include "pim/kernel_cost.h"
#include "pim/mram_timing.h"
#include "pim/pipeline.h"
#include "pim/topology.h"
#include "pim/transfer.h"

namespace updlrm::pim {

struct DpuSystemConfig {
  std::uint32_t num_dpus = 256;
  std::uint32_t dpus_per_rank = 64;
  DpuConfig dpu;
  MramTimingParams mram_timing;
  HostTransferParams transfer;
  /// Rank/host hierarchy and per-hop pricing; the default places every
  /// rank on one host — the paper's flat testbed — under which all
  /// transfer times match the historical model bit for bit.
  FleetTopologyConfig topology;
  EmbeddingKernelCostParams kernel_cost;
  // When false, MRAM contents are never materialized (timing-only mode
  // for full-scale workloads; see DESIGN.md §2).
  bool functional = true;

  Status Validate() const;
};

class DpuSystem {
 public:
  /// Builds the system; fails on invalid configuration.
  static Result<std::unique_ptr<DpuSystem>> Create(DpuSystemConfig config);

  std::uint32_t num_dpus() const {
    return static_cast<std::uint32_t>(dpus_.size());
  }
  std::uint32_t num_ranks() const { return transfer_.num_ranks(); }

  DpuCore& dpu(std::uint32_t i) {
    UPDLRM_CHECK(i < dpus_.size());
    return dpus_[i];
  }
  const DpuCore& dpu(std::uint32_t i) const {
    UPDLRM_CHECK(i < dpus_.size());
    return dpus_[i];
  }

  const DpuSystemConfig& config() const { return config_; }
  const MramTimingModel& mram_timing() const { return mram_timing_; }
  const PipelineModel& pipeline() const { return pipeline_; }
  const HostTransferModel& transfer() const { return transfer_; }
  /// The fleet's rank/host topology (owned by the transfer model).
  const FleetTopology& topology() const { return transfer_.topology(); }
  const EmbeddingKernelCostModel& kernel_cost() const {
    return kernel_cost_;
  }
  bool functional() const { return config_.functional; }

  /// Clears all per-DPU statistics.
  void ResetStats();

  /// Aggregate MRAM footprint actually materialized (bytes).
  std::uint64_t TotalHighWatermark() const;

 private:
  explicit DpuSystem(DpuSystemConfig config);

  DpuSystemConfig config_;
  MramTimingModel mram_timing_;
  PipelineModel pipeline_;
  HostTransferModel transfer_;
  EmbeddingKernelCostModel kernel_cost_;
  std::vector<DpuCore> dpus_;
};

}  // namespace updlrm::pim
