// Cycle-cost model of the DPU embedding-lookup kernel.
//
// The kernel each DPU runs in stage 2 (Fig. 4) does, per assigned batch:
//   1. stream its routed index/offset lists from MRAM into WRAM chunks;
//   2. for every index, DMA the Nc*4-byte row slice (EMT region) or
//      cached partial-sum slice (cache region) into WRAM and accumulate
//      it into the sample's int32 partial sum;
//   3. write each sample's partial sum back to the MRAM output buffer.
// This model prices those phases for the PipelineModel. Instruction
// budgets are calibrated against the paper's Fig. 11 magnitudes (see
// EXPERIMENTS.md); the UPMEM ISA has no FPU, hence integer accumulation
// (see common/fixed_point.h).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "pim/dpu_config.h"
#include "pim/mram_timing.h"
#include "pim/pipeline.h"

namespace updlrm::pim {

struct EmbeddingKernelCostParams {
  // Per-lookup fixed instruction budget: index load, bounds check,
  // address computation, DMA setup, loop control.
  Cycles instr_per_lookup_base = 56;
  // Per 4-byte lane: int32 load + add + store in WRAM.
  Cycles instr_per_element = 2;
  // Per-sample bookkeeping: offset-list scan, partial-sum init, output
  // staging.
  Cycles instr_per_sample = 32;
  // Per WRAM-cache hit fixed budget: index load, tag compare, WRAM
  // address computation. No DMA setup — the row is already resident, so
  // a hit bypasses the MRAM latency curve entirely (see DESIGN.md
  // §"Embedding hot path").
  Cycles instr_per_wram_hit_base = 12;
  // Per gather-map reference: 16-bit ref load, WRAM partial-sum read,
  // accumulate into the sample slot. Pure WRAM traffic, no DMA.
  Cycles instr_per_gather_base = 8;
  // Tasklet boot, barrier and drain per kernel launch on one DPU.
  Cycles boot_cycles = 8'000;
  // Index-streaming chunk: indices copied MRAM->WRAM per DMA.
  std::uint32_t index_chunk = 64;

  Status Validate() const;
};

/// Work one DPU performs for one batch. With the dedup/WRAM levers off,
/// only the first four fields are nonzero and the cost reduces exactly
/// to the historical three-phase kernel.
struct EmbeddingKernelWork {
  std::uint64_t num_lookups = 0;      // EMT row-slice reads (MRAM)
  std::uint64_t num_cache_reads = 0;  // cached partial-sum reads (MRAM)
  std::uint64_t num_samples = 0;      // partial sums produced
  std::uint32_t row_bytes = 0;        // Nc * 4
  // Rows served from the pinned WRAM hot-row tier: accumulation only,
  // no MRAM DMA (EngineOptions::wram_cache_rows).
  std::uint64_t num_wram_hits = 0;
  // Gather-map replays for deduplicated references: each original
  // reference beyond the first copy of a row becomes one WRAM-resident
  // 16-bit gather ref (EngineOptions::dedup).
  std::uint64_t num_gather_refs = 0;
};

/// Phases of the embedding kernel, in execution order: index streaming,
/// MRAM row/cache reads, WRAM hot-row hits, gather replay, per-sample
/// output write-back.
inline constexpr std::size_t kEmbeddingKernelNumPhases = 5;

/// Display names for the phases, in EmbeddingKernelPhases order (used
/// by the telemetry timeline and the straggler report).
inline constexpr std::array<const char*, kEmbeddingKernelNumPhases>
    kEmbeddingKernelPhaseNames = {"index_stream", "mram_reads", "wram_hits",
                                  "gather_replay", "sample_output"};

/// Builds the per-phase work items / instruction budgets / DMA costs of
/// one kernel launch. Single source of truth shared by the analytic
/// cost model (EmbeddingKernelCostModel), the cycle simulator
/// (SimulateEmbeddingKernel) and the check-mode model/sim cross-audit,
/// so the three cannot drift structurally: the *physics* (closed-form
/// bounds vs executed cycles) stay independent, the phase list does
/// not. `work` must have row_bytes > 0 and a multiple of 8 whenever any
/// item count is nonzero.
std::array<KernelWorkload, kEmbeddingKernelNumPhases> EmbeddingKernelPhases(
    const EmbeddingKernelCostParams& params, const MramTimingModel& mram,
    const EmbeddingKernelWork& work);

class EmbeddingKernelCostModel {
 public:
  EmbeddingKernelCostModel(EmbeddingKernelCostParams params,
                           const DpuConfig& dpu,
                           MramTimingModel mram_timing);

  /// Total cycles for one kernel launch on one DPU, including boot.
  Cycles KernelCycles(const EmbeddingKernelWork& work) const;

  /// Checks that per-tasklet WRAM buffers (double-buffered row slice,
  /// index chunk, sample staging) fit the 64 KB WRAM. `pinned_bytes` is
  /// the DPU-wide hot-row cache footprint (shared across tasklets)
  /// carved out before the per-tasklet buffers.
  Status ValidateWramFit(std::uint32_t row_bytes,
                         std::uint64_t pinned_bytes = 0) const;

  /// Largest hot-row cache (in rows) that still leaves the per-tasklet
  /// working buffers intact. 0 when even one row would overflow WRAM.
  std::uint32_t MaxWramCacheRows(std::uint32_t row_bytes) const;

  const EmbeddingKernelCostParams& params() const { return params_; }
  const MramTimingModel& mram_timing() const { return mram_timing_; }

 private:
  EmbeddingKernelCostParams params_;
  DpuConfig dpu_;
  MramTimingModel mram_timing_;
  PipelineModel pipeline_;
};

}  // namespace updlrm::pim
