#include "pim/reduction.h"

#include <algorithm>

namespace updlrm::pim {

std::uint32_t Log2Levels(std::uint64_t n) {
  std::uint32_t levels = 0;
  std::uint64_t span = 1;
  while (span < n) {
    span <<= 1;
    ++levels;
  }
  return levels;
}

TransferHop MergeLevelHop(const FleetTopology& topo, std::uint32_t level) {
  if (topo.single_host()) return TransferHop::kCrossRank;
  // Level l pairs nodes 2^l ranks apart; once the pairing distance
  // reaches the per-host rank count, partners live on different hosts.
  const std::uint64_t distance = std::uint64_t{1} << level;
  return distance < topo.ranks_per_host() ? TransferHop::kCrossRank
                                          : TransferHop::kCrossHost;
}

ReductionPlan PlanReduction(
    const FleetTopology& topo,
    std::span<const std::uint64_t> rank_partial_bytes,
    std::uint64_t pooled_bytes, double stream_bytes_per_sec) {
  ReductionPlan plan;
  std::uint64_t total_bytes = 0;
  std::uint64_t max_rank_bytes = 0;
  for (const std::uint64_t b : rank_partial_bytes) {
    total_bytes += b;
    max_rank_bytes = std::max(max_rank_bytes, b);
    if (b > 0) ++plan.active_ranks;
  }
  plan.flat_ns = TransferNanos(total_bytes, stream_bytes_per_sec);
  plan.levels = Log2Levels(plan.active_ranks);

  // Level 1: concurrent per-rank reduce streams — the slowest rank
  // bounds it. Level 2: the merge tree; every level moves one pooled
  // buffer per surviving pair, and pairs within a level merge
  // concurrently, so a level costs one hop of its class.
  plan.hier_ns = TransferNanos(max_rank_bytes, stream_bytes_per_sec);
  for (std::uint32_t l = 0; l < plan.levels; ++l) {
    plan.hier_ns += topo.HopTime(MergeLevelHop(topo, l), pooled_bytes);
  }

  // Ties stay flat: strict improvement required, so the degenerate
  // single-rank fleet (hier == flat == one stream) keeps the exact
  // historical pricing.
  plan.hierarchical =
      plan.active_ranks > 1 && plan.hier_ns < plan.flat_ns;
  plan.time_ns = plan.hierarchical ? plan.hier_ns : plan.flat_ns;
  return plan;
}

}  // namespace updlrm::pim
