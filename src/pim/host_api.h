// Host-side programming facade, shaped after the UPMEM SDK's dpu.h.
//
// The UpDLRM engine drives the simulator directly, but downstream users
// who want to prototype *other* PIM workloads (SpMV, filters, joins)
// should not have to re-implement routing and cost accounting. DpuSet
// mirrors the SDK's host API surface:
//
//   dpu_alloc / dpu_free        -> DpuSet::Allocate (RAII)
//   dpu_broadcast_to            -> Broadcast
//   dpu_push_xfer(TO_DPU)       -> Push (per-DPU buffers, padded)
//   dpu_push_xfer(FROM_DPU)     -> Pull
//   dpu_launch                  -> Launch(program)
//
// A DpuProgram is the tasklet code: its Run method executes once per
// DPU against that DPU's MRAM and returns the per-item work counts that
// the pipeline model prices. Launch reports the wall time as the launch
// overhead plus the slowest DPU's makespan — identical semantics to the
// engine's stage 2.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pim/pipeline.h"
#include "pim/system.h"

namespace updlrm::pim {

/// User kernel code. Run executes on one DPU: read/write its MRAM
/// (functionally) and describe the work performed as pipeline phases.
class DpuProgram {
 public:
  virtual ~DpuProgram() = default;

  /// `dpu_index` is the position within the set (0-based). Fill
  /// `phases` with the per-item costs of what the kernel did; the
  /// scheduler prices them with the tasklet pipeline model.
  virtual Status Run(std::uint32_t dpu_index, Mram& mram,
                     std::vector<KernelWorkload>& phases) = 0;
};

class DpuSet {
 public:
  /// Borrows `count` DPUs starting at `first` from the system. The
  /// system must outlive the set.
  static Result<DpuSet> Allocate(DpuSystem* system, std::uint32_t first,
                                 std::uint32_t count);

  std::uint32_t size() const { return count_; }
  DpuCore& dpu(std::uint32_t i);

  /// Writes the same buffer to every DPU at `mram_offset`. Returns the
  /// modeled transfer time.
  Result<Nanos> Broadcast(std::uint64_t mram_offset,
                          std::span<const std::uint8_t> data);

  /// Per-DPU buffers to `mram_offset` (buffers.size() == size()).
  /// Ragged buffers are padded to the maximum (the SDK's transfer
  /// matrix), keeping the parallel path.
  Result<Nanos> Push(std::uint64_t mram_offset,
                     std::span<const std::vector<std::uint8_t>> buffers);

  /// Reads `bytes_per_dpu` from every DPU at `mram_offset` into
  /// `out` (resized to size() buffers).
  Result<Nanos> Pull(std::uint64_t mram_offset, std::uint64_t bytes_per_dpu,
                     std::vector<std::vector<std::uint8_t>>* out);

  /// Runs `program` on every DPU of the set; the reported time is the
  /// kernel-launch overhead plus the slowest DPU's pipeline makespan.
  /// Per-DPU cycles are added to the DpuStats counters.
  Result<Nanos> Launch(DpuProgram& program);

 private:
  DpuSet(DpuSystem* system, std::uint32_t first, std::uint32_t count)
      : system_(system), first_(first), count_(count) {}

  DpuSystem* system_;
  std::uint32_t first_;
  std::uint32_t count_;
  // Per-call scratch, reused across Push/Pull/Launch calls (capacity
  // persists: steady-state transfers allocate nothing).
  std::vector<std::uint64_t> bytes_scratch_;
  std::vector<std::uint8_t> staging_;
  std::vector<KernelWorkload> phases_scratch_;
};

}  // namespace updlrm::pim
