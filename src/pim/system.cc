#include "pim/system.h"

namespace updlrm::pim {

Status DpuSystemConfig::Validate() const {
  if (num_dpus == 0) {
    return Status::InvalidArgument("num_dpus must be >= 1");
  }
  if (dpus_per_rank == 0) {
    return Status::InvalidArgument("dpus_per_rank must be >= 1");
  }
  UPDLRM_RETURN_IF_ERROR(dpu.Validate());
  UPDLRM_RETURN_IF_ERROR(mram_timing.Validate());
  UPDLRM_RETURN_IF_ERROR(transfer.Validate());
  UPDLRM_RETURN_IF_ERROR(topology.Validate());
  UPDLRM_RETURN_IF_ERROR(kernel_cost.Validate());
  return Status::Ok();
}

DpuSystem::DpuSystem(DpuSystemConfig config)
    : config_(config),
      mram_timing_(config.mram_timing),
      pipeline_(config.dpu),
      transfer_(config.transfer, config.num_dpus, config.dpus_per_rank,
                config.topology),
      kernel_cost_(config.kernel_cost, config.dpu,
                   MramTimingModel(config.mram_timing)) {
  dpus_.reserve(config_.num_dpus);
  for (std::uint32_t i = 0; i < config_.num_dpus; ++i) {
    dpus_.emplace_back(i, config_.dpu);
  }
}

Result<std::unique_ptr<DpuSystem>> DpuSystem::Create(
    DpuSystemConfig config) {
  UPDLRM_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<DpuSystem>(new DpuSystem(config));
}

void DpuSystem::ResetStats() {
  for (auto& dpu : dpus_) dpu.stats().Reset();
}

std::uint64_t DpuSystem::TotalHighWatermark() const {
  std::uint64_t total = 0;
  for (const auto& dpu : dpus_) total += dpu.mram().high_watermark();
  return total;
}

}  // namespace updlrm::pim
