// UPMEM DPU hardware configuration.
//
// Models the architecture described in §2.2 of the paper and the UPMEM
// SDK documentation: each DPU is a multithreaded 32-bit RISC core with a
// 64 MB MRAM bank, 64 KB WRAM scratchpad and 24 KB IRAM, clocked at
// 350 MHz. The pipeline is fine-grained multithreaded: one instruction
// issues per cycle, round-robin across tasklets, and instructions from
// the same tasklet must be at least `revolver_depth` cycles apart — so
// ≥11 tasklets are needed to saturate the pipeline (the paper runs 14).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::pim {

struct DpuConfig {
  std::uint64_t mram_bytes = 64 * kMiB;
  std::uint32_t wram_bytes = 64 * static_cast<std::uint32_t>(kKiB);
  std::uint32_t iram_bytes = 24 * static_cast<std::uint32_t>(kKiB);
  double clock_hz = 350.0 * kMHz;

  // Tasklets launched per kernel (paper: 14). Hardware maximum is 24.
  std::uint32_t num_tasklets = 14;
  std::uint32_t max_tasklets = 24;

  // Minimum cycle distance between two instructions of the same tasklet
  // (the "revolver" pipeline constraint).
  std::uint32_t revolver_depth = 11;

  Status Validate() const;
};

}  // namespace updlrm::pim
