// Fleet topology: ranks, hosts, and per-hop transfer pricing.
//
// The paper's testbed is one host driving 4 ranks (256 DPUs). Scaling
// to thousands of DPUs spreads ranks across NUMA-attached hosts, and
// the cost of moving bytes then depends on how far they travel:
//
//   same rank   — partial sums pulled by a rank land in that rank's
//                 host buffer; merging them is a local DRAM stream;
//   cross rank  — merging two ranks' buffers hops the host memory
//                 system (NUMA interconnect / another channel);
//   cross host  — index lists and merge traffic for ranks owned by a
//                 remote host additionally traverse the network fabric.
//
// FleetTopology classifies the hop between any two ranks and prices a
// byte movement over each hop class. The configuration is validated to
// be *monotone* — a farther hop is never cheaper in either bandwidth or
// latency — which is what makes "more hops never cheaper" a theorem of
// the cost model rather than an accident of defaults (pinned by
// tests/pim/topology_test.cc).
//
// The degenerate single-host configuration (ranks_per_host == 0) prices
// every existing transfer exactly as before: remote-ingress penalties
// are only paid by ranks whose host differs from the front-end host 0,
// so a flat 256-DPU fleet reproduces the historical numbers bit for
// bit.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::pim {

struct FleetTopologyConfig {
  /// Ranks owned by one host; 0 = all ranks on one host (the paper's
  /// flat testbed, and the degenerate case of every pricing rule).
  std::uint32_t ranks_per_host = 0;

  /// Host id of this fleet slice's first rank. The sharded scale-out
  /// engine carves one fleet into per-shard systems; a shard whose
  /// ranks live on host > 0 pays cross-host ingress on all its traffic
  /// (IngressExtra triggers on any rank whose host != 0). 0 for a
  /// whole-fleet or front-end-local topology.
  std::uint32_t host_offset = 0;

  /// Same-rank merge stream: the host core that pulled a rank's
  /// partials reduces them at local DRAM streaming bandwidth.
  double same_rank_bytes_per_sec = 60.0e9;
  Nanos same_rank_latency_ns = 0.0;

  /// Cross-rank hop: merging buffers owned by two different ranks of
  /// the same host (NUMA interconnect / cross-channel traffic).
  double cross_rank_bytes_per_sec = 20.0e9;
  Nanos cross_rank_latency_ns = 1'500.0;

  /// Cross-host hop: network fabric between NUMA-attached hosts.
  double cross_host_bytes_per_sec = 5.0e9;
  Nanos cross_host_latency_ns = 10'000.0;

  /// Enforces positive bandwidths and hop monotonicity: bandwidth
  /// non-increasing and latency non-decreasing with hop distance.
  Status Validate() const;
};

/// Hop classes in increasing distance order.
enum class TransferHop : std::uint32_t {
  kSameRank = 0,
  kCrossRank = 1,
  kCrossHost = 2,
};

const char* TransferHopName(TransferHop hop);

class FleetTopology {
 public:
  /// Requires config.Validate().ok() (checked).
  FleetTopology(FleetTopologyConfig config, std::uint32_t num_ranks);

  const FleetTopologyConfig& config() const { return config_; }
  std::uint32_t num_ranks() const { return num_ranks_; }
  std::uint32_t ranks_per_host() const { return ranks_per_host_; }
  std::uint32_t num_hosts() const { return num_hosts_; }
  /// True when every rank lives on the front-end host 0 — the
  /// degenerate case in which no ingress or cross-host pricing applies.
  bool single_host() const {
    return num_hosts_ == 1 && config_.host_offset == 0;
  }

  std::uint32_t HostOfRank(std::uint32_t rank) const {
    return config_.host_offset + rank / ranks_per_host_;
  }

  /// Hop class between two ranks' buffers.
  TransferHop HopBetween(std::uint32_t rank_a, std::uint32_t rank_b) const;

  /// Time to move `bytes` over one hop of class `hop` (latency +
  /// bytes / hop bandwidth). Monotone in both arguments.
  Nanos HopTime(TransferHop hop, std::uint64_t bytes) const;

  /// Extra ingress cost the front-end host pays to reach rank `rank`
  /// with `bytes`: zero for ranks of host 0, one cross-host hop
  /// otherwise. This is what makes transfer.cc price pushes/pulls to
  /// remote-host ranks differently from local ones.
  Nanos IngressExtra(std::uint32_t rank, std::uint64_t bytes) const;

 private:
  FleetTopologyConfig config_;
  std::uint32_t num_ranks_ = 1;
  std::uint32_t ranks_per_host_ = 1;
  std::uint32_t num_hosts_ = 1;
};

}  // namespace updlrm::pim
