#include "pim/host_api.h"

#include <algorithm>

namespace updlrm::pim {

Result<DpuSet> DpuSet::Allocate(DpuSystem* system, std::uint32_t first,
                                std::uint32_t count) {
  UPDLRM_CHECK(system != nullptr);
  if (count == 0) {
    return Status::InvalidArgument("a DPU set needs at least one DPU");
  }
  if (first + count > system->num_dpus()) {
    return Status::OutOfRange(
        "set [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") exceeds the system's " +
        std::to_string(system->num_dpus()) + " DPUs");
  }
  return DpuSet(system, first, count);
}

DpuCore& DpuSet::dpu(std::uint32_t i) {
  UPDLRM_CHECK(i < count_);
  return system_->dpu(first_ + i);
}

Result<Nanos> DpuSet::Broadcast(std::uint64_t mram_offset,
                                std::span<const std::uint8_t> data) {
  for (std::uint32_t i = 0; i < count_; ++i) {
    UPDLRM_RETURN_IF_ERROR(dpu(i).mram().Write(mram_offset, data));
  }
  return system_->transfer().BroadcastTime(data.size());
}

Result<Nanos> DpuSet::Push(
    std::uint64_t mram_offset,
    std::span<const std::vector<std::uint8_t>> buffers) {
  if (buffers.size() != count_) {
    return Status::InvalidArgument("need one buffer per DPU of the set");
  }
  // The transfer model prices the whole system; DPUs outside the set
  // move zero bytes.
  std::vector<std::uint64_t> bytes(system_->num_dpus(), 0);
  for (std::uint32_t i = 0; i < count_; ++i) {
    UPDLRM_RETURN_IF_ERROR(dpu(i).mram().Write(mram_offset, buffers[i]));
    bytes[first_ + i] = buffers[i].size();
  }
  return system_->transfer().PushTime(bytes, /*pad_to_max=*/true);
}

Result<Nanos> DpuSet::Pull(std::uint64_t mram_offset,
                           std::uint64_t bytes_per_dpu,
                           std::vector<std::vector<std::uint8_t>>* out) {
  UPDLRM_CHECK(out != nullptr);
  out->assign(count_, std::vector<std::uint8_t>(bytes_per_dpu));
  std::vector<std::uint64_t> bytes(system_->num_dpus(), 0);
  for (std::uint32_t i = 0; i < count_; ++i) {
    UPDLRM_RETURN_IF_ERROR(dpu(i).mram().Read(mram_offset, (*out)[i]));
    bytes[first_ + i] = bytes_per_dpu;
  }
  return system_->transfer().PullTime(bytes, /*pad_to_max=*/true);
}

Result<Nanos> DpuSet::Launch(DpuProgram& program) {
  Cycles max_cycles = 0;
  std::vector<KernelWorkload> phases;
  for (std::uint32_t i = 0; i < count_; ++i) {
    phases.clear();
    UPDLRM_RETURN_IF_ERROR(program.Run(i, dpu(i).mram(), phases));
    const Cycles cycles = system_->pipeline().Makespan(phases);
    dpu(i).stats().kernel_cycles += cycles;
    max_cycles = std::max(max_cycles, cycles);
  }
  return system_->transfer().KernelLaunchOverhead() +
         CyclesToNanos(max_cycles, system_->config().dpu.clock_hz);
}

}  // namespace updlrm::pim
