#include "pim/host_api.h"

#include <algorithm>

#include "common/simd.h"

namespace updlrm::pim {

Result<DpuSet> DpuSet::Allocate(DpuSystem* system, std::uint32_t first,
                                std::uint32_t count) {
  UPDLRM_CHECK(system != nullptr);
  if (count == 0) {
    return Status::InvalidArgument("a DPU set needs at least one DPU");
  }
  if (first + count > system->num_dpus()) {
    return Status::OutOfRange(
        "set [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") exceeds the system's " +
        std::to_string(system->num_dpus()) + " DPUs");
  }
  return DpuSet(system, first, count);
}

DpuCore& DpuSet::dpu(std::uint32_t i) {
  UPDLRM_CHECK(i < count_);
  return system_->dpu(first_ + i);
}

Result<Nanos> DpuSet::Broadcast(std::uint64_t mram_offset,
                                std::span<const std::uint8_t> data) {
  for (std::uint32_t i = 0; i < count_; ++i) {
    UPDLRM_RETURN_IF_ERROR(dpu(i).mram().Write(mram_offset, data));
  }
  return system_->transfer().BroadcastTime(data.size());
}

Result<Nanos> DpuSet::Push(
    std::uint64_t mram_offset,
    std::span<const std::vector<std::uint8_t>> buffers) {
  if (buffers.size() != count_) {
    return Status::InvalidArgument("need one buffer per DPU of the set");
  }
  // UPDLRM_NOALLOC_BEGIN: per-batch transfer path; member scratch only.
  // The transfer model prices the whole system; DPUs outside the set
  // move zero bytes. Scratch is reused across calls.
  bytes_scratch_.assign(system_->num_dpus(), 0);
  std::uint64_t max_bytes = 0;
  for (std::uint32_t i = 0; i < count_; ++i) {
    bytes_scratch_[first_ + i] = buffers[i].size();
    max_bytes = std::max<std::uint64_t>(max_bytes, buffers[i].size());
  }
  // Stage ragged buffers into the padded transfer matrix the SDK would
  // DMA (one max_bytes row per DPU, zero-filled tail), then write each
  // row's live prefix to MRAM. The packed rows keep the copy loop on
  // the vectorized path; MRAM contents are identical to writing the
  // original buffers.
  staging_.resize(static_cast<std::size_t>(max_bytes) * count_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    std::uint8_t* row = staging_.data() +
                        static_cast<std::size_t>(max_bytes) * i;
    simd::PackPadded(buffers[i].data(), buffers[i].size(), row, max_bytes);
    UPDLRM_RETURN_IF_ERROR(dpu(i).mram().Write(
        mram_offset, std::span<const std::uint8_t>(row, buffers[i].size())));
  }
  return system_->transfer().PushTime(bytes_scratch_, /*pad_to_max=*/true);
  // UPDLRM_NOALLOC_END
}

Result<Nanos> DpuSet::Pull(std::uint64_t mram_offset,
                           std::uint64_t bytes_per_dpu,
                           std::vector<std::vector<std::uint8_t>>* out) {
  UPDLRM_CHECK(out != nullptr);
  // UPDLRM_NOALLOC_BEGIN: per-batch transfer path; member scratch only.
  // resize() (not assign with a temporary) keeps each inner buffer's
  // capacity across calls.
  out->resize(count_);
  bytes_scratch_.assign(system_->num_dpus(), 0);
  for (std::uint32_t i = 0; i < count_; ++i) {
    (*out)[i].resize(bytes_per_dpu);
    UPDLRM_RETURN_IF_ERROR(dpu(i).mram().Read(mram_offset, (*out)[i]));
    bytes_scratch_[first_ + i] = bytes_per_dpu;
  }
  return system_->transfer().PullTime(bytes_scratch_, /*pad_to_max=*/true);
  // UPDLRM_NOALLOC_END
}

Result<Nanos> DpuSet::Launch(DpuProgram& program) {
  // UPDLRM_NOALLOC_BEGIN: per-batch kernel path; phase descriptors live
  // in member scratch (a fresh local vector here cost one allocation
  // per Launch on the hot serving loop).
  Cycles max_cycles = 0;
  for (std::uint32_t i = 0; i < count_; ++i) {
    phases_scratch_.clear();
    UPDLRM_RETURN_IF_ERROR(program.Run(i, dpu(i).mram(), phases_scratch_));
    const Cycles cycles = system_->pipeline().Makespan(phases_scratch_);
    dpu(i).stats().kernel_cycles += cycles;
    max_cycles = std::max(max_cycles, cycles);
  }
  return system_->transfer().KernelLaunchOverhead() +
         CyclesToNanos(max_cycles, system_->config().dpu.clock_hz);
  // UPDLRM_NOALLOC_END
}

}  // namespace updlrm::pim
