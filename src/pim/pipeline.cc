#include "pim/pipeline.h"

#include <algorithm>

namespace updlrm::pim {

PipelineModel::PipelineModel(const DpuConfig& config)
    : tasklets_(config.num_tasklets),
      revolver_depth_(config.revolver_depth) {
  UPDLRM_CHECK_MSG(config.Validate().ok(), "invalid DpuConfig");
}

Cycles PipelineModel::Makespan(const KernelWorkload& w) const {
  if (w.num_items == 0) return 0;

  // Issue bound: the pipeline retires at most one instruction per cycle;
  // with fewer tasklets than the revolver depth, each tasklet's own
  // issue-interval constraint caps utilization at T / revolver_depth.
  const double issue_scale =
      tasklets_ >= revolver_depth_
          ? 1.0
          : static_cast<double>(revolver_depth_) /
                static_cast<double>(tasklets_);
  const auto issue_bound = static_cast<Cycles>(
      static_cast<double>(w.num_items * w.instr_cycles_per_item) *
      issue_scale);

  // DMA-engine bound: one engine per DPU serializes all transfers.
  const Cycles dma_bound = w.num_items * w.dma_occupancy_per_item;

  // Latency bound: each tasklet walks its share of items serially,
  // blocking on each DMA.
  const std::uint64_t items_per_tasklet =
      CeilDiv(w.num_items, tasklets_);
  const Cycles latency_bound =
      items_per_tasklet * (w.instr_cycles_per_item + w.dma_latency_per_item);

  return std::max({issue_bound, dma_bound, latency_bound});
}

Cycles PipelineModel::Makespan(std::span<const KernelWorkload> phases) const {
  Cycles total = 0;
  for (const auto& phase : phases) total += Makespan(phase);
  return total;
}

}  // namespace updlrm::pim
