#include "pim/kernel_sim.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

namespace updlrm::pim {

namespace {

struct TaskletState {
  std::uint64_t items_left = 0;
  Cycles instr_left = 0;       // instructions left in the current item
  Cycles next_issue_ok = 0;    // revolver constraint
  bool waiting_dma = false;
  Cycles dma_done = 0;

  bool Active() const { return items_left > 0 || instr_left > 0; }
};

std::vector<TaskletState> InitialState(const KernelPhase& phase,
                                       std::uint32_t tasklets) {
  std::vector<TaskletState> state(tasklets);
  for (std::uint32_t t = 0; t < tasklets; ++t) {
    state[t].items_left = phase.num_items / tasklets +
                          (t < phase.num_items % tasklets ? 1 : 0);
    if (state[t].items_left > 0) {
      state[t].instr_left = phase.instr_per_item;
      --state[t].items_left;
    }
  }
  return state;
}

// The reference engine: one loop iteration per cycle, O(tasklets)
// wake/liveness scans. Obviously faithful; quadratic-ish on large
// phases. kPeriodic must match it cycle for cycle.
//
// `finish`, when non-null, records each tasklet's retirement cycle
// (already sized; observation only, never read back into the model).
Cycles RunPhaseExact(const KernelPhase& phase, std::uint32_t tasklets,
                     std::uint32_t revolver_depth,
                     std::uint64_t* instructions, std::uint64_t* dmas,
                     std::vector<Cycles>* finish) {
  if (phase.num_items == 0) return 0;
  UPDLRM_CHECK(phase.instr_per_item >= 1);

  std::vector<TaskletState> state = InitialState(phase, tasklets);

  Cycles cycle = 0;
  Cycles engine_free = 0;
  std::uint32_t rr = 0;
  auto any_active = [&] {
    for (const auto& s : state) {
      if (s.Active() || s.waiting_dma) return true;
    }
    return false;
  };

  while (any_active()) {
    // Wake tasklets whose DMA completed.
    for (std::uint32_t t = 0; t < tasklets; ++t) {
      TaskletState& s = state[t];
      if (s.waiting_dma && cycle >= s.dma_done) {
        s.waiting_dma = false;
        if (s.items_left > 0) {
          s.instr_left = phase.instr_per_item;
          --s.items_left;
        } else if (finish != nullptr) {
          // Last item retired when its DMA completed.
          (*finish)[t] = s.dma_done;
        }
      }
    }
    // Issue at most one instruction, round-robin from the last issuer.
    for (std::uint32_t i = 0; i < tasklets; ++i) {
      const std::uint32_t t = (rr + i) % tasklets;
      TaskletState& s = state[t];
      if (s.instr_left == 0 || s.waiting_dma || cycle < s.next_issue_ok) {
        continue;
      }
      ++*instructions;
      s.next_issue_ok = cycle + revolver_depth;
      if (--s.instr_left == 0) {
        // The item's compute is done; launch its DMA.
        if (phase.dma_latency > 0 || phase.dma_occupancy > 0) {
          const Cycles start = std::max(cycle + 1, engine_free);
          engine_free = start + phase.dma_occupancy;
          s.waiting_dma = true;
          s.dma_done = start + phase.dma_latency;
          ++*dmas;
        } else if (s.items_left > 0) {
          s.instr_left = phase.instr_per_item;
          --s.items_left;
        } else if (finish != nullptr) {
          // Last item retired as this instruction completes.
          (*finish)[t] = cycle + 1;
        }
      }
      rr = t + 1;
      break;
    }
    ++cycle;
  }
  return std::max(cycle, engine_free);
}

// --- kPeriodic engine ------------------------------------------------
//
// Same state machine as RunPhaseExact with three optimizations, each
// preserving the reference cycle count exactly:
//
//  1. Liveness is a counter (`live`), decremented on the two death
//     transitions (item completes with nothing left; DMA wake with
//     nothing left), instead of an O(tasklets) scan per cycle.
//  2. Wakes and idle gaps are event-ordered: the wake scan runs only
//     when `cycle` reaches the tracked minimum dma_done, and when no
//     tasklet can issue, `cycle` jumps straight to the next wake or
//     revolver-release time. Skipped cycles are exactly the reference
//     loop's no-op iterations.
//  3. Steady-state periods are jumped analytically. A phase is
//     homogeneous (every item costs the same), so after a warmup the
//     simulator state repeats up to a time shift. We snapshot the
//     *relative* state each iteration — per-tasklet (instr_left,
//     next_issue_ok - cycle, waiting, dma_done - cycle, items_left>0),
//     the round-robin cursor and engine_free - cycle — and on a repeat
//     with period P advance k whole periods at once: absolute times
//     += k*P, items_left -= k*d_t, counters += k*delta. k is capped at
//     min_t floor(items_left[t] / d_t) so every item-availability test
//     inside the replayed periods keeps its recorded truth value; the
//     drain tail past that runs cycle-exact. Relative clamps are
//     behavior-equivalent: a next_issue_ok or dma_done in the past
//     only ever compares `cycle >= x`, and a DMA start is
//     max(cycle + 1, engine_free), so engine_free <= cycle + 1
//     normalizes to cycle + 1.
constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

struct PeriodSnapshot {
  std::vector<std::uint64_t> key;
  Cycles cycle = 0;
  std::vector<std::uint64_t> items;
  std::uint64_t instructions = 0;
  std::uint64_t dmas = 0;
};

Cycles RunPhaseFast(const KernelPhase& phase, std::uint32_t tasklets,
                    std::uint32_t revolver_depth,
                    std::uint64_t* instructions, std::uint64_t* dmas,
                    std::vector<Cycles>* finish) {
  if (phase.num_items == 0) return 0;
  UPDLRM_CHECK(phase.instr_per_item >= 1);
  const bool has_dma = phase.dma_latency > 0 || phase.dma_occupancy > 0;

  std::vector<TaskletState> state = InitialState(phase, tasklets);
  std::uint32_t live = 0;
  for (const TaskletState& s : state) {
    if (s.instr_left > 0) ++live;
  }

  Cycles cycle = 0;
  Cycles engine_free = 0;
  std::uint32_t rr = 0;
  std::uint32_t num_waiting = 0;
  Cycles next_wake = kNever;

  // Aperiodic phases can't happen here (homogeneous items), but the
  // detector degrades gracefully: past the cap it switches itself off
  // and the loop stays event-driven.
  bool detect = true;
  constexpr std::size_t kMaxSnapshots = std::size_t{1} << 14;
  std::unordered_map<std::uint64_t, PeriodSnapshot> snapshots;
  std::vector<std::uint64_t> key;

  while (live > 0) {
    if (detect) {
      key.clear();
      key.push_back(rr % tasklets);
      key.push_back(std::max(engine_free, cycle + 1) - cycle);
      for (const TaskletState& s : state) {
        key.push_back(s.instr_left);
        key.push_back(s.next_issue_ok > cycle ? s.next_issue_ok - cycle : 0);
        key.push_back(s.waiting_dma ? s.dma_done - cycle : kNever);
        key.push_back(s.items_left > 0 ? 1 : 0);
      }
      std::uint64_t hash = 0xcbf29ce484222325ULL;
      for (std::uint64_t word : key) {
        hash = (hash ^ word) * 0x100000001b3ULL;
      }
      auto [it, inserted] = snapshots.try_emplace(hash);
      PeriodSnapshot& snap = it->second;
      if (!inserted && snap.key == key) {
        const Cycles period = cycle - snap.cycle;
        std::uint64_t k = kNever;
        for (std::uint32_t t = 0; t < tasklets; ++t) {
          const std::uint64_t d = snap.items[t] - state[t].items_left;
          if (d > 0) k = std::min(k, state[t].items_left / d);
        }
        if (period > 0 && k != kNever && k >= 1) {
          cycle += k * period;
          engine_free += k * period;
          if (next_wake != kNever) next_wake += k * period;
          for (std::uint32_t t = 0; t < tasklets; ++t) {
            state[t].next_issue_ok += k * period;
            if (state[t].waiting_dma) state[t].dma_done += k * period;
            state[t].items_left -= k * (snap.items[t] - state[t].items_left);
          }
          *instructions += k * (*instructions - snap.instructions);
          *dmas += k * (*dmas - snap.dmas);
        }
      }
      // (Re)record this hash slot at the current point in time, so the
      // next recurrence measures a fresh period. Hash collisions just
      // overwrite and delay detection; correctness needs the full-key
      // equality above.
      snap.key = key;
      snap.cycle = cycle;
      snap.items.resize(tasklets);
      for (std::uint32_t t = 0; t < tasklets; ++t) {
        snap.items[t] = state[t].items_left;
      }
      snap.instructions = *instructions;
      snap.dmas = *dmas;
      if (snapshots.size() > kMaxSnapshots) {
        snapshots.clear();
        detect = false;
      }
    }

    if (num_waiting > 0 && cycle >= next_wake) {
      next_wake = kNever;
      for (std::uint32_t t = 0; t < tasklets; ++t) {
        TaskletState& s = state[t];
        if (!s.waiting_dma) continue;
        if (cycle >= s.dma_done) {
          s.waiting_dma = false;
          --num_waiting;
          if (s.items_left > 0) {
            s.instr_left = phase.instr_per_item;
            --s.items_left;
          } else {
            --live;
            // Retirement transition; never replayed inside a period
            // jump (the jump cap preserves item-availability truth
            // values), so dma_done here equals the reference engine's.
            if (finish != nullptr) (*finish)[t] = s.dma_done;
          }
        } else {
          next_wake = std::min(next_wake, s.dma_done);
        }
      }
    }

    bool issued = false;
    for (std::uint32_t i = 0; i < tasklets; ++i) {
      const std::uint32_t t = (rr + i) % tasklets;
      TaskletState& s = state[t];
      if (s.instr_left == 0 || s.waiting_dma || cycle < s.next_issue_ok) {
        continue;
      }
      ++*instructions;
      s.next_issue_ok = cycle + revolver_depth;
      if (--s.instr_left == 0) {
        if (has_dma) {
          const Cycles start = std::max(cycle + 1, engine_free);
          engine_free = start + phase.dma_occupancy;
          s.waiting_dma = true;
          ++num_waiting;
          s.dma_done = start + phase.dma_latency;
          next_wake = std::min(next_wake, s.dma_done);
          ++*dmas;
        } else if (s.items_left > 0) {
          s.instr_left = phase.instr_per_item;
          --s.items_left;
        } else {
          --live;
          if (finish != nullptr) (*finish)[t] = cycle + 1;
        }
      }
      rr = t + 1;
      issued = true;
      break;
    }

    if (issued) {
      ++cycle;
    } else {
      // Nothing can happen before the next DMA completion or revolver
      // release; jump there. (Both are > cycle, else we would have
      // woken or issued above.)
      Cycles next = next_wake;
      for (const TaskletState& s : state) {
        if (s.instr_left > 0 && !s.waiting_dma) {
          next = std::min(next, s.next_issue_ok);
        }
      }
      cycle = next == kNever ? cycle + 1 : std::max(cycle + 1, next);
    }
  }
  return std::max(cycle, engine_free);
}

}  // namespace

Cycles SimulatePhase(const KernelPhase& phase, std::uint32_t tasklets,
                     std::uint32_t revolver_depth, PhaseEngine engine,
                     std::uint64_t* instructions, std::uint64_t* dmas,
                     std::vector<Cycles>* tasklet_finish) {
  if (tasklet_finish != nullptr) tasklet_finish->assign(tasklets, 0);
  if (engine == PhaseEngine::kExactCycle) {
    return RunPhaseExact(phase, tasklets, revolver_depth, instructions,
                         dmas, tasklet_finish);
  }
  return RunPhaseFast(phase, tasklets, revolver_depth, instructions, dmas,
                      tasklet_finish);
}

KernelSimResult SimulateEmbeddingKernel(
    const DpuConfig& dpu, const MramTimingModel& mram,
    const EmbeddingKernelCostParams& params,
    const EmbeddingKernelWork& work, PhaseEngine engine,
    KernelTimeline* timeline) {
  UPDLRM_CHECK_MSG(dpu.Validate().ok(), "invalid DpuConfig");
  KernelSimResult result;
  if (timeline != nullptr) {
    timeline->boot_cycles = params.boot_cycles;
    timeline->tasklets = dpu.num_tasklets;
    timeline->phases.clear();
  }
  if (work.num_lookups + work.num_cache_reads + work.num_samples +
          work.num_wram_hits + work.num_gather_refs ==
      0) {
    return result;
  }
  // The phase list comes from the same builder the analytic model
  // prices (EmbeddingKernelPhases), so model and simulator execute the
  // identical kernel structure; only the physics differ.
  Cycles makespan = params.boot_cycles;
  for (const KernelWorkload& w : EmbeddingKernelPhases(params, mram, work)) {
    const KernelPhase phase{w.num_items, w.instr_cycles_per_item,
                            w.dma_latency_per_item, w.dma_occupancy_per_item};
    PhaseTrace* pt = nullptr;
    if (timeline != nullptr) {
      timeline->phases.emplace_back();
      pt = &timeline->phases.back();
      pt->start = makespan;
      pt->num_items = phase.num_items;
    }
    const std::uint64_t dmas_before = result.dma_transfers;
    const Cycles span = SimulatePhase(
        phase, dpu.num_tasklets, dpu.revolver_depth, engine,
        &result.instructions_issued, &result.dma_transfers,
        pt != nullptr ? &pt->tasklet_finish : nullptr);
    makespan += span;
    if (pt != nullptr) {
      pt->makespan = span;
      pt->dma_busy =
          (result.dma_transfers - dmas_before) * phase.dma_occupancy;
      pt->tasklet_items.resize(dpu.num_tasklets);
      for (std::uint32_t t = 0; t < dpu.num_tasklets; ++t) {
        pt->tasklet_items[t] =
            phase.num_items / dpu.num_tasklets +
            (t < phase.num_items % dpu.num_tasklets ? 1 : 0);
      }
    }
  }
  result.makespan = makespan;
  result.issue_utilization =
      makespan == 0 ? 0.0
                    : static_cast<double>(result.instructions_issued) /
                          static_cast<double>(makespan);
  return result;
}

}  // namespace updlrm::pim
