#include "pim/kernel_sim.h"

#include <algorithm>
#include <vector>

namespace updlrm::pim {

namespace {

struct PhaseSpec {
  std::uint64_t num_items = 0;
  Cycles instr_per_item = 0;
  Cycles dma_latency = 0;
  Cycles dma_occupancy = 0;
};

struct TaskletState {
  std::uint64_t items_left = 0;
  Cycles instr_left = 0;       // instructions left in the current item
  Cycles next_issue_ok = 0;    // revolver constraint
  bool waiting_dma = false;
  Cycles dma_done = 0;

  bool Active() const { return items_left > 0 || instr_left > 0; }
};

// Executes one phase to completion; returns its makespan and updates
// the instruction/DMA counters.
Cycles RunPhase(const PhaseSpec& phase, std::uint32_t tasklets,
                std::uint32_t revolver_depth,
                std::uint64_t* instructions, std::uint64_t* dmas) {
  if (phase.num_items == 0) return 0;
  UPDLRM_CHECK(phase.instr_per_item >= 1);

  std::vector<TaskletState> state(tasklets);
  for (std::uint32_t t = 0; t < tasklets; ++t) {
    state[t].items_left = phase.num_items / tasklets +
                          (t < phase.num_items % tasklets ? 1 : 0);
    if (state[t].items_left > 0) {
      state[t].instr_left = phase.instr_per_item;
      --state[t].items_left;
    }
  }

  Cycles cycle = 0;
  Cycles engine_free = 0;
  std::uint32_t rr = 0;
  auto any_active = [&] {
    for (const auto& s : state) {
      if (s.Active() || s.waiting_dma) return true;
    }
    return false;
  };

  while (any_active()) {
    // Wake tasklets whose DMA completed.
    for (auto& s : state) {
      if (s.waiting_dma && cycle >= s.dma_done) {
        s.waiting_dma = false;
        if (s.items_left > 0) {
          s.instr_left = phase.instr_per_item;
          --s.items_left;
        }
      }
    }
    // Issue at most one instruction, round-robin from the last issuer.
    for (std::uint32_t i = 0; i < tasklets; ++i) {
      const std::uint32_t t = (rr + i) % tasklets;
      TaskletState& s = state[t];
      if (s.instr_left == 0 || s.waiting_dma || cycle < s.next_issue_ok) {
        continue;
      }
      ++*instructions;
      s.next_issue_ok = cycle + revolver_depth;
      if (--s.instr_left == 0) {
        // The item's compute is done; launch its DMA.
        if (phase.dma_latency > 0 || phase.dma_occupancy > 0) {
          const Cycles start = std::max(cycle + 1, engine_free);
          engine_free = start + phase.dma_occupancy;
          s.waiting_dma = true;
          s.dma_done = start + phase.dma_latency;
          ++*dmas;
        } else if (s.items_left > 0) {
          s.instr_left = phase.instr_per_item;
          --s.items_left;
        }
      }
      rr = t + 1;
      break;
    }
    ++cycle;
  }
  return std::max(cycle, engine_free);
}

}  // namespace

KernelSimResult SimulateEmbeddingKernel(
    const DpuConfig& dpu, const MramTimingModel& mram,
    const EmbeddingKernelCostParams& params,
    const EmbeddingKernelWork& work) {
  UPDLRM_CHECK_MSG(dpu.Validate().ok(), "invalid DpuConfig");
  KernelSimResult result;
  if (work.num_lookups + work.num_cache_reads + work.num_samples == 0) {
    return result;
  }
  UPDLRM_CHECK(work.row_bytes > 0 && work.row_bytes % 8 == 0);
  const std::uint32_t elements = work.row_bytes / 4;
  const std::uint64_t total_reads = work.num_lookups + work.num_cache_reads;
  const std::uint32_t chunk_bytes = params.index_chunk * 4;

  const PhaseSpec phases[3] = {
      {CeilDiv(total_reads, params.index_chunk), 16,
       mram.AccessLatency(chunk_bytes), mram.EngineOccupancy(chunk_bytes)},
      {total_reads,
       params.instr_per_lookup_base + params.instr_per_element * elements,
       mram.AccessLatency(work.row_bytes),
       mram.EngineOccupancy(work.row_bytes)},
      {work.num_samples, params.instr_per_sample,
       mram.AccessLatency(work.row_bytes),
       mram.EngineOccupancy(work.row_bytes)},
  };

  Cycles makespan = params.boot_cycles;
  for (const PhaseSpec& phase : phases) {
    makespan += RunPhase(phase, dpu.num_tasklets, dpu.revolver_depth,
                         &result.instructions_issued,
                         &result.dma_transfers);
  }
  result.makespan = makespan;
  result.issue_utilization =
      makespan == 0 ? 0.0
                    : static_cast<double>(result.instructions_issued) /
                          static_cast<double>(makespan);
  return result;
}

}  // namespace updlrm::pim
