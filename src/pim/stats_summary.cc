#include "pim/stats_summary.h"

#include <vector>

#include "common/stats.h"

namespace updlrm::pim {

DpuStatsSummary SummarizeStats(const DpuSystem& system) {
  DpuStatsSummary summary;
  std::vector<double> cycles;
  cycles.reserve(system.num_dpus());
  for (std::uint32_t d = 0; d < system.num_dpus(); ++d) {
    const DpuStats& stats = system.dpu(d).stats();
    summary.total_lookups += stats.lookups;
    summary.total_cache_reads += stats.cache_reads;
    summary.total_mram_bytes_read += stats.mram_bytes_read;
    summary.total_wram_hits += stats.wram_hits;
    summary.total_gather_refs += stats.gather_refs;
    summary.total_dedup_saved_reads += stats.dedup_saved_reads;
    summary.total_index_bytes_pushed += stats.index_bytes_pushed;
    summary.max_kernel_cycles =
        std::max(summary.max_kernel_cycles, stats.kernel_cycles);
    cycles.push_back(static_cast<double>(stats.kernel_cycles));
  }
  OnlineStats online;
  for (double c : cycles) online.Add(c);
  summary.mean_kernel_cycles = static_cast<Cycles>(online.mean());
  summary.cycle_imbalance = ImbalanceRatio(cycles);
  summary.cycle_cv = CoefficientOfVariation(cycles);
  const std::uint64_t reads =
      summary.total_lookups + summary.total_cache_reads;
  summary.cache_read_share =
      reads == 0 ? 0.0
                 : static_cast<double>(summary.total_cache_reads) /
                       static_cast<double>(reads);
  const std::uint64_t row_refs = reads + summary.total_wram_hits;
  summary.wram_hit_share =
      row_refs == 0 ? 0.0
                    : static_cast<double>(summary.total_wram_hits) /
                          static_cast<double>(row_refs);
  const std::uint64_t pre_dedup_refs =
      row_refs + summary.total_dedup_saved_reads;
  summary.dedup_saved_share =
      pre_dedup_refs == 0
          ? 0.0
          : static_cast<double>(summary.total_dedup_saved_reads) /
                static_cast<double>(pre_dedup_refs);
  return summary;
}

}  // namespace updlrm::pim
