#include "pim/stats_summary.h"

#include <algorithm>
#include <vector>

#include "common/stats.h"

namespace updlrm::pim {

// Layout guard for UPDLRM_DPU_COUNTER_FIELDS: DpuStats must consist of
// kernel_cycles plus exactly the listed uint64 counters. A counter
// added to the struct without extending the macro changes sizeof and
// fails here, so it cannot silently skip aggregation.
namespace {
constexpr std::size_t kListedCounters =
#define UPDLRM_COUNT_FIELD(name) +1
    UPDLRM_DPU_COUNTER_FIELDS(UPDLRM_COUNT_FIELD);
#undef UPDLRM_COUNT_FIELD
static_assert(sizeof(DpuStats) ==
                  sizeof(Cycles) + kListedCounters * sizeof(std::uint64_t),
              "DpuStats has a field missing from UPDLRM_DPU_COUNTER_FIELDS "
              "(pim/dpu.h); extend the macro so it aggregates");
}  // namespace

DpuStatsSummary SummarizeStats(const DpuSystem& system) {
  DpuStatsSummary summary;
  std::vector<double> cycles;
  cycles.reserve(system.num_dpus());
  for (std::uint32_t d = 0; d < system.num_dpus(); ++d) {
    const DpuStats& stats = system.dpu(d).stats();
#define UPDLRM_ADD_TOTAL(name) summary.total_##name += stats.name;
    UPDLRM_DPU_COUNTER_FIELDS(UPDLRM_ADD_TOTAL)
#undef UPDLRM_ADD_TOTAL
    summary.max_kernel_cycles =
        std::max(summary.max_kernel_cycles, stats.kernel_cycles);
    cycles.push_back(static_cast<double>(stats.kernel_cycles));
  }
  OnlineStats online;
  for (double c : cycles) online.Add(c);
  summary.mean_kernel_cycles = static_cast<Cycles>(online.mean());
  summary.cycle_imbalance = ImbalanceRatio(cycles);
  summary.cycle_cv = CoefficientOfVariation(cycles);
  const std::uint64_t reads =
      summary.total_lookups + summary.total_cache_reads;
  summary.cache_read_share =
      reads == 0 ? 0.0
                 : static_cast<double>(summary.total_cache_reads) /
                       static_cast<double>(reads);
  const std::uint64_t row_refs = reads + summary.total_wram_hits;
  summary.wram_hit_share =
      row_refs == 0 ? 0.0
                    : static_cast<double>(summary.total_wram_hits) /
                          static_cast<double>(row_refs);
  const std::uint64_t pre_dedup_refs =
      row_refs + summary.total_dedup_saved_reads;
  summary.dedup_saved_share =
      pre_dedup_refs == 0
          ? 0.0
          : static_cast<double>(summary.total_dedup_saved_reads) /
                static_cast<double>(pre_dedup_refs);
  return summary;
}

std::vector<DpuHotspot> TopKSlowestDpus(const DpuSystem& system,
                                        std::size_t k) {
  std::vector<DpuHotspot> all;
  all.reserve(system.num_dpus());
  for (std::uint32_t d = 0; d < system.num_dpus(); ++d) {
    const DpuStats& stats = system.dpu(d).stats();
    all.push_back(DpuHotspot{d, stats.kernel_cycles, stats.lookups,
                             stats.cache_reads, stats.wram_hits});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(k), all.end(),
                    [](const DpuHotspot& a, const DpuHotspot& b) {
                      if (a.kernel_cycles != b.kernel_cycles) {
                        return a.kernel_cycles > b.kernel_cycles;
                      }
                      return a.dpu < b.dpu;
                    });
  all.resize(k);
  return all;
}

void ExportStats(const DpuStatsSummary& summary,
                 telemetry::MetricsRegistry& registry,
                 const std::string& prefix) {
#define UPDLRM_EXPORT_TOTAL(name) \
  registry.Increment(prefix + "." #name,     \
                     static_cast<double>(summary.total_##name));
  UPDLRM_DPU_COUNTER_FIELDS(UPDLRM_EXPORT_TOTAL)
#undef UPDLRM_EXPORT_TOTAL
  registry.Increment(prefix + ".check_violations",
                     static_cast<double>(summary.check_violations));
  registry.SetGauge(prefix + ".max_kernel_cycles",
                    static_cast<double>(summary.max_kernel_cycles));
  registry.SetGauge(prefix + ".mean_kernel_cycles",
                    static_cast<double>(summary.mean_kernel_cycles));
  registry.SetGauge(prefix + ".cycle_imbalance", summary.cycle_imbalance);
  registry.SetGauge(prefix + ".cycle_cv", summary.cycle_cv);
  registry.SetGauge(prefix + ".cache_read_share",
                    summary.cache_read_share);
  registry.SetGauge(prefix + ".wram_hit_share", summary.wram_hit_share);
  registry.SetGauge(prefix + ".dedup_saved_share",
                    summary.dedup_saved_share);
}

}  // namespace updlrm::pim
