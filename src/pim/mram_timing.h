// MRAM access timing model (Fig. 3 of the paper).
//
// The paper measures MRAM read latency as a function of access size:
// nearly flat from 8 B to 32 B, then growing close to linearly up to the
// 2048 B hardware maximum. Accesses must be 8-byte aligned. We model the
// latency a tasklet observes as
//
//     lat(s) = base_latency + cycles_per_byte * max(0, s - flat_until)
//
// and separately model the DMA *engine occupancy* — the time the DPU's
// single DMA engine is busy with the transfer, which serializes
// concurrent tasklet DMAs and therefore bounds throughput:
//
//     occ(s) = engine_setup + engine_cycles_per_byte * s
//
// Defaults are calibrated so that a 2048 B streaming read sustains
// ~800 MB/s at 350 MHz, the bandwidth UPMEM documents (§2.2).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::pim {

struct MramTimingParams {
  Cycles base_latency = 84;
  std::uint32_t flat_until_bytes = 32;
  double cycles_per_byte = 0.4;

  Cycles engine_setup = 20;
  double engine_cycles_per_byte = 0.4;

  std::uint32_t alignment = 8;
  std::uint32_t max_access_bytes = 2048;

  Status Validate() const;
};

class MramTimingModel {
 public:
  explicit MramTimingModel(MramTimingParams params = {});

  /// Checks UPMEM DMA constraints: offset and size 8-byte aligned,
  /// 0 < size <= 2048.
  Status ValidateAccess(std::uint64_t offset, std::uint32_t bytes) const;

  /// Latency the issuing tasklet waits for, in DPU cycles.
  Cycles AccessLatency(std::uint32_t bytes) const;

  /// Time the (single, per-DPU) DMA engine is occupied, in DPU cycles.
  Cycles EngineOccupancy(std::uint32_t bytes) const;

  /// Effective bandwidth of back-to-back accesses of `bytes` at
  /// `clock_hz`, limited by engine occupancy (bytes/second).
  double StreamingBandwidth(std::uint32_t bytes, double clock_hz) const;

  const MramTimingParams& params() const { return params_; }

 private:
  MramTimingParams params_;
};

}  // namespace updlrm::pim
