#include "pim/kernel_cost.h"

#include <algorithm>
#include <array>

namespace updlrm::pim {

Status EmbeddingKernelCostParams::Validate() const {
  if (index_chunk == 0) {
    return Status::InvalidArgument("index_chunk must be >= 1");
  }
  return Status::Ok();
}

EmbeddingKernelCostModel::EmbeddingKernelCostModel(
    EmbeddingKernelCostParams params, const DpuConfig& dpu,
    MramTimingModel mram_timing)
    : params_(params),
      dpu_(dpu),
      mram_timing_(std::move(mram_timing)),
      pipeline_(dpu) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(),
                   "invalid EmbeddingKernelCostParams");
}

std::array<KernelWorkload, kEmbeddingKernelNumPhases> EmbeddingKernelPhases(
    const EmbeddingKernelCostParams& params, const MramTimingModel& mram,
    const EmbeddingKernelWork& work) {
  UPDLRM_CHECK(work.row_bytes > 0 && work.row_bytes % 8 == 0);
  const std::uint32_t elements = work.row_bytes / 4;
  const Cycles instr_per_read =
      params.instr_per_lookup_base + params.instr_per_element * elements;

  // Phase 1: stream index lists MRAM->WRAM in chunks. Every MRAM/WRAM
  // row reference is one 4-byte index word; gather refs are 16-bit, two
  // per word. With the levers off this is exactly the historical
  // lookups+cache count.
  const std::uint64_t mram_reads = work.num_lookups + work.num_cache_reads;
  const std::uint64_t index_words =
      mram_reads + work.num_wram_hits + CeilDiv(work.num_gather_refs, 2);
  const std::uint32_t chunk_bytes = params.index_chunk * 4;
  KernelWorkload index_stream{
      .num_items = CeilDiv(index_words, params.index_chunk),
      .instr_cycles_per_item = 16,
      .dma_latency_per_item = mram.AccessLatency(chunk_bytes),
      .dma_occupancy_per_item = mram.EngineOccupancy(chunk_bytes),
  };

  // Phase 2: row-slice / cached-partial-sum reads + accumulation. EMT and
  // cache reads have identical cost structure (same size, same region
  // type), so they share one workload entry.
  KernelWorkload reads{
      .num_items = mram_reads,
      .instr_cycles_per_item = instr_per_read,
      .dma_latency_per_item = mram.AccessLatency(work.row_bytes),
      .dma_occupancy_per_item = mram.EngineOccupancy(work.row_bytes),
  };

  // Phase 2b: WRAM hot-row hits. Same accumulation arithmetic as phase
  // 2 but the row is already pinned in WRAM — no DMA is issued, so the
  // item never touches the MRAM latency curve or the DMA engine.
  KernelWorkload wram_hits{
      .num_items = work.num_wram_hits,
      .instr_cycles_per_item = params.instr_per_wram_hit_base +
                               params.instr_per_element * elements,
      .dma_latency_per_item = 0,
      .dma_occupancy_per_item = 0,
  };

  // Phase 2c: gather replay. Each deduplicated reference re-accumulates
  // an already-materialized partial row from WRAM into its sample slot.
  KernelWorkload gather{
      .num_items = work.num_gather_refs,
      .instr_cycles_per_item = params.instr_per_gather_base +
                               params.instr_per_element * elements,
      .dma_latency_per_item = 0,
      .dma_occupancy_per_item = 0,
  };

  // Phase 3: per-sample bookkeeping and output write-back.
  KernelWorkload outputs{
      .num_items = work.num_samples,
      .instr_cycles_per_item = params.instr_per_sample,
      .dma_latency_per_item = mram.AccessLatency(work.row_bytes),
      .dma_occupancy_per_item = mram.EngineOccupancy(work.row_bytes),
  };

  return {index_stream, reads, wram_hits, gather, outputs};
}

Cycles EmbeddingKernelCostModel::KernelCycles(
    const EmbeddingKernelWork& work) const {
  if (work.num_lookups + work.num_cache_reads + work.num_samples +
          work.num_wram_hits + work.num_gather_refs ==
      0) {
    return 0;
  }
  // Zero-item phases contribute zero cycles, so with the levers off the
  // makespan is bit-identical to the historical three-phase kernel.
  const auto phases = EmbeddingKernelPhases(params_, mram_timing_, work);
  return params_.boot_cycles + pipeline_.Makespan(phases);
}

Status EmbeddingKernelCostModel::ValidateWramFit(
    std::uint32_t row_bytes, std::uint64_t pinned_bytes) const {
  // Per tasklet: double-buffered row slice, one index chunk, one staged
  // output row, and ~256 B of stack/locals. The pinned hot-row cache is
  // a DPU-wide region carved out once, shared read-only by all
  // tasklets.
  const std::uint64_t per_tasklet = 2ULL * row_bytes +
                                    params_.index_chunk * 4ULL + row_bytes +
                                    256;
  const std::uint64_t total = per_tasklet * dpu_.num_tasklets + pinned_bytes;
  if (total > dpu_.wram_bytes) {
    return Status::CapacityExceeded(
        "WRAM overflow: " + std::to_string(total) + " bytes needed, " +
        std::to_string(dpu_.wram_bytes) + " available");
  }
  return Status::Ok();
}

std::uint32_t EmbeddingKernelCostModel::MaxWramCacheRows(
    std::uint32_t row_bytes) const {
  const std::uint64_t per_tasklet = 2ULL * row_bytes +
                                    params_.index_chunk * 4ULL + row_bytes +
                                    256;
  const std::uint64_t working = per_tasklet * dpu_.num_tasklets;
  if (working >= dpu_.wram_bytes || row_bytes == 0) return 0;
  const std::uint64_t free_bytes = dpu_.wram_bytes - working;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(free_bytes / row_bytes, 0xffffffffULL));
}

}  // namespace updlrm::pim
