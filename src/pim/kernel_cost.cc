#include "pim/kernel_cost.h"

#include <array>

namespace updlrm::pim {

Status EmbeddingKernelCostParams::Validate() const {
  if (index_chunk == 0) {
    return Status::InvalidArgument("index_chunk must be >= 1");
  }
  return Status::Ok();
}

EmbeddingKernelCostModel::EmbeddingKernelCostModel(
    EmbeddingKernelCostParams params, const DpuConfig& dpu,
    MramTimingModel mram_timing)
    : params_(params),
      dpu_(dpu),
      mram_timing_(std::move(mram_timing)),
      pipeline_(dpu) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(),
                   "invalid EmbeddingKernelCostParams");
}

Cycles EmbeddingKernelCostModel::KernelCycles(
    const EmbeddingKernelWork& work) const {
  if (work.num_lookups + work.num_cache_reads + work.num_samples == 0) {
    return 0;
  }
  UPDLRM_CHECK(work.row_bytes > 0 && work.row_bytes % 8 == 0);
  const std::uint32_t elements = work.row_bytes / 4;
  const Cycles instr_per_read =
      params_.instr_per_lookup_base + params_.instr_per_element * elements;

  // Phase 1: stream index lists MRAM->WRAM in chunks.
  const std::uint64_t total_reads = work.num_lookups + work.num_cache_reads;
  const std::uint32_t chunk_bytes = params_.index_chunk * 4;
  KernelWorkload index_stream{
      .num_items = CeilDiv(total_reads, params_.index_chunk),
      .instr_cycles_per_item = 16,
      .dma_latency_per_item = mram_timing_.AccessLatency(chunk_bytes),
      .dma_occupancy_per_item = mram_timing_.EngineOccupancy(chunk_bytes),
  };

  // Phase 2: row-slice / cached-partial-sum reads + accumulation. EMT and
  // cache reads have identical cost structure (same size, same region
  // type), so they share one workload entry.
  KernelWorkload reads{
      .num_items = total_reads,
      .instr_cycles_per_item = instr_per_read,
      .dma_latency_per_item = mram_timing_.AccessLatency(work.row_bytes),
      .dma_occupancy_per_item = mram_timing_.EngineOccupancy(work.row_bytes),
  };

  // Phase 3: per-sample bookkeeping and output write-back.
  KernelWorkload outputs{
      .num_items = work.num_samples,
      .instr_cycles_per_item = params_.instr_per_sample,
      .dma_latency_per_item = mram_timing_.AccessLatency(work.row_bytes),
      .dma_occupancy_per_item = mram_timing_.EngineOccupancy(work.row_bytes),
  };

  const std::array<KernelWorkload, 3> phases = {index_stream, reads,
                                                outputs};
  return params_.boot_cycles + pipeline_.Makespan(phases);
}

Status EmbeddingKernelCostModel::ValidateWramFit(
    std::uint32_t row_bytes) const {
  // Per tasklet: double-buffered row slice, one index chunk, one staged
  // output row, and ~256 B of stack/locals.
  const std::uint64_t per_tasklet = 2ULL * row_bytes +
                                    params_.index_chunk * 4ULL + row_bytes +
                                    256;
  const std::uint64_t total = per_tasklet * dpu_.num_tasklets;
  if (total > dpu_.wram_bytes) {
    return Status::CapacityExceeded(
        "WRAM overflow: " + std::to_string(total) + " bytes needed, " +
        std::to_string(dpu_.wram_bytes) + " available");
  }
  return Status::Ok();
}

}  // namespace updlrm::pim
