// Aggregate statistics over a DpuSystem's per-DPU counters.
//
// The engine accumulates per-DPU work (kernel cycles, EMT/cache reads,
// bytes moved); this summarizes them into the utilization and balance
// numbers the benches and examples report.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "pim/system.h"

namespace updlrm::pim {

struct DpuStatsSummary {
  std::uint64_t total_lookups = 0;
  std::uint64_t total_cache_reads = 0;
  std::uint64_t total_mram_bytes_read = 0;
  std::uint64_t total_wram_hits = 0;
  std::uint64_t total_gather_refs = 0;
  std::uint64_t total_dedup_saved_reads = 0;
  std::uint64_t total_index_bytes_pushed = 0;
  Cycles max_kernel_cycles = 0;
  Cycles mean_kernel_cycles = 0;

  /// max / mean of per-DPU kernel cycles; 1.0 == perfectly balanced
  /// stage-2 work. 0 when no work was recorded.
  double cycle_imbalance = 0.0;
  /// Coefficient of variation of per-DPU kernel cycles.
  double cycle_cv = 0.0;
  /// Share of lookups served from cached partial sums.
  double cache_read_share = 0.0;
  /// Share of row references served from the pinned WRAM tier (of all
  /// row references: MRAM reads + WRAM hits).
  double wram_hit_share = 0.0;
  /// Share of original row references the dedup planner collapsed into
  /// gather replays (saved MRAM reads / pre-dedup references).
  double dedup_saved_share = 0.0;
};

DpuStatsSummary SummarizeStats(const DpuSystem& system);

}  // namespace updlrm::pim
