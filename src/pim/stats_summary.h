// Aggregate statistics over a DpuSystem's per-DPU counters.
//
// The engine accumulates per-DPU work (kernel cycles, EMT/cache reads,
// bytes moved); this summarizes them into the utilization and balance
// numbers the benches and examples report. The `total_<name>` fields
// are generated from UPDLRM_DPU_COUNTER_FIELDS (pim/dpu.h), so every
// DpuStats counter is aggregated by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "pim/system.h"
#include "telemetry/registry.h"

namespace updlrm::pim {

struct DpuStatsSummary {
#define UPDLRM_DECLARE_TOTAL(name) std::uint64_t total_##name = 0;
  UPDLRM_DPU_COUNTER_FIELDS(UPDLRM_DECLARE_TOTAL)
#undef UPDLRM_DECLARE_TOTAL
  Cycles max_kernel_cycles = 0;
  Cycles mean_kernel_cycles = 0;

  /// max / mean of per-DPU kernel cycles; 1.0 == perfectly balanced
  /// stage-2 work. 0 when no work was recorded.
  double cycle_imbalance = 0.0;
  /// Coefficient of variation of per-DPU kernel cycles.
  double cycle_cv = 0.0;
  /// Share of lookups served from cached partial sums.
  double cache_read_share = 0.0;
  /// Share of row references served from the pinned WRAM tier (of all
  /// row references: MRAM reads + WRAM hits).
  double wram_hit_share = 0.0;
  /// Share of original row references the dedup planner collapsed into
  /// gather replays (saved MRAM reads / pre-dedup references).
  double dedup_saved_share = 0.0;
  /// Hardware-contract violations reported by the check layer
  /// (src/check/). DpuStats does not track violations, so
  /// SummarizeStats leaves this 0; callers running under
  /// EngineOptions::check_mode fill it from
  /// UpDlrmEngine::check_violations().
  std::uint64_t check_violations = 0;
};

DpuStatsSummary SummarizeStats(const DpuSystem& system);

/// One row of the straggler report: a slow DPU and the per-DPU
/// counters explaining why it is slow.
struct DpuHotspot {
  std::uint32_t dpu = 0;
  Cycles kernel_cycles = 0;
  std::uint64_t lookups = 0;
  std::uint64_t cache_reads = 0;
  std::uint64_t wram_hits = 0;
};

/// The k slowest DPUs by accumulated kernel cycles, slowest first.
/// Ties break toward the lower DPU id so the report is deterministic.
std::vector<DpuHotspot> TopKSlowestDpus(const DpuSystem& system,
                                        std::size_t k);

/// Mirrors a summary into `registry` under "<prefix>." keys: every
/// UPDLRM_DPU_COUNTER_FIELDS total (and check_violations) as a
/// counter, the derived balance/share numbers as gauges.
void ExportStats(const DpuStatsSummary& summary,
                 telemetry::MetricsRegistry& registry,
                 const std::string& prefix);

}  // namespace updlrm::pim
