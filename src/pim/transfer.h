// Host <-> DPU transfer timing model.
//
// §2.2 of the paper: host transfers to/from MRAM banks "can occur
// concurrently if the buffers transferred to and from all MRAM banks are
// of the same size. Otherwise, the transfers happen sequentially." The
// UPMEM SDK's batched transfer call pads ragged buffers to the largest
// size to regain the parallel path; UpDLRM does the same (see
// engine.cc), and this model prices both paths:
//
//   parallel (equal / padded):  launch + max_rank_padded_bytes / rank_bw
//   sequential (ragged):        launch + sum_bytes / serial_bw
//
// Ranks transfer concurrently; within a rank the padded buffer matrix is
// streamed at the rank's aggregate bandwidth.
// A batch additionally has a *coalesced transfer plan* (PlanTransfer):
// instead of pricing one SDK call padded to the global maximum, the plan
// compares three legal execution strategies for the same per-DPU byte
// vector and group (per-table) boundaries, and picks the cheapest:
//
//   coalesced padded:  one launch; each rank streams a matrix padded to
//                      the call-wide max over *participating* (nonzero)
//                      buffers — zero-byte DPUs are simply absent from
//                      the transfer matrix;
//   per-group padded:  one launch per group (table); each group's matrix
//                      pads only to that group's max, so heterogeneous
//                      tables stop paying for the largest table's rows;
//   sequential:        one launch; ragged buffers copied one DPU at a
//                      time at the serial bandwidth.
//
// The classic PushTime/PullTime entry points are kept bit-compatible
// with their historical behavior (global-max padding including zero
// slots) so existing callers and golden results are unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "common/status.h"
#include "common/units.h"
#include "pim/topology.h"

namespace updlrm::pim {

struct HostTransferParams {
  // Aggregate CPU->MRAM bandwidth of one 64-DPU rank (parallel path).
  double push_bytes_per_sec_per_rank = 3.0e9;
  // Aggregate MRAM->CPU bandwidth of one rank (parallel path).
  double pull_bytes_per_sec_per_rank = 0.9e9;
  // Single-buffer bandwidth of the sequential (ragged) path.
  double serial_bytes_per_sec = 0.25e9;
  // Fixed software cost of one batched push/pull call (SDK overhead:
  // building the transfer matrix, rank scheduling).
  Nanos transfer_launch_ns = 45'000.0;
  // Fixed software cost of one dpu_launch() kernel boot.
  Nanos kernel_launch_ns = 50'000.0;

  Status Validate() const;
};

/// Result of the coalesced transfer planner (see file comment).
struct TransferPlan {
  enum class Path {
    kCoalescedPadded,  // one call, padded to the call-wide nonzero max
    kPerGroupPadded,   // one call per group, padded to the group max
    kSequential,       // one call, ragged buffers copied serially
  };
  Path path = Path::kCoalescedPadded;
  Nanos time = 0.0;
  /// Bytes actually streamed under the chosen path (padding included).
  std::uint64_t streamed_bytes = 0;
  /// SDK calls (launch overheads) the chosen path pays.
  std::uint32_t launches = 0;
};

class HostTransferModel {
 public:
  /// `topology` places the fleet's ranks onto hosts; ranks owned by a
  /// host other than the front-end host 0 pay a cross-host ingress hop
  /// on every push/pull that touches them. The default (single-host)
  /// topology prices everything exactly as the historical flat model.
  HostTransferModel(HostTransferParams params, std::uint32_t num_dpus,
                    std::uint32_t dpus_per_rank,
                    FleetTopologyConfig topology = {});

  /// Time to push per-DPU buffers (bytes_per_dpu[i] to DPU i). When
  /// `pad_to_max` the buffers are padded to the per-call maximum and
  /// streamed on the parallel path; otherwise ragged buffers fall back
  /// to the sequential path (equal buffers always go parallel; a
  /// zero-byte DPU transfers nothing and never forces the sequential
  /// path). An empty span or all-zero vector costs exactly zero — no
  /// launch is issued for a transfer that moves no bytes.
  Nanos PushTime(std::span<const std::uint64_t> bytes_per_dpu,
                 bool pad_to_max) const;

  /// Same for DPU->CPU retrieval.
  Nanos PullTime(std::span<const std::uint64_t> bytes_per_dpu,
                 bool pad_to_max) const;

  /// Coalesced transfer plan for one batch's push side: picks the
  /// cheapest of {coalesced padded, per-group padded, sequential} for
  /// the given buffers. `group_start` lists the first DPU of each
  /// contiguous group (ascending, size = groups + 1, last entry ==
  /// bytes_per_dpu.size()); pass {0, num_dpus} for a single group.
  /// Zero-byte DPUs never pad, launch, or force raggedness.
  TransferPlan PlanPush(std::span<const std::uint64_t> bytes_per_dpu,
                        std::span<const std::uint32_t> group_start) const;

  /// Same for the pull side.
  TransferPlan PlanPull(std::span<const std::uint64_t> bytes_per_dpu,
                        std::span<const std::uint32_t> group_start) const;

  /// Broadcast of one buffer to all DPUs (always parallel).
  Nanos BroadcastTime(std::uint64_t bytes) const;

  /// Fixed cost of one kernel boot across the system.
  Nanos KernelLaunchOverhead() const { return params_.kernel_launch_ns; }

  const HostTransferParams& params() const { return params_; }
  std::uint32_t num_ranks() const { return num_ranks_; }
  const FleetTopology& topology() const { return topology_; }

 private:
  Nanos TransferTime(std::span<const std::uint64_t> bytes_per_dpu,
                     bool pad_to_max, double rank_bw) const;
  TransferPlan PlanTransfer(std::span<const std::uint64_t> bytes_per_dpu,
                            std::span<const std::uint32_t> group_start,
                            double rank_bw) const;
  // Padded stream time of one call covering [lo, hi): every nonzero
  // buffer is padded to the call max; ranks stream concurrently.
  // Returns {bound_ns (no launch), streamed_bytes}.
  std::pair<Nanos, std::uint64_t> PaddedStream(
      std::span<const std::uint64_t> bytes_per_dpu, std::uint32_t lo,
      std::uint32_t hi, double rank_bw) const;

  // Total cross-host ingress cost of a sequential (ragged) call: each
  // remote rank's raw bytes traverse the fabric once.
  Nanos SequentialIngress(
      std::span<const std::uint64_t> bytes_per_dpu) const;

  HostTransferParams params_;
  std::uint32_t num_dpus_;
  std::uint32_t dpus_per_rank_;
  std::uint32_t num_ranks_;
  FleetTopology topology_;
};

}  // namespace updlrm::pim
