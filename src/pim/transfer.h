// Host <-> DPU transfer timing model.
//
// §2.2 of the paper: host transfers to/from MRAM banks "can occur
// concurrently if the buffers transferred to and from all MRAM banks are
// of the same size. Otherwise, the transfers happen sequentially." The
// UPMEM SDK's batched transfer call pads ragged buffers to the largest
// size to regain the parallel path; UpDLRM does the same (see
// engine.cc), and this model prices both paths:
//
//   parallel (equal / padded):  launch + max_rank_padded_bytes / rank_bw
//   sequential (ragged):        launch + sum_bytes / serial_bw
//
// Ranks transfer concurrently; within a rank the padded buffer matrix is
// streamed at the rank's aggregate bandwidth.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::pim {

struct HostTransferParams {
  // Aggregate CPU->MRAM bandwidth of one 64-DPU rank (parallel path).
  double push_bytes_per_sec_per_rank = 3.0e9;
  // Aggregate MRAM->CPU bandwidth of one rank (parallel path).
  double pull_bytes_per_sec_per_rank = 0.9e9;
  // Single-buffer bandwidth of the sequential (ragged) path.
  double serial_bytes_per_sec = 0.25e9;
  // Fixed software cost of one batched push/pull call (SDK overhead:
  // building the transfer matrix, rank scheduling).
  Nanos transfer_launch_ns = 45'000.0;
  // Fixed software cost of one dpu_launch() kernel boot.
  Nanos kernel_launch_ns = 50'000.0;

  Status Validate() const;
};

class HostTransferModel {
 public:
  HostTransferModel(HostTransferParams params, std::uint32_t num_dpus,
                    std::uint32_t dpus_per_rank);

  /// Time to push per-DPU buffers (bytes_per_dpu[i] to DPU i). When
  /// `pad_to_max` the buffers are padded to the per-call maximum and
  /// streamed on the parallel path; otherwise ragged buffers fall back
  /// to the sequential path (equal buffers always go parallel).
  Nanos PushTime(std::span<const std::uint64_t> bytes_per_dpu,
                 bool pad_to_max) const;

  /// Same for DPU->CPU retrieval.
  Nanos PullTime(std::span<const std::uint64_t> bytes_per_dpu,
                 bool pad_to_max) const;

  /// Broadcast of one buffer to all DPUs (always parallel).
  Nanos BroadcastTime(std::uint64_t bytes) const;

  /// Fixed cost of one kernel boot across the system.
  Nanos KernelLaunchOverhead() const { return params_.kernel_launch_ns; }

  const HostTransferParams& params() const { return params_; }
  std::uint32_t num_ranks() const { return num_ranks_; }

 private:
  Nanos TransferTime(std::span<const std::uint64_t> bytes_per_dpu,
                     bool pad_to_max, double rank_bw) const;

  HostTransferParams params_;
  std::uint32_t num_dpus_;
  std::uint32_t dpus_per_rank_;
  std::uint32_t num_ranks_;
};

}  // namespace updlrm::pim
