#include "pim/mram.h"

#include <algorithm>
#include <cstring>

namespace updlrm::pim {

Status Mram::Write(std::uint64_t offset,
                   std::span<const std::uint8_t> data) {
  if (!IsAligned(offset, 8)) {
    return Status::InvalidArgument("MRAM write offset must be 8-byte aligned");
  }
  if (offset + data.size() > capacity_) {
    return Status::CapacityExceeded(
        "MRAM write of " + std::to_string(data.size()) + " bytes at offset " +
        std::to_string(offset) + " exceeds capacity " +
        std::to_string(capacity_));
  }
  if (observer_ != nullptr) observer_->OnWrite(offset, data.size());
  // A zero-length write is a valid no-op; memcpy from an empty span's
  // (possibly null) data pointer would be UB.
  if (data.empty()) return Status::Ok();
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, data.data(), data.size());
  return Status::Ok();
}

Status Mram::Read(std::uint64_t offset, std::span<std::uint8_t> out) const {
  if (!IsAligned(offset, 8)) {
    return Status::InvalidArgument("MRAM read offset must be 8-byte aligned");
  }
  if (offset + out.size() > capacity_) {
    return Status::OutOfRange("MRAM read beyond capacity");
  }
  if (observer_ != nullptr) observer_->OnRead(offset, out.size());
  if (out.empty()) return Status::Ok();
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  if (offset < data_.size()) {
    const std::uint64_t available =
        std::min<std::uint64_t>(out.size(), data_.size() - offset);
    std::memcpy(out.data(), data_.data() + offset, available);
  }
  return Status::Ok();
}

}  // namespace updlrm::pim
