// Tasklet pipeline timing model.
//
// A DPU executes kernels with fine-grained multithreading: one
// instruction issues per cycle, round-robin over tasklets, and a single
// tasklet can issue at most one instruction every `revolver_depth`
// cycles. MRAM DMAs block the issuing tasklet for the access latency
// while the (single) DMA engine serializes concurrent transfers.
//
// For a kernel processing a batch of homogeneous work items the makespan
// is bounded by three resources, and the model takes their max:
//
//   issue bound      items * instr * max(1, revolver_depth / T)
//   DMA-engine bound items * dma_occupancy
//   latency bound    ceil(items / T) * (instr + dma_latency)
//
// With T = 14 tasklets the latency bound loses to the issue bound for
// realistic lookup kernels — the pipeline "masks the MRAM read latency",
// exactly the saturation the paper reports in §4.4.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.h"
#include "pim/dpu_config.h"

namespace updlrm::pim {

/// A batch of identical work items executed by one kernel launch.
struct KernelWorkload {
  std::uint64_t num_items = 0;
  Cycles instr_cycles_per_item = 0;   // issue slots consumed per item
  Cycles dma_latency_per_item = 0;    // MRAM latency the tasklet waits on
  Cycles dma_occupancy_per_item = 0;  // DMA engine busy time per item
};

class PipelineModel {
 public:
  explicit PipelineModel(const DpuConfig& config);

  /// Makespan of one homogeneous workload, excluding boot cost.
  Cycles Makespan(const KernelWorkload& w) const;

  /// Makespan of a kernel composed of several phases executed
  /// back-to-back by the same tasklet group (bounds accumulate per
  /// phase).
  Cycles Makespan(std::span<const KernelWorkload> phases) const;

  std::uint32_t num_tasklets() const { return tasklets_; }

 private:
  std::uint32_t tasklets_;
  std::uint32_t revolver_depth_;
};

}  // namespace updlrm::pim
