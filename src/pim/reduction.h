// Hierarchical partial-sum reduction planning.
//
// The flat host reduction streams every pulled partial sum through one
// core: time = StreamTime(sum of all per-DPU output bytes). At fleet
// scale that single stream becomes the bottleneck. The hierarchical
// alternative reduces in two levels:
//
//   1. per-rank: the host worker that pulled rank r's partials reduces
//      them locally — ranks reduce concurrently, so this level costs
//      the *max* per-rank stream, not the sum;
//   2. cross-rank merge tree: the per-rank pooled buffers (batch x
//      tables x dim int64 accumulators) merge pairwise, ceil(log2(R))
//      levels deep; each level moves one pooled buffer over the hop
//      class the pairing distance implies (cross-rank inside a host,
//      cross-host above).
//
// PlanReduction prices both and picks the cheaper (ties stay flat), so
// the hierarchical option can never lose — the kReductionShape audit
// and the topology monotonicity tests pin this. Execution keeps the
// bit-exactness contract: per-rank accumulation and the pairwise merge
// reassociate only int64 additions of int32 wire terms, which are
// exactly associative, so hierarchical and flat orders produce
// identical pooled bytes (property-tested in tests/pim/reduction_test
// and tests/updlrm/determinism_test).
#pragma once

#include <cstdint>
#include <span>

#include "common/units.h"
#include "pim/topology.h"

namespace updlrm::pim {

struct ReductionPlan {
  /// True when the hierarchical schedule is strictly cheaper than the
  /// flat stream; the engine executes whichever this says.
  bool hierarchical = false;
  /// Ranks that pulled any partial bytes this batch.
  std::uint32_t active_ranks = 0;
  /// Merge-tree depth: ceil(log2(active_ranks)); 0 when <= 1 rank.
  std::uint32_t levels = 0;
  Nanos flat_ns = 0.0;
  Nanos hier_ns = 0.0;
  /// min(flat_ns, hier_ns) — what the engine charges as cpu_aggregate
  /// (before the per-table bag overhead, identical in both schedules).
  Nanos time_ns = 0.0;
};

/// Prices the flat stream vs the per-rank + merge-tree schedule for one
/// batch. `rank_partial_bytes[r]` is the total pulled partial-sum bytes
/// of rank r; `pooled_bytes` is the size of one merged pooled buffer
/// (batch x tables x dim x 8, the int64 accumulators that travel the
/// tree); `stream_bytes_per_sec` is the host's sequential reduce
/// bandwidth (the same constant the flat path uses).
ReductionPlan PlanReduction(const FleetTopology& topo,
                            std::span<const std::uint64_t> rank_partial_bytes,
                            std::uint64_t pooled_bytes,
                            double stream_bytes_per_sec);

/// ceil(log2(n)) with Log2Levels(0) == Log2Levels(1) == 0.
std::uint32_t Log2Levels(std::uint64_t n);

/// Hop class of merge level `level` (0-based): pairing distance 2^level
/// ranks — cross-rank while both partners share a host, cross-host
/// above. Monotone in `level` for any valid topology.
TransferHop MergeLevelHop(const FleetTopology& topo, std::uint32_t level);

}  // namespace updlrm::pim
