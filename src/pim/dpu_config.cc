#include "pim/dpu_config.h"

namespace updlrm::pim {

Status DpuConfig::Validate() const {
  if (mram_bytes == 0) {
    return Status::InvalidArgument("mram_bytes must be > 0");
  }
  if (wram_bytes == 0) {
    return Status::InvalidArgument("wram_bytes must be > 0");
  }
  if (clock_hz <= 0.0) {
    return Status::InvalidArgument("clock_hz must be > 0");
  }
  if (num_tasklets == 0) {
    return Status::InvalidArgument("num_tasklets must be >= 1");
  }
  if (num_tasklets > max_tasklets) {
    return Status::InvalidArgument("num_tasklets exceeds hardware maximum");
  }
  if (revolver_depth == 0) {
    return Status::InvalidArgument("revolver_depth must be >= 1");
  }
  return Status::Ok();
}

}  // namespace updlrm::pim
