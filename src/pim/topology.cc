#include "pim/topology.h"

namespace updlrm::pim {

Status FleetTopologyConfig::Validate() const {
  if (same_rank_bytes_per_sec <= 0.0 || cross_rank_bytes_per_sec <= 0.0 ||
      cross_host_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("hop bandwidths must be > 0");
  }
  if (same_rank_latency_ns < 0.0 || cross_rank_latency_ns < 0.0 ||
      cross_host_latency_ns < 0.0) {
    return Status::InvalidArgument("hop latencies must be >= 0");
  }
  // Hop monotonicity: a farther hop is never cheaper. This is what the
  // topology cost-model tests (and the reduction-shape audit) rely on.
  if (cross_rank_bytes_per_sec > same_rank_bytes_per_sec ||
      cross_host_bytes_per_sec > cross_rank_bytes_per_sec) {
    return Status::InvalidArgument(
        "hop bandwidth must be non-increasing with distance "
        "(same-rank >= cross-rank >= cross-host)");
  }
  if (cross_rank_latency_ns < same_rank_latency_ns ||
      cross_host_latency_ns < cross_rank_latency_ns) {
    return Status::InvalidArgument(
        "hop latency must be non-decreasing with distance "
        "(same-rank <= cross-rank <= cross-host)");
  }
  return Status::Ok();
}

const char* TransferHopName(TransferHop hop) {
  switch (hop) {
    case TransferHop::kSameRank:
      return "same-rank";
    case TransferHop::kCrossRank:
      return "cross-rank";
    case TransferHop::kCrossHost:
      return "cross-host";
  }
  return "?";
}

FleetTopology::FleetTopology(FleetTopologyConfig config,
                             std::uint32_t num_ranks)
    : config_(config), num_ranks_(num_ranks) {
  UPDLRM_CHECK(num_ranks_ > 0);
  UPDLRM_CHECK_MSG(config_.Validate().ok(), "invalid FleetTopologyConfig");
  ranks_per_host_ =
      config_.ranks_per_host == 0 ? num_ranks_ : config_.ranks_per_host;
  num_hosts_ =
      static_cast<std::uint32_t>(CeilDiv(num_ranks_, ranks_per_host_));
}

TransferHop FleetTopology::HopBetween(std::uint32_t rank_a,
                                      std::uint32_t rank_b) const {
  UPDLRM_CHECK(rank_a < num_ranks_ && rank_b < num_ranks_);
  if (rank_a == rank_b) return TransferHop::kSameRank;
  if (HostOfRank(rank_a) == HostOfRank(rank_b)) {
    return TransferHop::kCrossRank;
  }
  return TransferHop::kCrossHost;
}

Nanos FleetTopology::HopTime(TransferHop hop, std::uint64_t bytes) const {
  switch (hop) {
    case TransferHop::kSameRank:
      return config_.same_rank_latency_ns +
             TransferNanos(bytes, config_.same_rank_bytes_per_sec);
    case TransferHop::kCrossRank:
      return config_.cross_rank_latency_ns +
             TransferNanos(bytes, config_.cross_rank_bytes_per_sec);
    case TransferHop::kCrossHost:
      return config_.cross_host_latency_ns +
             TransferNanos(bytes, config_.cross_host_bytes_per_sec);
  }
  return 0.0;
}

Nanos FleetTopology::IngressExtra(std::uint32_t rank,
                                  std::uint64_t bytes) const {
  UPDLRM_CHECK(rank < num_ranks_);
  if (bytes == 0 || HostOfRank(rank) == 0) return 0.0;
  return HopTime(TransferHop::kCrossHost, bytes);
}

}  // namespace updlrm::pim
