// One simulated DPU: MRAM bank plus execution statistics.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "pim/dpu_config.h"
#include "pim/mram.h"

namespace updlrm::pim {

/// Every cumulative uint64 counter of DpuStats, in declaration order.
/// Single source of truth for aggregation: SummarizeStats sums each
/// entry into a `total_<name>` field and stats_summary_test walks the
/// same list, so a counter added here is aggregated (and tested)
/// automatically — and a counter added to the struct but not here trips
/// the layout static_assert in stats_summary.cc.
#define UPDLRM_DPU_COUNTER_FIELDS(X) \
  X(lookups)                         \
  X(cache_reads)                     \
  X(samples)                         \
  X(mram_bytes_read)                 \
  X(wram_hits)                       \
  X(gather_refs)                     \
  X(dedup_saved_reads)               \
  X(index_bytes_pushed)

/// Cumulative per-DPU counters, reported by the benches for utilization
/// and balance analysis.
struct DpuStats {
  Cycles kernel_cycles = 0;
  std::uint64_t lookups = 0;       // EMT row-slice reads (MRAM)
  std::uint64_t cache_reads = 0;   // cached partial-sum reads (MRAM)
  std::uint64_t samples = 0;       // partial sums produced
  std::uint64_t mram_bytes_read = 0;
  // Embedding hot-path levers (EngineOptions::{dedup, wram_cache_rows}).
  std::uint64_t wram_hits = 0;         // rows served from pinned WRAM
  std::uint64_t gather_refs = 0;       // dedup gather-map replays
  std::uint64_t dedup_saved_reads = 0; // MRAM row reads dedup removed
  std::uint64_t index_bytes_pushed = 0;  // wire bytes of index payload

  void Reset() { *this = DpuStats{}; }
};

class DpuCore {
 public:
  DpuCore(std::uint32_t id, const DpuConfig& config)
      : id_(id), mram_(config.mram_bytes) {}

  std::uint32_t id() const { return id_; }
  Mram& mram() { return mram_; }
  const Mram& mram() const { return mram_; }

  DpuStats& stats() { return stats_; }
  const DpuStats& stats() const { return stats_; }

 private:
  std::uint32_t id_;
  Mram mram_;
  DpuStats stats_;
};

}  // namespace updlrm::pim
