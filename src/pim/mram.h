// Functional MRAM bank storage.
//
// Each simulated DPU owns one Mram. Storage is materialized lazily (a
// high-watermark byte vector) so that a 256-DPU system does not allocate
// 16 GB up front; the capacity limit is still enforced on every access.
// In timing-only simulations nothing is written and the vector stays
// empty.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::pim {

class Mram {
 public:
  explicit Mram(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Host- or DPU-side write. Offsets must be 8-byte aligned (UPMEM
  /// requires aligned MRAM transfers in both directions).
  Status Write(std::uint64_t offset, std::span<const std::uint8_t> data);

  /// Read `out.size()` bytes at `offset`. Reading beyond the written
  /// high-watermark (but within capacity) yields zeros, matching
  /// uninitialized DRAM semantics of the simulator.
  Status Read(std::uint64_t offset, std::span<std::uint8_t> out) const;

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t high_watermark() const { return data_.size(); }

 private:
  std::uint64_t capacity_;
  std::vector<std::uint8_t> data_;
};

}  // namespace updlrm::pim
