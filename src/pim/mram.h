// Functional MRAM bank storage.
//
// Each simulated DPU owns one Mram. Storage is materialized lazily (a
// high-watermark byte vector) so that a 256-DPU system does not allocate
// 16 GB up front; the capacity limit is still enforced on every access.
// In timing-only simulations nothing is written and the vector stays
// empty.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::pim {

/// Access interception hook for the check-mode shadow state
/// (src/check/): notified on every functional MRAM access *after* the
/// bank's own validation, with the original offset/size. Null (the
/// default) costs one predicted-not-taken branch per access, so the
/// hook compiles down to a no-op when checks are off.
class MramObserver {
 public:
  virtual ~MramObserver() = default;
  virtual void OnWrite(std::uint64_t offset, std::uint64_t bytes) = 0;
  virtual void OnRead(std::uint64_t offset, std::uint64_t bytes) = 0;
};

class Mram {
 public:
  explicit Mram(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Host- or DPU-side write. Offsets must be 8-byte aligned (UPMEM
  /// requires aligned MRAM transfers in both directions).
  Status Write(std::uint64_t offset, std::span<const std::uint8_t> data);

  /// Read `out.size()` bytes at `offset`. Reading beyond the written
  /// high-watermark (but within capacity) yields zeros, matching
  /// uninitialized DRAM semantics of the simulator.
  Status Read(std::uint64_t offset, std::span<std::uint8_t> out) const;

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t high_watermark() const { return data_.size(); }

  /// Attaches (or detaches, with nullptr) an access observer. The
  /// observer must outlive the bank or be detached first; the caller
  /// attaching it owns that lifetime (the engine detaches its checker's
  /// observers in its destructor).
  void set_observer(MramObserver* observer) { observer_ = observer; }
  MramObserver* observer() const { return observer_; }

 private:
  std::uint64_t capacity_;
  std::vector<std::uint8_t> data_;
  MramObserver* observer_ = nullptr;
};

}  // namespace updlrm::pim
