#include "host/energy.h"

#include <algorithm>

namespace updlrm::host {

Status EnergyParams::Validate() const {
  if (cpu_active_watts < cpu_idle_watts || cpu_idle_watts < 0.0) {
    return Status::InvalidArgument("CPU power figures inconsistent");
  }
  if (gpu_active_watts < gpu_idle_watts || gpu_idle_watts < 0.0) {
    return Status::InvalidArgument("GPU power figures inconsistent");
  }
  if (dpu_rank_active_watts < dpu_rank_idle_watts ||
      dpu_rank_idle_watts < 0.0) {
    return Status::InvalidArgument("DPU power figures inconsistent");
  }
  if (dram_watts < 0.0) {
    return Status::InvalidArgument("dram_watts must be >= 0");
  }
  return Status::Ok();
}

EnergyModel::EnergyModel(EnergyParams params) : params_(params) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(), "invalid EnergyParams");
}

double EnergyModel::BatchJoules(const ComponentActivity& a) const {
  UPDLRM_CHECK(a.window_ns >= 0.0);
  const double window_s = a.window_ns / kNanosPerSecond;
  auto busy_s = [&](Nanos busy) {
    return std::min(busy, a.window_ns) / kNanosPerSecond;
  };

  double joules = params_.dram_watts * window_s;

  const double cpu_busy = busy_s(a.cpu_busy_ns);
  joules += params_.cpu_active_watts * cpu_busy +
            params_.cpu_idle_watts * (window_s - cpu_busy);

  if (a.has_gpu) {
    const double gpu_busy = busy_s(a.gpu_busy_ns);
    joules += params_.gpu_active_watts * gpu_busy +
              params_.gpu_idle_watts * (window_s - gpu_busy);
  }

  if (a.dpu_ranks > 0) {
    const double dpu_busy = busy_s(a.dpu_busy_ns);
    joules += a.dpu_ranks * (params_.dpu_rank_active_watts * dpu_busy +
                             params_.dpu_rank_idle_watts *
                                 (window_s - dpu_busy));
  }
  return joules;
}

double EnergyModel::MillijoulesPerInference(const ComponentActivity& a,
                                            std::size_t batch_size) const {
  UPDLRM_CHECK(batch_size > 0);
  return BatchJoules(a) * 1000.0 / static_cast<double>(batch_size);
}

}  // namespace updlrm::host
