#include "host/cpu_model.h"

namespace updlrm::host {

Status CpuModelParams::Validate() const {
  if (threads == 0) return Status::InvalidArgument("threads must be >= 1");
  if (clock_hz <= 0.0 || flops_per_cycle_per_thread <= 0.0 ||
      mlp_efficiency <= 0.0 || mlp_efficiency > 1.0) {
    return Status::InvalidArgument("invalid CPU compute parameters");
  }
  if (random_gather_bytes_per_sec <= 0.0 ||
      llc_gather_bytes_per_sec <= 0.0 || stream_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  return Status::Ok();
}

CpuTimingModel::CpuTimingModel(CpuModelParams params) : params_(params) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(), "invalid CpuModelParams");
}

Nanos CpuTimingModel::MlpTime(std::uint64_t flops) const {
  const double flops_per_sec = params_.clock_hz * params_.threads *
                               params_.flops_per_cycle_per_thread *
                               params_.mlp_efficiency;
  return static_cast<double>(flops) / flops_per_sec * kNanosPerSecond;
}

Nanos CpuTimingModel::GatherTime(std::uint64_t num_lookups,
                                 std::uint32_t bytes_each,
                                 std::uint64_t working_set_bytes,
                                 double llc_hit_fraction) const {
  UPDLRM_CHECK(llc_hit_fraction >= 0.0 && llc_hit_fraction <= 1.0);
  if (working_set_bytes <= params_.llc_bytes) {
    return TransferNanos(num_lookups * bytes_each,
                         params_.llc_gather_bytes_per_sec);
  }
  const double bytes = static_cast<double>(num_lookups) * bytes_each;
  const Nanos hot = TransferNanos(
      static_cast<std::uint64_t>(bytes * llc_hit_fraction),
      params_.llc_gather_bytes_per_sec);
  const Nanos cold = TransferNanos(
      static_cast<std::uint64_t>(bytes * (1.0 - llc_hit_fraction)),
      params_.random_gather_bytes_per_sec);
  return hot + cold;
}

std::uint64_t CpuTimingModel::LlcResidentRows(
    std::uint32_t bytes_each) const {
  return static_cast<std::uint64_t>(
      static_cast<double>(params_.llc_bytes) *
      params_.llc_embedding_fraction / bytes_each);
}

Nanos CpuTimingModel::StreamTime(std::uint64_t bytes) const {
  return TransferNanos(bytes, params_.stream_bytes_per_sec);
}

Nanos CpuTimingModel::BagOverhead(std::uint64_t num_bags) const {
  return static_cast<double>(num_bags) * params_.bag_call_overhead_ns;
}

}  // namespace updlrm::host
