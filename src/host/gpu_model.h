// Analytic GPU + PCIe timing model (Table 2: NVIDIA GTX 1080 Ti, 11 GB,
// PCIe 3.0 x16) for the CPU-GPU hybrid baselines.
//
// The hybrid systems run the MLP stacks (and, for FAE, hot-embedding
// gathers) on the GPU; the dominant costs at batch 64 are not the GPU
// FLOPs but the per-batch fixed overheads — kernel launches, cudaMemcpy
// latency, host/device synchronization — which is exactly why the paper
// finds DLRM-Hybrid *slower* than CPU-only inference (§4.2).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::host {

struct GpuModelParams {
  double peak_flops_per_sec = 11.3e12;  // FP32, GTX 1080 Ti
  double mlp_efficiency = 0.10;         // small-batch GEMM efficiency
  double mem_bytes_per_sec = 484.0e9;   // GDDR5X streaming
  double gather_bytes_per_sec = 120.0e9;  // device-memory random gathers
  std::uint64_t mem_bytes = 11ULL * kGiB;

  double pcie_bytes_per_sec = 12.0e9;  // effective PCIe 3.0 x16
  Nanos pcie_call_overhead_ns = 25'000.0;   // per cudaMemcpy
  Nanos kernel_launch_ns = 8'000.0;         // per kernel
  Nanos batch_sync_overhead_ns = 450'000.0;  // per-batch host<->device sync,
                                             // stream setup, driver time

  Status Validate() const;
};

class GpuTimingModel {
 public:
  explicit GpuTimingModel(GpuModelParams params = {});

  /// Dense-compute time for `flops`, plus `num_kernels` launch costs.
  Nanos MlpTime(std::uint64_t flops, std::uint32_t num_kernels) const;

  /// One host<->device copy of `bytes`.
  Nanos PcieTransfer(std::uint64_t bytes) const;

  /// Random gathers from GPU-resident memory (FAE's hot-item cache).
  Nanos GatherTime(std::uint64_t num_lookups, std::uint32_t bytes_each) const;

  /// Per-batch fixed synchronization cost of the hybrid execution.
  Nanos BatchSyncOverhead() const { return params_.batch_sync_overhead_ns; }

  const GpuModelParams& params() const { return params_; }

 private:
  GpuModelParams params_;
};

}  // namespace updlrm::host
