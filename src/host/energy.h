// Energy model for the Table-2 systems.
//
// §2.3 motivates PIM with UPMEM's reported ~10x TCO gain and up to 60%
// energy reduction. This model turns the timing results into energy
// estimates: each component draws its active power while busy and its
// idle power for the rest of the batch window; DRAM and MRAM power
// scale with provisioned capacity. Power figures are public TDPs /
// datasheet-order numbers (see EXPERIMENTS.md); as with latency, the
// cross-system *ratios* are the meaningful output.
#pragma once

#include "common/status.h"
#include "common/units.h"

namespace updlrm::host {

struct EnergyParams {
  // Dual-socket Xeon Silver 4110 (Table 2): 85 W TDP per socket.
  double cpu_active_watts = 170.0;
  double cpu_idle_watts = 40.0;

  // 128 GB DDR4: ~0.375 W/GB active.
  double dram_watts = 48.0;

  // GTX 1080 Ti: 250 W TDP.
  double gpu_active_watts = 250.0;
  double gpu_idle_watts = 15.0;

  // One UPMEM rank (64 DPUs): ~1.2 W per 8-DPU chip plus DIMM DRAM.
  double dpu_rank_active_watts = 14.0;
  double dpu_rank_idle_watts = 4.0;

  Status Validate() const;
};

/// Busy times of each component within one batch window. Components a
/// system lacks stay 0 with count 0.
struct ComponentActivity {
  Nanos window_ns = 0.0;  // wall time of the batch
  Nanos cpu_busy_ns = 0.0;
  Nanos gpu_busy_ns = 0.0;
  bool has_gpu = false;
  Nanos dpu_busy_ns = 0.0;  // DPUs active (kernel or transfer)
  std::uint32_t dpu_ranks = 0;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {});

  /// Joules consumed over the window (busy power while busy, idle power
  /// for the remainder; DRAM draws for the full window).
  double BatchJoules(const ComponentActivity& activity) const;

  /// Convenience: millijoules per inference.
  double MillijoulesPerInference(const ComponentActivity& activity,
                                 std::size_t batch_size) const;

  const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
};

}  // namespace updlrm::host
