// Analytic timing model of the host CPU (Table 2: dual-socket Intel Xeon
// Silver 4110, 32 hardware threads, 128 GB DDR4).
//
// Three behaviours matter for DLRM inference:
//   * embedding gathers — random reads across a table far larger than
//     the LLC; throughput is bound by an effective random-access
//     bandwidth (a small fraction of peak streaming bandwidth), the
//     regime the DLRM literature reports as the CPU bottleneck;
//   * MLPs — small-batch GEMMs at a fraction of peak FLOPS;
//   * streaming passes (partial-sum aggregation, concatenation).
// Calibration constants are documented in EXPERIMENTS.md; the paper's
// cross-system *ratios* are the target, not absolute testbed numbers.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace updlrm::host {

struct CpuModelParams {
  std::uint32_t threads = 32;
  double clock_hz = 2.1 * kGHz;
  double flops_per_cycle_per_thread = 8.0;  // AVX2 FMA, one port
  double mlp_efficiency = 0.20;             // achieved fraction on small GEMMs

  // Effective gather throughput for random row reads from DRAM, all
  // threads combined. Far below streaming bandwidth: each pooled lookup
  // is an independent ~128 B access.
  double random_gather_bytes_per_sec = 2.6e9;
  // Gather throughput when the working set fits in the last-level cache.
  double llc_gather_bytes_per_sec = 60.0e9;
  std::uint64_t llc_bytes = 22ULL * kMiB;

  // Streaming (sequential) bandwidth for aggregation passes.
  double stream_bytes_per_sec = 60.0e9;

  // Fraction of the LLC the embedding hot set can occupy (the rest is
  // MLP weights, activations, index streams).
  double llc_embedding_fraction = 0.5;

  // Fixed software cost per embedding-bag call (offsets handling, loop
  // setup) per table per batch.
  Nanos bag_call_overhead_ns = 2'000.0;

  Status Validate() const;
};

class CpuTimingModel {
 public:
  explicit CpuTimingModel(CpuModelParams params = {});

  /// Dense-compute time for `flops` multiply-accumulates.
  Nanos MlpTime(std::uint64_t flops) const;

  /// Embedding-gather time: `num_lookups` random reads of `bytes_each`
  /// from a working set of `working_set_bytes`. Small working sets
  /// gather at LLC speed. For DRAM-resident tables, `llc_hit_fraction`
  /// models the skew benefit real CPUs get on hot traces: that share of
  /// the lookups hits LLC-resident hot rows (callers derive it from the
  /// trace's access histogram, e.g. with trace::TopKAccessShare over the
  /// LLC-resident row budget).
  Nanos GatherTime(std::uint64_t num_lookups, std::uint32_t bytes_each,
                   std::uint64_t working_set_bytes,
                   double llc_hit_fraction = 0.0) const;

  /// Rows of `bytes_each` the LLC's embedding share can hold.
  std::uint64_t LlcResidentRows(std::uint32_t bytes_each) const;

  /// Sequential pass over `bytes` (read + accumulate).
  Nanos StreamTime(std::uint64_t bytes) const;

  /// Fixed per-embedding-bag software overhead for `num_bags` bag calls.
  Nanos BagOverhead(std::uint64_t num_bags) const;

  const CpuModelParams& params() const { return params_; }

 private:
  CpuModelParams params_;
};

}  // namespace updlrm::host
