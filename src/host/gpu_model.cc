#include "host/gpu_model.h"

namespace updlrm::host {

Status GpuModelParams::Validate() const {
  if (peak_flops_per_sec <= 0.0 || mlp_efficiency <= 0.0 ||
      mlp_efficiency > 1.0) {
    return Status::InvalidArgument("invalid GPU compute parameters");
  }
  if (mem_bytes_per_sec <= 0.0 || gather_bytes_per_sec <= 0.0 ||
      pcie_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (pcie_call_overhead_ns < 0.0 || kernel_launch_ns < 0.0 ||
      batch_sync_overhead_ns < 0.0) {
    return Status::InvalidArgument("overheads must be >= 0");
  }
  return Status::Ok();
}

GpuTimingModel::GpuTimingModel(GpuModelParams params) : params_(params) {
  UPDLRM_CHECK_MSG(params_.Validate().ok(), "invalid GpuModelParams");
}

Nanos GpuTimingModel::MlpTime(std::uint64_t flops,
                              std::uint32_t num_kernels) const {
  const double flops_per_sec =
      params_.peak_flops_per_sec * params_.mlp_efficiency;
  return static_cast<double>(flops) / flops_per_sec * kNanosPerSecond +
         static_cast<double>(num_kernels) * params_.kernel_launch_ns;
}

Nanos GpuTimingModel::PcieTransfer(std::uint64_t bytes) const {
  return params_.pcie_call_overhead_ns +
         TransferNanos(bytes, params_.pcie_bytes_per_sec);
}

Nanos GpuTimingModel::GatherTime(std::uint64_t num_lookups,
                                 std::uint32_t bytes_each) const {
  return TransferNanos(num_lookups * bytes_each,
                       params_.gather_bytes_per_sec);
}

}  // namespace updlrm::host
