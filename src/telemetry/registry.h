// Unified metrics registry: counters, gauges, histograms, one snapshot.
//
// Before this existed, every subsystem serialized its own numbers:
// DpuStats aggregation printed ad-hoc tables, the serve bench built its
// SLO JSON by hand, and the check layer kept violation counts in local
// structs. The registry absorbs those into one namespace-keyed store
// ("pim.lookups", "serve.p99_ns", "check.violations", ...) with a
// single deterministic ToJson() snapshot that every bench appends to
// BENCH_metrics.json — so a run's full scorecard lives in one line of
// JSON instead of four formats.
//
// Not a hot-path structure: updates take a mutex. Instrument per-batch
// or per-run aggregates here; per-event hot-path observation belongs in
// the tracer (tracer.h). Deterministic by construction: std::map keys
// give stable iteration, and values come from simulated quantities.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace updlrm::telemetry {

/// Log-spaced fixed-bucket histogram for nonnegative values (latencies
/// in ns, cycle counts, batch sizes). Same log-bucket trade as
/// serve::LatencyHistogram — <= ~26% relative error inside a bucket,
/// exact min/max/sum — but over a wider range ([1, 1e12), plus
/// underflow/overflow) since it holds more than latencies.
class ValueHistogram {
 public:
  static constexpr int kBucketsPerDecade = 10;
  static constexpr int kDecades = 12;
  static constexpr double kMinValue = 1.0;
  /// underflow + kDecades * kBucketsPerDecade + overflow
  static constexpr int kNumBuckets = 2 + kDecades * kBucketsPerDecade;

  void Observe(double value);

  /// Folds `other` in, bucket-wise: equivalent to observing every one
  /// of its samples (exact count/sum/min/max; identical buckets since
  /// the bucket grid is fixed). Merging an empty histogram is a no-op;
  /// merging into an empty one copies.
  void Merge(const ValueHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Interpolated percentile, p in [0, 100]. 0 with no samples.
  double Percentile(double p) const;

  std::span<const std::uint64_t> buckets() const { return buckets_; }

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Thread-safe named metrics store. Names are dotted paths
/// ("<subsystem>.<metric>"); each name belongs to exactly one kind —
/// re-using a counter name as a gauge is a programming error (checked).
class MetricsRegistry {
 public:
  /// The process-wide registry benches snapshot. Tests construct their
  /// own instances.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to a monotonic counter (creating it at 0).
  void Increment(const std::string& name, double delta = 1.0);
  /// Sets a gauge to its latest value.
  void SetGauge(const std::string& name, double value);
  /// Records one sample into a histogram (creating it empty).
  void Observe(const std::string& name, double value);

  /// Reads (0.0 / empty when the metric does not exist).
  double CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  ValueHistogram HistogramValue(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// One JSON object, single line, stable key order:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"x":{"count":..,"mean":..,"p50":..,"p95":..,
  ///                       "p99":..,"min":..,"max":..}}}
  std::string ToJson() const;

  /// Drops every metric (benches call this between measured sections).
  void Reset();

 private:
  mutable Mutex mu_;
  std::map<std::string, double> counters_ GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ GUARDED_BY(mu_);
  std::map<std::string, ValueHistogram> histograms_ GUARDED_BY(mu_);
};

}  // namespace updlrm::telemetry
