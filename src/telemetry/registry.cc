#include "telemetry/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/status.h"

namespace updlrm::telemetry {

namespace {

/// Bucket index for a value (0 = underflow, kNumBuckets-1 = overflow).
int BucketIndex(double value) {
  if (!(value >= ValueHistogram::kMinValue)) return 0;  // also NaN
  const double pos = std::log10(value / ValueHistogram::kMinValue) *
                     ValueHistogram::kBucketsPerDecade;
  const int idx = 1 + static_cast<int>(pos);
  if (idx >= ValueHistogram::kNumBuckets - 1) {
    return ValueHistogram::kNumBuckets - 1;
  }
  return idx;
}

double BucketLower(int i) {
  if (i <= 0) return 0.0;
  return ValueHistogram::kMinValue *
         std::pow(10.0, static_cast<double>(i - 1) /
                            ValueHistogram::kBucketsPerDecade);
}

double BucketUpper(int i) {
  if (i >= ValueHistogram::kNumBuckets - 1) {
    return BucketLower(ValueHistogram::kNumBuckets - 1) * 10.0;
  }
  return BucketLower(i + 1);
}

void AppendNumber(std::ostringstream& os, double v) {
  os.precision(15);
  os << v;
}

}  // namespace

void ValueHistogram::Observe(double value) {
  if (std::isnan(value)) return;  // undefined sample; keep stats sane
  if (value < 0.0) value = 0.0;
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

void ValueHistogram::Merge(const ValueHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double ValueHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      const double lower = BucketLower(i);
      const double upper = BucketUpper(i);
      const double frac =
          (rank - static_cast<double>(seen)) /
          static_cast<double>(buckets_[i]);
      double v = lower + frac * (upper - lower);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    seen = next;
  }
  return max_;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::Increment(const std::string& name, double delta) {
  MutexLock lock(mu_);
  UPDLRM_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                   "metric name reused across kinds: " + name);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  UPDLRM_CHECK_MSG(
      counters_.count(name) == 0 && histograms_.count(name) == 0,
      "metric name reused across kinds: " + name);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  MutexLock lock(mu_);
  UPDLRM_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                   "metric name reused across kinds: " + name);
  histograms_[name].Observe(value);
}

double MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

ValueHistogram MetricsRegistry::HistogramValue(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? ValueHistogram{} : it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  MutexLock lock(mu_);
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         histograms_.count(name) != 0;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    AppendNumber(os, value);
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    AppendNumber(os, value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h.count();
    os << ",\"mean\":";
    AppendNumber(os, h.Mean());
    os << ",\"p50\":";
    AppendNumber(os, h.Percentile(50.0));
    os << ",\"p95\":";
    AppendNumber(os, h.Percentile(95.0));
    os << ",\"p99\":";
    AppendNumber(os, h.Percentile(99.0));
    os << ",\"min\":";
    AppendNumber(os, h.min());
    os << ",\"max\":";
    AppendNumber(os, h.max());
    os << "}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace updlrm::telemetry
