// Chrome trace-event / Perfetto JSON export of a recorded trace.
//
// Emits the JSON Array Format's object flavour
// ({"traceEvents": [...], ...}) that both chrome://tracing and
// ui.perfetto.dev load directly. Mapping from tracer events:
//   * kBegin/kEnd        -> ph "B"/"E" duration events
//   * kComplete          -> ph "X" with "dur"
//   * kInstant           -> ph "i" (thread scope)
//   * kCounter           -> ph "C" with args {"value": v}
//   * kAsyncBegin/End    -> ph "b"/"e" with "id" (request lifetimes)
// plus ph "M" metadata naming every process/thread track registered
// with the tracer. Timestamps are exported in microseconds (the
// format's unit), as doubles, so simulated sub-microsecond slices keep
// their resolution.
//
// Clock domains stay separated by construction: host-clock events all
// live in the kHostPid process, simulated-clock events in the other
// pids, and the export summary (otherData) names each process's clock.
//
// ValidateChromeTraceJson is the schema checker the tests and the CI
// trace-smoke step run over emitted files: it re-parses the JSON
// (telemetry/json.h) and checks the trace-event schema — required
// fields per phase type, numeric timestamps, non-empty event list —
// so a malformed or empty trace fails loudly instead of silently
// rendering blank in the viewer.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "telemetry/tracer.h"

namespace updlrm::telemetry {

/// Serializes `events` (plus track-name metadata from `tracer`) into
/// Chrome trace-event JSON. Deterministic for a given event sequence.
std::string ToChromeTraceJson(const Tracer& tracer,
                              const std::vector<TraceEvent>& events);

/// Snapshot + serialize in one step.
std::string ToChromeTraceJson(const Tracer& tracer);

/// Writes the tracer's current snapshot to `path`. Fails if the file
/// cannot be written or the trace recorded zero events.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// Schema checker for trace-event JSON (see file comment). `min_events`
/// guards against structurally-valid-but-empty traces: metadata ("M")
/// events do not count toward it.
Status ValidateChromeTraceJson(std::string_view json,
                               std::size_t min_events = 1);

/// Reads `path` and validates it.
Status ValidateChromeTraceFile(const std::string& path,
                               std::size_t min_events = 1);

/// True if the file contains at least one non-metadata event with this
/// exact name (used by tools/trace_check --require).
Result<bool> ChromeTraceContainsEvent(std::string_view json,
                                      std::string_view name);

/// Counter ("C") stream checker (tools/trace_check --require-counter):
/// every counter event must carry a numeric args.value, every counter
/// series — one per (pid, name) — must have non-decreasing timestamps
/// (a counter that jumps back in time renders as garbage in the
/// viewer), and each name in `required` must appear as at least one
/// counter event.
Status ValidateChromeTraceCounters(
    std::string_view json, std::span<const std::string> required = {});

}  // namespace updlrm::telemetry
