// Fleet-health detector primitives: drift, SLO burn, stragglers.
//
// The monitor (monitor.h) slices a serving run into fixed simulated-ns
// windows; this header holds the per-window judgement math and the
// snapshot schema those judgements stream into. Three detector
// families, one per failure mode the ROADMAP's adaptation loop will
// eventually react to:
//
//   - DriftDetector: is the live access distribution still the one the
//     partitioner mined? Judged per table per window against a
//     DriftBaseline (built from trace::TableProfile's freq/by_freq
//     arrays) with two complementary statistics: total-variation
//     distance over log-spaced frequency-rank buckets (catches mass
//     moving between hot and cold regions) and top-k set Jaccard
//     (catches hot-item identity churn that rank-bucket mass hides).
//     Hysteresis (consecutive bad windows to trip, consecutive good to
//     clear) keeps single noisy windows from flapping the alert.
//   - BurnRateMonitor: SRE-style multi-window SLO burn. Each window
//     contributes (completed, over-SLO) counts; the fast horizon (few
//     windows) catches cliffs, the slow horizon (many windows) filters
//     blips, and the alert requires both to exceed their thresholds.
//   - StragglerScorer: per-unit z-scores over per-window work deltas
//     (kernel cycles + transfer bytes), EWMA-smoothed across windows so
//     a persistent slow DPU stands out while a one-window wobble
//     decays. Optional rank/shard group rollups reuse the same math
//     over group sums.
//
// Everything here is pure arithmetic over fed values: no clocks, no
// randomness, no allocation surprises — deterministic by construction
// so monitor-on runs stay bit-exact with monitor-off runs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "telemetry/registry.h"

namespace updlrm::telemetry {

// --- detector configuration ------------------------------------------

struct DriftOptions {
  /// Top-k set size for the Jaccard statistic.
  std::size_t top_k = 32;
  /// Trip when TV distance exceeds this...
  double tv_threshold = 0.35;
  /// ... or the top-k Jaccard similarity falls below this.
  double jaccard_min = 0.40;
  /// The Jaccard criterion only votes when the baseline's top-k items
  /// carry at least this mass fraction. Under a near-flat distribution
  /// "the top k" is a random draw from a huge near-tied set — every
  /// window's empirical top-k would look disjoint from the baseline's
  /// and the statistic is pure noise. TV still judges flat tables.
  /// (Measured: GoodReads' top-32 carry ~9% of accesses — a real hot
  /// head; the synthetic near-uniform fleet tables carry ~0.6%.)
  double min_topk_mass = 0.05;
  /// Hysteresis: consecutive bad windows to raise the alert,
  /// consecutive good windows to clear it.
  int trip_windows = 2;
  int clear_windows = 2;
  /// Windows with fewer accesses than this are not judged (too little
  /// signal); they leave the hysteresis counters untouched.
  std::uint64_t min_accesses = 32;
  /// Log-spaced frequency-rank buckets per decade for the TV statistic.
  int rank_buckets_per_decade = 4;
  /// Head size for the TV statistic, in rank decades: ranks at or
  /// beyond 10^max_rank_decades share one coalesced tail bucket with
  /// baseline-unseen items. A finite history cannot estimate per-item
  /// tail mass — deep-tail identity churn is expected under a
  /// stationary distribution (new cold items appear constantly), and
  /// without the coalescing that churn puts a large TV floor under
  /// every window. The head is where the cache-placement decisions
  /// live, so it is also exactly where drift matters.
  int max_rank_decades = 3;
};

struct SloBurnOptions {
  /// The latency objective: a request is "good" when latency <= slo_ns.
  Nanos slo_ns = 2.0e6;
  /// Target good fraction (0.999 = three nines); the error budget is
  /// 1 - target and burn rate is error_rate / budget.
  double target = 0.999;
  /// Horizon lengths in windows. Alerting requires BOTH the fast and
  /// the slow burn to exceed their thresholds (the SRE fast+slow pair).
  int fast_windows = 2;
  int slow_windows = 12;
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
};

struct HealthOptions {
  /// A unit whose smoothed z-score reaches this is a straggler.
  double z_threshold = 3.0;
  /// EWMA weight of the newest window's z-score.
  double ewma_alpha = 0.3;
  /// Group rollups: units_per_rank consecutive units form one rank,
  /// units_per_shard form one shard (0 disables that rollup).
  std::uint32_t units_per_rank = 0;
  std::uint32_t units_per_shard = 0;
  /// Windows where fewer units than this did any work are not judged.
  std::uint32_t min_active_units = 2;
};

// --- drift ------------------------------------------------------------

/// A mined access distribution, reduced to what the per-window
/// judgement needs. Built from trace::TableProfile's arrays (passed as
/// raw spans so telemetry keeps its {common}-only dependency
/// footprint): per-item rank buckets + per-bucket baseline mass + the
/// baseline top-k set.
struct DriftBaseline {
  /// Baseline top-k item ids, sorted ascending (set semantics).
  std::vector<std::uint32_t> top_items;
  /// Mass fraction the top-k items carry in the baseline; the Jaccard
  /// criterion abstains below DriftOptions::min_topk_mass.
  double top_mass = 0.0;
  /// Baseline probability mass per rank bucket. The last entry is the
  /// coalesced tail bucket: ranks at or beyond 10^max_rank_decades
  /// plus items with zero baseline frequency (it carries the
  /// baseline's deep-tail mass, so stationary tail churn cancels).
  std::vector<double> bucket_mass;
  /// item id -> rank bucket (size = num items; unseen items map to the
  /// last bucket).
  std::vector<std::int32_t> item_bucket;
  std::uint64_t total_accesses = 0;
};

/// `freq` / `by_freq` are TableProfile::freq / ::by_freq (per-item
/// counts and the descending-frequency order).
DriftBaseline BuildDriftBaseline(std::span<const std::uint64_t> freq,
                                 std::span<const std::uint32_t> by_freq,
                                 const DriftOptions& options);

/// Per-table hysteresis drift detector. Feed one closed window's item
/// counts at a time; read back the judged statistics and alert state.
class DriftDetector {
 public:
  DriftDetector(DriftBaseline baseline, DriftOptions options);

  struct WindowVerdict {
    std::uint64_t accesses = 0;
    bool judged = false;  // false when accesses < min_accesses
    double tv_distance = 0.0;
    double topk_jaccard = 1.0;
    /// This window's pre-hysteresis vote (TV over threshold, or the
    /// Jaccard criterion failing where it is allowed to vote). The
    /// single source of truth for "bad window" — summaries must read
    /// this rather than re-deriving it from the statistics.
    bool bad = false;
    bool alerting = false;  // hysteresis state after this window
  };

  /// `counts` maps item id -> accesses in the window (std::map keeps
  /// the top-k tie-break deterministic).
  WindowVerdict JudgeWindow(
      const std::map<std::uint32_t, std::uint64_t>& counts);

  bool alerting() const { return alerting_; }
  /// Windows judged bad/good so far (for summaries).
  std::uint64_t bad_windows() const { return bad_windows_; }

 private:
  DriftBaseline baseline_;
  DriftOptions options_;
  bool alerting_ = false;
  int consecutive_bad_ = 0;
  int consecutive_good_ = 0;
  std::uint64_t bad_windows_ = 0;
  // Scratch reused across windows (sized to bucket count).
  std::vector<double> live_mass_;
};

// --- SLO burn ---------------------------------------------------------

/// Multi-window burn-rate monitor over per-window (completed, over-SLO)
/// counts.
class BurnRateMonitor {
 public:
  explicit BurnRateMonitor(SloBurnOptions options);

  struct WindowVerdict {
    std::uint64_t completed = 0;
    std::uint64_t over_slo = 0;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    bool alerting = false;
  };

  WindowVerdict PushWindow(std::uint64_t completed, std::uint64_t over_slo);

  bool alerting() const { return alerting_; }

 private:
  /// Aggregate burn over the trailing `horizon` windows.
  double HorizonBurn(int horizon) const;

  SloBurnOptions options_;
  bool alerting_ = false;
  /// Trailing (completed, over_slo) per window, newest last; bounded by
  /// slow_windows.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> recent_;
};

// --- stragglers -------------------------------------------------------

/// Per-unit z-score straggler scorer with EWMA smoothing and optional
/// rank/shard rollups. Unit count is fixed at construction.
class StragglerScorer {
 public:
  StragglerScorer(std::size_t num_units, HealthOptions options);

  struct GroupScore {
    std::uint32_t worst = 0;  // group id of the worst smoothed z
    double max_z = 0.0;
  };

  struct WindowVerdict {
    bool judged = false;  // false when active units < min_active_units
    std::uint32_t active_units = 0;
    double mean_delta = 0.0;
    double stddev_delta = 0.0;
    /// Worst smoothed z-score and its unit (ties -> lowest unit id).
    std::uint32_t worst_unit = 0;
    double max_z = 0.0;
    /// Units whose smoothed z-score >= z_threshold this window.
    std::uint32_t stragglers = 0;
    bool alerting = false;  // stragglers > 0
    GroupScore rank;   // valid when units_per_rank > 0
    GroupScore shard;  // valid when units_per_shard > 0
  };

  /// `deltas[i]` = unit i's work done in the closed window.
  WindowVerdict ScoreWindow(std::span<const std::uint64_t> deltas);

  std::size_t num_units() const { return smoothed_z_.size(); }
  std::span<const double> smoothed_z() const { return smoothed_z_; }

 private:
  HealthOptions options_;
  std::vector<double> smoothed_z_;
  // Group scratch (sums + smoothed z per group).
  std::vector<std::uint64_t> group_sum_;
  std::vector<double> rank_z_;
  std::vector<double> shard_z_;
};

// --- snapshot schema --------------------------------------------------

/// One table's drift row in a window snapshot.
struct DriftWindow {
  std::uint32_t table = 0;
  DriftDetector::WindowVerdict verdict;
};

/// One closed window's full fleet-health snapshot.
struct FleetHealthWindow {
  std::uint64_t index = 0;
  Nanos start_ns = 0.0;
  Nanos end_ns = 0.0;
  std::vector<DriftWindow> drift;  // ascending table id
  bool has_slo = false;
  BurnRateMonitor::WindowVerdict slo;
  /// Per-window latency distribution behind the SLO counts.
  ValueHistogram latency;
  bool has_health = false;
  StragglerScorer::WindowVerdict health;

  /// One JSON object, single line (one JSONL record).
  std::string ToJson() const;
};

/// Final detector states, folded into BENCH_metrics.json at run end.
struct HealthSummary {
  std::uint64_t windows = 0;
  // Drift.
  std::uint64_t drift_bad_table_windows = 0;
  std::uint64_t drift_tables_alerting = 0;  // at run end
  std::int64_t first_drift_alert_window = -1;
  // SLO.
  std::uint64_t slo_alert_windows = 0;
  bool slo_alerting = false;
  double max_fast_burn = 0.0;
  double max_slow_burn = 0.0;
  // Stragglers.
  std::uint64_t straggler_windows = 0;
  double max_unit_z = 0.0;
  /// Merge of every window's latency histogram (ValueHistogram::Merge).
  ValueHistogram latency;

  std::string ToJson() const;
  void ExportTo(MetricsRegistry& registry, const std::string& prefix) const;
};

/// Validates a health JSONL stream the way ValidateChromeTraceJson
/// validates traces: line 1 must be the schema header
/// ({"schema":"updlrm.health.v1",...}), followed by window records with
/// strictly increasing indices and the required fields, and a final
/// summary record. Requires at least `min_windows` window records.
Status ValidateHealthJsonl(std::string_view jsonl,
                           std::size_t min_windows);

}  // namespace updlrm::telemetry
