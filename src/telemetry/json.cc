#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace updlrm::telemetry {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(JsonArray v) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::make_shared<JsonArray>(std::move(v));
  return out;
}

JsonValue JsonValue::MakeObject(JsonObject v) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::make_shared<JsonObject>(std::move(v));
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::MakeString(std::move(s).value());
      }
      case 't':
        return ParseKeyword("true", JsonValue::MakeBool(true));
      case 'f':
        return ParseKeyword("false", JsonValue::MakeBool(false));
      case 'n':
        return ParseKeyword("null", JsonValue::MakeNull());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    return JsonValue::MakeNumber(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writers; reject them for strictness).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonArray items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonObject members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      auto value = ParseValue();
      if (!value.ok()) return value;
      if (!members.emplace(std::move(key).value(), std::move(value).value())
               .second) {
        return Error("duplicate object key");
      }
      SkipWhitespace();
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace updlrm::telemetry
