// FleetMonitor: windowed streaming statistics over a serving run.
//
// Slices simulated time into fixed windows (index = floor(t_ns /
// window_ns)) and routes three observation streams into the detector
// families of health.h:
//
//   OnAccess      -> per-table DriftDetector   (embedding lookups)
//   OnRequest     -> BurnRateMonitor           (request completions)
//   OnUnitSample  -> StragglerScorer           (per-DPU cumulative work)
//
// Window close is keyed purely to simulated nanoseconds: a stream's
// current window closes the moment a sample with a later window index
// arrives (plus a final flush in Finalize), so the verdict sequence is
// a function of the simulated event stream alone — bit-exact at any
// host thread count, and identical with the monitor attached or not
// (the monitor only reads; the determinism suite pins both).
//
// Threading contract: not thread-safe by design. The serve loops are
// single-threaded at every feed point (the discrete-event scan and the
// post-drain walk), which is exactly where monitors attach. Each
// stream must be fed with non-decreasing timestamps (checked).
//
// Compile-out: a -DUPDLRM_TELEMETRY=OFF build makes MonitorEnabled()
// constant false, dead-coding every feed site the way TraceEnabled()
// does for spans.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "telemetry/health.h"
#include "telemetry/registry.h"

namespace updlrm::telemetry {

struct MonitorOptions {
  /// Simulated window width. 100 us spans a few batches at bench scale.
  Nanos window_ns = 1.0e5;
  DriftOptions drift;
  SloBurnOptions slo;
  HealthOptions health;
};

class FleetMonitor {
 public:
  explicit FleetMonitor(MonitorOptions options);

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  // --- setup (before any feeding) --------------------------------
  /// Arms drift detection for `table` against a mined baseline.
  /// Tables without a baseline are simply not drift-monitored.
  void AddTableBaseline(std::uint32_t table, DriftBaseline baseline);

  // --- feeding (each stream non-decreasing in time) --------------
  /// One sample's item indices for `table`, observed at `t_ns` (batch
  /// cut time). No-op for tables without a baseline.
  void OnAccess(std::uint32_t table, Nanos t_ns,
                std::span<const std::uint32_t> items);
  /// One request completion at `done_ns` with its end-to-end latency.
  void OnRequest(Nanos done_ns, Nanos latency_ns);
  /// Per-unit *cumulative* work counters sampled at `t_ns`; the
  /// monitor differences consecutive samples into per-window deltas.
  /// The first call fixes the unit count and the baseline (feed it
  /// before the run's first batch so window 0 is attributed fully).
  void OnUnitSample(Nanos t_ns, std::span<const std::uint64_t> cumulative);

  /// Closes every open window (the run ended), merges the per-stream
  /// records into the window snapshots, and computes the summary.
  /// Feeding after Finalize is a programming error (checked).
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- results (valid after Finalize) ----------------------------
  const std::vector<FleetHealthWindow>& windows() const {
    UPDLRM_CHECK(finalized_);
    return windows_;
  }
  const HealthSummary& summary() const {
    UPDLRM_CHECK(finalized_);
    return summary_;
  }
  /// The --health-out stream: schema header line, one line per window,
  /// trailing summary line (ValidateHealthJsonl checks the shape).
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;
  /// Folds the summary into `registry` under "<prefix>." keys.
  void ExportTo(MetricsRegistry& registry, const std::string& prefix) const;
  /// Emits per-window counter ("C") events on the simulated clock when
  /// tracing is enabled (no-op otherwise) — the health signals land in
  /// the same Chrome trace as the spans they explain.
  void EmitTraceCounters() const;

  const MonitorOptions& options() const { return options_; }

 private:
  /// Window index of a simulated instant.
  std::uint64_t WindowOf(Nanos t_ns) const;

  // Per-table drift stream: open-window counts + the detector, plus
  // every closed window's verdict keyed by window index.
  struct DriftStream {
    std::uint32_t table = 0;
    DriftDetector detector;
    std::map<std::uint32_t, std::uint64_t> counts;  // open window
    std::int64_t window = -1;                       // open window index
    std::vector<std::pair<std::uint64_t, DriftDetector::WindowVerdict>>
        closed;
    DriftStream(std::uint32_t t, DriftBaseline baseline,
                const DriftOptions& options)
        : table(t), detector(std::move(baseline), options) {}
  };
  void CloseDriftWindow(DriftStream& stream);

  struct SloRecord {
    std::uint64_t window = 0;
    BurnRateMonitor::WindowVerdict verdict;
    ValueHistogram latency;
  };
  void CloseSloWindow();

  struct HealthRecord {
    std::uint64_t window = 0;
    StragglerScorer::WindowVerdict verdict;
  };
  void CloseHealthWindow();

  MonitorOptions options_;
  bool finalized_ = false;

  std::vector<DriftStream> drift_;  // ascending table id

  BurnRateMonitor burn_;
  std::int64_t slo_window_ = -1;
  std::uint64_t slo_completed_ = 0;
  std::uint64_t slo_over_ = 0;
  ValueHistogram slo_latency_;
  std::vector<SloRecord> slo_records_;

  std::unique_ptr<StragglerScorer> scorer_;
  std::int64_t unit_window_ = -1;
  std::vector<std::uint64_t> unit_prev_;  // cumulative at window open
  std::vector<std::uint64_t> unit_last_;  // latest sample
  std::vector<std::uint64_t> unit_delta_;
  std::vector<HealthRecord> health_records_;

  std::vector<FleetHealthWindow> windows_;
  HealthSummary summary_;
};

/// The one-branch gate every monitor feed site checks first; constant
/// false (feed sites dead-code out) when telemetry is compiled out.
inline bool MonitorEnabled(const FleetMonitor* monitor) {
#ifdef UPDLRM_TELEMETRY_DISABLED
  (void)monitor;
  return false;
#else
  return monitor != nullptr;
#endif
}

}  // namespace updlrm::telemetry
