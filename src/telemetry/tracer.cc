#include "telemetry/tracer.h"

namespace updlrm::telemetry {

/// One thread's event storage. Only the owning thread writes events
/// and bumps `size` (release); Snapshot() reads `size` (acquire) and
/// the events below it. `dropped` uses relaxed atomics — it is a
/// counter, not a synchronization point.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity, std::int64_t index)
      : events(capacity), thread_index(index) {}

  std::vector<TraceEvent> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::int64_t thread_index = 0;  // registration order == export tid
};

namespace {
/// Per-thread registration slot. `generation` ties the cached pointer
/// to one Enable() epoch so stale buffers from a previous trace are
/// never written into.
struct TlsSlot {
  Tracer::ThreadBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
};
thread_local TlsSlot tls_slot;
}  // namespace

Tracer& Tracer::Get() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(TracerOptions options) {
  MutexLock lock(mu_);
  options_ = options;
  if (options_.buffer_capacity == 0) options_.buffer_capacity = 1;
  if (options_.sample_every == 0) options_.sample_every = 1;
  buffers_.clear();
  process_names_.clear();
  thread_names_.clear();
  sampled_out_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  // Invalidate every thread's cached buffer pointer before recording
  // can start.
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

TracerOptions Tracer::options() const {
  MutexLock lock(mu_);
  return options_;
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_release);
}

Nanos Tracer::HostNowNs() const {
  return static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls_slot.buffer != nullptr && tls_slot.generation == gen) {
    return tls_slot.buffer;
  }
  MutexLock lock(mu_);
  // Re-check under the lock: Enable() may have bumped the generation
  // between the load above and here; registering against the newest
  // epoch is always correct (events land in the current trace).
  auto buffer = std::make_unique<ThreadBuffer>(
      options_.buffer_capacity, static_cast<std::int64_t>(buffers_.size()));
  tls_slot.buffer = buffer.get();
  tls_slot.generation = generation_.load(std::memory_order_relaxed);
  buffers_.push_back(std::move(buffer));
  return tls_slot.buffer;
}

void Tracer::Emit(const TraceEvent& event) {
  // Backstop for ungated call sites: a disabled tracer records
  // nothing, so emission racing a Disable()+export cannot mutate the
  // snapshot being written.
  if (!enabled_.load(std::memory_order_acquire)) return;
  ThreadBuffer* buf = BufferForThisThread();
  const std::size_t n = buf->size.load(std::memory_order_relaxed);
  if (n >= buf->events.size()) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events[n] = event;
  buf->size.store(n + 1, std::memory_order_release);
}

void Tracer::Begin(const char* name, const char* category) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.kind = EventKind::kBegin;
  e.clock = Clock::kHost;
  e.pid = kHostPid;
  e.ts_ns = HostNowNs();
  e.tid = BufferForThisThread()->thread_index;
  Emit(e);
}

void Tracer::End() {
  TraceEvent e;
  e.kind = EventKind::kEnd;
  e.clock = Clock::kHost;
  e.pid = kHostPid;
  e.ts_ns = HostNowNs();
  e.tid = BufferForThisThread()->thread_index;
  Emit(e);
}

void Tracer::Instant(const char* name, const char* category) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.kind = EventKind::kInstant;
  e.clock = Clock::kHost;
  e.pid = kHostPid;
  e.ts_ns = HostNowNs();
  e.tid = BufferForThisThread()->thread_index;
  Emit(e);
}

void Tracer::Complete(std::int32_t pid, std::int64_t tid, Clock clock,
                      const char* name, Nanos ts_ns, Nanos dur_ns,
                      const char* arg0_name, double arg0,
                      const char* arg1_name, double arg1) {
  TraceEvent e;
  e.name = name;
  e.kind = EventKind::kComplete;
  e.clock = clock;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg_name[0] = arg0_name;
  e.arg_value[0] = arg0;
  e.arg_name[1] = arg1_name;
  e.arg_value[1] = arg1;
  Emit(e);
}

void Tracer::Counter(std::int32_t pid, Clock clock, const char* name,
                     Nanos ts_ns, double value) {
  TraceEvent e;
  e.name = name;
  e.kind = EventKind::kCounter;
  e.clock = clock;
  e.pid = pid;
  e.ts_ns = ts_ns;
  e.value = value;
  Emit(e);
}

void Tracer::InstantAt(std::int32_t pid, std::int64_t tid, Clock clock,
                       const char* name, Nanos ts_ns,
                       const char* arg0_name, double arg0) {
  TraceEvent e;
  e.name = name;
  e.kind = EventKind::kInstant;
  e.clock = clock;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.arg_name[0] = arg0_name;
  e.arg_value[0] = arg0;
  Emit(e);
}

void Tracer::AsyncBegin(std::int32_t pid, std::uint64_t id, Clock clock,
                        const char* name, const char* category,
                        Nanos ts_ns) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.kind = EventKind::kAsyncBegin;
  e.clock = clock;
  e.pid = pid;
  e.async_id = id;
  e.ts_ns = ts_ns;
  Emit(e);
}

void Tracer::AsyncEnd(std::int32_t pid, std::uint64_t id, Clock clock,
                      const char* name, const char* category,
                      Nanos ts_ns) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.kind = EventKind::kAsyncEnd;
  e.clock = clock;
  e.pid = pid;
  e.async_id = id;
  e.ts_ns = ts_ns;
  Emit(e);
}

void Tracer::SetProcessName(std::int32_t pid, std::string name) {
  MutexLock lock(mu_);
  process_names_[pid] = std::move(name);
}

void Tracer::SetThreadName(std::int32_t pid, std::int64_t tid,
                           std::string name) {
  MutexLock lock(mu_);
  thread_names_[{pid, tid}] = std::move(name);
}

void Tracer::CountSampledOut(std::uint64_t n) {
  sampled_out_.fetch_add(n, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> events;
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->size.load(std::memory_order_acquire);
  }
  events.reserve(total);
  for (const auto& buf : buffers_) {
    const std::size_t n = buf->size.load(std::memory_order_acquire);
    events.insert(events.end(), buf->events.begin(),
                  buf->events.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return events;
}

std::uint64_t Tracer::recorded_events() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->size.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::map<std::int32_t, std::string> Tracer::process_names() const {
  MutexLock lock(mu_);
  return process_names_;
}

std::map<std::pair<std::int32_t, std::int64_t>, std::string>
Tracer::thread_names() const {
  MutexLock lock(mu_);
  return thread_names_;
}

}  // namespace updlrm::telemetry
