#include "telemetry/health.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "telemetry/json.h"

namespace updlrm::telemetry {

namespace {

void AppendNumber(std::ostringstream& os, double v) {
  os.precision(15);
  os << v;
}

void AppendBool(std::ostringstream& os, bool v) {
  os << (v ? "true" : "false");
}

/// Rank bucket of the r-th most frequent item (r is 0-based):
/// log-spaced so the hot head gets fine buckets and the cold tail
/// coarse ones.
int RankBucket(std::size_t r, int buckets_per_decade) {
  return static_cast<int>(std::log10(static_cast<double>(r + 1)) *
                          buckets_per_decade);
}

}  // namespace

// --- drift ------------------------------------------------------------

DriftBaseline BuildDriftBaseline(std::span<const std::uint64_t> freq,
                                 std::span<const std::uint32_t> by_freq,
                                 const DriftOptions& options) {
  UPDLRM_CHECK(freq.size() == by_freq.size());
  DriftBaseline baseline;
  baseline.item_bucket.assign(freq.size(), 0);

  std::uint64_t total = 0;
  std::size_t nonzero = 0;
  for (const std::uint64_t f : freq) {
    total += f;
    nonzero += f > 0 ? 1 : 0;
  }
  baseline.total_accesses = total;

  // The head stops at 10^max_rank_decades: everything past it — deep
  // tail ranks AND baseline-unseen items — shares the trailing tail
  // bucket. A finite history cannot estimate per-item tail mass, so
  // stationary tail identity churn must cancel inside one bucket
  // instead of registering as drift.
  const int head_limit =
      options.max_rank_decades * options.rank_buckets_per_decade;
  const int tail = std::min(
      nonzero == 0
          ? 0
          : RankBucket(nonzero - 1, options.rank_buckets_per_decade) + 1,
      head_limit);
  baseline.bucket_mass.assign(static_cast<std::size_t>(tail) + 1, 0.0);

  // by_freq orders items by descending frequency (ties by id), so the
  // r-th entry's rank bucket is RankBucket(r) capped at the tail
  // bucket; zero-frequency items also fall into the tail bucket.
  for (std::size_t r = 0; r < by_freq.size(); ++r) {
    const std::uint32_t item = by_freq[r];
    if (freq[item] == 0) {
      baseline.item_bucket[item] = tail;
      continue;
    }
    const int b =
        std::min(RankBucket(r, options.rank_buckets_per_decade), tail);
    baseline.item_bucket[item] = b;
    if (total > 0) {
      baseline.bucket_mass[static_cast<std::size_t>(b)] +=
          static_cast<double>(freq[item]) / static_cast<double>(total);
    }
  }

  const std::size_t k = std::min(options.top_k, nonzero);
  baseline.top_items.assign(by_freq.begin(),
                            by_freq.begin() + static_cast<long>(k));
  if (total > 0) {
    std::uint64_t top_accesses = 0;
    for (const std::uint32_t item : baseline.top_items) {
      top_accesses += freq[item];
    }
    baseline.top_mass =
        static_cast<double>(top_accesses) / static_cast<double>(total);
  }
  std::sort(baseline.top_items.begin(), baseline.top_items.end());
  return baseline;
}

DriftDetector::DriftDetector(DriftBaseline baseline, DriftOptions options)
    : baseline_(std::move(baseline)), options_(options) {
  live_mass_.assign(baseline_.bucket_mass.size(), 0.0);
}

DriftDetector::WindowVerdict DriftDetector::JudgeWindow(
    const std::map<std::uint32_t, std::uint64_t>& counts) {
  WindowVerdict v;
  for (const auto& [item, count] : counts) v.accesses += count;
  if (v.accesses < options_.min_accesses) {
    // Too little signal to judge; hysteresis state is untouched.
    v.alerting = alerting_;
    return v;
  }
  v.judged = true;

  // Total-variation distance over head rank buckets: live window mass
  // vs baseline mass, with out-of-baseline items in the coalesced
  // tail bucket.
  std::fill(live_mass_.begin(), live_mass_.end(), 0.0);
  const std::size_t unseen = live_mass_.size() - 1;
  const double total = static_cast<double>(v.accesses);
  for (const auto& [item, count] : counts) {
    const std::size_t b =
        item < baseline_.item_bucket.size()
            ? static_cast<std::size_t>(baseline_.item_bucket[item])
            : unseen;
    live_mass_[b] += static_cast<double>(count) / total;
  }
  double tv = 0.0;
  for (std::size_t b = 0; b < live_mass_.size(); ++b) {
    tv += std::abs(live_mass_[b] - baseline_.bucket_mass[b]);
  }
  v.tv_distance = 0.5 * tv;

  // Live top-k (count desc, item id asc — counts iterates ascending by
  // id, so insertion order settles ties deterministically).
  const std::size_t k =
      std::min(options_.top_k, std::max<std::size_t>(counts.size(), 1));
  std::vector<std::pair<std::uint64_t, std::uint32_t>> top;
  top.reserve(k + 1);
  for (const auto& [item, count] : counts) {
    if (top.size() == k && count <= top.back().first) continue;
    const auto pos = std::upper_bound(
        top.begin(), top.end(), std::make_pair(count, item),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    top.insert(pos, {count, item});
    if (top.size() > k) top.pop_back();
  }
  std::size_t inter = 0;
  for (const auto& [count, item] : top) {
    inter += std::binary_search(baseline_.top_items.begin(),
                                baseline_.top_items.end(), item)
                 ? 1
                 : 0;
  }
  const std::size_t uni = top.size() + baseline_.top_items.size() - inter;
  v.topk_jaccard =
      uni == 0 ? 1.0
               : static_cast<double>(inter) / static_cast<double>(uni);

  // Hysteresis. The Jaccard vote abstains when the baseline head is
  // too diffuse to name a meaningful top-k (near-flat tables); TV
  // still judges those.
  const bool jaccard_votes = baseline_.top_mass >= options_.min_topk_mass;
  v.bad = v.tv_distance > options_.tv_threshold ||
          (jaccard_votes && v.topk_jaccard < options_.jaccard_min);
  if (v.bad) {
    ++bad_windows_;
    ++consecutive_bad_;
    consecutive_good_ = 0;
    if (consecutive_bad_ >= options_.trip_windows) alerting_ = true;
  } else {
    ++consecutive_good_;
    consecutive_bad_ = 0;
    if (consecutive_good_ >= options_.clear_windows) alerting_ = false;
  }
  v.alerting = alerting_;
  return v;
}

// --- SLO burn ---------------------------------------------------------

BurnRateMonitor::BurnRateMonitor(SloBurnOptions options)
    : options_(options) {
  UPDLRM_CHECK(options_.target < 1.0 && options_.target > 0.0);
  UPDLRM_CHECK(options_.fast_windows >= 1 &&
               options_.slow_windows >= options_.fast_windows);
}

double BurnRateMonitor::HorizonBurn(int horizon) const {
  const std::size_t n = std::min<std::size_t>(
      recent_.size(), static_cast<std::size_t>(horizon));
  std::uint64_t completed = 0;
  std::uint64_t over = 0;
  for (std::size_t i = recent_.size() - n; i < recent_.size(); ++i) {
    completed += recent_[i].first;
    over += recent_[i].second;
  }
  if (completed == 0) return 0.0;
  const double error_rate =
      static_cast<double>(over) / static_cast<double>(completed);
  return error_rate / (1.0 - options_.target);
}

BurnRateMonitor::WindowVerdict BurnRateMonitor::PushWindow(
    std::uint64_t completed, std::uint64_t over_slo) {
  recent_.emplace_back(completed, over_slo);
  if (recent_.size() > static_cast<std::size_t>(options_.slow_windows)) {
    recent_.erase(recent_.begin());
  }
  WindowVerdict v;
  v.completed = completed;
  v.over_slo = over_slo;
  v.fast_burn = HorizonBurn(options_.fast_windows);
  v.slow_burn = HorizonBurn(options_.slow_windows);
  alerting_ = v.fast_burn >= options_.fast_burn_threshold &&
              v.slow_burn >= options_.slow_burn_threshold;
  v.alerting = alerting_;
  return v;
}

// --- stragglers -------------------------------------------------------

StragglerScorer::StragglerScorer(std::size_t num_units,
                                 HealthOptions options)
    : options_(options) {
  UPDLRM_CHECK(num_units > 0);
  smoothed_z_.assign(num_units, 0.0);
  if (options_.units_per_rank > 0) {
    rank_z_.assign(
        (num_units + options_.units_per_rank - 1) / options_.units_per_rank,
        0.0);
  }
  if (options_.units_per_shard > 0) {
    shard_z_.assign((num_units + options_.units_per_shard - 1) /
                        options_.units_per_shard,
                    0.0);
  }
}

namespace {

/// Population mean/stddev over uint64 work deltas.
void MeanStddev(std::span<const std::uint64_t> deltas, double* mean,
                double* stddev) {
  double sum = 0.0;
  for (const std::uint64_t d : deltas) sum += static_cast<double>(d);
  *mean = sum / static_cast<double>(deltas.size());
  double var = 0.0;
  for (const std::uint64_t d : deltas) {
    const double diff = static_cast<double>(d) - *mean;
    var += diff * diff;
  }
  *stddev = std::sqrt(var / static_cast<double>(deltas.size()));
}

/// EWMA-update `smoothed` from this window's raw z-scores of `deltas`,
/// returning the (worst id, max z) pair with ties to the lowest id.
StragglerScorer::GroupScore UpdateZ(std::span<const std::uint64_t> deltas,
                                    double alpha,
                                    std::vector<double>& smoothed) {
  double mean = 0.0;
  double stddev = 0.0;
  MeanStddev(deltas, &mean, &stddev);
  StragglerScorer::GroupScore score;
  score.max_z = -1e300;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const double z = stddev > 0.0
                         ? (static_cast<double>(deltas[i]) - mean) / stddev
                         : 0.0;
    smoothed[i] = alpha * z + (1.0 - alpha) * smoothed[i];
    if (smoothed[i] > score.max_z) {
      score.max_z = smoothed[i];
      score.worst = static_cast<std::uint32_t>(i);
    }
  }
  return score;
}

}  // namespace

StragglerScorer::WindowVerdict StragglerScorer::ScoreWindow(
    std::span<const std::uint64_t> deltas) {
  UPDLRM_CHECK(deltas.size() == smoothed_z_.size());
  WindowVerdict v;
  for (const std::uint64_t d : deltas) v.active_units += d > 0 ? 1 : 0;
  if (v.active_units < options_.min_active_units) {
    // An idle (or nearly idle) window carries no balance signal; the
    // smoothed scores keep their last value.
    return v;
  }
  v.judged = true;
  MeanStddev(deltas, &v.mean_delta, &v.stddev_delta);

  const GroupScore unit =
      UpdateZ(deltas, options_.ewma_alpha, smoothed_z_);
  v.worst_unit = unit.worst;
  v.max_z = unit.max_z;
  for (const double z : smoothed_z_) {
    v.stragglers += z >= options_.z_threshold ? 1 : 0;
  }
  v.alerting = v.stragglers > 0;

  // Group rollups: same scoring over per-group work sums.
  auto roll = [&](std::uint32_t per_group, std::vector<double>& smoothed) {
    group_sum_.assign(smoothed.size(), 0);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      group_sum_[i / per_group] += deltas[i];
    }
    return UpdateZ(group_sum_, options_.ewma_alpha, smoothed);
  };
  if (options_.units_per_rank > 0) {
    v.rank = roll(options_.units_per_rank, rank_z_);
  }
  if (options_.units_per_shard > 0) {
    v.shard = roll(options_.units_per_shard, shard_z_);
  }
  return v;
}

// --- snapshot schema --------------------------------------------------

std::string FleetHealthWindow::ToJson() const {
  std::ostringstream os;
  os << "{\"window\":" << index << ",\"start_ns\":";
  AppendNumber(os, start_ns);
  os << ",\"end_ns\":";
  AppendNumber(os, end_ns);
  os << ",\"drift\":[";
  for (std::size_t i = 0; i < drift.size(); ++i) {
    if (i > 0) os << ",";
    const DriftWindow& d = drift[i];
    os << "{\"table\":" << d.table << ",\"accesses\":"
       << d.verdict.accesses << ",\"judged\":";
    AppendBool(os, d.verdict.judged);
    os << ",\"tv\":";
    AppendNumber(os, d.verdict.tv_distance);
    os << ",\"jaccard\":";
    AppendNumber(os, d.verdict.topk_jaccard);
    os << ",\"bad\":";
    AppendBool(os, d.verdict.bad);
    os << ",\"alert\":";
    AppendBool(os, d.verdict.alerting);
    os << "}";
  }
  os << "]";
  if (has_slo) {
    os << ",\"slo\":{\"completed\":" << slo.completed
       << ",\"over_slo\":" << slo.over_slo << ",\"fast_burn\":";
    AppendNumber(os, slo.fast_burn);
    os << ",\"slow_burn\":";
    AppendNumber(os, slo.slow_burn);
    os << ",\"p99_ns\":";
    AppendNumber(os, latency.Percentile(99.0));
    os << ",\"alert\":";
    AppendBool(os, slo.alerting);
    os << "}";
  }
  if (has_health) {
    os << ",\"health\":{\"judged\":";
    AppendBool(os, health.judged);
    os << ",\"active_units\":" << health.active_units << ",\"mean\":";
    AppendNumber(os, health.mean_delta);
    os << ",\"stddev\":";
    AppendNumber(os, health.stddev_delta);
    os << ",\"worst_unit\":" << health.worst_unit << ",\"max_z\":";
    AppendNumber(os, health.max_z);
    os << ",\"stragglers\":" << health.stragglers << ",\"alert\":";
    AppendBool(os, health.alerting);
    os << "}";
  }
  os << "}";
  return os.str();
}

std::string HealthSummary::ToJson() const {
  std::ostringstream os;
  os << "{\"summary\":{\"windows\":" << windows
     << ",\"drift_bad_table_windows\":" << drift_bad_table_windows
     << ",\"drift_tables_alerting\":" << drift_tables_alerting
     << ",\"first_drift_alert_window\":" << first_drift_alert_window
     << ",\"slo_alert_windows\":" << slo_alert_windows
     << ",\"slo_alerting\":";
  AppendBool(os, slo_alerting);
  os << ",\"max_fast_burn\":";
  AppendNumber(os, max_fast_burn);
  os << ",\"max_slow_burn\":";
  AppendNumber(os, max_slow_burn);
  os << ",\"straggler_windows\":" << straggler_windows
     << ",\"max_unit_z\":";
  AppendNumber(os, max_unit_z);
  os << ",\"completed\":" << latency.count() << ",\"p99_ns\":";
  AppendNumber(os, latency.Percentile(99.0));
  os << "}}";
  return os.str();
}

void HealthSummary::ExportTo(MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.Increment(prefix + ".windows", static_cast<double>(windows));
  registry.Increment(prefix + ".drift_bad_table_windows",
                     static_cast<double>(drift_bad_table_windows));
  registry.SetGauge(prefix + ".drift_tables_alerting",
                    static_cast<double>(drift_tables_alerting));
  registry.SetGauge(prefix + ".first_drift_alert_window",
                    static_cast<double>(first_drift_alert_window));
  registry.Increment(prefix + ".slo_alert_windows",
                     static_cast<double>(slo_alert_windows));
  registry.SetGauge(prefix + ".slo_alerting", slo_alerting ? 1.0 : 0.0);
  registry.SetGauge(prefix + ".max_fast_burn", max_fast_burn);
  registry.SetGauge(prefix + ".max_slow_burn", max_slow_burn);
  registry.Increment(prefix + ".straggler_windows",
                     static_cast<double>(straggler_windows));
  registry.SetGauge(prefix + ".max_unit_z", max_unit_z);
}

// --- JSONL validation -------------------------------------------------

namespace {

Status LineError(std::size_t line, const std::string& what) {
  return Status::InvalidArgument("health.jsonl line " +
                                 std::to_string(line + 1) + ": " + what);
}

}  // namespace

Status ValidateHealthJsonl(std::string_view jsonl,
                           std::size_t min_windows) {
  std::vector<std::string_view> lines;
  while (!jsonl.empty()) {
    const std::size_t nl = jsonl.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? jsonl : jsonl.substr(0, nl);
    if (!line.empty()) lines.push_back(line);
    if (nl == std::string_view::npos) break;
    jsonl.remove_prefix(nl + 1);
  }
  if (lines.size() < 2) {
    return Status::InvalidArgument(
        "health.jsonl needs a header and a summary record, got " +
        std::to_string(lines.size()) + " line(s)");
  }

  // Header.
  auto header = ParseJson(lines[0]);
  if (!header.ok()) return LineError(0, header.status().message());
  const JsonValue* schema = header->Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "updlrm.health.v1") {
    return LineError(0, "missing schema tag \"updlrm.health.v1\"");
  }
  const JsonValue* window_ns = header->Find("window_ns");
  if (window_ns == nullptr || !window_ns->is_number() ||
      window_ns->AsNumber() <= 0.0) {
    return LineError(0, "missing positive \"window_ns\"");
  }

  // Window records, then exactly one trailing summary.
  std::size_t windows = 0;
  double prev_index = -1.0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto parsed = ParseJson(lines[i]);
    if (!parsed.ok()) return LineError(i, parsed.status().message());
    if (parsed->Find("summary") != nullptr) {
      if (i + 1 != lines.size()) {
        return LineError(i, "summary record before the last line");
      }
      break;
    }
    const JsonValue* index = parsed->Find("window");
    if (index == nullptr || !index->is_number()) {
      return LineError(i, "window record missing \"window\"");
    }
    if (index->AsNumber() <= prev_index) {
      return LineError(i, "window indices must be strictly increasing");
    }
    prev_index = index->AsNumber();
    for (const char* key : {"start_ns", "end_ns"}) {
      const JsonValue* v = parsed->Find(key);
      if (v == nullptr || !v->is_number()) {
        return LineError(i, std::string("window record missing \"") +
                                key + "\"");
      }
    }
    const JsonValue* drift = parsed->Find("drift");
    if (drift == nullptr || !drift->is_array()) {
      return LineError(i, "window record missing \"drift\" array");
    }
    ++windows;
  }
  const bool has_summary =
      ParseJson(lines.back()).ok() &&
      ParseJson(lines.back())->Find("summary") != nullptr;
  if (!has_summary) {
    return LineError(lines.size() - 1, "missing trailing summary record");
  }
  if (windows < min_windows) {
    return Status::FailedPrecondition(
        "health.jsonl holds " + std::to_string(windows) +
        " window(s), expected at least " + std::to_string(min_windows));
  }
  return Status::Ok();
}

}  // namespace updlrm::telemetry
