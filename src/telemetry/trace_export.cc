#include "telemetry/trace_export.h"

#include <fstream>
#include <set>
#include <sstream>

#include "telemetry/json.h"

namespace updlrm::telemetry {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FmtNumber(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

/// ts is exported in microseconds per the trace-event format.
void AppendCommonFields(std::string& out, const TraceEvent& e) {
  out += "\"ts\":";
  out += FmtNumber(e.ts_ns / 1.0e3);
  out += ",\"pid\":";
  out += std::to_string(e.pid);
  out += ",\"tid\":";
  out += std::to_string(e.tid);
}

void AppendName(std::string& out, const char* name) {
  out += "\"name\":\"";
  AppendEscaped(out, name != nullptr ? name : "(unnamed)");
  out += "\"";
}

void AppendCategory(std::string& out, const char* category,
                    const char* fallback) {
  out += ",\"cat\":\"";
  AppendEscaped(out, category != nullptr ? category : fallback);
  out += "\"";
}

void AppendArgs(std::string& out, const TraceEvent& e) {
  if (e.arg_name[0] == nullptr && e.arg_name[1] == nullptr) return;
  out += ",\"args\":{";
  bool first = true;
  for (int i = 0; i < 2; ++i) {
    if (e.arg_name[i] == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(out, e.arg_name[i]);
    out += "\":";
    out += FmtNumber(e.arg_value[i]);
  }
  out += "}";
}

void AppendEvent(std::string& out, const TraceEvent& e) {
  out += "{";
  switch (e.kind) {
    case EventKind::kBegin:
      AppendName(out, e.name);
      AppendCategory(out, e.category, "host");
      out += ",\"ph\":\"B\",";
      AppendCommonFields(out, e);
      AppendArgs(out, e);
      break;
    case EventKind::kEnd:
      // "E" closes the innermost open "B" on the same (pid, tid);
      // name/cat are optional and omitted.
      out += "\"ph\":\"E\",";
      AppendCommonFields(out, e);
      break;
    case EventKind::kComplete:
      AppendName(out, e.name);
      AppendCategory(out, e.category,
                     e.clock == Clock::kSim ? "sim" : "host");
      out += ",\"ph\":\"X\",";
      AppendCommonFields(out, e);
      out += ",\"dur\":";
      out += FmtNumber(e.dur_ns / 1.0e3);
      AppendArgs(out, e);
      break;
    case EventKind::kInstant:
      AppendName(out, e.name);
      AppendCategory(out, e.category,
                     e.clock == Clock::kSim ? "sim" : "host");
      out += ",\"ph\":\"i\",\"s\":\"t\",";
      AppendCommonFields(out, e);
      AppendArgs(out, e);
      break;
    case EventKind::kCounter:
      AppendName(out, e.name);
      out += ",\"ph\":\"C\",";
      AppendCommonFields(out, e);
      out += ",\"args\":{\"value\":";
      out += FmtNumber(e.value);
      out += "}";
      break;
    case EventKind::kAsyncBegin:
    case EventKind::kAsyncEnd:
      AppendName(out, e.name);
      AppendCategory(out, e.category, "async");
      out += ",\"ph\":\"";
      out += e.kind == EventKind::kAsyncBegin ? "b" : "e";
      out += "\",\"id\":\"0x";
      {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(e.async_id));
        out += buf;
      }
      out += "\",";
      AppendCommonFields(out, e);
      AppendArgs(out, e);
      break;
  }
  out += "}";
}

void AppendMetadata(std::string& out, std::int32_t pid, std::int64_t tid,
                    const char* which, const std::string& name,
                    bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"";
  out += which;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":\"";
  AppendEscaped(out, name);
  out += "\"}}";
}

}  // namespace

std::string ToChromeTraceJson(const Tracer& tracer,
                              const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  bool first = true;

  // Metadata: default process names for the well-known pids, overlaid
  // with whatever the emitters registered.
  std::map<std::int32_t, std::string> processes = {
      {kHostPid, "host threads (wall clock)"},
      {kPipelinePid, "pipeline (simulated time)"},
      {kRequestPid, "requests (simulated time)"},
      {kDpuPid, "DPU array (simulated time)"},
      {kTaskletPid, "straggler tasklets (simulated time)"},
      {kRankPid, "rank rollup (simulated time)"},
  };
  std::set<std::int32_t> used_pids;
  for (const TraceEvent& e : events) used_pids.insert(e.pid);
  for (const auto& [pid, name] : tracer.process_names()) {
    processes[pid] = name;
  }
  for (const auto& [pid, name] : processes) {
    if (used_pids.count(pid) == 0) continue;
    AppendMetadata(out, pid, 0, "process_name", name, first);
  }
  for (const auto& [key, name] : tracer.thread_names()) {
    AppendMetadata(out, key.first, key.second, "thread_name", name, first);
  }

  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    AppendEvent(out, e);
  }
  out += "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{";
  out += "\"clockDomains\":\"pid 1 = host wall clock; other pids = "
         "simulated nanoseconds\"";
  out += ",\"recordedEvents\":" + std::to_string(events.size());
  out += ",\"droppedEvents\":" + std::to_string(tracer.dropped_events());
  out += ",\"sampledOutSpans\":" +
         std::to_string(tracer.sampled_out_events());
  out += "}}\n";
  return out;
}

std::string ToChromeTraceJson(const Tracer& tracer) {
  return ToChromeTraceJson(tracer, tracer.Snapshot());
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  const std::vector<TraceEvent> events = tracer.Snapshot();
  if (events.empty()) {
    return Status::FailedPrecondition(
        "trace is empty: no events were recorded (is tracing enabled?)");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file " + path);
  }
  out << ToChromeTraceJson(tracer, events);
  out.flush();
  if (!out) return Status::InvalidArgument("failed writing " + path);
  return Status::Ok();
}

namespace {

Status EventError(std::size_t index, const std::string& what) {
  return Status::InvalidArgument("traceEvents[" + std::to_string(index) +
                                 "]: " + what);
}

Status ValidateEvent(std::size_t i, const JsonValue& event) {
  if (!event.is_object()) return EventError(i, "not an object");
  const JsonValue* ph = event.Find("ph");
  if (ph == nullptr || !ph->is_string()) {
    return EventError(i, "missing string \"ph\"");
  }
  const std::string& phase = ph->AsString();
  static const std::set<std::string> kKnown = {"B", "E", "X", "i", "C",
                                              "b", "e", "M"};
  if (kKnown.count(phase) == 0) {
    return EventError(i, "unknown phase \"" + phase + "\"");
  }
  const JsonValue* pid = event.Find("pid");
  if (pid == nullptr || !pid->is_number()) {
    return EventError(i, "missing numeric \"pid\"");
  }
  if (phase != "M") {
    const JsonValue* ts = event.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return EventError(i, "missing numeric \"ts\"");
    }
    if (ts->AsNumber() < 0.0) return EventError(i, "negative \"ts\"");
  }
  if (phase != "E") {
    // "E" events may omit the name; everything else must carry one.
    const JsonValue* name = event.Find("name");
    if (name == nullptr || !name->is_string() ||
        name->AsString().empty()) {
      return EventError(i, "missing non-empty string \"name\"");
    }
  }
  if (phase == "X") {
    const JsonValue* dur = event.Find("dur");
    if (dur == nullptr || !dur->is_number()) {
      return EventError(i, "complete event missing numeric \"dur\"");
    }
    if (dur->AsNumber() < 0.0) return EventError(i, "negative \"dur\"");
  }
  if (phase == "C" || phase == "M") {
    const JsonValue* args = event.Find("args");
    if (args == nullptr || !args->is_object()) {
      return EventError(i, "counter/metadata event missing \"args\"");
    }
  }
  if (phase == "b" || phase == "e") {
    const JsonValue* id = event.Find("id");
    if (id == nullptr || (!id->is_string() && !id->is_number())) {
      return EventError(i, "async event missing \"id\"");
    }
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr || !cat->is_string()) {
      return EventError(i, "async event missing \"cat\"");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateChromeTraceJson(std::string_view json,
                               std::size_t min_events) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("trace root is not a JSON object");
  }
  const JsonValue* events = parsed->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("missing \"traceEvents\" array");
  }
  std::size_t real_events = 0;
  const JsonArray& array = events->AsArray();
  for (std::size_t i = 0; i < array.size(); ++i) {
    UPDLRM_RETURN_IF_ERROR(ValidateEvent(i, array[i]));
    const JsonValue* ph = array[i].Find("ph");
    if (ph->AsString() != "M") ++real_events;
  }
  if (real_events < min_events) {
    return Status::FailedPrecondition(
        "trace holds " + std::to_string(real_events) +
        " non-metadata event(s), expected at least " +
        std::to_string(min_events));
  }
  return Status::Ok();
}

Status ValidateChromeTraceFile(const std::string& path,
                               std::size_t min_events) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ValidateChromeTraceJson(buffer.str(), min_events);
}

Status ValidateChromeTraceCounters(std::string_view json,
                                   std::span<const std::string> required) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue* events = parsed->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("missing \"traceEvents\" array");
  }
  // Last timestamp per counter series; (pid, name) is a series the way
  // the viewer draws it.
  std::map<std::pair<double, std::string>, double> last_ts;
  std::set<std::string> seen;
  const JsonArray& array = events->AsArray();
  for (std::size_t i = 0; i < array.size(); ++i) {
    const JsonValue& event = array[i];
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->AsString() != "C") {
      continue;
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || !name->is_string()) {
      return EventError(i, "counter missing string \"name\"");
    }
    const JsonValue* args = event.Find("args");
    const JsonValue* value =
        args != nullptr && args->is_object() ? args->Find("value") : nullptr;
    if (value == nullptr || !value->is_number()) {
      return EventError(i, "counter \"" + name->AsString() +
                               "\" missing numeric args.value");
    }
    const JsonValue* pid = event.Find("pid");
    const JsonValue* ts = event.Find("ts");
    if (pid == nullptr || !pid->is_number() || ts == nullptr ||
        !ts->is_number()) {
      return EventError(i, "counter missing numeric \"pid\"/\"ts\"");
    }
    const auto key = std::make_pair(pid->AsNumber(), name->AsString());
    const auto it = last_ts.find(key);
    if (it != last_ts.end() && ts->AsNumber() < it->second) {
      return EventError(
          i, "counter series \"" + name->AsString() +
                 "\" timestamps go backwards (" +
                 std::to_string(ts->AsNumber()) + " after " +
                 std::to_string(it->second) + ")");
    }
    last_ts[key] = ts->AsNumber();
    seen.insert(name->AsString());
  }
  for (const std::string& name : required) {
    if (seen.count(name) == 0) {
      return Status::FailedPrecondition(
          "no counter series named \"" + name + "\"");
    }
  }
  return Status::Ok();
}

Result<bool> ChromeTraceContainsEvent(std::string_view json,
                                      std::string_view name) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue* events = parsed->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("missing \"traceEvents\" array");
  }
  for (const JsonValue& event : events->AsArray()) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* n = event.Find("name");
    if (ph != nullptr && ph->is_string() && ph->AsString() != "M" &&
        n != nullptr && n->is_string() && n->AsString() == name) {
      return true;
    }
  }
  return false;
}

}  // namespace updlrm::telemetry
