// Low-overhead span tracer with two clock domains.
//
// The simulator's time story is split: host work (routing, functional
// kernels, mining) happens on the machine's wall clock, while every
// latency the paper reports (stage 1/2/3, batch schedules, request
// lifetimes) lives on a *simulated* nanosecond clock that no host
// thread ever observes directly. The tracer records both into one
// event stream so a single Perfetto/Chrome-trace view shows where a
// request queued, which DPU straggled, and what the host threads were
// doing meanwhile (trace_export.h turns the stream into JSON).
//
// Design constraints, in priority order:
//   1. Disabled cost: one relaxed atomic load and branch per site
//      (TraceEnabled()); a -DUPDLRM_TELEMETRY=OFF build compiles the
//      RAII spans out entirely.
//   2. Thread safety without hot-path locks: each thread owns a
//      fixed-capacity event buffer it alone writes (registered once
//      under a mutex); Snapshot() merges them after the traced region's
//      threads have joined.
//   3. Bounded memory: a full buffer drops the event and counts it —
//      never resizes, never blocks. dropped_events() makes the loss
//      visible; the --trace-sample-every knob (TracerOptions::
//      sample_every) is the intended pressure valve for long runs.
//   4. No feedback: tracing writes observation buffers only. Simulated
//      results are bit-exact with tracing on or off, at any thread
//      count (tests/telemetry/trace_determinism_test.cc pins this).
//
// Event names and arg names must be string literals (or otherwise
// outlive the tracer): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace updlrm::telemetry {

/// Which clock an event's timestamps belong to. Host events measure
/// real elapsed time since Enable(); sim events carry timestamps the
/// emitter computed on the simulated clock. The exporter keeps the two
/// domains in disjoint process groups so they are never visually
/// conflated.
enum class Clock : std::uint8_t { kHost, kSim };

enum class EventKind : std::uint8_t {
  kBegin,       // host-clock span open (paired with kEnd, per thread)
  kEnd,         // host-clock span close
  kComplete,    // explicit [ts, ts+dur] slice, either clock
  kInstant,     // point marker
  kCounter,     // sampled counter value
  kAsyncBegin,  // id-correlated span open (request lifetimes)
  kAsyncEnd,    // id-correlated span close
};

/// One recorded event. POD-sized on purpose: buffers are preallocated
/// arrays of these.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  EventKind kind = EventKind::kInstant;
  Clock clock = Clock::kHost;
  /// Export process id — see the k*Pid constants below.
  std::int32_t pid = 0;
  /// Export track id within the process (host: thread index; DPU
  /// timeline: global DPU id; tasklet detail: tasklet id; ...).
  std::int64_t tid = 0;
  double ts_ns = 0.0;
  double dur_ns = 0.0;    // kComplete only
  std::uint64_t async_id = 0;  // kAsync* only
  double value = 0.0;          // kCounter only
  /// Up to two numeric args, rendered into the event's "args" object.
  const char* arg_name[2] = {nullptr, nullptr};
  double arg_value[2] = {0.0, 0.0};
};

/// Well-known export process ids (one per track family). The exporter
/// names them; emitters pick the pid matching their clock/track family.
inline constexpr std::int32_t kHostPid = 1;      // host threads, wall clock
inline constexpr std::int32_t kPipelinePid = 2;  // sim: batch pipeline
inline constexpr std::int32_t kRequestPid = 3;   // sim: request lifetimes
inline constexpr std::int32_t kDpuPid = 4;       // sim: per-DPU stage-2
inline constexpr std::int32_t kTaskletPid = 5;   // sim: straggler tasklets
inline constexpr std::int32_t kRankPid = 6;      // sim: per-rank rollup

/// Well-known track ids (tids) within kPipelinePid. The embedding-only
/// pipeline uses the bus + DPU pair; the full-path data-flow executor
/// (src/pipeline) adds the host-MLP and GPU tracks. Host-bus and
/// host-MLP slices share one simulated host resource, so they never
/// overlap in time — two display tracks just keep transfer work and
/// dense-compute work visually separate.
inline constexpr std::int64_t kHostBusTrack = 0;  // stage 1 push / stage 3 pull
inline constexpr std::int64_t kDpuTrack = 1;      // stage 2 lookup kernels
inline constexpr std::int64_t kMlpTrack = 2;      // mlp_bottom/interact/mlp_top
inline constexpr std::int64_t kGpuTrack = 3;      // GPU-placed MLP stages

struct TracerOptions {
  /// Events per thread buffer; overflow drops (and counts) events.
  std::size_t buffer_capacity = std::size_t{1} << 15;
  /// Trace 1-in-N requests/batches in long runs (1 = everything).
  /// Emitters honoring it must count what they skip — no silent caps
  /// (see Tracer::CountSampledOut / sampled_out_events()).
  std::uint64_t sample_every = 1;
};

/// Process-wide tracer. Get() is the only instance; benches enable it
/// for the duration of a traced run (bench::TraceSession).
class Tracer {
 public:
  static Tracer& Get();

  /// Starts a fresh trace: drops all previously recorded events,
  /// re-arms per-thread buffers lazily, and anchors the host clock's
  /// zero at the call instant.
  void Enable(TracerOptions options = {});
  /// Stops recording. Already-recorded events stay available to
  /// Snapshot() until the next Enable().
  void Disable();
  // Acquire pairs with Enable()'s release store so a thread that sees
  // enabled == true also sees the epoch/options written before it.
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }
  TracerOptions options() const EXCLUDES(mu_);

  /// Host wall-clock nanoseconds since Enable().
  Nanos HostNowNs() const;

  // --- host-clock emission (pid kHostPid, tid = thread index) ---
  void Begin(const char* name, const char* category = nullptr);
  void End();
  void Instant(const char* name, const char* category = nullptr);

  // --- explicit-clock emission -----------------------------------
  void Complete(std::int32_t pid, std::int64_t tid, Clock clock,
                const char* name, Nanos ts_ns, Nanos dur_ns,
                const char* arg0_name = nullptr, double arg0 = 0.0,
                const char* arg1_name = nullptr, double arg1 = 0.0);
  void Counter(std::int32_t pid, Clock clock, const char* name,
               Nanos ts_ns, double value);
  void InstantAt(std::int32_t pid, std::int64_t tid, Clock clock,
                 const char* name, Nanos ts_ns,
                 const char* arg0_name = nullptr, double arg0 = 0.0);
  void AsyncBegin(std::int32_t pid, std::uint64_t id, Clock clock,
                  const char* name, const char* category, Nanos ts_ns);
  void AsyncEnd(std::int32_t pid, std::uint64_t id, Clock clock,
                const char* name, const char* category, Nanos ts_ns);

  /// Track naming for the exporter ("M" metadata events).
  void SetProcessName(std::int32_t pid, std::string name);
  void SetThreadName(std::int32_t pid, std::int64_t tid, std::string name);

  /// Records that an emitter skipped `n` spans because of
  /// sample_every. Keeps the drop visible in the export summary.
  void CountSampledOut(std::uint64_t n = 1);

  /// Copies out every recorded event, thread buffers concatenated in
  /// registration order (per-thread emission order is preserved). Must
  /// not race live emission: call after the traced region's worker
  /// threads have joined (ParallelFor joins; the serve loop is
  /// single-threaded at the boundaries).
  std::vector<TraceEvent> Snapshot() const;

  std::uint64_t recorded_events() const;
  std::uint64_t dropped_events() const;
  std::uint64_t sampled_out_events() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  std::map<std::int32_t, std::string> process_names() const;
  std::map<std::pair<std::int32_t, std::int64_t>, std::string>
  thread_names() const;

  struct ThreadBuffer;

 private:
  Tracer() = default;

  ThreadBuffer* BufferForThisThread();
  void Emit(const TraceEvent& event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> sampled_out_{0};
  // Written only by Enable() (sequenced before the enabled_ release
  // store, which every emitter acquires), read on the emission path —
  // the enabled_ edge, not mu_, is what orders it.
  std::chrono::steady_clock::time_point epoch_{};

  mutable Mutex mu_;
  TracerOptions options_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
  std::map<std::int32_t, std::string> process_names_ GUARDED_BY(mu_);
  std::map<std::pair<std::int32_t, std::int64_t>, std::string>
      thread_names_ GUARDED_BY(mu_);
};

/// True when events would actually be recorded. The one-branch gate
/// every instrumentation site checks first; constant false (and
/// dead-code eliminated) when telemetry is compiled out.
inline bool TraceEnabled() {
#ifdef UPDLRM_TELEMETRY_DISABLED
  return false;
#else
  return Tracer::Get().enabled();
#endif
}

/// RAII host-clock span. Costs the TraceEnabled() branch when tracing
/// is off; emits a Begin/End pair on this thread's track when on.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = nullptr)
      : armed_(TraceEnabled()) {
    if (armed_) Tracer::Get().Begin(name, category);
  }
  ~TraceSpan() {
    if (armed_) Tracer::Get().End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_;
};

}  // namespace updlrm::telemetry
