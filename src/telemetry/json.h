// Minimal JSON reader for validating the files this repo emits.
//
// The exporters write JSON with ostream formatting; without a reader,
// "the trace loads in Perfetto" would be an unchecked claim. This is a
// strict recursive-descent parser over the JSON grammar (objects,
// arrays, strings with escapes, numbers, true/false/null) — enough to
// round-trip-check BENCH_*.json and the Chrome trace exporter
// (trace_export.h), not a general-purpose JSON library. Duplicate keys
// are rejected (our writers never produce them; catching one means a
// merge bug).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace updlrm::telemetry {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map: deterministic iteration for error messages and tests.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const JsonArray& AsArray() const { return *array_; }
  const JsonObject& AsObject() const { return *object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(JsonArray v);
  static JsonValue MakeObject(JsonObject v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirection keeps JsonValue movable/copyable with incomplete
  // recursive containers.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace updlrm::telemetry
