#include "telemetry/monitor.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "telemetry/tracer.h"

namespace updlrm::telemetry {

FleetMonitor::FleetMonitor(MonitorOptions options)
    : options_(options), burn_(options.slo) {
  UPDLRM_CHECK_MSG(options_.window_ns > 0.0,
                   "monitor window must be positive");
}

std::uint64_t FleetMonitor::WindowOf(Nanos t_ns) const {
  if (t_ns <= 0.0) return 0;
  return static_cast<std::uint64_t>(t_ns / options_.window_ns);
}

void FleetMonitor::AddTableBaseline(std::uint32_t table,
                                    DriftBaseline baseline) {
  UPDLRM_CHECK(!finalized_);
  for (const DriftStream& s : drift_) UPDLRM_CHECK(s.table != table);
  drift_.emplace_back(table, std::move(baseline), options_.drift);
  std::sort(drift_.begin(), drift_.end(),
            [](const DriftStream& a, const DriftStream& b) {
              return a.table < b.table;
            });
}

// --- drift stream -----------------------------------------------------

void FleetMonitor::CloseDriftWindow(DriftStream& stream) {
  if (stream.counts.empty()) return;
  stream.closed.emplace_back(
      static_cast<std::uint64_t>(stream.window),
      stream.detector.JudgeWindow(stream.counts));
  stream.counts.clear();
}

void FleetMonitor::OnAccess(std::uint32_t table, Nanos t_ns,
                            std::span<const std::uint32_t> items) {
  UPDLRM_CHECK(!finalized_);
  for (DriftStream& s : drift_) {
    if (s.table != table) continue;
    const auto w = static_cast<std::int64_t>(WindowOf(t_ns));
    UPDLRM_CHECK_MSG(w >= s.window, "drift stream fed out of order");
    if (w > s.window) {
      CloseDriftWindow(s);
      s.window = w;
    }
    if (s.window < 0) s.window = w;
    for (const std::uint32_t item : items) ++s.counts[item];
    return;
  }
}

// --- SLO stream -------------------------------------------------------

void FleetMonitor::CloseSloWindow() {
  if (slo_completed_ == 0) return;
  SloRecord record;
  record.window = static_cast<std::uint64_t>(slo_window_);
  record.verdict = burn_.PushWindow(slo_completed_, slo_over_);
  record.latency = slo_latency_;
  slo_records_.push_back(std::move(record));
  slo_completed_ = 0;
  slo_over_ = 0;
  slo_latency_ = ValueHistogram();
}

void FleetMonitor::OnRequest(Nanos done_ns, Nanos latency_ns) {
  UPDLRM_CHECK(!finalized_);
  const auto w = static_cast<std::int64_t>(WindowOf(done_ns));
  UPDLRM_CHECK_MSG(w >= slo_window_, "SLO stream fed out of order");
  if (w > slo_window_) {
    CloseSloWindow();
    // Idle windows still age the burn horizons: push empty windows so
    // an old error burst rolls out of the fast/slow aggregates on
    // schedule instead of lingering until the next completion.
    for (std::int64_t idle = slo_window_ + 1;
         slo_window_ >= 0 && idle < w; ++idle) {
      burn_.PushWindow(0, 0);
    }
    slo_window_ = w;
  }
  ++slo_completed_;
  slo_over_ += latency_ns > options_.slo.slo_ns ? 1 : 0;
  slo_latency_.Observe(latency_ns);
}

// --- unit stream ------------------------------------------------------

void FleetMonitor::CloseHealthWindow() {
  UPDLRM_CHECK(scorer_ != nullptr);
  unit_delta_.resize(unit_last_.size());
  bool any = false;
  for (std::size_t i = 0; i < unit_last_.size(); ++i) {
    UPDLRM_CHECK_MSG(unit_last_[i] >= unit_prev_[i],
                     "unit counters must be cumulative");
    unit_delta_[i] = unit_last_[i] - unit_prev_[i];
    any = any || unit_delta_[i] > 0;
  }
  if (any) {
    HealthRecord record;
    record.window = static_cast<std::uint64_t>(unit_window_);
    record.verdict = scorer_->ScoreWindow(unit_delta_);
    health_records_.push_back(record);
  }
  unit_prev_ = unit_last_;
}

void FleetMonitor::OnUnitSample(Nanos t_ns,
                                std::span<const std::uint64_t> cumulative) {
  UPDLRM_CHECK(!finalized_);
  if (scorer_ == nullptr) {
    scorer_ = std::make_unique<StragglerScorer>(cumulative.size(),
                                                options_.health);
    unit_prev_.assign(cumulative.begin(), cumulative.end());
    unit_last_ = unit_prev_;
    unit_window_ = static_cast<std::int64_t>(WindowOf(t_ns));
    return;
  }
  UPDLRM_CHECK_MSG(cumulative.size() == unit_last_.size(),
                   "unit count changed mid-run");
  const auto w = static_cast<std::int64_t>(WindowOf(t_ns));
  UPDLRM_CHECK_MSG(w >= unit_window_, "unit stream fed out of order");
  if (w > unit_window_) {
    CloseHealthWindow();
    unit_window_ = w;
  }
  unit_last_.assign(cumulative.begin(), cumulative.end());
}

// --- finalize / merge -------------------------------------------------

void FleetMonitor::Finalize() {
  UPDLRM_CHECK(!finalized_);
  for (DriftStream& s : drift_) CloseDriftWindow(s);
  CloseSloWindow();
  if (scorer_ != nullptr) CloseHealthWindow();

  // Merge the three per-stream record sequences (each sorted by window
  // index) into one snapshot per window that has any content.
  std::vector<std::uint64_t> indices;
  for (const DriftStream& s : drift_) {
    for (const auto& [w, verdict] : s.closed) indices.push_back(w);
  }
  for (const SloRecord& r : slo_records_) indices.push_back(r.window);
  for (const HealthRecord& r : health_records_) indices.push_back(r.window);
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()),
                indices.end());

  windows_.reserve(indices.size());
  for (const std::uint64_t w : indices) {
    FleetHealthWindow window;
    window.index = w;
    window.start_ns = static_cast<double>(w) * options_.window_ns;
    window.end_ns = window.start_ns + options_.window_ns;
    for (const DriftStream& s : drift_) {
      for (const auto& [cw, verdict] : s.closed) {
        if (cw != w) continue;
        DriftWindow row;
        row.table = s.table;
        row.verdict = verdict;
        window.drift.push_back(row);
      }
    }
    for (const SloRecord& r : slo_records_) {
      if (r.window != w) continue;
      window.has_slo = true;
      window.slo = r.verdict;
      window.latency = r.latency;
    }
    for (const HealthRecord& r : health_records_) {
      if (r.window != w) continue;
      window.has_health = true;
      window.health = r.verdict;
    }
    windows_.push_back(std::move(window));
  }

  // Summary.
  summary_ = HealthSummary();
  summary_.windows = windows_.size();
  for (const FleetHealthWindow& window : windows_) {
    bool any_drift_alert = false;
    for (const DriftWindow& d : window.drift) {
      summary_.drift_bad_table_windows += d.verdict.bad ? 1 : 0;
      any_drift_alert = any_drift_alert || d.verdict.alerting;
    }
    if (any_drift_alert && summary_.first_drift_alert_window < 0) {
      summary_.first_drift_alert_window =
          static_cast<std::int64_t>(window.index);
    }
    if (window.has_slo) {
      summary_.slo_alert_windows += window.slo.alerting ? 1 : 0;
      summary_.max_fast_burn =
          std::max(summary_.max_fast_burn, window.slo.fast_burn);
      summary_.max_slow_burn =
          std::max(summary_.max_slow_burn, window.slo.slow_burn);
      summary_.latency.Merge(window.latency);
    }
    if (window.has_health) {
      summary_.straggler_windows += window.health.alerting ? 1 : 0;
      summary_.max_unit_z =
          std::max(summary_.max_unit_z, window.health.max_z);
    }
  }
  for (const DriftStream& s : drift_) {
    summary_.drift_tables_alerting += s.detector.alerting() ? 1 : 0;
  }
  summary_.slo_alerting = burn_.alerting();
  finalized_ = true;
}

// --- output -----------------------------------------------------------

std::string FleetMonitor::ToJsonl() const {
  UPDLRM_CHECK(finalized_);
  std::ostringstream os;
  os.precision(15);
  os << "{\"schema\":\"updlrm.health.v1\",\"window_ns\":"
     << options_.window_ns << ",\"tables\":" << drift_.size()
     << ",\"units\":"
     << (scorer_ == nullptr ? 0 : scorer_->num_units()) << "}\n";
  for (const FleetHealthWindow& window : windows_) {
    os << window.ToJson() << "\n";
  }
  os << summary_.ToJson() << "\n";
  return os.str();
}

Status FleetMonitor::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open " + path);
  out << ToJsonl();
  out.flush();
  if (!out) return Status::InvalidArgument("write failed: " + path);
  return Status::Ok();
}

void FleetMonitor::ExportTo(MetricsRegistry& registry,
                            const std::string& prefix) const {
  UPDLRM_CHECK(finalized_);
  summary_.ExportTo(registry, prefix);
}

void FleetMonitor::EmitTraceCounters() const {
  UPDLRM_CHECK(finalized_);
  if (!TraceEnabled()) return;
  Tracer& tracer = Tracer::Get();
  for (const FleetHealthWindow& window : windows_) {
    const Nanos ts = window.end_ns;
    if (!window.drift.empty()) {
      double max_tv = 0.0;
      double alerting = 0.0;
      for (const DriftWindow& d : window.drift) {
        max_tv = std::max(max_tv, d.verdict.tv_distance);
        alerting += d.verdict.alerting ? 1.0 : 0.0;
      }
      tracer.Counter(kPipelinePid, Clock::kSim, "drift.max_tv", ts, max_tv);
      tracer.Counter(kPipelinePid, Clock::kSim, "drift.alerting_tables",
                     ts, alerting);
    }
    if (window.has_slo) {
      tracer.Counter(kPipelinePid, Clock::kSim, "slo.fast_burn", ts,
                     window.slo.fast_burn);
      tracer.Counter(kPipelinePid, Clock::kSim, "slo.slow_burn", ts,
                     window.slo.slow_burn);
    }
    if (window.has_health) {
      tracer.Counter(kPipelinePid, Clock::kSim, "health.max_z", ts,
                     window.health.max_z);
      tracer.Counter(kPipelinePid, Clock::kSim, "health.stragglers", ts,
                     static_cast<double>(window.health.stragglers));
    }
  }
}

}  // namespace updlrm::telemetry
