// ASCII table / CSV rendering for the benchmark harnesses.
//
// Every bench reproduces a paper table or figure by printing the same
// rows/series the paper reports; TablePrinter keeps that output aligned
// and machine-greppable.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace updlrm {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Format helpers for numeric cells.
  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(std::uint64_t value);
  static std::string FmtMicros(double nanos, int precision = 1);
  static std::string FmtMillis(double nanos, int precision = 3);
  static std::string FmtSpeedup(double ratio, int precision = 2);
  static std::string FmtPercent(double fraction, int precision = 1);

  /// Render with aligned columns and a header separator.
  void Print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace updlrm
