// Stable LSD radix sorts for the host runtime's index-sort hot spots.
//
// The setup phase sorts large index arrays by numeric keys
// (trace/generator.cc's rank shuffle, trace/profiler.cc's
// frequency-descending item order) and the dedup planner sorts each
// bin's key buffer every batch. All of them are stable sorts by a
// 64-bit key, which an LSD radix sort reproduces *exactly*: radix by
// ascending u64 key with stable per-digit scatter yields the same
// permutation as std::stable_sort with the corresponding comparator
// (pinned by tests/common/simd_test.cc), while running in O(n) passes
// instead of O(n log n) comparisons.
//
// Key transforms (total orders mapped onto ascending u64):
//   * non-negative doubles: the IEEE-754 bit pattern of d >= 0.0 is
//     monotone in d, so bit_cast<u64>(d) sorts ascending-by-value;
//   * descending u64: ~v sorts ascending exactly where v sorts
//     descending.
//
// Digit width adapts to n: large arrays use 16-bit digits (4 scatter
// passes over the data), small ones 8-bit digits (8 cheaper passes,
// 256-entry histograms). Passes whose digit is constant across all
// keys are skipped (one histogram scan detects them), so
// nearly-narrow keys — e.g. the dedup planner's 34-bit stream-tagged
// keys — pay only for the bytes that vary.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace updlrm {

inline std::uint64_t AscendingKeyFromNonNegativeDouble(double d) {
  return std::bit_cast<std::uint64_t>(d);
}

inline std::uint64_t AscendingKeyFromDescendingU64(std::uint64_t v) {
  return ~v;
}

namespace radix_internal {

// 16-bit digits pay one 256 KiB histogram zeroing up front; worth it
// from roughly this many elements (half the scatter passes of 8-bit).
constexpr std::size_t kWideDigitThreshold = 1u << 16;

// Digit histograms for every pass in one scan. uint32 counters cap the
// sort at 2^32-1 elements — far above any table/trace here.
template <int kDigitBits>
void Histograms(const std::uint64_t* keys, std::size_t n,
                std::uint32_t* hist) {
  constexpr std::size_t kPasses = 64 / kDigitBits;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  constexpr std::uint64_t kMask = kBuckets - 1;
  std::memset(hist, 0, kPasses * kBuckets * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (std::size_t p = 0; p < kPasses; ++p) {
      ++hist[p * kBuckets + ((k >> (kDigitBits * p)) & kMask)];
    }
  }
}

// One stable counting-scatter pass per non-constant digit. Payload may
// be null (bare value sort). Returns the buffer currently holding the
// sorted data (keys or key_tmp; ids mirrors the same side).
template <int kDigitBits, typename Index>
std::uint64_t* Passes(std::uint64_t* keys, std::uint64_t* key_tmp,
                      Index* ids, Index* id_tmp, std::size_t n,
                      std::uint32_t* hist, std::uint32_t* offset) {
  constexpr std::size_t kPasses = 64 / kDigitBits;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  constexpr std::uint64_t kMask = kBuckets - 1;
  std::uint64_t* src_k = keys;
  std::uint64_t* dst_k = key_tmp;
  Index* src_i = ids;
  Index* dst_i = id_tmp;
  for (std::size_t p = 0; p < kPasses; ++p) {
    const std::uint32_t* h = hist + p * kBuckets;
    // Constant digit: the pass is the identity permutation.
    bool trivial = false;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      if (h[d] == n) {
        trivial = true;
        break;
      }
      if (h[d] != 0) break;
    }
    if (trivial) continue;

    std::uint32_t sum = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      offset[d] = sum;
      sum += h[d];
    }
    const std::size_t shift = kDigitBits * p;
    if (ids != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t k = src_k[i];
        const std::uint32_t slot = offset[(k >> shift) & kMask]++;
        dst_k[slot] = k;
        dst_i[slot] = src_i[i];
      }
      std::swap(src_i, dst_i);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t k = src_k[i];
        dst_k[offset[(k >> shift) & kMask]++] = k;
      }
    }
    std::swap(src_k, dst_k);
  }
  if (ids != nullptr && src_i != ids) {
    std::memcpy(ids, src_i, n * sizeof(Index));
  }
  return src_k;
}

template <int kDigitBits, typename Index>
void SortImpl(std::uint64_t* keys, std::uint64_t* key_tmp, Index* ids,
              Index* id_tmp, std::size_t n) {
  constexpr std::size_t kPasses = 64 / kDigitBits;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  std::vector<std::uint32_t> hist(kPasses * kBuckets);
  std::vector<std::uint32_t> offset(kBuckets);
  Histograms<kDigitBits>(keys, n, hist.data());
  std::uint64_t* sorted = Passes<kDigitBits>(keys, key_tmp, ids, id_tmp,
                                             n, hist.data(), offset.data());
  if (sorted != keys) {
    std::memcpy(keys, sorted, n * sizeof(std::uint64_t));
  }
}

template <typename Index>
void Dispatch(std::uint64_t* keys, std::uint64_t* key_tmp, Index* ids,
              Index* id_tmp, std::size_t n) {
  if (n >= kWideDigitThreshold) {
    SortImpl<16>(keys, key_tmp, ids, id_tmp, n);
  } else {
    SortImpl<8>(keys, key_tmp, ids, id_tmp, n);
  }
}

}  // namespace radix_internal

/// Stably sorts `ids` so that keys[i] (the key belonging to ids[i] at
/// call time) is ascending; equal keys keep their relative id order.
/// `keys` is consumed (permuted alongside ids). Both spans must have
/// the same size.
template <typename Index>
void StableRadixSortIdsByKey(std::span<Index> ids,
                             std::span<std::uint64_t> keys) {
  const std::size_t n = ids.size();
  if (n < 2) return;
  std::vector<std::uint64_t> key_tmp(n);
  std::vector<Index> id_tmp(n);
  radix_internal::Dispatch(keys.data(), key_tmp.data(), ids.data(),
                           id_tmp.data(), n);
}

/// Sorts `keys` ascending in place (values, no payload). `scratch` is
/// resized as needed and reusable across calls — pass a persistent
/// buffer to amortize.
inline void RadixSortU64(std::span<std::uint64_t> keys,
                         std::vector<std::uint64_t>& scratch) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  if (scratch.size() < n) scratch.resize(n);
  radix_internal::Dispatch<std::uint32_t>(keys.data(), scratch.data(),
                                          nullptr, nullptr, n);
}

}  // namespace updlrm
