#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/status.h"

namespace updlrm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  UPDLRM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  UPDLRM_CHECK_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Fmt(std::uint64_t value) {
  return std::to_string(value);
}

std::string TablePrinter::FmtMicros(double nanos, int precision) {
  return Fmt(nanos / 1.0e3, precision) + " us";
}

std::string TablePrinter::FmtMillis(double nanos, int precision) {
  return Fmt(nanos / 1.0e6, precision) + " ms";
}

std::string TablePrinter::FmtSpeedup(double ratio, int precision) {
  return Fmt(ratio, precision) + "x";
}

std::string TablePrinter::FmtPercent(double fraction, int precision) {
  return Fmt(fraction * 100.0, precision) + "%";
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace updlrm
