#include "common/rng.h"

#include <cmath>

namespace updlrm {

double Rng::NextGaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  gaussian_spare_ = v * mul;
  has_gaussian_spare_ = true;
  return u * mul;
}

std::uint32_t Rng::NextPoisson(double mean) {
  UPDLRM_CHECK(mean >= 0.0);
  // Knuth's method, chunked at mean 30 per round. Poisson additivity keeps
  // the chunked draw exact while avoiding exp() underflow for large means.
  std::uint32_t total = 0;
  double remaining = mean;
  while (remaining > 0.0) {
    const double m = remaining < 30.0 ? remaining : 30.0;
    remaining -= m;
    const double limit = std::exp(-m);
    double p = 1.0;
    std::uint32_t k = 0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    total += k - 1;
  }
  return total;
}

namespace {

// expm1(t)/t, continuous at t == 0.
double Helper1(double t) { return t == 0.0 ? 1.0 : std::expm1(t) / t; }

// log1p(t)/t, continuous at t == 0.
double Helper2(double t) { return t == 0.0 ? 1.0 : std::log1p(t) / t; }

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  UPDLRM_CHECK(n >= 1);
  UPDLRM_CHECK(alpha >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInv(H(2.5) - std::exp(-alpha_ * std::log(2.0)));
}

double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  return Helper1((1.0 - alpha_) * log_x) * log_x;
}

double ZipfSampler::HInv(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // numerical guard near the distribution head
  return std::exp(Helper2(t) * x);
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  // Rejection-inversion (Hörmann & Derflinger, 1996). O(1) expected time.
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInv(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    const double n_d = static_cast<double>(n_);
    if (k > n_d) k = n_d;
    if (k - x <= s_ ||
        u >= H(k + 0.5) - std::exp(-alpha_ * std::log(k))) {
      return static_cast<std::uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

double ZipfSampler::Probability(std::uint64_t k) const {
  UPDLRM_CHECK(k < n_);
  if (normalizer_ == 0.0) {
    for (std::uint64_t i = 0; i < n_; ++i) {
      normalizer_ +=
          std::exp(-alpha_ * std::log(static_cast<double>(i + 1)));
    }
  }
  return std::exp(-alpha_ * std::log(static_cast<double>(k + 1))) /
         normalizer_;
}

}  // namespace updlrm
