// Work-stealing thread pool for the host execution backend.
//
// Every host-side fan-out in the library (engine setup, stage-2 batch
// simulation, GRACE mining, trace generation, the comparison harness)
// runs through this pool. The pool provides *wall-clock* parallelism
// only: callers are responsible for the determinism contract — a
// parallel region must write to disjoint output slots, and any
// reduction must happen after the region in a fixed order, so that the
// same inputs produce the same bytes and the same simulated times at
// every thread count (see DESIGN.md §"Host execution backend").
//
// Structure: N-1 worker threads, each owning a deque of tasks. Submit()
// pushes to the deques round-robin; idle workers pop their own deque
// LIFO and steal FIFO from siblings. ParallelFor() splits an index
// range over the pool via an atomic cursor; the calling thread always
// participates, so nested parallel regions (an engine fanning out from
// inside a comparison task) cannot deadlock — a caller that finds no
// idle worker simply executes every chunk itself.
//
// Steady-state ParallelFor is allocation-free: the body is passed by
// FunctionRef (no std::function ownership copy), region descriptors
// are recycled from a freelist of immortal states guarded by a
// (ticket, participant-count) protocol against stale helper tasks, and
// the helper closures fit std::function's small-object buffer.
//
// Affinity: set UPDLRM_PIN_THREADS=1 to pin each worker thread to one
// CPU (round-robin over the online set, the caller's CPU excluded
// first). Off by default — pinning helps steady-state serving on
// dedicated cores and hurts oversubscribed CI boxes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/function_ref.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace updlrm {

class ThreadPool {
 public:
  /// Creates a pool that runs work on `threads` threads total: the
  /// calling thread plus `threads - 1` background workers. `threads`
  /// == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (background workers + the caller).
  unsigned size() const { return num_threads_; }

  /// Enqueues a fire-and-forget task on a worker deque.
  void Submit(std::function<void()> task);

  /// Runs body(begin, end) over chunks of [0, n). Blocks until every
  /// index has been processed. The caller executes chunks alongside the
  /// workers. `max_workers` caps the number of threads used for this
  /// call (0 = the full pool, 1 = inline on the caller). Chunk
  /// boundaries depend only on `n` and `grain`, never on thread count.
  void ParallelFor(std::size_t n, std::size_t grain,
                   FunctionRef<void(std::size_t, std::size_t)> body,
                   unsigned max_workers = 0);

  /// The process-wide pool, created on first use. Sized by
  /// SetDefaultThreads() if called before first use, otherwise by
  /// hardware_concurrency().
  static ThreadPool& Default();

  /// Overrides the Default() pool size. Only effective before the first
  /// Default() call; later calls are ignored (the pool is never
  /// resized). Returns the size Default() will have / has.
  static unsigned SetDefaultThreads(unsigned threads);

 private:
  struct ParallelForState;

  void WorkerLoop(unsigned worker_index);
  bool TryRunOneTask(unsigned home);
  // True when any worker deque holds a task (stealable work exists).
  bool HaveQueuedTaskLocked() const REQUIRES(mu_);
  static void RunChunks(ParallelForState& state);
  // Helper-task entry: joins `state`'s region iff its ticket is still
  // current (see the recycling protocol in thread_pool.cc).
  static void HelperRun(ParallelForState* state, std::uint64_t ticket);

  ParallelForState* AcquireState();
  void ReleaseState(ParallelForState* state);

  unsigned num_threads_ = 1;  // workers + caller
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::vector<std::deque<std::function<void()>>> queues_ GUARDED_BY(mu_);
  CondVar cv_;
  std::atomic<unsigned> next_queue_{0};
  bool stopping_ GUARDED_BY(mu_) = false;

  // Freelist of recycled region descriptors (Treiber stack). States
  // live until pool destruction — stale helper tasks may dereference
  // them long after their region completed.
  std::atomic<ParallelForState*> free_states_{nullptr};
  Mutex states_mu_;
  std::vector<ParallelForState*> all_states_ GUARDED_BY(states_mu_);
};

/// ParallelFor on the process-wide default pool. `num_threads` is the
/// per-call cap with the EngineOptions convention: 0 = full pool,
/// 1 = serial inline, N = at most N threads.
void ParallelFor(std::size_t n,
                 FunctionRef<void(std::size_t, std::size_t)> body,
                 unsigned num_threads = 0, std::size_t grain = 1);

}  // namespace updlrm
