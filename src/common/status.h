// Lightweight status / result types for recoverable errors.
//
// The library reports expected failures (capacity overflow, bad
// configuration, misaligned access requests) through Status / Result<T>
// rather than exceptions, so callers can probe "what if" configurations
// (e.g. a partition plan that does not fit MRAM) without control-flow
// surprises. Programmer errors (violated preconditions) use UPDLRM_CHECK,
// which aborts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace updlrm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCapacityExceeded,
  kFailedPrecondition,
  kNotFound,
  kUnimplemented,
};

/// Human-readable name of a StatusCode (e.g. "CAPACITY_EXCEEDED").
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status OutOfRange(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status CapacityExceeded(std::string msg) {
    return {StatusCode::kCapacityExceeded, std::move(msg)};
  }
  static Status FailedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status Unimplemented(std::string msg) {
    return {StatusCode::kUnimplemented, std::move(msg)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. Minimal stand-in for std::expected (C++23).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    UpgradeOkError();
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }
  // Constructing a Result<T> from an OK status is a bug; make it loud.
  void UpgradeOkError() {
    if (status_.ok()) {
      status_ = Status::FailedPrecondition(
          "Result<T> constructed from OK status without a value");
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace internal

/// Precondition check: aborts with location info when `cond` is false.
#define UPDLRM_CHECK(cond)                                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::updlrm::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                    \
  } while (0)

#define UPDLRM_CHECK_MSG(cond, msg)                                      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::updlrm::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                    \
  } while (0)

/// Propagate a non-OK Status from the current function.
#define UPDLRM_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::updlrm::Status updlrm_status__ = (expr);    \
    if (!updlrm_status__.ok()) {                  \
      return updlrm_status__;                     \
    }                                             \
  } while (0)

}  // namespace updlrm
