// Clang thread-safety analysis annotations.
//
// The macros below attach capability (lock) semantics to classes,
// members and functions so `clang -Wthread-safety` can prove, at
// compile time, that every access to a GUARDED_BY member happens with
// its mutex held and that ACQUIRE/RELEASE pairs balance on every path.
// Under GCC (which has no such analysis) every macro expands to
// nothing, so the annotations are free documentation there.
//
// The analysis only understands lock types that are themselves
// annotated; std::mutex is not. common/mutex.h wraps it in an
// annotated Mutex/MutexLock/CondVar triple — use those (not raw
// std::mutex) for any lock that guards annotated state. The CI
// `thread-safety` leg builds with clang and -Werror, making these
// annotations binding (see .github/workflows/ci.yml and DESIGN.md
// §11).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define UPDLRM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define UPDLRM_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (lockable) type; `name` is the
/// capability kind shown in diagnostics (e.g. "mutex").
#define CAPABILITY(name) UPDLRM_THREAD_ANNOTATION(capability(name))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock below).
#define SCOPED_CAPABILITY UPDLRM_THREAD_ANNOTATION(scoped_lockable)

/// Data member that may only be read or written with `x` held.
#define GUARDED_BY(x) UPDLRM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PT_GUARDED_BY(x) UPDLRM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held.
#define REQUIRES(...) \
  UPDLRM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capabilities NOT held
/// (deadlock guard for functions that take the lock themselves).
#define EXCLUDES(...) UPDLRM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define ACQUIRE(...) \
  UPDLRM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define RELEASE(...) \
  UPDLRM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define TRY_ACQUIRE(result, ...) \
  UPDLRM_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function returning a reference to the capability guarding its
/// result (accessor pattern).
#define RETURN_CAPABILITY(x) UPDLRM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// must carry a comment explaining why the function is safe (typical:
/// adopting a lock held by the caller through a non-annotated API).
#define NO_THREAD_SAFETY_ANALYSIS \
  UPDLRM_THREAD_ANNOTATION(no_thread_safety_analysis)
