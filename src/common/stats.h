// Descriptive statistics used by the profiler, balance metrics, and the
// benchmark harnesses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace updlrm {

/// Single-pass accumulator for mean / variance / extrema (Welford).
class OnlineStats {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile; `p` in [0, 100]. Copies and sorts.
double Percentile(std::span<const double> values, double p);

/// max / mean of a load vector; 1.0 == perfectly balanced. Returns 0 for
/// empty or all-zero input.
double ImbalanceRatio(std::span<const double> loads);

/// max / min of a load vector, the skew metric Fig. 5 reports.
/// Returns +inf if min == 0 and max > 0; 0 for empty/all-zero input.
double MaxMinRatio(std::span<const double> loads);

/// Coefficient of variation (stddev / mean); 0 == perfectly balanced.
double CoefficientOfVariation(std::span<const double> loads);

/// Gini coefficient in [0, 1); 0 == perfectly equal.
double GiniCoefficient(std::span<const double> values);

/// Convenience: convert integral load vectors for the metrics above.
std::vector<double> ToDoubles(std::span<const std::uint64_t> values);

}  // namespace updlrm
