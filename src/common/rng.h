// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (trace generation, weight
// initialization, workload sampling) draw from Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded via splitmix64; both are tiny, fast, and have
// well-studied statistical quality.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace updlrm {

/// splitmix64 step; used for seeding and cheap hashing.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    UPDLRM_CHECK(bound > 0);
    // Lemire's nearly-divisionless bounded sampling, unbiased.
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (polar form, cached spare).
  double NextGaussian();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Poisson-distributed count with the given mean (mean <= ~700).
  std::uint32_t NextPoisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel streams).
  Rng Fork() { return Rng(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double gaussian_spare_ = 0.0;
  bool has_gaussian_spare_ = false;
};

/// Zipf(α) sampler over {0, ..., n-1}: P(k) ∝ 1/(k+1)^α.
///
/// Item popularity in recommendation traces is well modelled by a power
/// law (see GRACE [Ye et al., ASPLOS'23] and the skew the paper reports
/// in Fig. 5). Uses the rejection-inversion method of Hörmann/Derflinger,
/// which is O(1) per sample and exact for any α > 0, α != 1 handled too.
class ZipfSampler {
 public:
  /// n: support size (must be >= 1); alpha: skew (>= 0; 0 == uniform).
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// Exact probability of rank k (for tests / analytic hit rates).
  /// The O(n) normalizer is computed lazily on first call and cached;
  /// not thread-safe across concurrent first calls.
  double Probability(std::uint64_t k) const;

 private:
  double H(double x) const;     // integral of 1/x^alpha
  double HInv(double x) const;  // inverse of H

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
  mutable double normalizer_ = 0.0;  // sum of 1/(k+1)^alpha, lazy
};

}  // namespace updlrm
