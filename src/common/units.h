// Size / time / frequency unit helpers.
//
// Simulator timing flows through two domains: DPU cycles (integral, at
// the DPU clock) and host-side nanoseconds (double). Conversions are
// centralized here so calibration constants stay legible
// (e.g. `350 * kMHz`, `64 * kMiB`).
#pragma once

#include <cstdint>

namespace updlrm {

// --- sizes (bytes) ---
inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

// --- frequency (Hz) ---
inline constexpr double kMHz = 1.0e6;
inline constexpr double kGHz = 1.0e9;

// --- time (seconds as doubles) ---
inline constexpr double kNanosPerSecond = 1.0e9;
inline constexpr double kMicrosPerSecond = 1.0e6;

/// DPU cycle count. Kept integral so kernel timing is exact and
/// platform-independent.
using Cycles = std::uint64_t;

/// Host-side wall time in nanoseconds.
using Nanos = double;

/// Convert DPU cycles at `freq_hz` to nanoseconds.
inline Nanos CyclesToNanos(Cycles cycles, double freq_hz) {
  return static_cast<double>(cycles) * kNanosPerSecond / freq_hz;
}

/// Convert nanoseconds to whole DPU cycles (rounded up).
inline Cycles NanosToCycles(Nanos ns, double freq_hz) {
  const double cycles = ns * freq_hz / kNanosPerSecond;
  auto whole = static_cast<Cycles>(cycles);
  return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

inline double NanosToMicros(Nanos ns) { return ns / 1.0e3; }
inline double NanosToMillis(Nanos ns) { return ns / 1.0e6; }

/// Bytes moved in `ns` at `bytes_per_sec` — transfer-time helper.
inline Nanos TransferNanos(std::uint64_t bytes, double bytes_per_sec) {
  return static_cast<double>(bytes) / bytes_per_sec * kNanosPerSecond;
}

/// Round `value` up to a multiple of `alignment` (alignment must be a
/// power of two).
inline constexpr std::uint64_t AlignUp(std::uint64_t value,
                                       std::uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

inline constexpr bool IsAligned(std::uint64_t value, std::uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

inline constexpr bool IsPowerOfTwo(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Integer ceiling division.
inline constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace updlrm
