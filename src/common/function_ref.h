// Non-owning callable reference (the C++26 std::function_ref shape).
//
// std::function owns its callable: any capture list over 16 bytes heap
// allocates at construction, which puts one malloc/free pair on every
// parallel region launched with a capturing lambda. The hot fan-out
// paths (ThreadPool::ParallelFor and friends) only ever *borrow* the
// callable for the duration of the call, so a (void*, fn-pointer) pair
// is enough — two words, trivially copyable, never allocates.
//
// Lifetime: a FunctionRef does not extend the referenced callable's
// life. Bind it to a callable that outlives every invocation — a local
// lambda passed straight into a blocking call (the ParallelFor
// pattern) is the intended use. Never store a FunctionRef beyond the
// callable's scope.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace updlrm {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Empty ref; calling it is undefined. Test with operator bool.
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirroring std::function_ref — call sites pass lambdas directly.
  FunctionRef(F&& f)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return fn_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*fn_)(void*, Args...) = nullptr;
};

}  // namespace updlrm
