// Minimal command-line flag parsing for examples and benches.
//
// Supports `--name=value` and `--name value`; unknown flags are reported
// so typos don't silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace updlrm {

class CommandLine {
 public:
  /// Parses argv; returns an error for malformed flags (missing value).
  static Result<CommandLine> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — typo detection for
  /// examples; call after all Get*() calls.
  std::vector<std::string> UnusedFlags() const;

 private:
  CommandLine() = default;

  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace updlrm
