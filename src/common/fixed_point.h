// Fixed-point representation for DPU-side embedding arithmetic.
//
// UPMEM DPUs are 32-bit integer RISC cores with no hardware FPU;
// software-emulated floating point costs tens of cycles per operation.
// Production UPMEM embedding kernels therefore store vectors as Q-format
// integers and accumulate in integer registers. We mirror that: the host
// quantizes float32 embedding rows to Q15.16 int32 on placement, the
// simulated DPU accumulates int32 partial sums, and the host dequantizes
// after the final cross-DPU reduction.
//
// Range analysis: embedding values are initialized N(0, 0.1) so |v| < 1
// with overwhelming margin; a pooled sum of 512 active features stays
// below 2^9 * 2^16 = 2^25, leaving 6 bits of headroom in int32.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace updlrm {

inline constexpr int kFixedPointFracBits = 16;
inline constexpr std::int32_t kFixedPointOne = 1 << kFixedPointFracBits;

/// Quantize one float to Q15.16 (round-to-nearest, ties away from zero).
inline std::int32_t ToFixed(float v) {
  const double scaled =
      static_cast<double>(v) * static_cast<double>(kFixedPointOne);
  return static_cast<std::int32_t>(std::lround(scaled));
}

/// Dequantize Q15.16 to float.
inline float FromFixed(std::int32_t v) {
  return static_cast<float>(v) / static_cast<float>(kFixedPointOne);
}

/// Dequantize a 64-bit accumulated sum of Q15.16 values.
inline float FromFixedSum(std::int64_t v) {
  return static_cast<float>(static_cast<double>(v) /
                            static_cast<double>(kFixedPointOne));
}

/// Vector quantization helpers.
inline std::vector<std::int32_t> QuantizeVector(std::span<const float> v) {
  std::vector<std::int32_t> out;
  out.reserve(v.size());
  for (float x : v) out.push_back(ToFixed(x));
  return out;
}

inline std::vector<float> DequantizeVector(std::span<const std::int32_t> v) {
  std::vector<float> out;
  out.reserve(v.size());
  for (std::int32_t x : v) out.push_back(FromFixed(x));
  return out;
}

}  // namespace updlrm
