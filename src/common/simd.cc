#include "common/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/status.h"

#if defined(__x86_64__) && !defined(UPDLRM_DISABLE_AVX2)
#define UPDLRM_SIMD_AVX2_BUILD 1
#include <immintrin.h>
#else
#define UPDLRM_SIMD_AVX2_BUILD 0
#endif

namespace updlrm::simd {
namespace {

// ---------------------------------------------------------------------
// Scalar reference implementations. These define the semantics; the
// AVX2 variants must match them bit for bit (pinned by simd_test).
// ---------------------------------------------------------------------

void AddI32ToI64Scalar(const std::int32_t* src, std::int64_t* acc,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
}

void AddI64ToI64Scalar(const std::int64_t* src, std::int64_t* acc,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
}

void AddScaledF32Scalar(const float* col, float x, float* acc,
                        std::size_t n) {
  // Exactly one IEEE multiply then one IEEE add per element. Neither
  // leg may fuse them into an FMA (different rounding): this TU is
  // compiled for baseline x86-64 (no FMA ISA), and the AVX2 leg's
  // target("avx2") does not enable FMA either, so mul-then-add is what
  // both emit and the results match bit for bit.
  for (std::size_t i = 0; i < n; ++i) {
    const float p = col[i] * x;
    acc[i] = acc[i] + p;
  }
}

void UniqueStreamCountsScalar(const std::uint64_t* keys, std::size_t n,
                              std::uint64_t counts[3]) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && keys[i] == keys[i - 1]) continue;
    ++counts[keys[i] >> 62];
  }
}

std::uint64_t MaxU64Scalar(const std::uint64_t* v, std::size_t n) {
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < n; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

std::uint64_t SumU64Scalar(const std::uint64_t* v, std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

std::uint64_t CountNonZeroU64Scalar(const std::uint64_t* v,
                                    std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += v[i] != 0 ? 1 : 0;
  return c;
}

bool AllZeroOrEqualU64Scalar(const std::uint64_t* v, std::size_t n,
                             std::uint64_t value) {
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] != 0 && v[i] != value) return false;
  }
  return true;
}

void PackPaddedScalar(const std::uint8_t* src, std::size_t src_bytes,
                      std::uint8_t* dst, std::size_t dst_bytes) {
  if (src_bytes != 0) std::memcpy(dst, src, src_bytes);
  if (dst_bytes > src_bytes) {
    std::memset(dst + src_bytes, 0, dst_bytes - src_bytes);
  }
}

#if UPDLRM_SIMD_AVX2_BUILD
// ---------------------------------------------------------------------
// AVX2 variants. Compiled with per-function target attributes so the
// rest of the binary needs no -mavx2; reached only when CPUID reports
// AVX2 and no scalar override is active.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void AddI32ToI64Avx2(
    const std::int32_t* src, std::int64_t* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i s0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 4));
    __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    a0 = _mm256_add_epi64(a0, _mm256_cvtepi32_epi64(s0));
    a1 = _mm256_add_epi64(a1, _mm256_cvtepi32_epi64(s1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4), a1);
  }
  for (; i < n; ++i) acc[i] += src[i];
}

__attribute__((target("avx2"))) void AddI64ToI64Avx2(
    const std::int64_t* src, std::int64_t* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    a0 = _mm256_add_epi64(a0, s0);
    a1 = _mm256_add_epi64(a1, s1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4), a1);
  }
  for (; i < n; ++i) acc[i] += src[i];
}

__attribute__((target("avx2"))) void AddScaledF32Avx2(
    const float* col, float x, float* acc, std::size_t n) {
  const __m256 vx = _mm256_set1_ps(x);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 c = _mm256_loadu_ps(col + i);
    const __m256 a = _mm256_loadu_ps(acc + i);
    // Separate mul + add (never _mm256_fmadd_ps): lane l computes
    // fl(acc[l] + fl(col[l] * x)), the scalar leg's exact sequence.
    _mm256_storeu_ps(acc + i,
                     _mm256_add_ps(a, _mm256_mul_ps(c, vx)));
  }
  for (; i < n; ++i) {
    const float p = col[i] * x;
    acc[i] = acc[i] + p;
  }
}

__attribute__((target("avx2"))) void UniqueStreamCountsAvx2(
    const std::uint64_t* keys, std::size_t n, std::uint64_t counts[3]) {
  if (n == 0) return;
  ++counts[keys[0] >> 62];
  std::size_t i = 1;
  std::uint64_t c0 = 0, c1 = 0, c2 = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i prev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i - 1));
    // Lane l is "unique" when keys[i+l] != keys[i+l-1].
    const __m256i eq = _mm256_cmpeq_epi64(cur, prev);
    const int uniq = ~_mm256_movemask_pd(_mm256_castsi256_pd(eq)) & 0xf;
    if (uniq == 0) continue;
    // Stream id = top two bits; compare against each stream and count
    // the unique lanes that match.
    const __m256i stream = _mm256_srli_epi64(cur, 62);
    const int is0 = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpeq_epi64(stream, _mm256_setzero_si256())));
    const int is1 = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpeq_epi64(stream, _mm256_set1_epi64x(1))));
    const int is2 = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpeq_epi64(stream, _mm256_set1_epi64x(2))));
    c0 += static_cast<unsigned>(__builtin_popcount(uniq & is0));
    c1 += static_cast<unsigned>(__builtin_popcount(uniq & is1));
    c2 += static_cast<unsigned>(__builtin_popcount(uniq & is2));
  }
  for (; i < n; ++i) {
    if (keys[i] == keys[i - 1]) continue;
    const std::uint64_t s = keys[i] >> 62;
    c0 += s == 0;
    c1 += s == 1;
    c2 += s == 2;
  }
  counts[0] += c0;
  counts[1] += c1;
  counts[2] += c2;
}

// Unsigned 64-bit lane max: flip the sign bit so signed compare orders
// unsigned values correctly.
__attribute__((target("avx2"))) inline __m256i MaxEpu64(__m256i a,
                                                        __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                                        _mm256_xor_si256(b, bias));
  return _mm256_blendv_epi8(b, a, gt);
}

__attribute__((target("avx2"))) std::uint64_t MaxU64Avx2(
    const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m256i best = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    best = MaxEpu64(best, x);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  std::uint64_t m = 0;
  for (const std::uint64_t lane : lanes) m = lane > m ? lane : m;
  for (; i < n; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

__attribute__((target("avx2"))) std::uint64_t SumU64Avx2(
    const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) s += v[i];
  return s;
}

__attribute__((target("avx2"))) std::uint64_t CountNonZeroU64Avx2(
    const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  std::uint64_t zeros = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, _mm256_setzero_si256());
    zeros += static_cast<unsigned>(
        __builtin_popcount(_mm256_movemask_pd(_mm256_castsi256_pd(eq))));
  }
  std::uint64_t count = i - zeros;
  for (; i < n; ++i) count += v[i] != 0 ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) bool AllZeroOrEqualU64Avx2(
    const std::uint64_t* v, std::size_t n, std::uint64_t value) {
  std::size_t i = 0;
  const __m256i val = _mm256_set1_epi64x(static_cast<long long>(value));
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i ok = _mm256_or_si256(
        _mm256_cmpeq_epi64(x, _mm256_setzero_si256()),
        _mm256_cmpeq_epi64(x, val));
    if (_mm256_movemask_pd(_mm256_castsi256_pd(ok)) != 0xf) return false;
  }
  for (; i < n; ++i) {
    if (v[i] != 0 && v[i] != value) return false;
  }
  return true;
}

__attribute__((target("avx2"))) void PackPaddedAvx2(
    const std::uint8_t* src, std::size_t src_bytes, std::uint8_t* dst,
    std::size_t dst_bytes) {
  std::size_t i = 0;
  for (; i + 32 <= src_bytes; i += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  if (i < src_bytes) std::memcpy(dst + i, src + i, src_bytes - i);
  i = src_bytes;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= dst_bytes; i += 32) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), zero);
  }
  if (i < dst_bytes) std::memset(dst + i, 0, dst_bytes - i);
}
#endif  // UPDLRM_SIMD_AVX2_BUILD

// ---------------------------------------------------------------------
// Dispatch table. Chosen once at static init (this TU, top to bottom),
// swappable by ForceScalar; tests flip it single-threaded.
// ---------------------------------------------------------------------

struct Kernels {
  void (*add_i32_to_i64)(const std::int32_t*, std::int64_t*, std::size_t);
  void (*add_i64_to_i64)(const std::int64_t*, std::int64_t*, std::size_t);
  void (*add_scaled_f32)(const float*, float, float*, std::size_t);
  void (*unique_stream_counts)(const std::uint64_t*, std::size_t,
                               std::uint64_t[3]);
  std::uint64_t (*max_u64)(const std::uint64_t*, std::size_t);
  std::uint64_t (*sum_u64)(const std::uint64_t*, std::size_t);
  std::uint64_t (*count_non_zero_u64)(const std::uint64_t*, std::size_t);
  bool (*all_zero_or_equal_u64)(const std::uint64_t*, std::size_t,
                                std::uint64_t);
  void (*pack_padded)(const std::uint8_t*, std::size_t, std::uint8_t*,
                      std::size_t);
};

constexpr Kernels kScalarKernels = {
    AddI32ToI64Scalar,      AddI64ToI64Scalar,
    AddScaledF32Scalar,
    UniqueStreamCountsScalar,
    MaxU64Scalar,           SumU64Scalar,
    CountNonZeroU64Scalar,  AllZeroOrEqualU64Scalar,
    PackPaddedScalar,
};

#if UPDLRM_SIMD_AVX2_BUILD
const Kernels kAvx2Kernels = {
    AddI32ToI64Avx2,      AddI64ToI64Avx2,
    AddScaledF32Avx2,
    UniqueStreamCountsAvx2,
    MaxU64Avx2,           SumU64Avx2,
    CountNonZeroU64Avx2,  AllZeroOrEqualU64Avx2,
    PackPaddedAvx2,
};
#endif

bool DetectAvx2() {
#if UPDLRM_SIMD_AVX2_BUILD
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool EnvForcesScalar() {
  const char* env = std::getenv("UPDLRM_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

const bool g_avx2_available = DetectAvx2();

const Kernels* PickKernels(bool force_scalar) {
#if UPDLRM_SIMD_AVX2_BUILD
  if (g_avx2_available && !force_scalar) return &kAvx2Kernels;
#else
  (void)force_scalar;
#endif
  return &kScalarKernels;
}

const Kernels* g_active = PickKernels(EnvForcesScalar());

}  // namespace

bool Avx2Available() { return g_avx2_available; }

bool UsingAvx2() {
#if UPDLRM_SIMD_AVX2_BUILD
  return g_active == &kAvx2Kernels;
#else
  return false;
#endif
}

void ForceScalar(bool force) { g_active = PickKernels(force); }

void AddI32ToI64(const std::int32_t* src, std::int64_t* acc,
                 std::size_t n) {
  g_active->add_i32_to_i64(src, acc, n);
}

void AddI64ToI64(const std::int64_t* src, std::int64_t* acc,
                 std::size_t n) {
  g_active->add_i64_to_i64(src, acc, n);
}

void AddScaledF32(const float* col, float x, float* acc, std::size_t n) {
  g_active->add_scaled_f32(col, x, acc, n);
}

void UniqueStreamCounts(const std::uint64_t* sorted_keys, std::size_t n,
                        std::uint64_t counts[3]) {
  g_active->unique_stream_counts(sorted_keys, n, counts);
}

std::uint64_t MaxU64(const std::uint64_t* v, std::size_t n) {
  return g_active->max_u64(v, n);
}

std::uint64_t SumU64(const std::uint64_t* v, std::size_t n) {
  return g_active->sum_u64(v, n);
}

std::uint64_t CountNonZeroU64(const std::uint64_t* v, std::size_t n) {
  return g_active->count_non_zero_u64(v, n);
}

bool AllZeroOrEqualU64(const std::uint64_t* v, std::size_t n,
                       std::uint64_t value) {
  return g_active->all_zero_or_equal_u64(v, n, value);
}

void PackPadded(const std::uint8_t* src, std::size_t src_bytes,
                std::uint8_t* dst, std::size_t dst_bytes) {
  UPDLRM_CHECK(src_bytes <= dst_bytes);
  g_active->pack_padded(src, src_bytes, dst, dst_bytes);
}

}  // namespace updlrm::simd
