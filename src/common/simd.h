// Vectorized host-runtime kernels with runtime CPU-feature dispatch.
//
// The host side of the pipeline has a handful of flat loops that
// dominate its wall clock once the DPU fleet hides MRAM latency: the
// pooled-sum / partial-aggregation reduction of the functional engine,
// the neighbor-compare pass of the dedup planner, and the byte-matrix
// scans + padded packing of the transfer layer. Each kernel here ships
// two implementations — a portable scalar loop and an AVX2 version —
// selected once at process start by CPUID and overridable at runtime.
//
// Bit-exactness contract: every kernel is integer-only (or pure byte
// movement), so the AVX2 and scalar paths produce identical bytes on
// identical inputs — vector lanes only reassociate *integer* adds,
// which are exactly commutative. Kernels must never reassociate
// floating-point math; float reductions stay in fixed summation order
// outside this layer (see DESIGN.md §"Host runtime"). A randomized
// property test (tests/common/simd_test.cc) pins AVX2 == scalar on
// every kernel.
//
// Dispatch order:
//   1. UPDLRM_DISABLE_AVX2 (compile time) — scalar-only build, the CI
//      "scalar leg"; AVX2 code is not even compiled.
//   2. UPDLRM_FORCE_SCALAR=1 (environment) or --force-scalar (bench
//      CLI) or simd::ForceScalar(true) — runtime opt-out.
//   3. CPUID: AVX2 used iff the CPU reports it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace updlrm::simd {

/// True when this build contains AVX2 code paths and the CPU supports
/// them (independent of the force-scalar override).
bool Avx2Available();

/// True when kernels currently dispatch to AVX2.
bool UsingAvx2();

/// Runtime override: true forces every kernel onto the scalar path
/// (also settable via the UPDLRM_FORCE_SCALAR=1 environment variable,
/// read once at process start). false restores CPUID dispatch.
void ForceScalar(bool force);

/// acc[i] += src[i] for i in [0, n) — the pooled-sum inner loop.
/// int32 terms into int64 accumulators: exact at any lane order.
void AddI32ToI64(const std::int32_t* src, std::int64_t* acc,
                 std::size_t n);

/// acc[i] += src[i] for i in [0, n), int64 into int64 — the cross-rank
/// (and cross-shard) merge step of the hierarchical reduction: two
/// pooled accumulator buffers fold into one. Exact at any lane order.
void AddI64ToI64(const std::int64_t* src, std::int64_t* acc,
                 std::size_t n);

/// acc[i] += col[i] * x for i in [0, n) — the axpy column update of
/// the batched MLP GEMV (dlrm/batched.h). The one float kernel in this
/// layer, and it keeps the bit-exactness contract *without* fixing a
/// summation order across lanes: each acc[i] receives exactly one
/// IEEE-754 multiply and one add per call, independently per lane, so
/// AVX2 and scalar produce identical bits. The AVX2 body uses separate
/// mul + add intrinsics (target("avx2") does not enable FMA, and the
/// intrinsics cannot be contracted), so no fused rounding sneaks in.
void AddScaledF32(const float* col, float x, float* acc, std::size_t n);

/// Per-stream unique-key counts over a *sorted* key span — the dedup
/// planner's gather-map pass. Key stream = top two bits (see
/// updlrm/dedup.h); counts[s] += number of positions i where
/// keys[i] != keys[i-1] (i = 0 counts as unique), for stream s in
/// {0, 1, 2}. counts must be zeroed by the caller.
void UniqueStreamCounts(const std::uint64_t* sorted_keys, std::size_t n,
                        std::uint64_t counts[3]);

/// max over a byte-matrix row (0 for n == 0).
std::uint64_t MaxU64(const std::uint64_t* v, std::size_t n);

/// Wrapping sum (byte totals never approach 2^64 in practice; the
/// scalar loop wraps identically).
std::uint64_t SumU64(const std::uint64_t* v, std::size_t n);

/// Number of nonzero entries (participating DPUs of a transfer call).
std::uint64_t CountNonZeroU64(const std::uint64_t* v, std::size_t n);

/// True iff every entry is 0 or `value` — the "all participating
/// buffers equally sized" test that keeps the parallel transfer path.
bool AllZeroOrEqualU64(const std::uint64_t* v, std::size_t n,
                       std::uint64_t value);

/// Padded byte-packing: copy src[0, src_bytes) to dst and zero-fill
/// dst[src_bytes, dst_bytes). One ragged per-DPU buffer into its
/// padded slot of the transfer matrix. Requires src_bytes <= dst_bytes;
/// src and dst must not overlap.
void PackPadded(const std::uint8_t* src, std::size_t src_bytes,
                std::uint8_t* dst, std::size_t dst_bytes);

}  // namespace updlrm::simd
