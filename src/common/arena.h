// Bump arena for per-batch scratch buffers.
//
// The steady-state serving loop runs the same batch shape thousands of
// times; per-batch std::vector churn turns that into a stream of
// malloc/free pairs. An Arena hands out raw storage by bumping a
// cursor through a single block; Reset() makes every byte reusable
// without freeing. The block grows high-water-mark style: a Reset
// after an overflowing batch re-provisions one block big enough for
// everything that batch asked for, so a workload with a bounded batch
// shape reaches zero heap allocations per batch after one warmup pass
// (asserted by tests/serve/alloc_test.cc).
//
// Ownership/lifetime rules (DESIGN.md §"Host runtime"):
//   * Arena memory is valid until the next Reset(); never hold a span
//     across batches.
//   * AllocSpan default-constructs trivially-destructible elements
//     only; no destructors run at Reset.
//   * Arenas are single-threaded. Parallel sections use one arena per
//     worker (ThreadArena(), keyed by worker index), never a shared
//     one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace updlrm {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes != 0) Provision(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` T, aligned for T.
  template <typename T>
  T* Alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    const std::size_t bytes = count * sizeof(T);
    return reinterpret_cast<T*>(AllocBytes(bytes, alignof(T)));
  }

  /// Value-initialized (zeroed, for arithmetic T) span of `count` T.
  template <typename T>
  std::span<T> AllocSpan(std::size_t count) {
    T* p = Alloc<T>(count);
    for (std::size_t i = 0; i < count; ++i) p[i] = T{};
    return {p, count};
  }

  /// Returns every byte to the arena. If the previous cycle overflowed
  /// the block, re-provisions one block sized to that cycle's
  /// high-water mark (the only allocation; subsequent same-shaped
  /// cycles allocate nothing).
  void Reset() {
    if (used_ + overflow_bytes_ > capacity_) {
      Provision(used_ + overflow_bytes_);
    }
    used_ = 0;
    overflow_bytes_ = 0;
    overflow_.clear();
  }

  /// Bytes handed out since the last Reset (including overflow).
  std::size_t used() const { return used_ + overflow_bytes_; }
  std::size_t capacity() const { return capacity_; }
  /// True when the current cycle spilled past the block (the next
  /// Reset will grow it).
  bool overflowed() const { return !overflow_.empty(); }

 private:
  static constexpr std::size_t kMaxAlign = alignof(std::max_align_t);

  void Provision(std::size_t bytes) {
    // Grow geometrically so N warmup batches of creeping sizes cost
    // O(log) re-provisions, not N.
    std::size_t cap = capacity_ == 0 ? 4096 : capacity_;
    while (cap < bytes) cap *= 2;
    block_ = std::make_unique<unsigned char[]>(cap + kMaxAlign);
    base_ = AlignPtr(block_.get(), kMaxAlign);
    capacity_ = cap;
  }

  static unsigned char* AlignPtr(unsigned char* p, std::size_t align) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
    return p + (aligned - addr);
  }

  unsigned char* AllocBytes(std::size_t bytes, std::size_t align) {
    UPDLRM_CHECK(align <= kMaxAlign);
    const std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (offset + bytes <= capacity_) {
      used_ = offset + bytes;
      return base_ + offset;
    }
    // Overflow: serve from a side allocation, remember the demand so
    // the next Reset provisions a big-enough block.
    overflow_bytes_ += bytes + align;
    overflow_.push_back(std::make_unique<unsigned char[]>(bytes + align));
    return AlignPtr(overflow_.back().get(), align);
  }

  std::unique_ptr<unsigned char[]> block_;
  unsigned char* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t overflow_bytes_ = 0;
  std::vector<std::unique_ptr<unsigned char[]>> overflow_;
};

/// Per-thread arena for parallel per-task scratch (e.g. the engine's
/// stage-3 accumulators). Distinct OS threads get distinct arenas; a
/// thread-pool worker reuses its arena across tasks and batches. The
/// caller brackets use with ScopedArenaFrame so nested tasks on the
/// same thread compose.
inline Arena& ThreadArena() {
  thread_local Arena arena;
  return arena;
}

/// RAII frame over an arena: records the cursor at construction and
/// rolls back to it at destruction, so a task can carve scratch out of
/// its worker's arena without coordinating with other tasks that run
/// later on the same worker. (Bump-only arenas can't roll back
/// mid-block, so the frame simply Resets when it is the outermost
/// frame and the arena is its own high-water block.)
class ScopedArenaFrame {
 public:
  explicit ScopedArenaFrame(Arena& arena)
      : arena_(arena), outermost_(arena.used() == 0) {}
  ~ScopedArenaFrame() {
    if (outermost_) arena_.Reset();
  }
  ScopedArenaFrame(const ScopedArenaFrame&) = delete;
  ScopedArenaFrame& operator=(const ScopedArenaFrame&) = delete;

 private:
  Arena& arena_;
  bool outermost_;
};

}  // namespace updlrm
