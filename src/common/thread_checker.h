// Debug-gated single-writer thread checker.
//
// Some hot-path state machines (the serving batcher, the request
// slab) are deliberately lock-free because their contract is "driven
// by exactly one thread" — the simulated-time serve loop. That
// contract is invisible to both TSan (no second thread ever touches
// the state, so nothing races *until someone breaks it*) and the
// clang thread-safety analysis (there is no capability to hold). This
// checker makes it executable: the first checked call binds the
// calling thread, and every later call asserts it is the same thread.
// Release builds compile the check out entirely (the member is an
// empty struct), so the contract costs nothing in production.
#pragma once

#ifndef NDEBUG
#include <atomic>
#include <thread>

#include "common/status.h"
#endif

namespace updlrm {

#ifndef NDEBUG

class ThreadChecker {
 public:
  /// Asserts the caller is the binding thread (binding on first call).
  void Check() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first call: bound to this thread
    }
    UPDLRM_CHECK(expected == self &&
                 "single-writer contract violated: state driven from a "
                 "second thread (see common/thread_checker.h)");
  }

  /// Unbinds, allowing a handoff to another driving thread (legal only
  /// between runs, when no calls are in flight).
  void Detach() {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

#else

struct ThreadChecker {
  void Check() const {}
  void Detach() {}
};

#endif

}  // namespace updlrm
