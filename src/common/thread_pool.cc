#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace updlrm {

namespace {

std::atomic<unsigned> g_default_threads{0};
std::atomic<bool> g_default_created{false};

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = threads;
  queues_.resize(std::max(1u, threads - 1));
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // single-threaded pool: run inline
    return;
  }
  const unsigned q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                     static_cast<unsigned>(queues_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[q].push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::TryRunOneTask(unsigned home) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Own deque first (LIFO: newest task, warm caches) ...
    if (!queues_[home].empty()) {
      task = std::move(queues_[home].back());
      queues_[home].pop_back();
    } else {
      // ... then steal the oldest task from a sibling (FIFO).
      for (std::size_t off = 1; off < queues_.size() && !task; ++off) {
        auto& victim = queues_[(home + off) % queues_.size()];
        if (!victim.empty()) {
          task = std::move(victim.front());
          victim.pop_front();
        }
      }
    }
  }
  if (!task) return false;
  task();
  return true;
}

void ThreadPool::WorkerLoop(unsigned worker_index) {
  for (;;) {
    if (TryRunOneTask(worker_index)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, worker_index] {
      if (stopping_) return true;
      for (const auto& q : queues_) {
        if (!q.empty()) return true;
      }
      return false;
    });
    if (stopping_) return;
  }
}

struct ThreadPool::ParallelForState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> done{0};  // indices fully processed
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;
  std::mutex error_mu;
};

void ThreadPool::RunChunks(ParallelForState& state) {
  for (;;) {
    const std::size_t begin =
        state.next.fetch_add(state.grain, std::memory_order_relaxed);
    if (begin >= state.n) return;
    const std::size_t end = std::min(state.n, begin + state.grain);
    try {
      (*state.body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.error_mu);
      if (!state.error) state.error = std::current_exception();
    }
    const std::size_t done =
        state.done.fetch_add(end - begin, std::memory_order_acq_rel) +
        (end - begin);
    if (done >= state.n) {
      std::lock_guard<std::mutex> lock(state.done_mu);
      state.done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    unsigned max_workers) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  unsigned width = max_workers == 0 ? num_threads_
                                    : std::min(max_workers, num_threads_);
  const std::size_t chunks = (n + grain - 1) / grain;
  width = static_cast<unsigned>(
      std::min<std::size_t>(width, chunks));
  if (width <= 1 || workers_.empty()) {
    for (std::size_t begin = 0; begin < n; begin += grain) {
      body(begin, std::min(n, begin + grain));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->body = &body;
  // One helper per extra thread; busy workers simply never pick theirs
  // up and the caller (or a stealing sibling) drains the range instead.
  for (unsigned i = 0; i + 1 < width; ++i) {
    Submit([this, state] { RunChunks(*state); });
  }
  RunChunks(*state);
  if (state->done.load(std::memory_order_acquire) < n) {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) >= n;
    });
  }
  // `body` dangles once we return; helpers that wake late see
  // next >= n and never touch it.
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(g_default_threads.load(std::memory_order_acquire));
  g_default_created.store(true, std::memory_order_release);
  return pool;
}

unsigned ThreadPool::SetDefaultThreads(unsigned threads) {
  if (!g_default_created.load(std::memory_order_acquire)) {
    g_default_threads.store(threads, std::memory_order_release);
  }
  return Default().size();
}

void ParallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 unsigned num_threads, std::size_t grain) {
  if (num_threads == 1) {
    for (std::size_t begin = 0; begin < n; begin += std::max<std::size_t>(
                                              grain, 1)) {
      body(begin, std::min(n, begin + std::max<std::size_t>(grain, 1)));
    }
    return;
  }
  ThreadPool::Default().ParallelFor(n, grain, body, num_threads);
}

}  // namespace updlrm
