#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace updlrm {

namespace {

std::atomic<unsigned> g_default_threads{0};
std::atomic<bool> g_default_created{false};

bool EnvPinThreads() {
  const char* env = std::getenv("UPDLRM_PIN_THREADS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

// Pins the calling thread to one CPU (best effort; no-op off Linux or
// when the mask call fails — pinning is a performance hint, never a
// correctness requirement).
void PinCurrentThread(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

// Region descriptor, recycled across ParallelFor calls. The recycling
// protocol against stale helper tasks (a Submit()ed helper can run
// arbitrarily late, after its region finished and the state moved on):
//
//   helper:  participants++;
//            if (ticket != mine) { participants--; return; }   (stale)
//            run chunks; participants--;
//
//   reuse:   ticket++                       (invalidate stale helpers)
//            spin until participants == 0   (drain ones already past
//                                            the check; they see the
//                                            old exhausted cursor and
//                                            exit without running the
//                                            old — dangling — body)
//            reinit fields; submit helpers with the new ticket
//
// The ticket bump is sequenced before the spin and the reinit after
// it, so no helper can observe a half-initialized region: either it
// sees the new ticket and backs out, or it joined before the bump and
// the spin waits it out while the old cursor (next >= n) starves it.
struct ThreadPool::ParallelForState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  std::size_t grain = 1;
  FunctionRef<void(std::size_t, std::size_t)> body;
  std::atomic<std::size_t> done{0};  // indices fully processed
  std::atomic<std::uint64_t> ticket{0};
  std::atomic<unsigned> participants{0};
  Mutex done_mu;
  CondVar done_cv;
  Mutex error_mu;
  std::exception_ptr error GUARDED_BY(error_mu);
  ParallelForState* free_next = nullptr;
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = threads;
  queues_.resize(std::max(1u, threads - 1));
  workers_.reserve(threads - 1);
  const bool pin = EnvPinThreads();
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i, pin] {
      // Worker i takes CPU i+1, leaving CPU 0 to the caller thread.
      if (pin) PinCurrentThread(i + 1);
      WorkerLoop(i);
    });
  }
  if (pin && threads > 1) PinCurrentThread(0);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  // Workers are joined: no task can reference a state anymore.
  for (ParallelForState* s : all_states_) delete s;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // single-threaded pool: run inline
    return;
  }
  {
    MutexLock lock(mu_);
    const unsigned q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(queues_.size());
    queues_[q].push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::TryRunOneTask(unsigned home) {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    // Own deque first (LIFO: newest task, warm caches) ...
    if (!queues_[home].empty()) {
      task = std::move(queues_[home].back());
      queues_[home].pop_back();
    } else {
      // ... then steal the oldest task from a sibling (FIFO).
      for (std::size_t off = 1; off < queues_.size() && !task; ++off) {
        auto& victim = queues_[(home + off) % queues_.size()];
        if (!victim.empty()) {
          task = std::move(victim.front());
          victim.pop_front();
        }
      }
    }
  }
  if (!task) return false;
  task();
  return true;
}

bool ThreadPool::HaveQueuedTaskLocked() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned worker_index) {
  for (;;) {
    if (TryRunOneTask(worker_index)) continue;
    MutexLock lock(mu_);
    while (!stopping_ && !HaveQueuedTaskLocked()) cv_.Wait(mu_);
    if (stopping_) return;
  }
}

ThreadPool::ParallelForState* ThreadPool::AcquireState() {
  ParallelForState* head =
      free_states_.load(std::memory_order_acquire);
  while (head != nullptr) {
    if (free_states_.compare_exchange_weak(head, head->free_next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return head;
    }
  }
  // Freelist empty (first call, or deeply nested regions): mint a new
  // immortal state. Bounded by the maximum number of concurrently
  // active regions ever reached, not by call count.
  auto* state = new ParallelForState();
  {
    MutexLock lock(states_mu_);
    all_states_.push_back(state);
  }
  return state;
}

void ThreadPool::ReleaseState(ParallelForState* state) {
  ParallelForState* head = free_states_.load(std::memory_order_relaxed);
  do {
    state->free_next = head;
  } while (!free_states_.compare_exchange_weak(
      head, state, std::memory_order_acq_rel, std::memory_order_relaxed));
}

// UPDLRM_NOALLOC_BEGIN: ParallelFor steady state. Region descriptors
// are recycled (AcquireState's freelist; the mint-on-empty `new` lives
// outside this region by design), helper closures fit std::function's
// small-object buffer, and chunk dispatch touches only the shared
// atomics — a warm region allocates nothing.
void ThreadPool::RunChunks(ParallelForState& state) {
  for (;;) {
    const std::size_t begin =
        state.next.fetch_add(state.grain, std::memory_order_relaxed);
    if (begin >= state.n) return;
    const std::size_t end = std::min(state.n, begin + state.grain);
    try {
      state.body(begin, end);
    } catch (...) {
      MutexLock lock(state.error_mu);
      if (!state.error) state.error = std::current_exception();
    }
    const std::size_t done =
        state.done.fetch_add(end - begin, std::memory_order_acq_rel) +
        (end - begin);
    if (done >= state.n) {
      MutexLock lock(state.done_mu);
      state.done_cv.NotifyAll();
    }
  }
}

void ThreadPool::HelperRun(ParallelForState* state, std::uint64_t ticket) {
  state->participants.fetch_add(1, std::memory_order_acq_rel);
  if (state->ticket.load(std::memory_order_acquire) != ticket) {
    // Stale: the region completed and the state was (or is being)
    // recycled. Back out without touching anything else.
    state->participants.fetch_sub(1, std::memory_order_release);
    return;
  }
  RunChunks(*state);
  state->participants.fetch_sub(1, std::memory_order_release);
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    FunctionRef<void(std::size_t, std::size_t)> body,
    unsigned max_workers) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  unsigned width = max_workers == 0 ? num_threads_
                                    : std::min(max_workers, num_threads_);
  const std::size_t chunks = (n + grain - 1) / grain;
  width = static_cast<unsigned>(
      std::min<std::size_t>(width, chunks));
  if (width <= 1 || workers_.empty()) {
    for (std::size_t begin = 0; begin < n; begin += grain) {
      body(begin, std::min(n, begin + grain));
    }
    return;
  }

  ParallelForState* state = AcquireState();
  // Invalidate any stale helpers of the previous region first, then
  // wait out ones that already passed their ticket check (they find
  // the old cursor exhausted and exit), and only then reinitialize.
  const std::uint64_t ticket =
      state->ticket.fetch_add(1, std::memory_order_acq_rel) + 1;
  while (state->participants.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  state->next.store(0, std::memory_order_relaxed);
  state->n = n;
  state->grain = grain;
  state->body = body;
  state->done.store(0, std::memory_order_relaxed);
  {
    MutexLock lock(state->error_mu);
    state->error = nullptr;
  }

  // One helper per extra thread; busy workers simply never pick theirs
  // up and the caller (or a stealing sibling) drains the range instead.
  // The closure is two words — inside std::function's small-object
  // buffer, so Submit does not allocate.
  for (unsigned i = 0; i + 1 < width; ++i) {
    Submit([state, ticket] { HelperRun(state, ticket); });
  }
  RunChunks(*state);
  if (state->done.load(std::memory_order_acquire) < n) {
    MutexLock lock(state->done_mu);
    while (state->done.load(std::memory_order_acquire) < n) {
      state->done_cv.Wait(state->done_mu);
    }
  }
  // `body` dangles once we return; helpers that wake late see a stale
  // ticket (or an exhausted cursor) and never touch it.
  std::exception_ptr error;
  {
    MutexLock lock(state->error_mu);
    error = state->error;
  }
  ReleaseState(state);
  if (error) std::rethrow_exception(error);
}
// UPDLRM_NOALLOC_END

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(g_default_threads.load(std::memory_order_acquire));
  g_default_created.store(true, std::memory_order_release);
  return pool;
}

unsigned ThreadPool::SetDefaultThreads(unsigned threads) {
  if (!g_default_created.load(std::memory_order_acquire)) {
    g_default_threads.store(threads, std::memory_order_release);
  }
  return Default().size();
}

void ParallelFor(std::size_t n,
                 FunctionRef<void(std::size_t, std::size_t)> body,
                 unsigned num_threads, std::size_t grain) {
  if (num_threads == 1) {
    const std::size_t step = std::max<std::size_t>(grain, 1);
    for (std::size_t begin = 0; begin < n; begin += step) {
      body(begin, std::min(n, begin + step));
    }
    return;
  }
  ThreadPool::Default().ParallelFor(n, grain, body, num_threads);
}

}  // namespace updlrm
