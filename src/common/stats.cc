#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace updlrm {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::span<const double> values, double p) {
  UPDLRM_CHECK(!values.empty());
  UPDLRM_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double ImbalanceRatio(std::span<const double> loads) {
  if (loads.empty()) return 0.0;
  double sum = 0.0;
  double max = 0.0;
  for (double v : loads) {
    sum += v;
    max = std::max(max, v);
  }
  if (sum == 0.0) return 0.0;
  const double mean = sum / static_cast<double>(loads.size());
  return max / mean;
}

double MaxMinRatio(std::span<const double> loads) {
  if (loads.empty()) return 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  for (double v : loads) {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  if (max == 0.0) return 0.0;
  if (min == 0.0) return std::numeric_limits<double>::infinity();
  return max / min;
}

double CoefficientOfVariation(std::span<const double> loads) {
  OnlineStats s;
  for (double v : loads) s.Add(v);
  if (s.count() == 0 || s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

double GiniCoefficient(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cum_weighted += static_cast<double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total == 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

std::vector<double> ToDoubles(std::span<const std::uint64_t> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (auto v : values) out.push_back(static_cast<double>(v));
  return out;
}

}  // namespace updlrm
