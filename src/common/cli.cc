#include "common/cli.h"

#include <cstdlib>

namespace updlrm {

Result<CommandLine> CommandLine::Parse(int argc, const char* const* argv) {
  CommandLine cl;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      cl.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      cl.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag or absent, in
    // which case treat it as a boolean `--name`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      cl.flags_[body] = argv[++i];
    } else {
      cl.flags_[body] = "true";
    }
  }
  return cl;
}

bool CommandLine::Has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) != 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

std::int64_t CommandLine::GetInt(const std::string& name,
                                 std::int64_t default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name,
                              double default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CommandLine::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : flags_) {
    if (!queried_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace updlrm
