#include "common/status.h"

namespace updlrm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kCapacityExceeded:
      return "CAPACITY_EXCEEDED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out{StatusCodeName(code_)};
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "UPDLRM_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " -- ", msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace updlrm
