// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin shims over std::mutex and std::condition_variable that carry
// the clang thread-safety capability attributes
// (common/thread_annotations.h). The analysis cannot see through
// std::mutex — it needs the CAPABILITY / ACQUIRE / RELEASE markers on
// the lock type itself — so every mutex that guards GUARDED_BY state
// in this codebase is one of these. Zero overhead: each method is a
// single forwarded call.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace updlrm {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the direct replacement for std::lock_guard<std::mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Wait() requires
/// the mutex held (checked) and reacquires it before returning, so
/// guarded predicates are written as explicit while-loops around it —
/// which is also what keeps the predicate visible to the analysis
/// (lambda predicates are opaque to it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Adopts the caller-held lock for the wait, then hands it back; the
  // capability never actually changes hands, which the analysis cannot
  // model through std::unique_lock — hence the annotation escape.
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace updlrm
