#include "updlrm/dedup.h"

#include <algorithm>
#include <vector>

#include "common/radix_sort.h"
#include "common/simd.h"
#include "common/units.h"

namespace updlrm::core {

namespace {
// Below this size the comparison sort's lower constant beats the radix
// sort's fixed per-pass scans (the crossover sits around 1-4k keys on
// current hardware; any choice is bit-exact, both orders are the full
// sorted order of a value multiset).
constexpr std::size_t kRadixThreshold = 2048;
}  // namespace

DedupPlan PlanDedup(std::span<DedupKey> keys) {
  DedupPlan plan;
  plan.refs = keys.size();
  if (keys.empty()) return plan;

  if (keys.size() < kRadixThreshold) {
    std::sort(keys.begin(), keys.end());
  } else {
    // Reused per worker thread: zero allocations per batch once warm.
    thread_local std::vector<std::uint64_t> scratch;
    RadixSortU64(keys, scratch);
  }

  std::uint64_t counts[3] = {0, 0, 0};
  simd::UniqueStreamCounts(keys.data(), keys.size(), counts);
  plan.unique_rows = counts[0];
  plan.unique_wram = counts[1];
  plan.unique_cache = counts[2];

  const std::uint64_t raw_bytes = plan.refs * 4;
  const std::uint64_t dedup_bytes =
      AlignUp(plan.UniqueTotal() * 4 + plan.refs * 2, 8) + 8;
  plan.applied = plan.UniqueTotal() < plan.refs &&
                 plan.UniqueTotal() <= 0xffff && dedup_bytes <= raw_bytes;
  plan.index_list_bytes = plan.applied ? dedup_bytes : raw_bytes;
  return plan;
}

}  // namespace updlrm::core
