#include "updlrm/dedup.h"

#include <algorithm>

#include "common/units.h"

namespace updlrm::core {

DedupPlan PlanDedup(std::span<DedupKey> keys) {
  DedupPlan plan;
  plan.refs = keys.size();
  if (keys.empty()) return plan;

  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0 && keys[i] == keys[i - 1]) continue;
    switch (DedupKeyStream(keys[i])) {
      case DedupStream::kRow:
        ++plan.unique_rows;
        break;
      case DedupStream::kWram:
        ++plan.unique_wram;
        break;
      case DedupStream::kCache:
        ++plan.unique_cache;
        break;
    }
  }

  const std::uint64_t raw_bytes = plan.refs * 4;
  const std::uint64_t dedup_bytes =
      AlignUp(plan.UniqueTotal() * 4 + plan.refs * 2, 8) + 8;
  plan.applied = plan.UniqueTotal() < plan.refs &&
                 plan.UniqueTotal() <= 0xffff && dedup_bytes <= raw_bytes;
  plan.index_list_bytes = plan.applied ? dedup_bytes : raw_bytes;
  return plan;
}

}  // namespace updlrm::core
