// Batch-level index deduplication planner.
//
// Real batches are dominated by repeated hot rows *across* samples (the
// trace enforces uniqueness only within a sample), so the per-(table,
// DPU-bin) request buffer the engine routes in stage 1 usually names
// the same row many times. The planner collapses each bin's buffer into
// a unique-index list plus a per-reference 16-bit gather map: the DPU
// reads each unique row once (MRAM or WRAM tier) and replays the gather
// map to accumulate every original reference into its sample slot.
// Integer accumulation is exactly commutative/associative, so the
// pooled outputs are bit-identical to the raw replay — dedup is a pure
// traffic/time optimization.
//
// Wire format per deduplicated bin:
//
//   [ u32 unique_count | u32 ref_count |        (8-byte header)
//     u32 unique_index[unique_count]   |
//     u16 gather_ref[ref_count] ]               (padded to 8 bytes)
//
// versus the raw format's 4 bytes per reference. The planner applies
// dedup to a bin only when the deduplicated wire payload is no larger
// than the raw one — so stage 1 never regresses — which also implies
// strictly fewer MRAM row reads in stage 2 whenever it fires. Gather
// refs are 16-bit, so a bin with more than 65535 unique indices is
// never deduplicated (unreachable at paper-scale batch sizes).
//
// Determinism: the plan is a pure function of the bin's multiset of
// reference keys; the engine builds the key list in routing order
// (serial per group) and plans per (group, bin) task with results
// written to disjoint slots, so the outcome is thread-count invariant.
#pragma once

#include <cstdint>
#include <span>

namespace updlrm::core {

/// Which tier a routed reference reads from. Tags the key's top bits so
/// equal values in different tiers never collapse together.
enum class DedupStream : std::uint64_t {
  kRow = 0,    // EMT / replica row slice (MRAM)
  kWram = 1,   // pinned WRAM hot-row tier
  kCache = 2,  // cached subset partial sum (MRAM cache region)
};

/// Stream-tagged reference key. Two references are duplicates iff their
/// keys are equal (same tier, same row / replica / (list, mask) slot).
using DedupKey = std::uint64_t;

inline DedupKey MakeDedupKey(DedupStream stream, std::uint64_t value) {
  return (static_cast<std::uint64_t>(stream) << 62) | value;
}

inline DedupStream DedupKeyStream(DedupKey key) {
  return static_cast<DedupStream>(key >> 62);
}

/// Outcome of planning one (table, DPU-bin) request buffer.
struct DedupPlan {
  /// True when the bin is shipped deduplicated (byte-win rule met).
  bool applied = false;
  std::uint64_t refs = 0;          // original references in the buffer
  std::uint64_t unique_rows = 0;   // distinct kRow keys
  std::uint64_t unique_wram = 0;   // distinct kWram keys
  std::uint64_t unique_cache = 0;  // distinct kCache keys
  /// Wire bytes of the chosen index-list encoding (raw or dedup;
  /// excludes the per-sample offset arrays the engine appends).
  std::uint64_t index_list_bytes = 0;

  std::uint64_t UniqueTotal() const {
    return unique_rows + unique_wram + unique_cache;
  }
  /// Row reads (any tier) the dedup removed; 0 when not applied.
  std::uint64_t SavedReads() const {
    return applied ? refs - UniqueTotal() : 0;
  }
};

/// Plans one bin's buffer. Sorts `keys` in place (the engine rebuilds
/// them every batch; routing order is not needed afterwards). An empty
/// span yields an empty, not-applied plan.
DedupPlan PlanDedup(std::span<DedupKey> keys);

}  // namespace updlrm::core
