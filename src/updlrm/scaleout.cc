#include "updlrm/scaleout.h"

#include <algorithm>
#include <string>
#include <utility>

#include "check/scaleout_audit.h"
#include "common/fixed_point.h"
#include "common/simd.h"
#include "common/units.h"
#include "pim/reduction.h"
#include "trace/profiler.h"

namespace updlrm::core {

namespace {

std::uint32_t RanksPerShard(const pim::DpuSystemConfig& shard_system) {
  return static_cast<std::uint32_t>(
      CeilDiv(shard_system.num_dpus, shard_system.dpus_per_rank));
}

}  // namespace

Status ShardedEngineConfig::Validate() const {
  UPDLRM_RETURN_IF_ERROR(tiering.Validate());
  UPDLRM_RETURN_IF_ERROR(shard_system.Validate());
  UPDLRM_RETURN_IF_ERROR(fleet_topology.Validate());
  const std::uint32_t ranks = RanksPerShard(shard_system);
  const std::uint32_t rph = fleet_topology.ranks_per_host;
  if (rph > 0 && rph % ranks != 0 && ranks % rph != 0) {
    return Status::InvalidArgument(
        "shards must align to host boundaries: ranks_per_host and the "
        "per-shard rank count must divide one another");
  }
  if (fleet_topology.host_offset != 0) {
    return Status::InvalidArgument(
        "fleet_topology.host_offset is derived per shard; leave it 0");
  }
  return Status::Ok();
}

ShardedEngine::ShardedEngine(const dlrm::DlrmModel* model,
                             dlrm::DlrmConfig config,
                             const trace::Trace& trace,
                             ShardedEngineConfig fleet,
                             EngineOptions options)
    : model_(model),
      config_(std::move(config)),
      trace_(trace),
      fleet_(std::move(fleet)),
      options_(std::move(options)),
      cpu_(options_.cpu) {}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const dlrm::DlrmModel* model, const dlrm::DlrmConfig& config,
    const trace::Trace& trace, ShardedEngineConfig fleet,
    EngineOptions options) {
  UPDLRM_RETURN_IF_ERROR(config.Validate());
  UPDLRM_RETURN_IF_ERROR(fleet.Validate());
  UPDLRM_RETURN_IF_ERROR(trace.Validate());
  if (trace.num_tables() != config.num_tables) {
    return Status::InvalidArgument("trace/table-count mismatch");
  }
  auto engine = std::unique_ptr<ShardedEngine>(new ShardedEngine(
      model, config, trace, std::move(fleet), std::move(options)));
  UPDLRM_RETURN_IF_ERROR(engine->Setup());
  return engine;
}

Status ShardedEngine::BuildShardInputs() {
  const std::uint32_t shards = fleet_.tiering.num_shards;
  const std::uint32_t tables = config_.num_tables;
  const std::uint32_t dim = config_.embedding_dim;
  const std::size_t samples = trace_.num_samples();

  sub_configs_.assign(shards, config_);
  for (std::uint32_t s = 0; s < shards; ++s) {
    sub_configs_[s].table_rows.assign(tables, 1);
    // Extracted shard tables never share a backing store — every shard
    // slice of every table is distinct row content.
    sub_configs_[s].share_table_content = false;
    for (std::uint32_t t = 0; t < tables; ++t) {
      sub_configs_[s].table_rows[t] =
          std::max<std::uint64_t>(1, plan_.tables[t].shard_rows[s]);
    }
  }

  // Sub-traces: each sample keeps only the shard's rows, remapped to
  // dense local ids. Locals ascend with global row order per owner, so
  // the remap is strictly monotone and AppendSample's sorted-unique
  // contract is preserved.
  sub_traces_.resize(shards);
  dram_traces_.assign(tables, trace::TableTrace());
  std::vector<std::uint32_t> remapped;
  for (std::uint32_t s = 0; s < shards; ++s) {
    sub_traces_[s].items_per_table.assign(
        sub_configs_[s].table_rows.begin(),
        sub_configs_[s].table_rows.end());
    sub_traces_[s].tables.resize(tables);
  }
  for (std::uint32_t t = 0; t < tables; ++t) {
    const partition::TableTierPlan& tiers = plan_.tables[t];
    for (std::size_t i = 0; i < samples; ++i) {
      const auto idx = trace_.tables[t].Sample(i);
      for (std::uint32_t s = 0; s < shards; ++s) {
        remapped.clear();
        for (const std::uint32_t r : idx) {
          if (tiers.owner[r] == s) remapped.push_back(tiers.local[r]);
        }
        sub_traces_[s].tables[t].AppendSample(remapped);
      }
      remapped.clear();
      for (const std::uint32_t r : idx) {
        if (tiers.owner[r] == partition::kHostDramShard) {
          remapped.push_back(r);  // global ids: served by the reference
        }
      }
      dram_traces_[t].AppendSample(remapped);
    }
    dram_working_set_bytes_ += tiers.dram_rows * dim * 4ULL;
  }

  // Sub-models: extract each shard's owned rows (ascending global id ==
  // ascending local id) into a dense table with identical contents.
  if (model_ != nullptr) {
    sub_models_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      std::vector<std::shared_ptr<const dlrm::EmbeddingTable>> sub_tables;
      sub_tables.reserve(tables);
      for (std::uint32_t t = 0; t < tables; ++t) {
        const partition::TableTierPlan& tiers = plan_.tables[t];
        const dlrm::EmbeddingTable& ref = model_->table(t);
        const std::uint64_t rows = sub_configs_[s].table_rows[t];
        std::vector<float> data;
        data.reserve(rows * dim);
        for (std::uint64_t r = 0; r < tiers.owner.size(); ++r) {
          if (tiers.owner[r] != s) continue;
          const auto row = ref.Row(r);
          data.insert(data.end(), row.begin(), row.end());
        }
        if (data.empty()) data.assign(dim, 0.0f);  // 1-row placeholder
        auto table = dlrm::EmbeddingTable::FromData(rows, dim,
                                                    std::move(data));
        if (!table.ok()) return table.status();
        sub_tables.push_back(std::make_shared<const dlrm::EmbeddingTable>(
            std::move(table).value()));
      }
      auto sub_model = dlrm::DlrmModel::CreateWithTables(
          sub_configs_[s], std::move(sub_tables));
      if (!sub_model.ok()) return sub_model.status();
      sub_models_.push_back(std::move(sub_model).value());
    }
  }
  return Status::Ok();
}

Status ShardedEngine::Setup() {
  const std::uint32_t shards = fleet_.tiering.num_shards;
  const std::uint32_t tables = config_.num_tables;

  // Tiering plan from the access profiles (shared ones when provided —
  // they describe the unsharded trace, which is exactly what the
  // tiering planner consumes).
  std::vector<trace::TableProfile> local_profiles;
  std::span<const trace::TableProfile> profiles;
  if (options_.preprofiled != nullptr &&
      options_.preprofiled->size() == tables) {
    profiles = *options_.preprofiled;
  } else {
    local_profiles.reserve(tables);
    for (std::uint32_t t = 0; t < tables; ++t) {
      local_profiles.push_back(trace::ProfileTable(
          trace_.tables[t], trace_.ItemsInTable(t)));
    }
    profiles = local_profiles;
  }
  auto plan = partition::BuildTierShardingPlan(profiles, fleet_.tiering);
  if (!plan.ok()) return plan.status();
  plan_ = std::move(plan).value();

  if (options_.check_mode) {
    for (std::uint32_t t = 0; t < tables; ++t) {
      check::AuditShardCoverage(t, plan_.tables[t], shards, &report_);
      check::AuditTierCapacity(t, plan_.tables[t], fleet_.tiering,
                               &report_);
    }
  }

  UPDLRM_RETURN_IF_ERROR(BuildShardInputs());

  // Per-shard systems and engines. Shard s owns fleet ranks
  // [s * R, (s + 1) * R); its transfer model prices cross-host ingress
  // itself via the host offset of its first rank.
  const std::uint32_t ranks = RanksPerShard(fleet_.shard_system);
  const std::uint32_t rph = fleet_.fleet_topology.ranks_per_host;
  systems_.reserve(shards);
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    pim::DpuSystemConfig sc = fleet_.shard_system;
    sc.topology = fleet_.fleet_topology;
    sc.topology.host_offset =
        rph == 0 ? 0 : (static_cast<std::uint64_t>(s) * ranks) / rph;
    auto system = pim::DpuSystem::Create(sc);
    if (!system.ok()) return system.status();
    systems_.push_back(std::move(system).value());

    EngineOptions sub = options_;
    sub.emit_fixed_pooled = true;  // shards return int64 accumulators
    sub.preprofiled = nullptr;     // profiles describe the full trace
    sub.premined_cache = nullptr;
    if (fleet_.tiering.wram_rows > 0) {
      sub.wram_cache_rows = fleet_.tiering.wram_rows;
    }
    auto engine = UpDlrmEngine::Create(
        model_ != nullptr ? &sub_models_[s] : nullptr, sub_configs_[s],
        sub_traces_[s], systems_.back().get(), std::move(sub));
    if (!engine.ok()) return engine.status();
    shards_.push_back(std::move(engine).value());
  }
  return Status::Ok();
}

Result<BatchResult> ShardedEngine::RunSamples(
    std::span<const std::size_t> samples, const dlrm::DenseInputs* dense) {
  if (samples.empty()) {
    return Status::InvalidArgument("empty sample batch");
  }
  const std::size_t batch = samples.size();
  const std::uint32_t tables = config_.num_tables;
  const std::uint32_t dim = config_.embedding_dim;
  const std::uint32_t shards = num_shards();
  const bool fn = functional();
  const std::size_t pooled_size =
      batch * static_cast<std::size_t>(tables) * dim;

  BatchResult out;
  shard_partial_bytes_.assign(shards, 0);
  if (fn) merged_acc_.assign(pooled_size, 0);

  // Fan-out: every shard runs the batch against its slice. Shards
  // execute concurrently on disjoint rank groups, so the merged stage
  // times are per-stage maxima; the int64 shard accumulators merge in
  // fixed shard order (exactly associative, so the order is cosmetic).
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto r = shards_[s]->RunSamples(samples, nullptr);
    if (!r.ok()) return r.status();
    out.stages.cpu_to_dpu =
        std::max(out.stages.cpu_to_dpu, r->stages.cpu_to_dpu);
    out.stages.dpu_lookup =
        std::max(out.stages.dpu_lookup, r->stages.dpu_lookup);
    out.stages.dpu_to_cpu =
        std::max(out.stages.dpu_to_cpu, r->stages.dpu_to_cpu);
    out.stages.cpu_aggregate =
        std::max(out.stages.cpu_aggregate, r->stages.cpu_aggregate);
    out.bottom_mlp = std::max(out.bottom_mlp, r->bottom_mlp);
    out.interaction_top = std::max(out.interaction_top, r->interaction_top);
    out.max_index_bytes = std::max(out.max_index_bytes, r->max_index_bytes);
    out.max_output_bytes =
        std::max(out.max_output_bytes, r->max_output_bytes);
    shard_partial_bytes_[s] = r->partial_bytes;
    out.partial_bytes += r->partial_bytes;
    if (s == 0) out.dpu_trace = r->dpu_trace;
    if (fn) {
      UPDLRM_CHECK(r->pooled_fixed.size() == pooled_size);
      simd::AddI64ToI64(r->pooled_fixed.data(), merged_acc_.data(),
                        pooled_size);
    }
  }

  // Host-DRAM tier: cold rows gathered from the reference tables on the
  // front-end host, overlapping the shard-side reduce.
  std::uint64_t dram_lookups = 0;
  for (std::uint32_t t = 0; t < tables; ++t) {
    const trace::TableTrace& cold = dram_traces_[t];
    for (std::size_t i = 0; i < batch; ++i) {
      const auto idx = cold.Sample(samples[i]);
      dram_lookups += idx.size();
      if (!fn || idx.empty()) continue;
      dram_bag_.assign(dim, 0);
      model_->table(t).BagSumFixed(idx, dram_bag_);
      simd::AddI64ToI64(
          dram_bag_.data(),
          merged_acc_.data() + (i * tables + t) * static_cast<std::size_t>(dim),
          dim);
    }
  }

  // Cross-shard merge price: PlanReduction over per-shard partial
  // bytes, with each shard acting as one "rank" of a shard-granular
  // topology (hosts rescaled to shard units). The shard-internal
  // aggregate is already inside the per-stage max; the fleet charge
  // adds the merge tree on top, with the DRAM gather overlapping the
  // concurrent shard reduces.
  pim::FleetTopologyConfig shard_topo_config = fleet_.fleet_topology;
  const std::uint32_t ranks = RanksPerShard(fleet_.shard_system);
  const std::uint32_t rph = fleet_.fleet_topology.ranks_per_host;
  shard_topo_config.ranks_per_host =
      rph == 0 ? 0 : std::max<std::uint32_t>(1, rph / ranks);
  const pim::FleetTopology shard_topo(shard_topo_config, shards);
  const std::uint64_t pooled_bytes = pooled_size * sizeof(std::int64_t);
  out.reduction =
      pim::PlanReduction(shard_topo, shard_partial_bytes_, pooled_bytes,
                         cpu_.params().stream_bytes_per_sec);
  if (options_.check_mode) {
    check::AuditReductionPlan(out.reduction, shards, &report_);
  }
  Nanos tree_ns = 0.0;
  for (std::uint32_t l = 0; l < out.reduction.levels; ++l) {
    tree_ns +=
        shard_topo.HopTime(pim::MergeLevelHop(shard_topo, l), pooled_bytes);
  }
  const Nanos dram_gather =
      dram_lookups == 0
          ? 0.0
          : cpu_.GatherTime(dram_lookups, dim * 4, dram_working_set_bytes_);
  out.stages.cpu_aggregate =
      std::max(out.stages.cpu_aggregate, dram_gather) + tree_ns;

  out.total = std::max(out.bottom_mlp, out.stages.EmbeddingTotal()) +
              out.interaction_top;

  if (fn) {
    out.pooled.resize(pooled_size);
    for (std::size_t i = 0; i < pooled_size; ++i) {
      out.pooled[i] = FromFixedSum(merged_acc_[i]);
    }
    if (options_.emit_fixed_pooled) {
      out.pooled_fixed.assign(merged_acc_.begin(), merged_acc_.end());
    }
    if (dense != nullptr) {
      out.ctr.reserve(batch);
      const std::size_t width = static_cast<std::size_t>(tables) * dim;
      for (std::size_t i = 0; i < batch; ++i) {
        out.ctr.push_back(model_->ForwardSample(
            dense->Sample(samples[i]),
            std::span<const float>(out.pooled.data() + i * width, width)));
      }
    }
  }
  return out;
}

Result<BatchResult> ShardedEngine::RunBatch(trace::BatchRange range,
                                            const dlrm::DenseInputs* dense) {
  if (range.size() == 0 || range.end > trace_.num_samples()) {
    return Status::InvalidArgument("invalid batch range");
  }
  range_samples_.resize(range.size());
  for (std::size_t i = 0; i < range.size(); ++i) {
    range_samples_[i] = range.begin + i;
  }
  return RunSamples(range_samples_, dense);
}

Result<InferenceReport> ShardedEngine::RunAll(
    const dlrm::DenseInputs* dense) {
  InferenceReport report;
  for (const trace::BatchRange& range :
       trace::MakeBatches(trace_.num_samples(), options_.batch_size)) {
    auto batch = RunBatch(range, dense);
    if (!batch.ok()) return batch.status();
    report.Accumulate(batch.value());
    report.num_samples += range.size();
  }
  return report;
}

std::uint64_t ShardedEngine::check_violations() const {
  std::uint64_t total = report_.total();
  for (const auto& shard : shards_) total += shard->check_violations();
  return total;
}

}  // namespace updlrm::core
