// EMT placement: materializing a PartitionPlan onto a DPU group.
//
// Each table owns a contiguous group of DPUs (Fig. 4: "DPUs used to
// store the same EMT collectively form a group"). Every DPU's MRAM is
// laid out as
//
//   [ EMT region | cache region | stage-1 index buffer | stage-3 output ]
//
// DPU (bin b, column shard c) of the group stores, in its EMT region,
// the Nc-wide column-c slices of bin b's uncached rows (one slot per
// row, in ascending row order), and in its cache region the subset
// partial sums of the cache lists Algorithm 1 assigned to bin b.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "dlrm/embedding.h"
#include "partition/plan.h"
#include "pim/system.h"

namespace updlrm::core {

/// Sentinel slot for rows that live in the cache region instead.
inline constexpr std::uint32_t kCachedRowSlot = 0xffffffffU;

struct MramLayout {
  std::uint64_t emt_base = 0;
  std::uint64_t emt_bytes = 0;
  std::uint64_t replica_base = 0;  // hot-row replicas (every bin)
  std::uint64_t replica_bytes = 0;
  std::uint64_t cache_base = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t index_base = 0;
  std::uint64_t index_bytes = 0;
  std::uint64_t output_base = 0;
  std::uint64_t output_bytes = 0;
};

struct TableGroup {
  std::uint32_t table_index = 0;
  std::uint32_t first_dpu = 0;  // global id of the group's first DPU
  partition::PartitionPlan plan;
  MramLayout layout;

  /// row -> slot within its bin's EMT region; kCachedRowSlot for rows
  /// living in the cache or replica regions instead. Only populated
  /// when `build_row_slots` (functional mode).
  std::vector<std::uint32_t> row_slot;
  /// row -> slot within the (per-bin identical) replica region, or
  /// kCachedRowSlot. Empty when the plan has no replication.
  std::vector<std::uint32_t> replica_slot;
  /// list -> byte offset of its slot block within the cache region.
  std::vector<std::uint64_t> list_offset;
  /// Uncached rows per bin (slot counts).
  std::vector<std::uint64_t> emt_rows_per_bin;
  /// Cache bytes used per bin.
  std::vector<std::uint64_t> cache_bytes_per_bin;
  /// row -> 1 if the row is pinned in its bin's WRAM hot-row tier
  /// (EngineOptions::wram_cache_rows). Empty when the tier is off.
  std::vector<std::uint8_t> wram_cached;
  /// Rows pinned per bin (size row_shards; empty when the tier is off).
  std::vector<std::uint32_t> wram_rows_per_bin;

  std::uint32_t GlobalDpu(std::uint32_t bin, std::uint32_t col_shard) const {
    return first_dpu + plan.geom.DpuLocal(bin, col_shard);
  }
};

/// Computes the layout and (optionally) the row->slot map, validating
/// that all regions fit the MRAM bank.
Result<TableGroup> BuildTableGroup(std::uint32_t table_index,
                                   std::uint32_t first_dpu,
                                   partition::PartitionPlan plan,
                                   const pim::DpuSystemConfig& system_config,
                                   std::uint64_t reserved_io_bytes,
                                   bool build_row_slots);

/// Pins each bin's top-`rows_per_dpu` hottest EMT-resident rows (never
/// cache-list members or replicas — those live in other tiers) into the
/// bin's WRAM hot-row cache. Selection is deterministic: frequency
/// descending, row id ascending; zero-frequency rows are never pinned.
/// Populates `wram_cached` / `wram_rows_per_bin`; a no-op when
/// `rows_per_dpu` is 0.
void BuildWramCache(TableGroup& group, std::span<const std::uint64_t> freq,
                    std::uint32_t rows_per_dpu);

/// Writes quantized EMT slices and cache subset sums into the group's
/// MRAM banks (functional mode only).
Status PlaceTable(const dlrm::EmbeddingTable& table, const TableGroup& group,
                  pim::DpuSystem& system);

}  // namespace updlrm::core
