// UpDLRM-G: the DPU-GPU heterogeneous system the paper names as future
// work (§6).
//
// Embeddings stay on the UPMEM DPUs (the UpDLRM engine's three-stage
// pipeline); the dense computation moves to a GPU. The raw dense inputs
// ship to the GPU up front, so the GPU's bottom MLP overlaps the DPU
// embedding pipeline; the pooled embeddings then cross PCIe and the
// interaction + top MLP finish on the GPU.
//
// Whether this beats CPU-side MLPs is a batch-size question: at the
// paper's batch 64 the MLP FLOPs are trivial and the PCIe/launch/sync
// overheads dominate (the same §4.2 effect that makes DLRM-Hybrid lose
// to DLRM-CPU); with large batches or wide MLP stacks the GPU side
// wins. bench/ext_dpu_gpu sweeps the crossover.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "host/gpu_model.h"
#include "updlrm/engine.h"

namespace updlrm::core {

struct HeteroOptions {
  EngineOptions engine;  // DPU-side configuration
  host::GpuModelParams gpu;
  /// Per-batch host/device synchronization cost. Lower than the plain
  /// hybrid's: the DPU pipeline gives the driver a long window to
  /// schedule, and there is no CPU-side gather to serialize behind.
  Nanos sync_overhead_ns = 150'000.0;
  /// Overlap the GPU bottom MLP with the DPU embedding pipeline.
  bool overlap_bottom_mlp = true;
};

struct HeteroBatchReport {
  StageBreakdown stages;   // DPU embedding pipeline (stages 1-3 + agg)
  Nanos gpu_bottom = 0.0;  // bottom MLP on device
  Nanos gpu_top = 0.0;     // interaction + top MLP on device
  Nanos pcie = 0.0;        // dense up, pooled up, CTR back
  Nanos overhead = 0.0;    // sync
  Nanos total = 0.0;
};

struct HeteroReport {
  StageBreakdown stages;
  Nanos gpu_bottom = 0.0;
  Nanos gpu_top = 0.0;
  Nanos pcie = 0.0;
  Nanos overhead = 0.0;
  Nanos total = 0.0;
  std::size_t num_batches = 0;
  std::size_t num_samples = 0;

  Nanos AvgBatchTotal() const {
    return num_batches == 0 ? 0.0 : total / static_cast<double>(num_batches);
  }
};

/// Timing-only system model (the GPU side has no functional simulator);
/// pass a timing-only DpuSystem.
class UpDlrmHetero {
 public:
  static Result<std::unique_ptr<UpDlrmHetero>> Create(
      const dlrm::DlrmConfig& config, const trace::Trace& trace,
      pim::DpuSystem* system, HeteroOptions options);

  Result<HeteroBatchReport> RunBatch(trace::BatchRange range);
  Result<HeteroReport> RunAll();

  const UpDlrmEngine& engine() const { return *engine_; }

 private:
  UpDlrmHetero(dlrm::DlrmConfig config, HeteroOptions options,
               std::unique_ptr<UpDlrmEngine> engine)
      : config_(std::move(config)),
        options_(std::move(options)),
        gpu_(options_.gpu),
        engine_(std::move(engine)) {}

  dlrm::DlrmConfig config_;
  HeteroOptions options_;
  host::GpuTimingModel gpu_;
  std::unique_ptr<UpDlrmEngine> engine_;
};

}  // namespace updlrm::core
