#include "updlrm/pipelining.h"

#include <algorithm>

namespace updlrm::core {

PipelineEstimate EstimatePipelinedEmbedding(
    std::span<const StageBreakdown> batches) {
  PipelineEstimate estimate;
  if (batches.empty()) return estimate;  // nothing executed, zero bound
  for (const StageBreakdown& b : batches) {
    estimate.serial_ns += b.EmbeddingTotal();
    estimate.host_work_ns += b.cpu_to_dpu + b.dpu_to_cpu + b.cpu_aggregate;
    estimate.dpu_work_ns += b.dpu_lookup;
  }
  // Fill: the first batch's indices must arrive before any DPU work;
  // drain: the last batch's results leave after all DPU work.
  const Nanos fill = batches.front().cpu_to_dpu;
  const Nanos drain =
      batches.back().dpu_to_cpu + batches.back().cpu_aggregate;
  estimate.pipelined_ns =
      std::max(estimate.host_work_ns, estimate.dpu_work_ns) + fill + drain;
  // Overlap can never make the work slower than serial execution.
  estimate.pipelined_ns = std::min(estimate.pipelined_ns,
                                   estimate.serial_ns);
  return estimate;
}

}  // namespace updlrm::core
