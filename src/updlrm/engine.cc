#include "updlrm/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "check/scaleout_audit.h"
#include "common/arena.h"
#include "common/fixed_point.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "partition/replication.h"
#include "telemetry/tracer.h"
#include "trace/profiler.h"
#include "updlrm/dedup.h"
#include "updlrm/timeline.h"

namespace updlrm::core {

void UpDlrmEngine::BinRoute::Clear() {
  emt_slots.clear();
  cache_slots.clear();
  emt_offsets.clear();
  cache_offsets.clear();
  emt_count = 0;
  cache_count = 0;
  wram_count = 0;
  dedup_keys.clear();
}

UpDlrmEngine::UpDlrmEngine(const dlrm::DlrmModel* model,
                           dlrm::DlrmConfig config,
                           const trace::Trace& trace,
                           pim::DpuSystem* system, EngineOptions options)
    : model_(model),
      config_(std::move(config)),
      trace_(trace),
      system_(system),
      options_(std::move(options)),
      cpu_(options_.cpu) {}

UpDlrmEngine::~UpDlrmEngine() {
  // The checker's observers point into checker_-owned state; unhook
  // them from the (longer-lived) system's banks before dying.
  if (checker_ != nullptr) checker_->Detach(*system_);
}

Result<std::unique_ptr<UpDlrmEngine>> UpDlrmEngine::Create(
    const dlrm::DlrmModel* model, const dlrm::DlrmConfig& config,
    const trace::Trace& trace, pim::DpuSystem* system,
    EngineOptions options) {
  UPDLRM_CHECK(system != nullptr);
  std::unique_ptr<UpDlrmEngine> engine(
      new UpDlrmEngine(model, config, trace, system, std::move(options)));
  UPDLRM_RETURN_IF_ERROR(engine->Setup());
  return engine;
}

Status UpDlrmEngine::Setup() {
  telemetry::TraceSpan span("engine.Setup", "engine");
  UPDLRM_RETURN_IF_ERROR(config_.Validate());
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options_.cache_capacity_fraction < 0.0 ||
      options_.cache_capacity_fraction > 1.0) {
    return Status::InvalidArgument(
        "cache_capacity_fraction must be in [0, 1]");
  }
  if (trace_.num_tables() != config_.num_tables) {
    return Status::InvalidArgument("trace table count mismatches model");
  }
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    if (trace_.ItemsInTable(t) != config_.RowsInTable(t)) {
      return Status::InvalidArgument("trace item count mismatches table " +
                                     std::to_string(t) + "'s rows");
    }
  }
  if (model_ != nullptr && !system_->functional()) {
    return Status::FailedPrecondition(
        "functional engine requires a functional DpuSystem");
  }
  if (options_.check_mode) {
    checker_ = std::make_unique<check::Checker>(system_->config(),
                                                options_.check_tolerance);
    // Attach before placement so PlaceTable's writes seed the
    // written-byte shadow state the uninit-read rule checks against.
    checker_->Attach(*system_);
  }

  std::vector<dlrm::TableShape> shapes;
  std::vector<double> traffic;
  double avg_red = 0.0;
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    shapes.push_back(config_.table_shape(t));
    traffic.push_back(
        static_cast<double>(trace_.tables[t].num_lookups()));
    avg_red += trace_.tables[t].MeasuredAvgReduction();
  }
  avg_red = std::max(1.0, avg_red / trace_.num_tables());

  const bool paper_setup =
      !config_.heterogeneous() &&
      options_.allocation == partition::DpuAllocationPolicy::kEqual;

  auto allocate_at =
      [&](std::uint32_t nc) -> Result<std::vector<std::uint32_t>> {
    if (config_.embedding_dim % nc != 0) {
      return Status::InvalidArgument("nc must divide the embedding dim");
    }
    const std::uint32_t col_shards = config_.embedding_dim / nc;
    if (paper_setup) {
      if (system_->num_dpus() % config_.num_tables != 0) {
        return Status::InvalidArgument(
            "num_dpus must be divisible by num_tables (one group per "
            "EMT)");
      }
      return std::vector<std::uint32_t>(
          config_.num_tables, system_->num_dpus() / config_.num_tables);
    }
    return partition::AllocateDpus(shapes, system_->num_dpus(),
                                   col_shards, options_.allocation,
                                   traffic);
  };

  if (options_.nc != 0) {
    nc_ = options_.nc;
    auto alloc = allocate_at(nc_);
    if (!alloc.ok()) return alloc.status();
    dpus_per_table_ = std::move(alloc).value();
  } else if (paper_setup) {
    auto tile = partition::OptimizeTileShape(
        config_.table_shape(), system_->num_dpus() / config_.num_tables,
        options_.batch_size, avg_red, *system_);
    if (!tile.ok()) return tile.status();
    tile_result_ = std::move(tile).value();
    nc_ = tile_result_->best.nc;
    auto alloc = allocate_at(nc_);
    if (!alloc.ok()) return alloc.status();
    dpus_per_table_ = std::move(alloc).value();
  } else {
    // Heterogeneous / non-equal allocation: search Nc candidates with
    // the allocation each implies.
    Nanos best_cost = 0.0;
    for (std::uint32_t nc : partition::DefaultNcCandidates()) {
      auto alloc = allocate_at(nc);
      if (!alloc.ok()) continue;
      bool feasible = true;
      const std::uint32_t col_shards = config_.embedding_dim / nc;
      for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
        if (!partition::GroupGeometry::Make(shapes[t],
                                            (*alloc)[t], nc)
                 .ok() ||
            !system_->kernel_cost()
                 .ValidateWramFit(nc * 4)
                 .ok()) {
          feasible = false;
          break;
        }
        (void)col_shards;
      }
      if (!feasible) continue;
      const Nanos cost = EstimateBatchCost(nc, *alloc);
      if (nc_ == 0 || cost < best_cost) {
        nc_ = nc;
        best_cost = cost;
        dpus_per_table_ = std::move(alloc).value();
      }
    }
    if (nc_ == 0) {
      return Status::InvalidArgument(
          "no feasible Nc for this model/system combination");
    }
  }

  first_dpu_.assign(config_.num_tables, 0);
  std::uint32_t next_dpu = 0;
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    first_dpu_[t] = next_dpu;
    next_dpu += dpus_per_table_[t];
  }
  if (next_dpu > system_->num_dpus()) {
    return Status::CapacityExceeded("allocation exceeds the DPU count");
  }
  if (options_.preprofiled != nullptr) {
    if (options_.preprofiled->size() != config_.num_tables) {
      return Status::InvalidArgument(
          "preprofiled must hold one TableProfile per table");
    }
    for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
      const trace::TableProfile& p = (*options_.preprofiled)[t];
      if (p.freq.size() != config_.RowsInTable(t) ||
          p.by_freq.size() != p.freq.size()) {
        return Status::InvalidArgument(
            "preprofiled table " + std::to_string(t) +
            " does not match the table shape");
      }
    }
  }

  // Per-table preparation (profiling, partitioning, mining, MRAM
  // placement) is independent across tables: each table's group owns a
  // disjoint DPU range, so placement writes never alias. Errors are
  // reported in table order regardless of completion order.
  struct BuiltGroup {
    Status status;
    TableGroup group;
  };
  std::vector<BuiltGroup> built(config_.num_tables);
  ParallelFor(
      config_.num_tables,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto t = static_cast<std::uint32_t>(i);
          // Shared profile when provided (validated above); otherwise
          // profile this table's trace once here — the partitioner,
          // replication, WRAM tier and cache miner all reuse it.
          const trace::TableProfile* profile =
              options_.preprofiled != nullptr ? &(*options_.preprofiled)[t]
                                              : nullptr;
          trace::TableProfile own_profile;
          if (profile == nullptr) {
            own_profile = trace::ProfileTable(trace_.tables[t],
                                              config_.RowsInTable(t));
            profile = &own_profile;
          }
          auto plan = BuildPlan(t, *profile);
          if (!plan.ok()) {
            built[i].status = plan.status();
            continue;
          }
          auto group = BuildTableGroup(
              t, first_dpu_[t], std::move(plan).value(), system_->config(),
              options_.reserved_io_bytes,
              /*build_row_slots=*/model_ != nullptr);
          if (!group.ok()) {
            built[i].status = group.status();
            continue;
          }
          built[i].group = std::move(group).value();
          if (options_.wram_cache_rows > 0) {
            BuildWramCache(
                built[i].group, profile->freq,
                EffectiveWramRows(built[i].group.plan.geom.row_bytes()));
          }
          if (model_ != nullptr) {
            built[i].status =
                PlaceTable(model_->table(t), built[i].group, *system_);
          }
        }
      },
      options_.num_threads);

  groups_.clear();
  groups_.reserve(built.size());
  for (BuiltGroup& b : built) {
    UPDLRM_RETURN_IF_ERROR(b.status);
    groups_.push_back(std::move(b.group));
  }
  if (checker_ != nullptr) {
    for (const TableGroup& group : groups_) AuditGroup(group);
  }

  scratch_.resize(groups_.size());
  bin_task_start_.assign(groups_.size() + 1, 0);
  fn_task_start_.assign(groups_.size() + 1, 0);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& geom = groups_[g].plan.geom;
    scratch_[g].routes.assign(geom.row_shards, BinRoute{});
    scratch_[g].list_mask.assign(groups_[g].plan.cache.lists.size(), 0);
    bin_task_start_[g + 1] = bin_task_start_[g] + geom.row_shards;
    fn_task_start_[g + 1] =
        fn_task_start_[g] +
        static_cast<std::size_t>(geom.row_shards) * geom.col_shards;
  }

  // Table boundaries for the coalesced transfer planner; DPUs past the
  // last group carry zero bytes and never pad or launch.
  transfer_group_start_.assign(first_dpu_.begin(), first_dpu_.end());
  transfer_group_start_.push_back(system_->num_dpus());
  return Status::Ok();
}

void UpDlrmEngine::AuditGroup(const TableGroup& group) {
  const auto& geom = group.plan.geom;
  const std::uint32_t row_bytes = geom.row_bytes();
  // Audit against the regions placement actually carved out, not the
  // partitioner's own capacity arithmetic.
  check::PlanAuditLimits limits;
  limits.emt_bytes = group.layout.emt_bytes;
  limits.cache_bytes = group.layout.cache_bytes;
  limits.claims_uniform_model = tile_result_.has_value();
  check::AuditPlan(group.plan, limits, &checker_->report());

  const std::uint32_t max_rows =
      system_->kernel_cost().MaxWramCacheRows(row_bytes);
  for (std::uint32_t b = 0;
       b < static_cast<std::uint32_t>(group.wram_rows_per_bin.size());
       ++b) {
    check::AuditWramCapacity(b, group.wram_rows_per_bin[b], max_rows,
                             &checker_->report());
  }

  // Register every DPU's region map for the shadow-state validator.
  // Only the used prefix of the EMT/cache regions is registered (what
  // this bin's rows and lists occupy); the bases come from the shared
  // per-group layout, so any overlap here is a placement bug.
  check::AccessValidator& access = checker_->access();
  for (std::uint32_t b = 0; b < geom.row_shards; ++b) {
    const std::uint64_t emt_used = group.emt_rows_per_bin[b] * row_bytes;
    const std::uint64_t cache_used =
        group.cache_bytes_per_bin.empty() ? 0
                                          : group.cache_bytes_per_bin[b];
    for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
      const std::uint32_t dpu = group.GlobalDpu(b, c);
      access.RegisterRegion(dpu, check::RegionKind::kEmt,
                            group.layout.emt_base, emt_used);
      access.RegisterRegion(dpu, check::RegionKind::kReplica,
                            group.layout.replica_base,
                            group.layout.replica_bytes);
      access.RegisterRegion(dpu, check::RegionKind::kCache,
                            group.layout.cache_base, cache_used);
      access.RegisterRegion(dpu, check::RegionKind::kIndex,
                            group.layout.index_base,
                            group.layout.index_bytes);
      access.RegisterRegion(dpu, check::RegionKind::kOutput,
                            group.layout.output_base,
                            group.layout.output_bytes);
    }
  }
}

std::uint32_t UpDlrmEngine::EffectiveWramRows(
    std::uint32_t row_bytes) const {
  return std::min(options_.wram_cache_rows,
                  system_->kernel_cost().MaxWramCacheRows(row_bytes));
}

Nanos UpDlrmEngine::EstimateBatchCost(
    std::uint32_t nc, std::span<const std::uint32_t> alloc) const {
  const std::uint32_t col_shards = config_.embedding_dim / nc;
  const std::uint32_t row_bytes = nc * 4;
  Cycles max_kernel = 0;
  std::uint64_t max_push = 0;
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    const std::uint32_t row_shards = alloc[t] / col_shards;
    const double avg_red =
        std::max(1.0, trace_.tables[t].MeasuredAvgReduction());
    const auto lookups_per_dpu = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(options_.batch_size) * avg_red /
                  static_cast<double>(row_shards)));
    const pim::EmbeddingKernelWork work{
        .num_lookups = lookups_per_dpu,
        .num_cache_reads = 0,
        .num_samples = options_.batch_size,
        .row_bytes = row_bytes,
    };
    max_kernel =
        std::max(max_kernel, system_->kernel_cost().KernelCycles(work));
    max_push = std::max(
        max_push, lookups_per_dpu * 4 + (options_.batch_size + 1) * 4);
  }
  const std::vector<std::uint64_t> push(system_->num_dpus(), max_push);
  const std::vector<std::uint64_t> pull(
      system_->num_dpus(),
      static_cast<std::uint64_t>(options_.batch_size) * row_bytes);
  return system_->transfer().PushTime(push, true) +
         system_->transfer().KernelLaunchOverhead() +
         CyclesToNanos(max_kernel, system_->config().dpu.clock_hz) +
         system_->transfer().PullTime(pull, true);
}

Result<partition::PartitionPlan> UpDlrmEngine::BuildPlan(
    std::uint32_t table, const trace::TableProfile& profile) const {
  const std::span<const std::uint64_t> freq(profile.freq);
  const std::span<const std::uint32_t> by_freq(profile.by_freq);
  auto geom_or = partition::GroupGeometry::Make(
      config_.table_shape(table), dpus_per_table_[table], nc_);
  if (!geom_or.ok()) return geom_or.status();
  const partition::GroupGeometry& geom = geom_or.value();
  UPDLRM_RETURN_IF_ERROR(system_->kernel_cost().ValidateWramFit(
      geom.row_bytes(),
      static_cast<std::uint64_t>(EffectiveWramRows(geom.row_bytes())) *
          geom.row_bytes()));

  const std::uint64_t mram = system_->config().dpu.mram_bytes;
  if (options_.reserved_io_bytes >= mram) {
    return Status::InvalidArgument("reserved_io_bytes exceeds MRAM");
  }
  const std::uint64_t usable = mram - options_.reserved_io_bytes;

  partition::PartitionPlan plan;
  partition::BinCapacity capacity{usable, 0};
  switch (options_.method) {
    case partition::Method::kUniform: {
      auto built = partition::UniformPartition(geom);
      if (!built.ok()) return built;
      plan = std::move(built).value();
      break;
    }
    case partition::Method::kNonUniform: {
      partition::NonUniformOptions nu;
      nu.max_rows_per_bin = usable / geom.row_bytes();
      nu.order = by_freq;
      auto built = partition::NonUniformPartition(geom, freq, nu);
      if (!built.ok()) return built;
      plan = std::move(built).value();
      break;
    }
    case partition::Method::kCacheAware: {
      // Borrow the shared lists when premined (no per-engine deep copy
      // of every cache list); mine locally otherwise.
      cache::CacheRes own_mined;
      const cache::CacheRes* mined_res = nullptr;
      if (options_.premined_cache != nullptr) {
        if (options_.premined_cache->size() != config_.num_tables) {
          return Status::InvalidArgument(
              "premined_cache must hold one CacheRes per table");
        }
        mined_res = &(*options_.premined_cache)[table];
      } else {
        cache::GraceMiner miner(options_.grace);
        auto mined = miner.Mine(trace_.tables[table],
                                config_.RowsInTable(table), &profile);
        if (!mined.ok()) return mined.status();
        own_mined = std::move(mined).value();
        mined_res = &own_mined;
      }
      const cache::CacheRes trimmed = mined_res->TrimToBudgetFraction(
          geom.row_bytes(), options_.cache_capacity_fraction);

      const std::uint64_t total_cache =
          trimmed.TotalStorageBytes(geom.row_bytes());
      std::uint64_t cache_budget = AlignUp(
          static_cast<std::uint64_t>(
              std::ceil(options_.cache_headroom *
                        static_cast<double>(total_cache) /
                        static_cast<double>(geom.row_shards))),
          8);
      cache_budget = std::min(cache_budget, usable);

      partition::CacheAwareOptions ca;
      ca.capacity =
          partition::BinCapacity{usable - cache_budget, cache_budget};
      ca.order = by_freq;
      auto result = partition::CacheAwarePartition(geom, freq, trimmed, ca);
      if (!result.ok()) return result.status();
      plan = std::move(result).value().plan;
      capacity = ca.capacity;
      break;
    }
  }
  if (options_.replicate_hot_rows > 0) {
    // Replication adds up to k extra row slices to every bin; a k that
    // fits one workload can overflow another's EMT regions. Rather than
    // abort Setup with CAPACITY_EXCEEDED, shed replicas down to the
    // largest feasible count (replica bytes interact with per-bin EMT
    // row placement, so bisect instead of solving in closed form).
    // ApplyReplication is idempotent — re-applying with a smaller k
    // replaces, not accumulates, the marks.
    auto replicate = [&](std::uint32_t k) -> Result<std::size_t> {
      auto marked = partition::ApplyReplication(plan, freq, k, by_freq);
      if (!marked.ok()) return marked;
      UPDLRM_RETURN_IF_ERROR(plan.Validate(capacity));
      return marked;
    };
    auto requested = replicate(options_.replicate_hot_rows);
    if (!requested.ok()) {
      // Separate "replicas overflow the bins" from a structurally
      // invalid plan: with zero replicas the plan must validate.
      auto zero = replicate(0);
      if (!zero.ok()) return zero.status();
      std::uint32_t lo = 0;                            // feasible
      std::uint32_t hi = options_.replicate_hot_rows;  // infeasible
      while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (replicate(mid).ok()) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      auto clamped = replicate(lo);
      if (!clamped.ok()) return clamped.status();
      std::fprintf(stderr,
                   "[updlrm] warning: table %u: replicate_hot_rows=%u "
                   "exceeds bin capacity; clamped to %zu replicas\n",
                   table, options_.replicate_hot_rows, clamped.value());
    }
  } else {
    UPDLRM_RETURN_IF_ERROR(plan.Validate(capacity));
  }
  return plan;
}

void UpDlrmEngine::RouteGroup(std::size_t g,
                              std::span<const std::size_t> samples) {
  const bool fn = functional();
  const TableGroup& group = groups_[g];
  const auto& geom = group.plan.geom;
  const std::uint32_t row_bytes = geom.row_bytes();
  const auto& ttrace = trace_.tables[group.table_index];
  const bool has_cache = group.plan.has_cache();
  GroupScratch& scratch = scratch_[g];
  auto& routes = scratch.routes;
  for (auto& rt : routes) {
    rt.Clear();
    if (fn) {
      rt.emt_offsets.push_back(0);
      rt.cache_offsets.push_back(0);
    }
  }

  // Routing: decide, per index, which bin serves it and whether a
  // cached subset sum covers it (one read per touched list, §3.3).
  // Slot references are absolute (offset / row_bytes), so EMT, replica
  // and cache reads share one addressing scheme.
  const bool has_replicas = !group.replica_slot.empty();
  const bool has_wram = !group.wram_cached.empty();
  const bool dedup = options_.dedup;
  const std::uint64_t replica_ref_base =
      group.layout.replica_base / row_bytes;
  const std::uint64_t cache_ref_base = group.layout.cache_base / row_bytes;
  for (const std::size_t s : samples) {
    scratch.touched_lists.clear();
    for (std::uint32_t idx : ttrace.Sample(s)) {
      if (has_replicas && group.replica_slot[idx] != kCachedRowSlot) {
        // Adaptive routing: replicated rows exist in every bin; send
        // the lookup to the currently least-loaded one.
        std::uint32_t best = 0;
        std::uint64_t best_load = ~0ULL;
        for (std::uint32_t b = 0; b < geom.row_shards; ++b) {
          const std::uint64_t load = routes[b].emt_count +
                                     routes[b].wram_count +
                                     routes[b].cache_count;
          if (load < best_load) {
            best_load = load;
            best = b;
          }
        }
        BinRoute& rt = routes[best];
        ++rt.emt_count;
        if (dedup) {
          rt.dedup_keys.push_back(MakeDedupKey(DedupStream::kRow, idx));
        }
        if (fn) {
          rt.emt_slots.push_back(static_cast<std::uint32_t>(
              replica_ref_base + group.replica_slot[idx]));
        }
        continue;
      }
      const std::int32_t l = has_cache ? group.plan.item_list[idx] : -1;
      if (l >= 0) {
        if (scratch.list_mask[l] == 0) {
          scratch.touched_lists.push_back(static_cast<std::uint32_t>(l));
        }
        const auto& items = group.plan.cache.lists[l].items;
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (items[i] == idx) {
            scratch.list_mask[l] |= 1U << i;
            break;
          }
        }
      } else {
        const std::uint32_t bin = group.plan.row_bin[idx];
        BinRoute& rt = routes[bin];
        // WRAM-pinned rows are still read from MRAM slots by the
        // functional path (WRAM holds a copy); only the timing
        // accounting splits off, so the lever cannot change outputs.
        if (has_wram && group.wram_cached[idx]) {
          ++rt.wram_count;
          if (dedup) {
            rt.dedup_keys.push_back(MakeDedupKey(DedupStream::kWram, idx));
          }
        } else {
          ++rt.emt_count;
          if (dedup) {
            rt.dedup_keys.push_back(MakeDedupKey(DedupStream::kRow, idx));
          }
        }
        if (fn) rt.emt_slots.push_back(group.row_slot[idx]);
      }
    }
    for (std::uint32_t l : scratch.touched_lists) {
      const std::uint32_t mask = scratch.list_mask[l];
      scratch.list_mask[l] = 0;
      const auto bin = static_cast<std::uint32_t>(group.plan.list_bin[l]);
      BinRoute& rt = routes[bin];
      ++rt.cache_count;
      if (dedup) {
        rt.dedup_keys.push_back(MakeDedupKey(
            DedupStream::kCache,
            (static_cast<std::uint64_t>(l) << 32) | mask));
      }
      if (fn) {
        rt.cache_slots.push_back(static_cast<std::uint32_t>(
            cache_ref_base + group.list_offset[l] / row_bytes + mask - 1));
      }
    }
    if (fn) {
      for (auto& rt : routes) {
        rt.emt_offsets.push_back(
            static_cast<std::uint32_t>(rt.emt_slots.size()));
        rt.cache_offsets.push_back(
            static_cast<std::uint32_t>(rt.cache_slots.size()));
      }
    }
  }
}

Result<BatchResult> UpDlrmEngine::RunBatch(trace::BatchRange range,
                                           const dlrm::DenseInputs* dense) {
  if (range.size() == 0 || range.end > trace_.num_samples()) {
    return Status::InvalidArgument("invalid batch range");
  }
  range_samples_.resize(range.size());
  for (std::size_t i = 0; i < range.size(); ++i) {
    range_samples_[i] = range.begin + i;
  }
  return RunSamples(range_samples_, dense);
}

Result<BatchResult> UpDlrmEngine::RunSamples(
    std::span<const std::size_t> samples, const dlrm::DenseInputs* dense) {
  if (samples.empty()) {
    return Status::InvalidArgument("empty sample batch");
  }
  for (const std::size_t s : samples) {
    if (s >= trace_.num_samples()) {
      return Status::InvalidArgument("sample id " + std::to_string(s) +
                                     " outside the trace");
    }
  }
  const std::size_t batch = samples.size();
  const bool fn = functional();
  const std::uint32_t dim = config_.embedding_dim;
  const std::uint32_t tables = config_.num_tables;
  const unsigned threads = options_.num_threads;
  // Tracing is observation only: `capture` gates writes into
  // trace-owned side buffers (and the host-clock spans below); every
  // simulated quantity is computed identically either way.
  const bool capture = telemetry::TraceEnabled();
  telemetry::TraceSpan batch_span("engine.RunSamples", "engine");

  BatchResult out;
  // UPDLRM_NOALLOC_BEGIN: steady-state batch path. Everything from here
  // through the stage-latency computation reuses member scratch or the
  // worker arenas; tests/serve/alloc_test.cc enforces the dynamic side
  // of the same contract.
  // assign() reuses capacity: after the first batch these are pure
  // fills, part of the zero-allocations-per-batch contract.
  push_bytes_.assign(system_->num_dpus(), 0);
  pull_bytes_.assign(system_->num_dpus(), 0);
  std::span<std::uint64_t> push_bytes(push_bytes_);
  std::span<std::uint64_t> pull_bytes(pull_bytes_);

  // --- Stage 1: routing, one task per group (disjoint scratch). ---
  {
    telemetry::TraceSpan span("engine.route", "engine");
    ParallelFor(
        groups_.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t g = begin; g < end; ++g) RouteGroup(g, samples);
        },
        threads);
  }

  // --- Stage 2: per-(group, bin) kernel cost and per-DPU statistics.
  // Each task owns bin (g, bin) and writes only that bin's DPU column
  // (disjoint DPU ids); its kernel cycles land in bin_cycles[task].
  // The reduction below folds them in fixed task order, so both the
  // simulated latency (max across DPUs, as on real hardware) and any
  // error report are thread-count invariant. ---
  const std::size_t num_bin_tasks = bin_task_start_.back();
  bin_cycles_.assign(num_bin_tasks, 0);
  bin_status_.assign(num_bin_tasks, Status());
  std::span<Cycles> bin_cycles(bin_cycles_);
  std::span<Status> bin_status(bin_status_);
  // Per-(group, bin) launch records for the telemetry timeline; tasks
  // write disjoint entries, so capture is deterministic and race-free.
  std::shared_ptr<BatchDpuTrace> dpu_trace;
  if (capture) {
    // UPDLRM_LINT_ALLOW(noalloc-region): observation-only; `capture` is
    // off on the measured steady-state path.
    dpu_trace = std::make_shared<BatchDpuTrace>();
    dpu_trace->slices.resize(num_bin_tasks);
  }
  if (capture) telemetry::Tracer::Get().Begin("engine.stage2", "engine");
  ParallelFor(
      num_bin_tasks,
      [&](std::size_t begin, std::size_t end) {
        std::size_t g = 0;
        for (std::size_t task = begin; task < end; ++task) {
          while (task >= bin_task_start_[g + 1]) ++g;
          const TableGroup& group = groups_[g];
          const auto& geom = group.plan.geom;
          const std::uint32_t row_bytes = geom.row_bytes();
          const auto bin =
              static_cast<std::uint32_t>(task - bin_task_start_[g]);
          BinRoute& rt = scratch_[g].routes[bin];

          // Dedup plan for this bin's request buffer: ship unique
          // indices + a 16-bit gather map when that shrinks the wire
          // payload AND the kernel cycles (see updlrm/dedup.h). The
          // second check matters when the WRAM tier already serves the
          // duplicated rows: replaying r gather refs can cost more
          // issue slots than the r - u WRAM hits it replaces, even
          // though the wire payload shrinks. Without dedup the raw
          // reference counts flow through unchanged.
          pim::EmbeddingKernelWork work{
              .num_lookups = rt.emt_count,
              .num_cache_reads = rt.cache_count,
              .num_samples = batch,
              .row_bytes = row_bytes,
              .num_wram_hits = rt.wram_count,
              .num_gather_refs = 0,
          };
          std::uint64_t list_bytes =
              (rt.emt_count + rt.wram_count + rt.cache_count) * 4;
          std::uint64_t saved_reads = 0;
          Cycles cycles = system_->kernel_cost().KernelCycles(work);
          if (options_.dedup) {
            const DedupPlan plan = PlanDedup(rt.dedup_keys);
            if (plan.applied) {
              pim::EmbeddingKernelWork deduped = work;
              deduped.num_lookups = plan.unique_rows;
              deduped.num_cache_reads = plan.unique_cache;
              deduped.num_wram_hits = plan.unique_wram;
              deduped.num_gather_refs = plan.refs;
              const Cycles dedup_cycles =
                  system_->kernel_cost().KernelCycles(deduped);
              if (dedup_cycles <= cycles) {
                work = deduped;
                cycles = dedup_cycles;
                list_bytes = plan.index_list_bytes;
                saved_reads = plan.SavedReads();
              }
            }
          }
          bin_cycles[task] = cycles;
          if (dpu_trace != nullptr) {
            DpuTraceSlice& slice = dpu_trace->slices[task];
            slice.table = group.table_index;
            slice.bin = bin;
            slice.first_dpu = group.GlobalDpu(bin, 0);
            slice.col_shards = geom.col_shards;
            slice.cycles = cycles;
            slice.work = work;
          }
          if (checker_ != nullptr) {
            // Cross-audit the priced launch against the executed
            // simulator, check the dedup wire format, and report this
            // launch's per-item DMA shapes to the shadow validator.
            checker_->model_audit().AuditKernel(work, cycles);
            check::AuditDedupBounds(work.num_gather_refs > 0,
                                    work.num_lookups +
                                        work.num_cache_reads +
                                        work.num_wram_hits,
                                    work.num_gather_refs,
                                    &checker_->report());
            const std::uint32_t chunk_bytes =
                system_->config().kernel_cost.index_chunk * 4;
            check::AccessValidator& access = checker_->access();
            for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
              const std::uint32_t id = group.GlobalDpu(bin, c);
              if (list_bytes > 0) {
                access.OnDma(id, group.layout.index_base, chunk_bytes,
                             /*is_write=*/false);
              }
              if (work.num_lookups > 0) {
                access.OnDma(id, group.layout.emt_base, row_bytes,
                             /*is_write=*/false);
              }
              if (work.num_cache_reads > 0) {
                access.OnDma(id, group.layout.cache_base, row_bytes,
                             /*is_write=*/false);
              }
              access.OnDma(id, group.layout.output_base, row_bytes,
                           /*is_write=*/true);
            }
          }

          const std::uint64_t idx_bytes =
              list_bytes + 2 * (batch + 1) * 4;
          if (idx_bytes > group.layout.index_bytes) {
            bin_status[task] = Status::CapacityExceeded(
                "stage-1 index buffer overflow (" +
                // UPDLRM_LINT_ALLOW(noalloc-region): rejection path.
                std::to_string(idx_bytes) +
                " bytes); increase EngineOptions::reserved_io_bytes");
            continue;
          }
          const std::uint64_t out_bytes = batch * row_bytes;
          UPDLRM_CHECK(out_bytes <= group.layout.output_bytes);

          for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
            const std::uint32_t id = group.GlobalDpu(bin, c);
            push_bytes[id] = idx_bytes;
            pull_bytes[id] = out_bytes;
            pim::DpuStats& st = system_->dpu(id).stats();
            st.kernel_cycles += cycles;
            st.lookups += work.num_lookups;
            st.cache_reads += work.num_cache_reads;
            st.samples += batch;
            st.wram_hits += work.num_wram_hits;
            st.gather_refs += work.num_gather_refs;
            st.dedup_saved_reads += saved_reads;
            st.index_bytes_pushed += idx_bytes;
            st.mram_bytes_read +=
                (work.num_lookups + work.num_cache_reads) * row_bytes +
                idx_bytes;
          }
        }
      },
      threads);
  if (capture) telemetry::Tracer::Get().End();
  Cycles max_kernel = 0;
  for (std::size_t task = 0; task < num_bin_tasks; ++task) {
    UPDLRM_RETURN_IF_ERROR(bin_status[task]);
    max_kernel = std::max(max_kernel, bin_cycles[task]);
  }
  if (dpu_trace != nullptr) {
    for (std::size_t task = 0; task < num_bin_tasks; ++task) {
      if (bin_cycles[task] > dpu_trace->max_cycles) {
        dpu_trace->max_cycles = bin_cycles[task];
        dpu_trace->straggler = task;
      }
    }
    // Per-rank stage-1/3 byte rollups for the rank-level trace track
    // (observation only — the transfer model re-derives its own per-rank
    // sums when pricing).
    const std::uint32_t dpr = system_->config().dpus_per_rank;
    dpu_trace->rank_push_bytes.assign(system_->num_ranks(), 0);
    dpu_trace->rank_pull_bytes.assign(system_->num_ranks(), 0);
    for (std::size_t i = 0; i < push_bytes.size(); ++i) {
      dpu_trace->rank_push_bytes[i / dpr] += push_bytes[i];
      dpu_trace->rank_pull_bytes[i / dpr] += pull_bytes[i];
    }
    out.dpu_trace = dpu_trace;
  }

  // --- Functional kernel execution: real MRAM reads, bit-exact int32
  // partial sums per (bin, column shard, sample). One task per
  // (group, bin, col) DPU; each writes its wire values (the int32
  // partial sums that cross the DPU->CPU bus) into its own slice of
  // `wires`, and the host-side aggregation below adds the slices in
  // fixed (group, bin, col) order — the determinism contract's merge
  // step. int64 addition of int32 terms is exact, so pooled embeddings
  // are bit-identical to the serial order at any thread count. ---
  std::span<std::int64_t> pooled_acc;
  if (fn) {
    telemetry::TraceSpan span("engine.functional", "engine");
    pooled_acc_.assign(batch * static_cast<std::size_t>(tables) * dim, 0);
    pooled_acc = pooled_acc_;
    const std::size_t num_fn_tasks = fn_task_start_.back();
    const std::size_t wires_per_task = batch * nc_;
    wires_.assign(num_fn_tasks * wires_per_task, 0);
    fn_status_.assign(num_fn_tasks, Status());
    std::span<std::int32_t> wires(wires_);
    std::span<Status> fn_status(fn_status_);
    ParallelFor(
        num_fn_tasks,
        [&](std::size_t begin, std::size_t end) {
          // Per-task accumulators come from this worker's arena: the
          // frame rolls the arena back when the task chain on this
          // worker drains, so repeated batches re-use the same block.
          Arena& arena = ThreadArena();
          ScopedArenaFrame frame(arena);
          std::int64_t* acc = arena.Alloc<std::int64_t>(nc_);
          std::int32_t* buf = arena.Alloc<std::int32_t>(nc_);
          std::size_t g = 0;
          for (std::size_t task = begin; task < end; ++task) {
            while (task >= fn_task_start_[g + 1]) ++g;
            const TableGroup& group = groups_[g];
            const auto& geom = group.plan.geom;
            const std::uint32_t row_bytes = geom.row_bytes();
            auto buf_bytes = std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(buf), row_bytes);
            const std::size_t local = task - fn_task_start_[g];
            const auto bin =
                static_cast<std::uint32_t>(local / geom.col_shards);
            const auto c =
                static_cast<std::uint32_t>(local % geom.col_shards);
            const BinRoute& rt = scratch_[g].routes[bin];
            const pim::Mram& mram =
                system_->dpu(group.GlobalDpu(bin, c)).mram();
            std::int32_t* task_wires =
                wires.data() + task * wires_per_task;
            Status status;
            for (std::size_t s = 0; s < batch && status.ok(); ++s) {
              std::fill(acc, acc + nc_, std::int64_t{0});
              // Slot references are absolute (EMT at base 0, replicas
              // and cache offsets folded in during routing).
              for (std::uint32_t k = rt.emt_offsets[s];
                   k < rt.emt_offsets[s + 1] && status.ok(); ++k) {
                status = mram.Read(
                    static_cast<std::uint64_t>(rt.emt_slots[k]) *
                        row_bytes,
                    buf_bytes);
                simd::AddI32ToI64(buf, acc, geom.nc);
              }
              for (std::uint32_t k = rt.cache_offsets[s];
                   k < rt.cache_offsets[s + 1] && status.ok(); ++k) {
                status = mram.Read(
                    static_cast<std::uint64_t>(rt.cache_slots[k]) *
                        row_bytes,
                    buf_bytes);
                simd::AddI32ToI64(buf, acc, geom.nc);
              }
              if (!status.ok()) break;
              // Partial sums cross the DPU->CPU wire as int32 (§3.1
              // assumes 32-bit values); the Q15.16 range contract
              // keeps them in range.
              for (std::uint32_t lane = 0; lane < geom.nc; ++lane) {
                const auto wire = static_cast<std::int32_t>(acc[lane]);
                if (wire != acc[lane]) {
                  status = Status::OutOfRange(
                      "int32 partial-sum overflow; embedding values "
                      "exceed the fixed-point range contract");
                  break;
                }
                task_wires[s * nc_ + lane] = wire;
              }
            }
            fn_status[task] = std::move(status);
          }
        },
        threads);

    for (std::size_t task = 0; task < num_fn_tasks; ++task) {
      UPDLRM_RETURN_IF_ERROR(fn_status[task]);
    }
    if (options_.hierarchical_reduction && system_->num_ranks() > 1) {
      // Hierarchical merge, the shape the reduction planner prices:
      // every task folds into its *rank's* int64 accumulator (fixed
      // task order within each rank), then ranks pairwise-merge in a
      // fixed binary tree. int64 lanes are exactly associative, so the
      // result is bit-identical to the flat fixed-order merge below.
      const std::uint32_t dpr = system_->config().dpus_per_rank;
      const std::uint32_t ranks = system_->num_ranks();
      const std::size_t pooled_size = pooled_acc.size();
      rank_pooled_.assign(
          static_cast<std::size_t>(ranks) * pooled_size, 0);
      std::size_t g = 0;
      for (std::size_t task = 0; task < num_fn_tasks; ++task) {
        while (task >= fn_task_start_[g + 1]) ++g;
        const TableGroup& group = groups_[g];
        const auto& geom = group.plan.geom;
        const std::size_t local = task - fn_task_start_[g];
        const auto bin =
            static_cast<std::uint32_t>(local / geom.col_shards);
        const auto c =
            static_cast<std::uint32_t>(local % geom.col_shards);
        const std::uint32_t rank = group.GlobalDpu(bin, c) / dpr;
        std::int64_t* base =
            rank_pooled_.data() +
            static_cast<std::size_t>(rank) * pooled_size;
        const std::int32_t* task_wires =
            wires.data() + task * wires_per_task;
        for (std::size_t s = 0; s < batch; ++s) {
          std::int64_t* dst = base +
                              (s * tables + group.table_index) * dim +
                              static_cast<std::size_t>(c) * geom.nc;
          simd::AddI32ToI64(task_wires + s * nc_, dst, geom.nc);
        }
      }
      // Merge tree: rank r absorbs rank r + step, doubling step — the
      // same ceil(log2(ranks)) levels PlanReduction prices.
      for (std::uint32_t step = 1; step < ranks; step <<= 1) {
        for (std::uint32_t r = 0; r + step < ranks; r += 2 * step) {
          simd::AddI64ToI64(
              rank_pooled_.data() +
                  static_cast<std::size_t>(r + step) * pooled_size,
              rank_pooled_.data() +
                  static_cast<std::size_t>(r) * pooled_size,
              pooled_size);
        }
      }
      simd::AddI64ToI64(rank_pooled_.data(), pooled_acc.data(),
                        pooled_size);
    } else {
      // Fixed-order merge: task (g, bin, col) ascending, samples
      // ascending within each task.
      std::size_t g = 0;
      for (std::size_t task = 0; task < num_fn_tasks; ++task) {
        while (task >= fn_task_start_[g + 1]) ++g;
        const TableGroup& group = groups_[g];
        const auto& geom = group.plan.geom;
        const auto c = static_cast<std::uint32_t>(
            (task - fn_task_start_[g]) % geom.col_shards);
        const std::int32_t* task_wires =
            wires.data() + task * wires_per_task;
        for (std::size_t s = 0; s < batch; ++s) {
          std::int64_t* dst = pooled_acc.data() +
                              (s * tables + group.table_index) * dim +
                              static_cast<std::size_t>(c) * geom.nc;
          // Integer lanes: the vectorized add is exactly the
          // fixed-order merge (int64 addition is commutative per lane).
          simd::AddI32ToI64(task_wires + s * nc_, dst, geom.nc);
        }
      }
    }
  }

  // --- Stage latencies. ---
  const double clock = system_->config().dpu.clock_hz;
  if (options_.coalesce_transfers) {
    // Coalesced plan: the padded-vs-ragged choice is re-derived from
    // the actual (deduped) buffer sizes, and a single call can cover
    // every table's buffers, amortizing the launch overhead.
    const pim::TransferPlan push_plan =
        system_->transfer().PlanPush(push_bytes, transfer_group_start_);
    const pim::TransferPlan pull_plan =
        system_->transfer().PlanPull(pull_bytes, transfer_group_start_);
    out.stages.cpu_to_dpu = push_plan.time;
    out.stages.dpu_to_cpu = pull_plan.time;
    if (checker_ != nullptr) {
      // The planner promises to never lose to either classic path.
      check::AuditTransferPlan(
          push_plan.time, system_->transfer().PushTime(push_bytes, true),
          system_->transfer().PushTime(push_bytes, false),
          &checker_->report());
      check::AuditTransferPlan(
          pull_plan.time, system_->transfer().PullTime(pull_bytes, true),
          system_->transfer().PullTime(pull_bytes, false),
          &checker_->report());
    }
  } else {
    out.stages.cpu_to_dpu =
        system_->transfer().PushTime(push_bytes, options_.pad_transfers);
    out.stages.dpu_to_cpu =
        system_->transfer().PullTime(pull_bytes, options_.pad_transfers);
  }
  out.stages.dpu_lookup = system_->transfer().KernelLaunchOverhead() +
                          CyclesToNanos(max_kernel, clock);
  // Worst per-DPU stage-1/3 buffer footprint of this batch: the
  // full-path pipeline's capacity audit checks that `depth` in-flight
  // buffer pairs of this size fit the reserved-IO region
  // (check/dataflow_audit.h).
  out.max_index_bytes = simd::MaxU64(push_bytes.data(), push_bytes.size());
  out.max_output_bytes = simd::MaxU64(pull_bytes.data(), pull_bytes.size());
  out.partial_bytes = simd::SumU64(pull_bytes.data(), pull_bytes.size());
  if (options_.hierarchical_reduction) {
    // Fleet-aware aggregation price: per-rank local reduction streams
    // concurrently, then the cross-rank merge tree pays per-hop
    // topology costs — whichever beats the flat host stream
    // (pim/reduction.h). Single-rank fleets always plan flat, keeping
    // the historical price bit for bit.
    const std::uint32_t dpr = system_->config().dpus_per_rank;
    rank_bytes_.assign(system_->num_ranks(), 0);
    for (std::size_t i = 0; i < pull_bytes.size(); ++i) {
      rank_bytes_[i / dpr] += pull_bytes[i];
    }
    const std::uint64_t pooled_bytes = static_cast<std::uint64_t>(batch) *
                                       tables * dim * sizeof(std::int64_t);
    out.reduction =
        pim::PlanReduction(system_->topology(), rank_bytes_, pooled_bytes,
                           cpu_.params().stream_bytes_per_sec);
    out.stages.cpu_aggregate =
        out.reduction.time_ns + cpu_.BagOverhead(tables);
    if (checker_ != nullptr) {
      check::AuditReductionPlan(out.reduction, system_->num_ranks(),
                                &checker_->report());
    }
  } else {
    out.stages.cpu_aggregate =
        cpu_.StreamTime(out.partial_bytes) + cpu_.BagOverhead(tables);
  }

  out.bottom_mlp = cpu_.MlpTime(batch * config_.BottomFlopsPerSample());
  out.interaction_top =
      cpu_.MlpTime(batch * config_.TopFlopsPerSample()) +
      cpu_.StreamTime(batch * static_cast<std::uint64_t>(tables + 1) * dim *
                      4);
  out.total = std::max(out.bottom_mlp, out.stages.EmbeddingTotal()) +
              out.interaction_top;
  // UPDLRM_NOALLOC_END (the functional-mode output copy below is the
  // documented per-batch allocation: results leave by value).

  if (fn) {
    // The one unavoidable per-batch allocation of functional mode: the
    // pooled embeddings are returned to the caller by value.
    out.pooled.resize(pooled_acc.size());
    for (std::size_t i = 0; i < pooled_acc.size(); ++i) {
      out.pooled[i] = FromFixedSum(pooled_acc[i]);
    }
    if (options_.emit_fixed_pooled) {
      out.pooled_fixed.assign(pooled_acc.begin(), pooled_acc.end());
    }
    if (dense != nullptr) {
      out.ctr.reserve(batch);
      const std::size_t width = static_cast<std::size_t>(tables) * dim;
      for (std::size_t s = 0; s < batch; ++s) {
        out.ctr.push_back(model_->ForwardSample(
            dense->Sample(samples[s]),
            std::span<const float>(out.pooled.data() + s * width, width)));
      }
    }
  }
  return out;
}

Result<InferenceReport> UpDlrmEngine::RunAll(
    const dlrm::DenseInputs* dense) {
  InferenceReport report;
  // Trace emission: RunAll models batches back-to-back (no pipelining),
  // so a serial sim-time cursor places batch i at [t, t + total). Spans
  // mirror the StageBreakdown; 1-in-sample_every batches also get the
  // per-DPU timeline (skips are counted, never silent).
  const bool tracing = telemetry::TraceEnabled();
  telemetry::Tracer& tracer = telemetry::Tracer::Get();
  const std::uint64_t sample_every =
      tracing ? tracer.options().sample_every : 1;
  using telemetry::Clock;
  using telemetry::kPipelinePid;
  if (tracing) {
    tracer.SetThreadName(kPipelinePid, 0, "host buses (stage 1/3)");
    tracer.SetThreadName(kPipelinePid, 1, "DPU array (stage 2)");
    tracer.SetThreadName(kPipelinePid, 2, "MLP (CPU)");
  }
  Nanos cursor = 0.0;
  std::uint64_t batch_index = 0;
  for (const trace::BatchRange& range :
       trace::MakeBatches(trace_.num_samples(), options_.batch_size)) {
    auto batch = RunBatch(range, dense);
    if (!batch.ok()) return batch.status();
    if (tracing) {
      if (batch_index % sample_every == 0) {
        const StageBreakdown& st = batch->stages;
        const Nanos s2_start = cursor + st.cpu_to_dpu;
        const Nanos s3_start = s2_start + st.dpu_lookup;
        tracer.Complete(kPipelinePid, 0, Clock::kSim, "stage1.push",
                        cursor, st.cpu_to_dpu, "batch",
                        static_cast<double>(batch_index));
        tracer.Complete(kPipelinePid, 1, Clock::kSim, "stage2.kernel",
                        s2_start, st.dpu_lookup);
        tracer.Complete(kPipelinePid, 0, Clock::kSim, "stage3.pull",
                        s3_start, st.dpu_to_cpu);
        tracer.Complete(kPipelinePid, 0, Clock::kSim, "cpu.aggregate",
                        s3_start + st.dpu_to_cpu, st.cpu_aggregate);
        tracer.Complete(kPipelinePid, 2, Clock::kSim, "mlp.bottom",
                        cursor, batch->bottom_mlp);
        tracer.Complete(
            kPipelinePid, 2, Clock::kSim, "mlp.interaction_top",
            cursor + std::max(batch->bottom_mlp, st.EmbeddingTotal()),
            batch->interaction_top);
        if (batch->dpu_trace != nullptr) {
          EmitBatchDpuTimeline(*system_, *batch->dpu_trace, batch_index,
                               s2_start, /*tasklet_detail=*/true);
        }
      } else {
        tracer.CountSampledOut();
      }
    }
    cursor += batch->total;
    ++batch_index;
    report.Accumulate(batch.value());
    report.num_samples += range.size();
  }
  return report;
}

std::optional<UpDlrmEngine::DpuLocation> UpDlrmEngine::LocateDpu(
    std::uint32_t dpu) const {
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(groups_.size());
       ++t) {
    if (dpu < first_dpu_[t] || dpu >= first_dpu_[t] + dpus_per_table_[t]) {
      continue;
    }
    const auto& geom = groups_[t].plan.geom;
    const std::uint32_t local = dpu - first_dpu_[t];
    if (local >=
        static_cast<std::uint32_t>(geom.row_shards) * geom.col_shards) {
      return std::nullopt;  // allocated to the table but unused
    }
    return DpuLocation{t, local / geom.col_shards, local % geom.col_shards};
  }
  return std::nullopt;
}

}  // namespace updlrm::core
