#include "updlrm/hetero.h"

#include <algorithm>

namespace updlrm::core {

Result<std::unique_ptr<UpDlrmHetero>> UpDlrmHetero::Create(
    const dlrm::DlrmConfig& config, const trace::Trace& trace,
    pim::DpuSystem* system, HeteroOptions options) {
  if (options.sync_overhead_ns < 0.0) {
    return Status::InvalidArgument("sync_overhead_ns must be >= 0");
  }
  UPDLRM_RETURN_IF_ERROR(options.gpu.Validate());
  auto engine = UpDlrmEngine::Create(/*model=*/nullptr, config, trace,
                                     system, options.engine);
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<UpDlrmHetero>(new UpDlrmHetero(
      config, std::move(options), std::move(engine).value()));
}

Result<HeteroBatchReport> UpDlrmHetero::RunBatch(trace::BatchRange range) {
  auto dpu_batch = engine_->RunBatch(range, /*dense=*/nullptr);
  if (!dpu_batch.ok()) return dpu_batch.status();
  const std::size_t batch = range.size();
  const std::uint32_t row_bytes = config_.embedding_dim * 4;

  HeteroBatchReport report;
  report.stages = dpu_batch->stages;

  const std::uint32_t bottom_kernels =
      static_cast<std::uint32_t>(config_.bottom_hidden.size() + 1);
  const std::uint32_t top_kernels =
      static_cast<std::uint32_t>(config_.top_hidden.size() + 1 + 1);
  report.gpu_bottom = gpu_.MlpTime(batch * config_.BottomFlopsPerSample(),
                                   bottom_kernels);
  report.gpu_top =
      gpu_.MlpTime(batch * config_.TopFlopsPerSample(), top_kernels);

  const std::uint64_t dense_bytes =
      batch * static_cast<std::uint64_t>(config_.dense_features) * 4;
  const std::uint64_t pooled_bytes =
      batch * static_cast<std::uint64_t>(config_.num_tables) * row_bytes;
  const Nanos pcie_dense = gpu_.PcieTransfer(dense_bytes);
  const Nanos pcie_pooled = gpu_.PcieTransfer(pooled_bytes);
  const Nanos pcie_ctr = gpu_.PcieTransfer(batch * 4);
  report.pcie = pcie_dense + pcie_pooled + pcie_ctr;
  report.overhead = options_.sync_overhead_ns;

  // The dense inputs ship while the DPUs work; the bottom MLP can then
  // overlap the embedding pipeline. The pooled embeddings, interaction
  // + top MLP, and CTR return are serialized behind both.
  const Nanos embedding = report.stages.EmbeddingTotal();
  const Nanos parallel_phase =
      options_.overlap_bottom_mlp
          ? std::max(embedding, pcie_dense + report.gpu_bottom)
          : embedding + pcie_dense + report.gpu_bottom;
  report.total = parallel_phase + pcie_pooled + report.gpu_top +
                 pcie_ctr + report.overhead;
  return report;
}

Result<HeteroReport> UpDlrmHetero::RunAll() {
  HeteroReport report;
  for (const auto& range :
       trace::MakeBatches(engine_->trace().num_samples(),
                          engine_->options().batch_size)) {
    auto batch = RunBatch(range);
    if (!batch.ok()) return batch.status();
    report.stages += batch->stages;
    report.gpu_bottom += batch->gpu_bottom;
    report.gpu_top += batch->gpu_top;
    report.pcie += batch->pcie;
    report.overhead += batch->overhead;
    report.total += batch->total;
    ++report.num_batches;
    report.num_samples += range.size();
  }
  return report;
}

}  // namespace updlrm::core
