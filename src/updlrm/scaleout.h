// Fleet-scale sharded serving: one engine per PIM shard, statistical
// tiering, and a cross-shard merge that preserves bit-exactness.
//
// A shard is a group of ranks running a complete UpDlrmEngine over the
// slice of every table the tiering plan (partition/tiering.h) assigned
// to it. Per batch:
//
//   1. fan-out — each shard runs the batch against its sub-trace (the
//      original samples with only shard-owned indices, remapped to
//      dense local row ids); a request's lookups thus route only to
//      the shards owning them;
//   2. merge on pull — shards return raw Q15.16 int64 pooled
//      accumulators (EngineOptions::emit_fixed_pooled); the host sums
//      them per lane, folds in the host-DRAM tier's contributions
//      (cold rows gathered from the reference tables at CPU cost), and
//      converts to float once. Integer lane addition is exactly
//      associative, so the merged pooled output is bit-identical to a
//      flat engine over the whole model — and on the degenerate 1-shard
//      plan with no DRAM spill, the whole path IS the flat path.
//
// Timing composes as: per-stage max across shards (shards execute
// concurrently on disjoint rank groups; remote shards price their
// cross-host ingress inside their own transfer model via
// FleetTopologyConfig::host_offset), then a cross-shard merge tree
// priced with pim::PlanReduction over per-shard partial bytes, with the
// DRAM-tier gather overlapping the reduce on the front-end host.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "check/report.h"
#include "common/status.h"
#include "dlrm/model.h"
#include "host/cpu_model.h"
#include "partition/tiering.h"
#include "pim/system.h"
#include "trace/trace.h"
#include "updlrm/engine.h"
#include "updlrm/report.h"

namespace updlrm::core {

struct ShardedEngineConfig {
  /// Tiering/sharding knobs; tiering.num_shards is the shard count.
  partition::TieringOptions tiering;
  /// Template for each shard's DPU slice (num_dpus, dpus_per_rank,
  /// timing params, functional flag). Each shard's topology is derived
  /// from `fleet_topology` with the shard's host offset filled in.
  pim::DpuSystemConfig shard_system;
  /// Whole-fleet rank/host layout: the ranks of shard s are fleet ranks
  /// [s * R, (s + 1) * R) where R = shard_system ranks. Prices the
  /// cross-shard merge tree and each remote shard's ingress.
  pim::FleetTopologyConfig fleet_topology;

  Status Validate() const;
};

class ShardedEngine {
 public:
  /// `model` == nullptr selects timing-only mode, exactly as for
  /// UpDlrmEngine. `trace` profiles the tiering plan and serves as the
  /// workload; both must outlive the engine. `options` configures every
  /// per-shard engine (emit_fixed_pooled is forced on; preprofiled /
  /// premined_cache are cleared — they describe the unsharded trace).
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const dlrm::DlrmModel* model, const dlrm::DlrmConfig& config,
      const trace::Trace& trace, ShardedEngineConfig fleet,
      EngineOptions options);

  /// Batch over explicit sample ids (the serving fan-out path).
  Result<BatchResult> RunSamples(std::span<const std::size_t> samples,
                                 const dlrm::DenseInputs* dense);

  /// Contiguous-range adapter, mirroring UpDlrmEngine::RunBatch.
  Result<BatchResult> RunBatch(trace::BatchRange range,
                               const dlrm::DenseInputs* dense);

  /// Runs the whole trace in batches of options.batch_size.
  Result<InferenceReport> RunAll(const dlrm::DenseInputs* dense);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const UpDlrmEngine& shard(std::uint32_t s) const {
    UPDLRM_CHECK(s < shards_.size());
    return *shards_[s];
  }
  /// Shard 0's system (serve-loop telemetry anchor: all shards share
  /// the clock and launch constants).
  const pim::DpuSystem& dpu_system() const { return *systems_.front(); }
  const partition::TierShardingPlan& tier_plan() const { return plan_; }
  const ShardedEngineConfig& fleet() const { return fleet_; }
  const trace::Trace& trace() const { return trace_; }
  bool functional() const { return model_ != nullptr; }
  const dlrm::DlrmModel* model() const { return model_; }

  /// Fleet-level audit report (shard coverage, tier capacity, fleet
  /// reduction shape); per-shard engine reports live in shard(s).
  const check::CheckReport& fleet_check_report() const { return report_; }
  /// Total violations: fleet-level plus every shard engine's.
  std::uint64_t check_violations() const;

 private:
  ShardedEngine(const dlrm::DlrmModel* model, dlrm::DlrmConfig config,
                const trace::Trace& trace, ShardedEngineConfig fleet,
                EngineOptions options);

  Status Setup();
  Status BuildShardInputs();

  const dlrm::DlrmModel* model_;  // null in timing-only mode
  dlrm::DlrmConfig config_;
  const trace::Trace& trace_;
  ShardedEngineConfig fleet_;
  EngineOptions options_;
  host::CpuTimingModel cpu_;

  partition::TierShardingPlan plan_;
  // Per-shard sub-workloads: sub-trace (local row ids), sub-config
  // (shard table shapes), sub-model (extracted rows; empty when
  // timing-only). Kept alive for the shard engines' lifetime.
  std::vector<trace::Trace> sub_traces_;
  std::vector<dlrm::DlrmConfig> sub_configs_;
  std::vector<dlrm::DlrmModel> sub_models_;
  // Host-DRAM tier: per-table CSR of each sample's cold indices
  // (global row ids into the reference tables).
  std::vector<trace::TableTrace> dram_traces_;
  std::uint64_t dram_working_set_bytes_ = 0;

  std::vector<std::unique_ptr<pim::DpuSystem>> systems_;
  std::vector<std::unique_ptr<UpDlrmEngine>> shards_;

  // Merge scratch, reused across batches.
  std::vector<std::int64_t> merged_acc_;
  std::vector<std::int64_t> dram_bag_;
  std::vector<std::uint64_t> shard_partial_bytes_;
  std::vector<std::size_t> range_samples_;

  check::CheckReport report_;
};

}  // namespace updlrm::core
