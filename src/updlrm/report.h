// Latency reports for UpDLRM inference.
//
// The paper decomposes embedding-layer time into three stages (Fig. 4):
// stage 1 CPU->DPU index transfer, stage 2 in-DPU lookup + reduction,
// stage 3 DPU->CPU partial-result transfer; we additionally account the
// host-side partial-sum aggregation and the MLP stacks to report
// end-to-end inference time (Fig. 8).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "pim/reduction.h"

namespace updlrm::core {

struct BatchDpuTrace;  // updlrm/timeline.h

struct StageBreakdown {
  Nanos cpu_to_dpu = 0.0;    // stage 1
  Nanos dpu_lookup = 0.0;    // stage 2
  Nanos dpu_to_cpu = 0.0;    // stage 3
  Nanos cpu_aggregate = 0.0; // host partial-sum reduction

  Nanos EmbeddingTotal() const {
    return cpu_to_dpu + dpu_lookup + dpu_to_cpu + cpu_aggregate;
  }

  StageBreakdown& operator+=(const StageBreakdown& other) {
    cpu_to_dpu += other.cpu_to_dpu;
    dpu_lookup += other.dpu_lookup;
    dpu_to_cpu += other.dpu_to_cpu;
    cpu_aggregate += other.cpu_aggregate;
    return *this;
  }
};

struct BatchResult {
  StageBreakdown stages;
  Nanos bottom_mlp = 0.0;
  Nanos interaction_top = 0.0;  // interaction + top MLP
  /// End-to-end batch latency; the bottom MLP overlaps the embedding
  /// pipeline (they have no data dependency).
  Nanos total = 0.0;

  /// Worst per-DPU stage-1 (index) and stage-3 (partial-sum) buffer
  /// bytes of this batch — the in-flight MRAM footprint one pipeline
  /// buffer pair must hold (consumed by the data-flow capacity audit).
  std::uint64_t max_index_bytes = 0;
  std::uint64_t max_output_bytes = 0;
  /// Total stage-3 partial-sum bytes pulled this batch (all DPUs) —
  /// the cross-shard merge planner's per-shard input.
  std::uint64_t partial_bytes = 0;

  // Functional outputs (empty in timing-only mode).
  std::vector<float> pooled;  // batch x (tables * dim), fixed-point path
  std::vector<float> ctr;     // batch
  /// Raw Q15.16 int64 pooled accumulators (same layout as `pooled`),
  /// emitted only under EngineOptions::emit_fixed_pooled. The sharded
  /// scale-out engine merges shard results in integer space — exactly
  /// associative — and converts to float once, keeping the merged
  /// output bit-identical to a flat engine's.
  std::vector<std::int64_t> pooled_fixed;

  /// The stage-3 aggregation plan this batch was priced with (flat
  /// stream vs per-rank + merge tree); default-initialized flat plan
  /// unless EngineOptions::hierarchical_reduction.
  pim::ReductionPlan reduction;

  /// Per-(table, bin) stage-2 launch records for the telemetry
  /// timeline; null unless tracing was enabled during the batch.
  /// Observation only — never feeds back into any simulated value.
  std::shared_ptr<const BatchDpuTrace> dpu_trace;
};

struct InferenceReport {
  StageBreakdown stages;  // summed over batches
  Nanos bottom_mlp = 0.0;
  Nanos interaction_top = 0.0;
  Nanos total = 0.0;
  std::size_t num_batches = 0;
  std::size_t num_samples = 0;

  Nanos EmbeddingTotal() const { return stages.EmbeddingTotal(); }
  Nanos AvgBatchTotal() const {
    return num_batches == 0 ? 0.0 : total / static_cast<double>(num_batches);
  }
  Nanos AvgBatchEmbedding() const {
    return num_batches == 0
               ? 0.0
               : EmbeddingTotal() / static_cast<double>(num_batches);
  }

  void Accumulate(const BatchResult& batch) {
    stages += batch.stages;
    bottom_mlp += batch.bottom_mlp;
    interaction_top += batch.interaction_top;
    total += batch.total;
    ++num_batches;
  }
};

}  // namespace updlrm::core
