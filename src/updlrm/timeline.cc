#include "updlrm/timeline.h"

#include <string>

#include "pim/kernel_sim.h"
#include "telemetry/tracer.h"

namespace updlrm::core {

namespace {

using telemetry::Clock;
using telemetry::kDpuPid;
using telemetry::kTaskletPid;
using telemetry::Tracer;

void EmitStragglerTasklets(const pim::DpuSystem& system,
                           const DpuTraceSlice& slice, Nanos kernel_start) {
  const double clock_hz = system.config().dpu.clock_hz;
  pim::KernelTimeline tl;
  (void)pim::SimulateEmbeddingKernel(system.config().dpu,
                                     system.mram_timing(),
                                     system.config().kernel_cost, slice.work,
                                     pim::PhaseEngine::kPeriodic, &tl);
  Tracer& tracer = Tracer::Get();
  tracer.SetThreadName(kTaskletPid, tl.tasklets, "phase summary");
  for (std::uint32_t t = 0; t < tl.tasklets; ++t) {
    tracer.SetThreadName(kTaskletPid, t, "tasklet " + std::to_string(t));
  }
  for (std::size_t p = 0; p < tl.phases.size(); ++p) {
    const pim::PhaseTrace& ph = tl.phases[p];
    if (ph.num_items == 0) continue;
    const char* name = p < pim::kEmbeddingKernelNumPhases
                           ? pim::kEmbeddingKernelPhaseNames[p]
                           : "phase";
    const Nanos start = kernel_start + CyclesToNanos(ph.start, clock_hz);
    // Phase-summary slice: the barrier-to-barrier span, with the DMA
    // engine's occupancy (the "MRAM DMA" share) as an arg.
    tracer.Complete(kTaskletPid, tl.tasklets, Clock::kSim, name, start,
                    CyclesToNanos(ph.makespan, clock_hz), "dma_busy_cycles",
                    static_cast<double>(ph.dma_busy), "items",
                    static_cast<double>(ph.num_items));
    for (std::uint32_t t = 0; t < tl.tasklets; ++t) {
      if (ph.tasklet_items[t] == 0) continue;
      tracer.Complete(kTaskletPid, t, Clock::kSim, name, start,
                      CyclesToNanos(ph.tasklet_finish[t], clock_hz),
                      "items", static_cast<double>(ph.tasklet_items[t]));
    }
  }
}

}  // namespace

void EmitBatchDpuTimeline(const pim::DpuSystem& system,
                          const BatchDpuTrace& trace,
                          std::uint64_t batch_index, Nanos s2_start_ns,
                          bool tasklet_detail) {
  Tracer& tracer = Tracer::Get();
  if (!telemetry::TraceEnabled() || trace.slices.empty()) return;
  const double clock_hz = system.config().dpu.clock_hz;
  const Nanos kernel_start =
      s2_start_ns + system.transfer().KernelLaunchOverhead();
  for (const DpuTraceSlice& s : trace.slices) {
    const Nanos dur = CyclesToNanos(s.cycles, clock_hz);
    tracer.Complete(kDpuPid, s.first_dpu, Clock::kSim, "kernel",
                    kernel_start, dur, "cycles",
                    static_cast<double>(s.cycles), "lookups",
                    static_cast<double>(s.work.num_lookups));
    if (s.work.num_wram_hits > 0) {
      tracer.InstantAt(kDpuPid, s.first_dpu, Clock::kSim, "wram_hits",
                       kernel_start, "hits",
                       static_cast<double>(s.work.num_wram_hits));
    }
  }
  const DpuTraceSlice& slow = trace.slices[trace.straggler];
  tracer.InstantAt(kDpuPid, slow.first_dpu, Clock::kSim, "straggler",
                   kernel_start + CyclesToNanos(slow.cycles, clock_hz),
                   "batch", static_cast<double>(batch_index));
  if (tasklet_detail) {
    EmitStragglerTasklets(system, slow, kernel_start);
  }
}

}  // namespace updlrm::core
