#include "updlrm/timeline.h"

#include <algorithm>
#include <string>
#include <vector>

#include "pim/kernel_sim.h"
#include "telemetry/tracer.h"

namespace updlrm::core {

namespace {

using telemetry::Clock;
using telemetry::kDpuPid;
using telemetry::kRankPid;
using telemetry::kTaskletPid;
using telemetry::Tracer;

// Rank-level rollup track: one push / kernel / pull slice per rank per
// emitted batch, so a 4096-DPU fleet trace stays navigable without
// opening 4096 per-DPU rows. Transfer slices are byte-derived
// observations (actual per-rank bytes / the rank's aggregate
// bandwidth); the kernel slice spans the rank's slowest bin.
void EmitRankTrack(const pim::DpuSystem& system, const BatchDpuTrace& trace,
                   Nanos s2_start_ns, Nanos kernel_start) {
  if (trace.rank_push_bytes.empty()) return;
  Tracer& tracer = Tracer::Get();
  const double clock_hz = system.config().dpu.clock_hz;
  const std::uint32_t dpr = system.config().dpus_per_rank;
  const auto& params = system.transfer().params();
  const std::uint32_t ranks =
      static_cast<std::uint32_t>(trace.rank_push_bytes.size());
  std::vector<Cycles> rank_cycles(ranks, 0);
  for (const DpuTraceSlice& s : trace.slices) {
    const std::uint32_t r = s.first_dpu / dpr;
    if (r < ranks) rank_cycles[r] = std::max(rank_cycles[r], s.cycles);
  }
  const Nanos pull_start =
      kernel_start + CyclesToNanos(trace.max_cycles, clock_hz);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    if (trace.rank_push_bytes[r] == 0 && trace.rank_pull_bytes[r] == 0) {
      continue;
    }
    tracer.SetThreadName(kRankPid, static_cast<std::int32_t>(r),
                         "rank " + std::to_string(r) + " (host " +
                             std::to_string(system.topology().HostOfRank(r)) +
                             ")");
    if (trace.rank_push_bytes[r] > 0) {
      const Nanos dur = TransferNanos(trace.rank_push_bytes[r],
                                      params.push_bytes_per_sec_per_rank);
      tracer.Complete(kRankPid, static_cast<std::int32_t>(r), Clock::kSim,
                      "rank.push", s2_start_ns - dur, dur, "bytes",
                      static_cast<double>(trace.rank_push_bytes[r]));
    }
    if (rank_cycles[r] > 0) {
      tracer.Complete(kRankPid, static_cast<std::int32_t>(r), Clock::kSim,
                      "rank.kernel", kernel_start,
                      CyclesToNanos(rank_cycles[r], clock_hz), "cycles",
                      static_cast<double>(rank_cycles[r]));
    }
    if (trace.rank_pull_bytes[r] > 0) {
      const Nanos dur = TransferNanos(trace.rank_pull_bytes[r],
                                      params.pull_bytes_per_sec_per_rank);
      tracer.Complete(kRankPid, static_cast<std::int32_t>(r), Clock::kSim,
                      "rank.pull", pull_start, dur, "bytes",
                      static_cast<double>(trace.rank_pull_bytes[r]));
    }
  }
}

void EmitStragglerTasklets(const pim::DpuSystem& system,
                           const DpuTraceSlice& slice, Nanos kernel_start) {
  const double clock_hz = system.config().dpu.clock_hz;
  pim::KernelTimeline tl;
  (void)pim::SimulateEmbeddingKernel(system.config().dpu,
                                     system.mram_timing(),
                                     system.config().kernel_cost, slice.work,
                                     pim::PhaseEngine::kPeriodic, &tl);
  Tracer& tracer = Tracer::Get();
  tracer.SetThreadName(kTaskletPid, tl.tasklets, "phase summary");
  for (std::uint32_t t = 0; t < tl.tasklets; ++t) {
    tracer.SetThreadName(kTaskletPid, t, "tasklet " + std::to_string(t));
  }
  for (std::size_t p = 0; p < tl.phases.size(); ++p) {
    const pim::PhaseTrace& ph = tl.phases[p];
    if (ph.num_items == 0) continue;
    const char* name = p < pim::kEmbeddingKernelNumPhases
                           ? pim::kEmbeddingKernelPhaseNames[p]
                           : "phase";
    const Nanos start = kernel_start + CyclesToNanos(ph.start, clock_hz);
    // Phase-summary slice: the barrier-to-barrier span, with the DMA
    // engine's occupancy (the "MRAM DMA" share) as an arg.
    tracer.Complete(kTaskletPid, tl.tasklets, Clock::kSim, name, start,
                    CyclesToNanos(ph.makespan, clock_hz), "dma_busy_cycles",
                    static_cast<double>(ph.dma_busy), "items",
                    static_cast<double>(ph.num_items));
    for (std::uint32_t t = 0; t < tl.tasklets; ++t) {
      if (ph.tasklet_items[t] == 0) continue;
      tracer.Complete(kTaskletPid, t, Clock::kSim, name, start,
                      CyclesToNanos(ph.tasklet_finish[t], clock_hz),
                      "items", static_cast<double>(ph.tasklet_items[t]));
    }
  }
}

}  // namespace

void EmitBatchDpuTimeline(const pim::DpuSystem& system,
                          const BatchDpuTrace& trace,
                          std::uint64_t batch_index, Nanos s2_start_ns,
                          bool tasklet_detail) {
  Tracer& tracer = Tracer::Get();
  if (!telemetry::TraceEnabled() || trace.slices.empty()) return;
  const double clock_hz = system.config().dpu.clock_hz;
  const Nanos kernel_start =
      s2_start_ns + system.transfer().KernelLaunchOverhead();
  for (const DpuTraceSlice& s : trace.slices) {
    const Nanos dur = CyclesToNanos(s.cycles, clock_hz);
    tracer.Complete(kDpuPid, s.first_dpu, Clock::kSim, "kernel",
                    kernel_start, dur, "cycles",
                    static_cast<double>(s.cycles), "lookups",
                    static_cast<double>(s.work.num_lookups));
    if (s.work.num_wram_hits > 0) {
      tracer.InstantAt(kDpuPid, s.first_dpu, Clock::kSim, "wram_hits",
                       kernel_start, "hits",
                       static_cast<double>(s.work.num_wram_hits));
    }
  }
  EmitRankTrack(system, trace, s2_start_ns, kernel_start);
  const DpuTraceSlice& slow = trace.slices[trace.straggler];
  tracer.InstantAt(kDpuPid, slow.first_dpu, Clock::kSim, "straggler",
                   kernel_start + CyclesToNanos(slow.cycles, clock_hz),
                   "batch", static_cast<double>(batch_index));
  if (tasklet_detail) {
    EmitStragglerTasklets(system, slow, kernel_start);
  }
}

}  // namespace updlrm::core
