#include "updlrm/placement.h"

#include <algorithm>

#include "common/units.h"

namespace updlrm::core {

namespace {

// Stage-3 output region: one row slice per sample; 64 KB covers batch
// sizes up to 512 at the widest Nc.
constexpr std::uint64_t kOutputRegionBytes = 64 * kKiB;

std::span<const std::uint8_t> AsBytes(std::span<const std::int32_t> v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * 4};
}

}  // namespace

Result<TableGroup> BuildTableGroup(std::uint32_t table_index,
                                   std::uint32_t first_dpu,
                                   partition::PartitionPlan plan,
                                   const pim::DpuSystemConfig& system_config,
                                   std::uint64_t reserved_io_bytes,
                                   bool build_row_slots) {
  if (reserved_io_bytes <= kOutputRegionBytes) {
    return Status::InvalidArgument(
        "reserved_io_bytes must exceed the output region");
  }

  TableGroup group;
  group.table_index = table_index;
  group.first_dpu = first_dpu;
  group.plan = std::move(plan);
  const auto& geom = group.plan.geom;
  const std::uint32_t row_bytes = geom.row_bytes();

  group.emt_rows_per_bin = group.plan.EmtRowsPerBin();
  group.cache_bytes_per_bin = group.plan.has_cache()
                                  ? group.plan.CacheBytesPerBin()
                                  : std::vector<std::uint64_t>(
                                        geom.row_shards, 0);

  const std::uint64_t emt_need =
      *std::max_element(group.emt_rows_per_bin.begin(),
                        group.emt_rows_per_bin.end()) *
      row_bytes;
  const std::uint64_t cache_need = *std::max_element(
      group.cache_bytes_per_bin.begin(), group.cache_bytes_per_bin.end());

  // Region bases are row-slice aligned so routing can address every
  // region with absolute slot numbers (offset / row_bytes).
  MramLayout& layout = group.layout;
  layout.emt_base = 0;
  layout.emt_bytes = AlignUp(emt_need, row_bytes);
  layout.replica_base = layout.emt_base + layout.emt_bytes;
  layout.replica_bytes = group.plan.ReplicaBytesPerBin();
  layout.cache_base = layout.replica_base + layout.replica_bytes;
  layout.cache_bytes = AlignUp(cache_need, row_bytes);
  layout.output_bytes = kOutputRegionBytes;
  layout.index_base = layout.cache_base + layout.cache_bytes;
  layout.index_bytes = reserved_io_bytes - kOutputRegionBytes;
  layout.output_base = layout.index_base + layout.index_bytes;

  const std::uint64_t total = layout.output_base + layout.output_bytes;
  if (total > system_config.dpu.mram_bytes) {
    return Status::CapacityExceeded(
        "MRAM layout needs " + std::to_string(total) + " bytes, bank has " +
        std::to_string(system_config.dpu.mram_bytes));
  }

  if (group.plan.has_replication()) {
    group.replica_slot.assign(geom.table.rows, kCachedRowSlot);
    for (std::size_t i = 0; i < group.plan.replicated_rows.size(); ++i) {
      group.replica_slot[group.plan.replicated_rows[i]] =
          static_cast<std::uint32_t>(i);
    }
  }

  if (build_row_slots) {
    group.row_slot.assign(geom.table.rows, kCachedRowSlot);
    std::vector<std::uint32_t> next_slot(geom.row_shards, 0);
    for (std::uint64_t r = 0; r < geom.table.rows; ++r) {
      const bool cached =
          !group.plan.item_list.empty() && group.plan.item_list[r] >= 0;
      const bool replicated = !group.replica_slot.empty() &&
                              group.replica_slot[r] != kCachedRowSlot;
      if (cached || replicated) continue;
      group.row_slot[r] = next_slot[group.plan.row_bin[r]]++;
    }
  }

  group.list_offset.assign(group.plan.cache.lists.size(), 0);
  {
    std::vector<std::uint64_t> next_offset(geom.row_shards, 0);
    for (std::size_t l = 0; l < group.plan.cache.lists.size(); ++l) {
      const auto bin =
          static_cast<std::uint32_t>(group.plan.list_bin[l]);
      group.list_offset[l] = next_offset[bin];
      next_offset[bin] +=
          group.plan.cache.lists[l].StorageBytes(row_bytes);
    }
  }
  return group;
}

void BuildWramCache(TableGroup& group, std::span<const std::uint64_t> freq,
                    std::uint32_t rows_per_dpu) {
  group.wram_cached.clear();
  group.wram_rows_per_bin.clear();
  if (rows_per_dpu == 0) return;
  const auto& geom = group.plan.geom;
  UPDLRM_CHECK(freq.size() == geom.table.rows);

  // Eligible rows are the ones stage-1 routing sends down the EMT path:
  // not a cache-list member (those read subset sums) and not replicated
  // (those route adaptively across bins). A pinned row keeps its MRAM
  // slot — WRAM holds a copy — so the functional path is unchanged.
  group.wram_cached.assign(geom.table.rows, 0);
  group.wram_rows_per_bin.assign(geom.row_shards, 0);
  std::vector<std::vector<std::uint32_t>> candidates(geom.row_shards);
  for (std::uint64_t r = 0; r < geom.table.rows; ++r) {
    if (freq[r] == 0) continue;  // never referenced: pinning is waste
    const bool cached =
        !group.plan.item_list.empty() && group.plan.item_list[r] >= 0;
    const bool replicated = !group.replica_slot.empty() &&
                            group.replica_slot[r] != kCachedRowSlot;
    if (cached || replicated) continue;
    candidates[group.plan.row_bin[r]].push_back(
        static_cast<std::uint32_t>(r));
  }
  for (std::uint32_t bin = 0; bin < geom.row_shards; ++bin) {
    auto& rows = candidates[bin];
    const std::size_t keep =
        std::min<std::size_t>(rows.size(), rows_per_dpu);
    // Deterministic hottest-first order: frequency descending, row id
    // ascending as the tie break.
    std::partial_sort(rows.begin(), rows.begin() + keep, rows.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        if (freq[a] != freq[b]) return freq[a] > freq[b];
                        return a < b;
                      });
    for (std::size_t i = 0; i < keep; ++i) group.wram_cached[rows[i]] = 1;
    group.wram_rows_per_bin[bin] = static_cast<std::uint32_t>(keep);
  }
}

Status PlaceTable(const dlrm::EmbeddingTable& table, const TableGroup& group,
                  pim::DpuSystem& system) {
  if (!system.functional()) {
    return Status::FailedPrecondition(
        "PlaceTable requires a functional DpuSystem");
  }
  if (group.row_slot.empty()) {
    return Status::FailedPrecondition(
        "TableGroup was built without row slots (timing-only)");
  }
  const auto& geom = group.plan.geom;
  if (table.rows() != geom.table.rows || table.cols() != geom.table.cols) {
    return Status::InvalidArgument("table shape does not match plan");
  }
  const std::uint32_t row_bytes = geom.row_bytes();

  // EMT region: one quantized slice per (uncached row, column shard).
  std::vector<std::int32_t> qrow(table.cols());
  for (std::uint64_t r = 0; r < table.rows(); ++r) {
    const std::uint32_t slot = group.row_slot[r];
    if (slot == kCachedRowSlot) continue;
    table.QuantizedRow(r, qrow);
    const std::uint32_t bin = group.plan.row_bin[r];
    for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
      const std::uint64_t offset =
          group.layout.emt_base +
          static_cast<std::uint64_t>(slot) * row_bytes;
      UPDLRM_RETURN_IF_ERROR(
          system.dpu(group.GlobalDpu(bin, c))
              .mram()
              .Write(offset, AsBytes(std::span<const std::int32_t>(
                                 qrow.data() + c * geom.nc, geom.nc))));
    }
  }

  // Replica region: every bin (and column shard) holds a copy of each
  // replicated row's slice at the same slot.
  for (std::size_t i = 0; i < group.plan.replicated_rows.size(); ++i) {
    const std::uint32_t r = group.plan.replicated_rows[i];
    table.QuantizedRow(r, qrow);
    const std::uint64_t offset =
        group.layout.replica_base + i * static_cast<std::uint64_t>(row_bytes);
    for (std::uint32_t bin = 0; bin < geom.row_shards; ++bin) {
      for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
        UPDLRM_RETURN_IF_ERROR(
            system.dpu(group.GlobalDpu(bin, c))
                .mram()
                .Write(offset, AsBytes(std::span<const std::int32_t>(
                                   qrow.data() + c * geom.nc, geom.nc))));
      }
    }
  }

  // Cache region: all non-empty subset sums of every placed list.
  std::vector<std::vector<std::int32_t>> qitems;
  std::vector<std::int32_t> subset_sum(table.cols());
  for (std::size_t l = 0; l < group.plan.cache.lists.size(); ++l) {
    const auto& list = group.plan.cache.lists[l];
    const auto bin = static_cast<std::uint32_t>(group.plan.list_bin[l]);
    qitems.assign(list.items.size(), std::vector<std::int32_t>(table.cols()));
    for (std::size_t i = 0; i < list.items.size(); ++i) {
      table.QuantizedRow(list.items[i], qitems[i]);
    }
    for (std::uint32_t mask = 1; mask < (1U << list.items.size()); ++mask) {
      std::fill(subset_sum.begin(), subset_sum.end(), 0);
      for (std::size_t i = 0; i < list.items.size(); ++i) {
        if (!(mask & (1U << i))) continue;
        for (std::uint32_t c = 0; c < table.cols(); ++c) {
          subset_sum[c] += qitems[i][c];
        }
      }
      const std::uint64_t slot_offset =
          group.layout.cache_base + group.list_offset[l] +
          static_cast<std::uint64_t>(mask - 1) * row_bytes;
      for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
        UPDLRM_RETURN_IF_ERROR(
            system.dpu(group.GlobalDpu(bin, c))
                .mram()
                .Write(slot_offset,
                       AsBytes(std::span<const std::int32_t>(
                           subset_sum.data() + c * geom.nc, geom.nc))));
      }
    }
  }
  return Status::Ok();
}

}  // namespace updlrm::core
