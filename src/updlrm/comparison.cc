#include "updlrm/comparison.h"

namespace updlrm::core {

Result<SystemComparison> CompareSystems(const dlrm::DlrmConfig& config,
                                        const trace::Trace& trace,
                                        const ComparisonOptions& options) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  SystemComparison result;

  const baselines::DlrmCpu cpu(config, trace, options.cpu);
  result.dlrm_cpu = cpu.RunAll(options.batch_size);

  const baselines::DlrmHybrid hybrid(config, trace, options.cpu,
                                     options.gpu);
  result.dlrm_hybrid = hybrid.RunAll(options.batch_size);

  auto fae = baselines::Fae::Create(config, trace, options.fae,
                                    options.cpu, options.gpu);
  if (!fae.ok()) return fae.status();
  result.fae = (*fae)->RunAll(options.batch_size);
  result.fae_hot_fraction = (*fae)->HotLookupFraction();

  pim::DpuSystemConfig system_config = options.system;
  system_config.functional = false;
  auto system = pim::DpuSystem::Create(system_config);
  if (!system.ok()) return system.status();

  EngineOptions engine_options = options.engine;
  engine_options.batch_size = options.batch_size;
  auto engine = UpDlrmEngine::Create(nullptr, config, trace,
                                     system->get(), engine_options);
  if (!engine.ok()) return engine.status();
  auto report = (*engine)->RunAll(nullptr);
  if (!report.ok()) return report.status();
  result.updlrm = std::move(report).value();
  result.nc = (*engine)->nc();
  return result;
}

}  // namespace updlrm::core
