#include "updlrm/comparison.h"

#include "common/thread_pool.h"

namespace updlrm::core {

Result<SystemComparison> CompareSystems(const dlrm::DlrmConfig& config,
                                        const trace::Trace& trace,
                                        const ComparisonOptions& options) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  SystemComparison result;

  // The four systems are independent simulations over the same
  // (read-only) trace; evaluate them as parallel tasks. Each task
  // writes only its own report slot, and errors are surfaced in the
  // fixed system order below, so the comparison is thread-count
  // invariant. UpDLRM runs last in task order but fans out internally
  // via the same pool (nested regions are deadlock-free).
  Status statuses[4];
  ParallelFor(
      4,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t task = begin; task < end; ++task) {
          switch (task) {
            case 0: {
              const baselines::DlrmCpu cpu(config, trace, options.cpu);
              result.dlrm_cpu = cpu.RunAll(options.batch_size);
              break;
            }
            case 1: {
              const baselines::DlrmHybrid hybrid(config, trace,
                                                 options.cpu, options.gpu);
              result.dlrm_hybrid = hybrid.RunAll(options.batch_size);
              break;
            }
            case 2: {
              auto fae = baselines::Fae::Create(config, trace, options.fae,
                                                options.cpu, options.gpu);
              if (!fae.ok()) {
                statuses[task] = fae.status();
                break;
              }
              result.fae = (*fae)->RunAll(options.batch_size);
              result.fae_hot_fraction = (*fae)->HotLookupFraction();
              break;
            }
            case 3: {
              pim::DpuSystemConfig system_config = options.system;
              system_config.functional = false;
              auto system = pim::DpuSystem::Create(system_config);
              if (!system.ok()) {
                statuses[task] = system.status();
                break;
              }
              EngineOptions engine_options = options.engine;
              engine_options.batch_size = options.batch_size;
              engine_options.num_threads = options.num_threads;
              auto engine = UpDlrmEngine::Create(
                  nullptr, config, trace, system->get(), engine_options);
              if (!engine.ok()) {
                statuses[task] = engine.status();
                break;
              }
              auto report = (*engine)->RunAll(nullptr);
              if (!report.ok()) {
                statuses[task] = report.status();
                break;
              }
              result.updlrm = std::move(report).value();
              result.nc = (*engine)->nc();
              break;
            }
          }
        }
      },
      options.num_threads);
  for (const Status& status : statuses) {
    UPDLRM_RETURN_IF_ERROR(status);
  }
  return result;
}

}  // namespace updlrm::core
