// The UpDLRM inference engine (Fig. 4).
//
// Pre-process stage (Create): profile the trace, mine cache lists
// (cache-aware method), choose the tile shape Nc (Eq. 1-3 optimizer
// unless overridden), partition every EMT onto its DPU group, and place
// the quantized table slices + cached partial sums into MRAM.
//
// Forward stage (RunBatch): route each batch's multi-hot indices to the
// owning DPUs (stage 1), execute the lookup/reduce kernel on every DPU
// (stage 2), pull back per-DPU partial sums (stage 3), aggregate them on
// the CPU into pooled embeddings, and run the MLP stacks. The bottom MLP
// overlaps the embedding pipeline; interaction + top MLP follow.
//
// Two execution modes share all control flow:
//   * functional — MRAM holds real quantized data, kernels produce
//     bit-exact pooled embeddings (validated against DlrmModel);
//   * timing-only — no MRAM contents; only the per-DPU work counts that
//     drive the calibrated timing models (full-scale benchmarks).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/grace.h"
#include "check/checker.h"
#include "common/status.h"
#include "dlrm/model.h"
#include "host/cpu_model.h"
#include "partition/allocation.h"
#include "partition/cache_aware.h"
#include "partition/nonuniform.h"
#include "partition/uniform.h"
#include "pim/system.h"
#include "trace/profiler.h"
#include "trace/trace.h"
#include "updlrm/placement.h"
#include "updlrm/report.h"

namespace updlrm::core {

struct EngineOptions {
  partition::Method method = partition::Method::kCacheAware;
  /// Columns per tile; 0 = pick automatically with the §3.1 optimizer.
  std::uint32_t nc = 0;
  /// Fraction of the mined cache lists' storage requirement to actually
  /// provision (§3.3: 40% / 70% / 100%). Cache-aware method only.
  double cache_capacity_fraction = 1.0;
  std::size_t batch_size = 64;
  /// MRAM reserved per DPU for the stage-1/stage-3 I/O buffers.
  std::uint64_t reserved_io_bytes = 8 * kMiB;
  /// Per-bin cache regions are provisioned at headroom * (total need /
  /// bins) — the greedy placement is not perfectly even.
  double cache_headroom = 1.3;
  /// Pad ragged stage-1/3 buffers to the max size so transfers take the
  /// parallel path (§2.2); disabling falls back to sequential transfers.
  bool pad_transfers = true;
  /// Extension: replicate the top-k hottest uncached rows per table into
  /// every bin and route their lookups to the least-loaded DPU
  /// (partition/replication.h). 0 disables.
  std::uint32_t replicate_hot_rows = 0;
  /// Embedding hot-path levers (DESIGN.md §"Embedding hot path"). All
  /// default off; each lever off leaves results bit-identical to the
  /// pre-lever engine.
  ///
  /// Collapse each (table, DPU-bin) request buffer into a unique-index
  /// list + 16-bit gather map when that shrinks the wire payload;
  /// stage-2 reads each unique row once and replays the gather.
  bool dedup = false;
  /// Pin the top-K hottest EMT-resident rows of every bin into the
  /// DPU's WRAM at setup; lookups hitting them skip the MRAM DMA.
  /// Clamped to the WRAM space left over by the kernel's working
  /// buffers. 0 disables.
  std::uint32_t wram_cache_rows = 0;
  /// Replace the per-call padded/ragged choice with the coalesced
  /// transfer planner: one batch's push (and pull) picks the cheapest
  /// of {one coalesced padded call, one padded call per table,
  /// sequential ragged} from the actual (deduped) buffer sizes.
  bool coalesce_transfers = false;
  /// Price the stage-3 partial-sum aggregation with the fleet-topology
  /// reduction planner (pim/reduction.h): per-rank local reduction
  /// first, then a cross-rank merge tree, whenever that beats the flat
  /// host stream. In functional mode the merge is also *executed* in
  /// that shape (per-rank int64 accumulators folded pairwise); integer
  /// lanes are exactly associative, so pooled outputs stay
  /// bit-identical to the flat fixed-order merge. On the degenerate
  /// single-rank topology the plan always stays flat and both the
  /// price and the merge are unchanged.
  bool hierarchical_reduction = false;
  /// Also emit the pooled embeddings as raw Q15.16 int64 accumulators
  /// (BatchResult::pooled_fixed) — the sharded scale-out engine merges
  /// shards in integer space before the single float conversion.
  bool emit_fixed_pooled = false;
  /// Extension: how DPUs are split across tables. The paper's setup is
  /// an even split of identical tables; heterogeneous models benefit
  /// from rows- or traffic-proportional groups
  /// (partition/allocation.h).
  partition::DpuAllocationPolicy allocation =
      partition::DpuAllocationPolicy::kEqual;
  cache::GraceOptions grace;
  host::CpuModelParams cpu;
  /// Optional pre-mined cache lists, one CacheRes per table (e.g. shared
  /// across engine configurations to avoid re-mining the same trace).
  /// Used by the cache-aware method only; must outlive the engine.
  const std::vector<cache::CacheRes>* premined_cache = nullptr;
  /// Optional pre-computed trace profiles, one TableProfile per table
  /// (freq histogram + descending-frequency order). Same sharing story
  /// as premined_cache: one profiling pass serves every engine built
  /// from the same trace, instead of a full radix sort of every table
  /// row per engine. Must outlive the engine.
  const std::vector<trace::TableProfile>* preprofiled = nullptr;
  /// Host worker threads for setup and per-batch fan-out (wall-clock
  /// only; functional outputs and simulated times are thread-count
  /// invariant, see DESIGN.md §"Host execution backend"). 0 = the
  /// process-wide default pool width, 1 = serial.
  std::uint32_t num_threads = 0;
  /// Hardware-contract checker (DESIGN.md §7): shadow-state validation
  /// of every MRAM/DMA access, static plan audits at Setup, and the
  /// kernel_cost-vs-kernel_sim cross-audit on every launch. Violations
  /// accumulate in check_report(); simulated results are unchanged.
  /// Off (the default) compiles to no-ops on the hot path.
  bool check_mode = false;
  /// Accepted executed/claimed cycle band for the model/sim
  /// cross-audit (check_mode only).
  check::ModelAuditTolerance check_tolerance;
};

class UpDlrmEngine {
 public:
  /// `model` == nullptr selects timing-only mode (config supplies the
  /// shapes); otherwise the system must be functional and the engine
  /// places real data. `trace` doubles as the profiling trace
  /// (obj_freq / cache mining) and the serving workload, like the
  /// paper's historical-trace profiling; it must outlive the engine.
  static Result<std::unique_ptr<UpDlrmEngine>> Create(
      const dlrm::DlrmModel* model, const dlrm::DlrmConfig& config,
      const trace::Trace& trace, pim::DpuSystem* system,
      EngineOptions options);

  /// Runs one batch; `dense` may be null (skips CTR computation, still
  /// accounts MLP time).
  Result<BatchResult> RunBatch(trace::BatchRange range,
                               const dlrm::DenseInputs* dense);

  /// Runs one batch over an explicit (not necessarily contiguous) list
  /// of trace sample ids — the serving layer's dynamic batcher coalesces
  /// whatever requests are queued, and admission control can punch holes
  /// into the arrival order. Sample ids index both the trace and
  /// `dense`. Equivalent to RunBatch for a contiguous ascending list.
  Result<BatchResult> RunSamples(std::span<const std::size_t> samples,
                                 const dlrm::DenseInputs* dense);

  /// Runs the whole trace in batches of options.batch_size.
  Result<InferenceReport> RunAll(const dlrm::DenseInputs* dense);

  std::uint32_t nc() const { return nc_; }
  const std::vector<TableGroup>& groups() const { return groups_; }
  /// The DPU system this engine runs on (for telemetry emission and
  /// the straggler report).
  const pim::DpuSystem& dpu_system() const { return *system_; }

  /// Inverse of TableGroup::GlobalDpu: which (table, bin, column
  /// shard) a global DPU id serves; nullopt for DPUs no group uses.
  struct DpuLocation {
    std::uint32_t table = 0;
    std::uint32_t bin = 0;
    std::uint32_t col = 0;
  };
  std::optional<DpuLocation> LocateDpu(std::uint32_t dpu) const;
  /// Present when Nc was chosen automatically.
  const std::optional<partition::TileOptimizerResult>& tile_optimization()
      const {
    return tile_result_;
  }
  const EngineOptions& options() const { return options_; }
  bool functional() const { return model_ != nullptr; }
  /// The reference model (null in timing-only mode). The full-path
  /// serving pipeline builds its batched MLP stacks from it.
  const dlrm::DlrmModel* model() const { return model_; }
  const trace::Trace& trace() const { return trace_; }
  const dlrm::DlrmConfig& config() const { return config_; }
  /// Calibrated host timing model (the data-flow tuner prices MLP /
  /// interaction placement candidates with the same model the engine
  /// charges).
  const host::CpuTimingModel& cpu_model() const { return cpu_; }

  /// Violation report of the hardware-contract checker; null unless
  /// options.check_mode.
  const check::CheckReport* check_report() const {
    return checker_ != nullptr ? &checker_->report() : nullptr;
  }
  /// Total violations recorded so far (0 when checks are off).
  std::uint64_t check_violations() const {
    return checker_ != nullptr ? checker_->report().total() : 0;
  }

  ~UpDlrmEngine();

 private:
  UpDlrmEngine(const dlrm::DlrmModel* model, dlrm::DlrmConfig config,
               const trace::Trace& trace, pim::DpuSystem* system,
               EngineOptions options);

  Status Setup();
  Result<partition::PartitionPlan> BuildPlan(
      std::uint32_t table, const trace::TableProfile& profile) const;

  // Check-mode Setup pass over one built group: static plan audit,
  // WRAM-tier capacity audit, and MRAM region registration for the
  // shadow-state access validator.
  void AuditGroup(const TableGroup& group);

  // options_.wram_cache_rows clamped to the WRAM left over by the
  // kernel's per-tasklet working buffers at this row width.
  std::uint32_t EffectiveWramRows(std::uint32_t row_bytes) const;

  // Per-(bin) routing buffers for one group, reused across batches.
  struct BinRoute {
    std::vector<std::uint32_t> emt_slots;    // functional only
    std::vector<std::uint32_t> cache_slots;  // functional only
    std::vector<std::uint32_t> emt_offsets;  // per-sample, functional only
    std::vector<std::uint32_t> cache_offsets;
    std::uint64_t emt_count = 0;
    std::uint64_t cache_count = 0;
    /// References served by the bin's pinned WRAM tier (timing split of
    /// what was historically emt_count; functional slots are unchanged).
    std::uint64_t wram_count = 0;
    /// Stream-tagged reference keys in routing order, filled only when
    /// options_.dedup — the planner's input in both execution modes.
    std::vector<std::uint64_t> dedup_keys;
    void Clear();
  };

  // Routing scratch for one group, reused across batches. Each group
  // owns its scratch so routing fans out group-per-task with no shared
  // mutable state.
  struct GroupScratch {
    std::vector<BinRoute> routes;
    std::vector<std::uint32_t> list_mask;
    std::vector<std::uint32_t> touched_lists;
  };

  // Stage 1 for one group: route the batch's indices to bins (and, in
  // functional mode, to absolute MRAM slots).
  void RouteGroup(std::size_t g, std::span<const std::size_t> samples);

  // Cost of one batch at tile width `nc` under `alloc` (auto-Nc search
  // for heterogeneous / non-equal allocations).
  Nanos EstimateBatchCost(std::uint32_t nc,
                          std::span<const std::uint32_t> alloc) const;

  const dlrm::DlrmModel* model_;  // null in timing-only mode
  dlrm::DlrmConfig config_;
  const trace::Trace& trace_;
  pim::DpuSystem* system_;
  EngineOptions options_;
  host::CpuTimingModel cpu_;

  std::vector<std::uint32_t> dpus_per_table_;
  std::vector<std::uint32_t> first_dpu_;
  std::uint32_t nc_ = 0;
  std::optional<partition::TileOptimizerResult> tile_result_;
  std::vector<TableGroup> groups_;

  // Scratch reused across batches (one entry per group).
  std::vector<GroupScratch> scratch_;
  // Sample-id scratch for the RunBatch(range) -> RunSamples adapter.
  std::vector<std::size_t> range_samples_;
  // Per-batch buffers reused across RunSamples calls, assign()ed each
  // batch (capacity persists: zero heap allocations per batch once
  // warm, asserted by tests/serve/alloc_test.cc). Per-task accumulator
  // scratch lives in the per-worker ThreadArena instead.
  std::vector<std::uint64_t> push_bytes_;
  std::vector<std::uint64_t> pull_bytes_;
  std::vector<Cycles> bin_cycles_;
  std::vector<Status> bin_status_;
  std::vector<std::int64_t> pooled_acc_;
  std::vector<std::int32_t> wires_;
  // Hierarchical-reduction scratch: per-rank stage-3 byte totals (the
  // reduction planner's input) and per-rank pooled accumulators (the
  // executed merge tree's working set). Empty unless
  // options_.hierarchical_reduction.
  std::vector<std::uint64_t> rank_bytes_;
  std::vector<std::int64_t> rank_pooled_;
  std::vector<Status> fn_status_;
  // Flattened fan-out offsets: task id ranges for the per-(group, bin)
  // stage-2 tasks and the per-(group, bin, col) functional tasks.
  std::vector<std::size_t> bin_task_start_;  // size groups + 1
  std::vector<std::size_t> fn_task_start_;   // size groups + 1
  // Group (table) boundaries in global DPU ids for the coalesced
  // transfer planner: {first_dpu_[t]..., num_dpus}.
  std::vector<std::uint32_t> transfer_group_start_;

  // Hardware-contract checker; null unless options_.check_mode. Its
  // observers hook system_'s banks, so the destructor detaches them.
  std::unique_ptr<check::Checker> checker_;
};

}  // namespace updlrm::core
