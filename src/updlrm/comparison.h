// Four-system comparison harness — the Fig. 8 experiment as a library
// call.
//
// Given a model configuration and a trace, runs DLRM-CPU, DLRM-Hybrid,
// FAE and UpDLRM with a consistent setup and returns every system's
// report plus the derived speedups. This is the entry point for "how
// would my workload do on PIM?" questions; the fig08 bench and the
// inference_comparison example are thin wrappers over it.
#pragma once

#include <cstdint>
#include <memory>

#include "baselines/systems.h"
#include "common/status.h"
#include "pim/system.h"
#include "updlrm/engine.h"

namespace updlrm::core {

struct ComparisonOptions {
  std::size_t batch_size = 64;
  /// UpDLRM engine configuration (method, Nc, caching, allocation...).
  /// batch_size above overrides engine.batch_size.
  EngineOptions engine;
  baselines::FaeOptions fae;
  host::CpuModelParams cpu;
  host::GpuModelParams gpu;
  /// The PIM system; functional is forced off (comparisons are
  /// timing-only).
  pim::DpuSystemConfig system;
  /// Host threads: the four systems evaluate as parallel tasks and the
  /// UpDLRM engine inherits the width (0 = default pool, 1 = serial).
  /// Reports are thread-count invariant.
  std::uint32_t num_threads = 0;
};

struct SystemComparison {
  baselines::BaselineReport dlrm_cpu;
  baselines::BaselineReport dlrm_hybrid;
  baselines::BaselineReport fae;
  InferenceReport updlrm;
  std::uint32_t nc = 0;           // UpDLRM's (possibly auto-tuned) tile
  double fae_hot_fraction = 0.0;  // share of lookups served by FAE's GPU

  double UpdlrmSpeedupVsCpu() const {
    return dlrm_cpu.AvgBatchTotal() / updlrm.AvgBatchTotal();
  }
  double UpdlrmSpeedupVsHybrid() const {
    return dlrm_hybrid.AvgBatchTotal() / updlrm.AvgBatchTotal();
  }
  double UpdlrmSpeedupVsFae() const {
    return fae.AvgBatchTotal() / updlrm.AvgBatchTotal();
  }
};

/// Runs all four systems over the whole trace. The trace must satisfy
/// the config's table shapes.
Result<SystemComparison> CompareSystems(const dlrm::DlrmConfig& config,
                                        const trace::Trace& trace,
                                        const ComparisonOptions& options);

}  // namespace updlrm::core
