// Inter-batch pipelining estimate.
//
// The paper executes batches serially: stage 1 -> stage 2 -> stage 3
// per batch. The two stages' resources are disjoint — stages 1/3 use
// the host and its DIMM buses, stage 2 the DPUs — so a production
// serving loop can push batch k+1's indices while the DPUs execute
// batch k (double-buffered index/output regions in MRAM). This module
// turns a sequence of per-batch stage timings into a steady-state
// pipelined makespan:
//
//   makespan ≈ max(Σ host work, Σ DPU work) + fill + drain
//
// where host work is stage 1 + stage 3 + CPU aggregation and DPU work
// is stage 2. It is an optimistic two-resource bound (no MRAM buffer
// contention), intended for the what-if ablation bench/abl_pipelining.
#pragma once

#include <span>

#include "common/units.h"
#include "updlrm/report.h"

namespace updlrm::core {

struct PipelineEstimate {
  Nanos serial_ns = 0.0;     // the engine's sequential embedding time
  Nanos pipelined_ns = 0.0;  // two-resource overlap bound
  Nanos host_work_ns = 0.0;  // total stage-1 + stage-3 + aggregation
  Nanos dpu_work_ns = 0.0;   // total stage-2

  double Speedup() const {
    return pipelined_ns <= 0.0 ? 0.0 : serial_ns / pipelined_ns;
  }
  /// Which resource bounds the steady state.
  bool HostBound() const { return host_work_ns >= dpu_work_ns; }
};

/// Estimates the pipelined embedding-layer makespan for a batch
/// sequence. An empty span yields a zeroed estimate (a serving loop
/// that has executed no batches has no makespan to bound).
PipelineEstimate EstimatePipelinedEmbedding(
    std::span<const StageBreakdown> batches);

}  // namespace updlrm::core
