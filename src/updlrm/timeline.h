// Per-DPU stage-2 timeline capture and emission.
//
// When tracing is enabled, the engine records one DpuTraceSlice per
// (table, bin) stage-2 launch — the work counts and priced cycles that
// already flow through the launch path, captured with zero extra model
// evaluation. EmitBatchDpuTimeline later (post-run, outside any hot
// loop) turns a batch's slices into simulated-clock trace events:
//   * one "kernel" slice per (table, bin) on the DPU-array track
//     (pid kDpuPid, tid = the bin's first global DPU id; the bin's
//     other column shards run the identical kernel),
//   * a WRAM-hit marker on slices served partly from the pinned tier,
//   * a "straggler" marker on the slowest slice — the DPU whose kernel
//     bounds the batch's stage-2 latency, and
//   * optionally, per-tasklet phase slices for that straggler: the
//     kernel is re-simulated once with KernelTimeline capture (cost:
//     one extra SimulateEmbeddingKernel per *emitted* batch, bounded by
//     the trace sampling rate), showing where inside the kernel the
//     time went (pid kTaskletPid; MRAM-DMA occupancy as a phase arg).
//
// Capture and emission are pure observation: simulated results are
// bit-exact with tracing on or off.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "pim/kernel_cost.h"
#include "pim/system.h"

namespace updlrm::core {

/// One (table, bin) stage-2 launch of a batch.
struct DpuTraceSlice {
  std::uint32_t table = 0;
  std::uint32_t bin = 0;
  /// The bin's first global DPU id; the bin spans `col_shards`
  /// consecutive ids, all running this identical kernel.
  std::uint32_t first_dpu = 0;
  std::uint32_t col_shards = 1;
  Cycles cycles = 0;
  pim::EmbeddingKernelWork work;
};

/// All stage-2 launches of one batch, in fixed (group, bin) task order.
struct BatchDpuTrace {
  std::vector<DpuTraceSlice> slices;
  /// Index of the slowest slice (first one at max, so deterministic).
  std::size_t straggler = 0;
  Cycles max_cycles = 0;
  /// Per-rank stage-1/3 byte rollups (indexed by rank id) for the
  /// rank-level trace track; empty when capture was off.
  std::vector<std::uint64_t> rank_push_bytes;
  std::vector<std::uint64_t> rank_pull_bytes;
};

/// Emits `trace` as simulated-clock events anchored at `s2_start_ns`
/// (the batch's stage-2 start; kernels begin after the launch
/// overhead). No-op when tracing is disabled or the trace is empty.
void EmitBatchDpuTimeline(const pim::DpuSystem& system,
                          const BatchDpuTrace& trace,
                          std::uint64_t batch_index, Nanos s2_start_ns,
                          bool tasklet_detail);

}  // namespace updlrm::core
