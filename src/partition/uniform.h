// Uniform EMT partitioning and the tile-shape optimizer (§3.1).
//
// Uniform partitioning cuts the table into equal contiguous row blocks
// (N_r rows x N_c columns per DPU). The tile optimizer solves the
// paper's Eq. (1)-(3): enumerate the feasible N_c = 2k (k = 1..4),
// estimate T_c-comm + T_lkp + T_d-comm per batch with the same timing
// models the simulator uses, and pick the argmin.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "dlrm/embedding.h"
#include "partition/plan.h"
#include "pim/system.h"

namespace updlrm::partition {

/// Equal contiguous row blocks: row r -> bin r / N_r.
Result<PartitionPlan> UniformPartition(const GroupGeometry& geom);

struct TileCandidate {
  std::uint32_t nc = 0;
  std::uint64_t nr = 0;  // rows per bin
  Nanos stage1_ns = 0;   // CPU->DPU index transfer
  Nanos stage2_ns = 0;   // DPU lookup + reduce
  Nanos stage3_ns = 0;   // DPU->CPU partial results
  Nanos total_ns = 0;
};

struct TileOptimizerResult {
  TileCandidate best;
  std::vector<TileCandidate> candidates;  // all feasible Nc, ascending
};

/// Paper's default search space: N_c = 2k, 1 <= k <= 4 (Eq. 3).
std::span<const std::uint32_t> DefaultNcCandidates();

/// Estimates per-batch embedding-layer time for each feasible N_c under
/// the balanced-access assumption of §3.1 and returns the argmin.
/// Candidates violating Eq. (2) (tile exceeding MRAM) or geometry
/// divisibility are skipped; fails if none are feasible.
Result<TileOptimizerResult> OptimizeTileShape(
    dlrm::TableShape table, std::uint32_t dpus_per_table,
    std::size_t batch_size, double avg_reduction,
    const pim::DpuSystem& system,
    std::span<const std::uint32_t> nc_candidates = DefaultNcCandidates());

}  // namespace updlrm::partition
