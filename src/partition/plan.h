// Partition plans: how one embedding table maps onto its DPU group.
//
// A table of R rows x C columns served by `dpus_per_table` DPUs is tiled
// two ways at once (§3.1):
//   * columns are split into C / Nc *column shards* (every row slice of
//     one shard lives on DPUs of that shard);
//   * rows are split into `row_shards` *bins*; which rows land in which
//     bin is what the three partitioning methods differ on.
// DPU (bin b, shard c) holds the Nc-wide slices of bin b's rows. The
// same row->bin assignment applies to every column shard, so a plan is
// fully described by GroupGeometry + row_bin[] (+ cache placement for
// the cache-aware method).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cache/cache_list.h"
#include "common/status.h"
#include "common/units.h"
#include "dlrm/embedding.h"

namespace updlrm::partition {

struct GroupGeometry {
  dlrm::TableShape table;
  std::uint32_t dpus_per_table = 0;
  std::uint32_t nc = 0;          // columns per tile (paper's N_c)
  std::uint32_t col_shards = 0;  // C / Nc
  std::uint32_t row_shards = 0;  // dpus_per_table / col_shards (bins)

  /// Validates divisibility (C % Nc == 0, dpus % col_shards == 0) and
  /// computes the derived shard counts.
  static Result<GroupGeometry> Make(dlrm::TableShape table,
                                    std::uint32_t dpus_per_table,
                                    std::uint32_t nc);

  std::uint32_t row_bytes() const { return nc * 4; }

  /// DPU index within the group for (bin, column shard).
  std::uint32_t DpuLocal(std::uint32_t bin, std::uint32_t col_shard) const {
    UPDLRM_CHECK(bin < row_shards && col_shard < col_shards);
    return bin * col_shards + col_shard;
  }

  /// Rows per bin under uniform tiling (paper's N_r; last bin short).
  std::uint64_t UniformRowsPerBin() const {
    return CeilDiv(table.rows, row_shards);
  }
};

enum class Method { kUniform, kNonUniform, kCacheAware };

std::string_view MethodName(Method m);
std::string_view MethodShortName(Method m);  // "U" / "NU" / "CA"

/// Per-bin byte capacities available for table data inside one MRAM
/// bank. The engine reserves space for the stage-1 index buffers and
/// stage-3 output buffers; the cache-aware method additionally carves a
/// cache region out of the EMT share.
struct BinCapacity {
  std::uint64_t emt_bytes = 0;
  std::uint64_t cache_bytes = 0;

  static BinCapacity FromMram(std::uint64_t mram_bytes,
                              std::uint64_t reserved_io_bytes,
                              std::uint64_t cache_bytes);
};

struct PartitionPlan {
  GroupGeometry geom;
  Method method = Method::kUniform;

  /// row id -> bin (size == table.rows, values < row_shards).
  std::vector<std::uint32_t> row_bin;

  /// Cache placement; empty lists when the method does not cache.
  cache::CacheRes cache;
  /// list index -> bin.
  std::vector<std::int32_t> list_bin;
  /// item id -> list index or -1 (derived from `cache`, kept for O(1)
  /// routing).
  std::vector<std::int32_t> item_list;

  /// Rows replicated into every bin's replica region (sorted, unique,
  /// disjoint from cache-list members); lookups of these rows are
  /// routed adaptively. See partition/replication.h.
  std::vector<std::uint32_t> replicated_rows;

  bool has_cache() const { return !cache.lists.empty(); }
  bool has_replication() const { return !replicated_rows.empty(); }

  /// Bytes of the per-bin replica region (every bin holds a copy).
  std::uint64_t ReplicaBytesPerBin() const {
    return replicated_rows.size() *
           static_cast<std::uint64_t>(geom.row_bytes());
  }

  /// Rows stored in the EMT region of each bin (cached and replicated
  /// items excluded — they live in the cache/replica regions).
  std::vector<std::uint64_t> EmtRowsPerBin() const;

  /// Cache-region bytes needed in each bin.
  std::vector<std::uint64_t> CacheBytesPerBin() const;

  /// Structural invariants: every row in exactly one bin, cache lists
  /// disjoint & placed, and both regions within `capacity`.
  Status Validate(const BinCapacity& capacity) const;
};

}  // namespace updlrm::partition
