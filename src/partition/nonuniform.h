// Non-uniform EMT partitioning (§3.2).
//
// Real traces have strongly skewed item popularity, so equal row blocks
// leave some DPUs with orders of magnitude more lookups than others.
// The non-uniform method treats each row bin as a bin-packing bin with
// fixed count: sort items by profiled access frequency (descending) and
// greedily assign each to the bin with the lowest aggregate frequency
// that still has EMT capacity. O(R) over items with a small per-bin
// scan, as in the paper.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.h"
#include "partition/plan.h"

namespace updlrm::partition {

struct NonUniformOptions {
  /// Per-bin EMT capacity in rows (e.g. BinCapacity.emt_bytes /
  /// row_bytes). 0 means unlimited.
  std::uint64_t max_rows_per_bin = 0;

  /// §3.2: "One could batch items when doing the assignment to reduce
  /// algorithm complexity." Consecutive items (in descending-frequency
  /// order) are assigned `assignment_batch` at a time to the current
  /// least-loaded bin — one argmin scan per batch instead of per item.
  /// 1 (default) is the paper's per-item greedy.
  ///
  /// The power-law *head* is always assigned per-item regardless
  /// (the first `head_items_per_bin * bins` items): lumping the few
  /// dominant items into one bin would wreck the balance the method
  /// exists to provide, while batching the near-uniform tail is free.
  std::uint64_t assignment_batch = 1;
  std::uint64_t head_items_per_bin = 32;

  /// Precomputed descending-frequency order (ItemsByFrequency(freq),
  /// e.g. trace::TableProfile::by_freq). The permutation depends only
  /// on `freq`, so callers building several plans from one profile can
  /// share it instead of re-sorting every row per plan. Empty =
  /// compute internally; non-empty must have one entry per row.
  std::span<const std::uint32_t> order;
};

/// Greedy frequency-balanced assignment. `freq[r]` is the profiled
/// access count of row r (size must equal table rows). Fails with
/// CapacityExceeded when the rows cannot fit the bins.
Result<PartitionPlan> NonUniformPartition(
    const GroupGeometry& geom, std::span<const std::uint64_t> freq,
    const NonUniformOptions& options = {});

}  // namespace updlrm::partition
