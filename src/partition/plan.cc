#include "partition/plan.h"

#include <algorithm>

namespace updlrm::partition {

Result<GroupGeometry> GroupGeometry::Make(dlrm::TableShape table,
                                          std::uint32_t dpus_per_table,
                                          std::uint32_t nc) {
  if (table.rows == 0 || table.cols == 0) {
    return Status::InvalidArgument("table shape must be non-empty");
  }
  if (dpus_per_table == 0) {
    return Status::InvalidArgument("dpus_per_table must be >= 1");
  }
  if (nc == 0 || nc % 2 != 0) {
    // Nc*4 bytes must be 8-byte aligned for MRAM DMA (§3.1: Nc = 2k).
    return Status::InvalidArgument("nc must be a positive even number");
  }
  if (table.cols % nc != 0) {
    return Status::InvalidArgument("nc must divide the embedding dim");
  }
  GroupGeometry g;
  g.table = table;
  g.dpus_per_table = dpus_per_table;
  g.nc = nc;
  g.col_shards = table.cols / nc;
  if (dpus_per_table % g.col_shards != 0) {
    return Status::InvalidArgument(
        "column shards (" + std::to_string(g.col_shards) +
        ") must divide dpus_per_table (" + std::to_string(dpus_per_table) +
        ")");
  }
  g.row_shards = dpus_per_table / g.col_shards;
  if (g.table.rows < g.row_shards) {
    return Status::InvalidArgument("fewer rows than row shards");
  }
  return g;
}

std::string_view MethodName(Method m) {
  switch (m) {
    case Method::kUniform:
      return "uniform";
    case Method::kNonUniform:
      return "non-uniform";
    case Method::kCacheAware:
      return "cache-aware";
  }
  return "unknown";
}

std::string_view MethodShortName(Method m) {
  switch (m) {
    case Method::kUniform:
      return "U";
    case Method::kNonUniform:
      return "NU";
    case Method::kCacheAware:
      return "CA";
  }
  return "?";
}

BinCapacity BinCapacity::FromMram(std::uint64_t mram_bytes,
                                  std::uint64_t reserved_io_bytes,
                                  std::uint64_t cache_bytes) {
  UPDLRM_CHECK_MSG(reserved_io_bytes + cache_bytes <= mram_bytes,
                   "reserved + cache regions exceed MRAM");
  return BinCapacity{mram_bytes - reserved_io_bytes - cache_bytes,
                     cache_bytes};
}

std::vector<std::uint64_t> PartitionPlan::EmtRowsPerBin() const {
  std::vector<std::uint64_t> rows(geom.row_shards, 0);
  for (std::uint64_t r = 0; r < row_bin.size(); ++r) {
    const bool cached =
        !item_list.empty() && item_list[r] >= 0;
    const bool replicated =
        !replicated_rows.empty() &&
        std::binary_search(replicated_rows.begin(),
                           replicated_rows.end(),
                           static_cast<std::uint32_t>(r));
    if (!cached && !replicated) ++rows[row_bin[r]];
  }
  return rows;
}

std::vector<std::uint64_t> PartitionPlan::CacheBytesPerBin() const {
  std::vector<std::uint64_t> bytes(geom.row_shards, 0);
  for (std::size_t l = 0; l < cache.lists.size(); ++l) {
    UPDLRM_CHECK(l < list_bin.size() && list_bin[l] >= 0);
    bytes[list_bin[l]] += cache.lists[l].StorageBytes(geom.row_bytes());
  }
  return bytes;
}

Status PartitionPlan::Validate(const BinCapacity& capacity) const {
  if (row_bin.size() != geom.table.rows) {
    return Status::InvalidArgument("row_bin must cover every row");
  }
  for (std::uint32_t bin : row_bin) {
    if (bin >= geom.row_shards) {
      return Status::OutOfRange("row assigned to nonexistent bin");
    }
  }
  if (has_cache()) {
    UPDLRM_RETURN_IF_ERROR(cache.Validate(geom.table.rows));
    if (list_bin.size() != cache.lists.size()) {
      return Status::InvalidArgument("every cache list needs a bin");
    }
    for (std::int32_t bin : list_bin) {
      if (bin < 0 || static_cast<std::uint32_t>(bin) >= geom.row_shards) {
        return Status::OutOfRange("cache list assigned to nonexistent bin");
      }
    }
    if (item_list.size() != geom.table.rows) {
      return Status::InvalidArgument(
          "item_list must cover every row when caching");
    }
  } else if (!list_bin.empty() || !cache.lists.empty()) {
    return Status::InvalidArgument("cache metadata without cache lists");
  }

  if (has_replication()) {
    if (!std::is_sorted(replicated_rows.begin(), replicated_rows.end())) {
      return Status::InvalidArgument("replicated_rows must be sorted");
    }
    if (std::adjacent_find(replicated_rows.begin(),
                           replicated_rows.end()) !=
        replicated_rows.end()) {
      return Status::InvalidArgument("replicated_rows must be unique");
    }
    if (replicated_rows.back() >= geom.table.rows) {
      return Status::OutOfRange("replicated row beyond table");
    }
    if (!item_list.empty()) {
      for (std::uint32_t row : replicated_rows) {
        if (item_list[row] >= 0) {
          return Status::InvalidArgument(
              "row " + std::to_string(row) +
              " is both cached and replicated");
        }
      }
    }
  }

  const std::vector<std::uint64_t> emt_rows = EmtRowsPerBin();
  for (std::uint32_t b = 0; b < geom.row_shards; ++b) {
    // Every bin holds the replica region in addition to its own rows.
    const std::uint64_t emt_bytes =
        emt_rows[b] * geom.row_bytes() + ReplicaBytesPerBin();
    if (emt_bytes > capacity.emt_bytes) {
      return Status::CapacityExceeded(
          "bin " + std::to_string(b) + " EMT region needs " +
          std::to_string(emt_bytes) + " bytes, capacity " +
          std::to_string(capacity.emt_bytes));
    }
  }
  if (has_cache()) {
    const std::vector<std::uint64_t> cache_bytes = CacheBytesPerBin();
    for (std::uint32_t b = 0; b < geom.row_shards; ++b) {
      if (cache_bytes[b] > capacity.cache_bytes) {
        return Status::CapacityExceeded(
            "bin " + std::to_string(b) + " cache region needs " +
            std::to_string(cache_bytes[b]) + " bytes, capacity " +
            std::to_string(capacity.cache_bytes));
      }
    }
  }
  return Status::Ok();
}

}  // namespace updlrm::partition
