// DPU-to-table allocation (extension for heterogeneous tables).
//
// The paper duplicates one dataset into 8 identical EMTs and splits the
// 256 DPUs evenly. With heterogeneous tables an even split wastes DPUs:
// a 100k-row side table gets as many as a 10M-row user table, and
// stage 2 waits for the overloaded group. Allocation assigns each table
// a DPU count proportional to its rows or its profiled traffic, in
// units of the column-shard width (every group needs a whole number of
// row shards).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "dlrm/embedding.h"

namespace updlrm::partition {

enum class DpuAllocationPolicy {
  kEqual,                // the paper's setup: num_dpus / num_tables each
  kProportionalRows,     // weight = table rows (capacity balance)
  kProportionalTraffic,  // weight = profiled lookups (time balance)
};

/// Splits `num_dpus` across tables. Every table receives a positive
/// multiple of `col_shards` DPUs (at least one row shard), never more
/// row shards than it has rows, and the counts sum to exactly num_dpus.
/// `weights` is required (same size as shapes) for kProportionalTraffic
/// and ignored otherwise.
Result<std::vector<std::uint32_t>> AllocateDpus(
    std::span<const dlrm::TableShape> shapes, std::uint32_t num_dpus,
    std::uint32_t col_shards, DpuAllocationPolicy policy,
    std::span<const double> weights = {});

}  // namespace updlrm::partition
