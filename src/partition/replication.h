// Hot-row replication (extension; cf. RecNMP's hot-entry replication).
//
// Even a perfectly frequency-balanced partition leaves per-batch load
// variance: within one batch the hottest rows land wherever their bin
// is, and stage 2 waits for the slowest DPU. Replicating the top-k
// uncached rows into *every* bin lets the engine route each of their
// lookups to whichever bin currently has the least work, shaving the
// per-batch maximum toward the mean at a cost of k extra row slices per
// DPU. bench/abl_replication quantifies the trade-off.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.h"
#include "partition/plan.h"

namespace updlrm::partition {

/// Marks the `top_k` most frequently accessed rows that are not members
/// of cache lists as replicated (plan.replicated_rows). Rows with zero
/// profiled frequency are never replicated. Returns the number of rows
/// actually marked. Idempotent: any previous replication is replaced.
/// `order` optionally supplies the precomputed descending-frequency
/// permutation (ItemsByFrequency(freq)); empty = compute internally.
Result<std::size_t> ApplyReplication(PartitionPlan& plan,
                                     std::span<const std::uint64_t> freq,
                                     std::uint32_t top_k,
                                     std::span<const std::uint32_t> order = {});

}  // namespace updlrm::partition
