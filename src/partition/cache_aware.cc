#include "partition/cache_aware.h"

#include <algorithm>
#include <limits>

#include "trace/profiler.h"

namespace updlrm::partition {

Result<CacheAwareResult> CacheAwarePartition(
    const GroupGeometry& geom, std::span<const std::uint64_t> freq,
    const cache::CacheRes& cache_res, const CacheAwareOptions& options) {
  if (freq.size() != geom.table.rows) {
    return Status::InvalidArgument("freq must have one entry per table row");
  }
  UPDLRM_RETURN_IF_ERROR(cache_res.Validate(geom.table.rows));
  if (!options.order.empty() && options.order.size() != freq.size()) {
    return Status::InvalidArgument(
        "order hint must have one entry per table row");
  }

  const std::uint32_t bins = geom.row_shards;
  const std::uint32_t row_bytes = geom.row_bytes();
  const std::uint64_t emt_row_capacity =
      options.capacity.emt_bytes / row_bytes;

  CacheAwareResult result;
  PartitionPlan& plan = result.plan;
  plan.geom = geom;
  plan.method = Method::kCacheAware;
  plan.row_bin.assign(geom.table.rows, 0);

  // part_count: effective (post-caching) access load per bin. Signed —
  // line 10's benefit subtraction can transiently go negative for lists
  // whose cached hits dominate.
  std::vector<double> part_count(bins, 0.0);
  std::vector<std::uint64_t> cache_used(bins, 0);
  std::vector<std::uint64_t> emt_rows(bins, 0);

  // Lines 4-10: place each cache list (cache_res is benefit-sorted) on
  // the least-loaded bin with room in its cache region.
  for (const auto& list : cache_res.lists) {
    const std::uint64_t need = list.StorageBytes(row_bytes);
    std::int64_t best = -1;
    for (std::uint32_t b = 0; b < bins; ++b) {
      if (cache_used[b] + need > options.capacity.cache_bytes) continue;
      if (best < 0 || part_count[b] < part_count[best]) best = b;
    }
    if (best < 0) {
      if (!options.drop_unplaceable_lists) {
        return Status::CapacityExceeded(
            "cache list of " + std::to_string(need) +
            " bytes fits no bin's cache region");
      }
      ++result.dropped_lists;
      continue;  // items fall through to the EMT pass below
    }
    const auto bin = static_cast<std::uint32_t>(best);
    plan.cache.lists.push_back(list);
    plan.list_bin.push_back(static_cast<std::int32_t>(bin));
    cache_used[bin] += need;
    for (std::uint32_t item : list.items) {
      plan.row_bin[item] = bin;
      part_count[bin] += static_cast<double>(freq[item]);
    }
    part_count[bin] -= list.benefit;  // line 10
  }

  plan.item_list = plan.cache.BuildItemToList(geom.table.rows);

  // Lines 11-15: uncached items, most frequent first, to the bin with
  // the lowest effective load and EMT capacity left.
  std::vector<std::uint32_t> computed_order;
  if (options.order.empty()) computed_order = trace::ItemsByFrequency(freq);
  const std::span<const std::uint32_t> order =
      options.order.empty() ? std::span<const std::uint32_t>(computed_order)
                            : options.order;
  for (std::uint32_t row : order) {
    if (plan.item_list[row] >= 0) continue;  // cache hit: already placed
    std::int64_t best = -1;
    for (std::uint32_t b = 0; b < bins; ++b) {
      if (emt_rows[b] >= emt_row_capacity) continue;
      if (best < 0 || part_count[b] < part_count[best] ||
          (part_count[b] == part_count[best] &&
           emt_rows[b] < emt_rows[best])) {
        best = b;
      }
    }
    if (best < 0) {
      return Status::CapacityExceeded(
          "EMT regions full: row " + std::to_string(row) + " fits nowhere");
    }
    const auto bin = static_cast<std::uint32_t>(best);
    plan.row_bin[row] = bin;
    part_count[bin] += static_cast<double>(freq[row]);
    ++emt_rows[bin];
  }

  return result;
}

}  // namespace updlrm::partition
