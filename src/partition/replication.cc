#include "partition/replication.h"

#include <algorithm>

#include "trace/profiler.h"

namespace updlrm::partition {

Result<std::size_t> ApplyReplication(PartitionPlan& plan,
                                     std::span<const std::uint64_t> freq,
                                     std::uint32_t top_k,
                                     std::span<const std::uint32_t> order_hint) {
  if (freq.size() != plan.geom.table.rows) {
    return Status::InvalidArgument("freq must have one entry per row");
  }
  if (!order_hint.empty() && order_hint.size() != freq.size()) {
    return Status::InvalidArgument(
        "order hint must have one entry per table row");
  }
  plan.replicated_rows.clear();
  if (top_k == 0) return std::size_t{0};

  std::vector<std::uint32_t> computed_order;
  if (order_hint.empty()) computed_order = trace::ItemsByFrequency(freq);
  const std::span<const std::uint32_t> order =
      order_hint.empty() ? std::span<const std::uint32_t>(computed_order)
                         : order_hint;
  plan.replicated_rows.reserve(top_k);
  for (std::uint32_t row : order) {
    if (plan.replicated_rows.size() >= top_k) break;
    if (freq[row] == 0) break;  // order is descending: all zero from here
    const bool cached =
        !plan.item_list.empty() && plan.item_list[row] >= 0;
    if (cached) continue;  // cached rows already collapse into one read
    plan.replicated_rows.push_back(row);
  }
  std::sort(plan.replicated_rows.begin(), plan.replicated_rows.end());
  return plan.replicated_rows.size();
}

}  // namespace updlrm::partition
