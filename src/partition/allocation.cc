#include "partition/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace updlrm::partition {

Result<std::vector<std::uint32_t>> AllocateDpus(
    std::span<const dlrm::TableShape> shapes, std::uint32_t num_dpus,
    std::uint32_t col_shards, DpuAllocationPolicy policy,
    std::span<const double> weights) {
  if (shapes.empty()) {
    return Status::InvalidArgument("need at least one table");
  }
  if (col_shards == 0) {
    return Status::InvalidArgument("col_shards must be >= 1");
  }
  if (num_dpus % col_shards != 0) {
    return Status::InvalidArgument(
        "num_dpus must be a multiple of the column-shard count");
  }
  const std::uint64_t units = num_dpus / col_shards;  // row shards total
  const std::size_t tables = shapes.size();
  if (units < tables) {
    return Status::CapacityExceeded(
        "fewer row-shard units (" + std::to_string(units) +
        ") than tables (" + std::to_string(tables) + ")");
  }
  if (policy == DpuAllocationPolicy::kProportionalTraffic &&
      weights.size() != tables) {
    return Status::InvalidArgument(
        "traffic policy needs one weight per table");
  }

  std::vector<double> w(tables, 1.0);
  switch (policy) {
    case DpuAllocationPolicy::kEqual:
      break;
    case DpuAllocationPolicy::kProportionalRows:
      for (std::size_t t = 0; t < tables; ++t) {
        w[t] = static_cast<double>(shapes[t].rows);
      }
      break;
    case DpuAllocationPolicy::kProportionalTraffic:
      for (std::size_t t = 0; t < tables; ++t) {
        w[t] = std::max(weights[t], 0.0);
      }
      break;
  }
  const double total_w = std::accumulate(w.begin(), w.end(), 0.0);
  if (total_w <= 0.0) {
    std::fill(w.begin(), w.end(), 1.0);
  }

  // Largest-remainder apportionment with a 1-unit floor and a per-table
  // ceiling of its row count (a row shard cannot be empty).
  const double sum_w = std::accumulate(w.begin(), w.end(), 0.0);
  std::vector<std::uint64_t> alloc(tables, 1);
  std::vector<double> remainder(tables, 0.0);
  std::uint64_t assigned = tables;
  for (std::size_t t = 0; t < tables; ++t) {
    const double ideal =
        static_cast<double>(units) * w[t] / sum_w;
    const auto floor_units = static_cast<std::uint64_t>(ideal);
    const std::uint64_t cap = std::max<std::uint64_t>(shapes[t].rows, 1);
    const std::uint64_t grant =
        std::min(cap, std::max<std::uint64_t>(floor_units, 1));
    assigned += grant - 1;  // the floor of 1 is already counted
    alloc[t] = grant;
    remainder[t] = ideal - static_cast<double>(floor_units);
  }
  if (assigned > units) {
    // Over-committed (floors + caps): shave from the largest grants.
    while (assigned > units) {
      const std::size_t biggest = static_cast<std::size_t>(
          std::max_element(alloc.begin(), alloc.end()) - alloc.begin());
      if (alloc[biggest] == 1) {
        return Status::CapacityExceeded(
            "cannot satisfy 1 row shard per table");
      }
      --alloc[biggest];
      --assigned;
    }
  }
  // Distribute leftovers by largest remainder, respecting the caps.
  while (assigned < units) {
    std::size_t best = tables;
    for (std::size_t t = 0; t < tables; ++t) {
      if (alloc[t] >= shapes[t].rows) continue;  // capped
      if (best == tables || remainder[t] > remainder[best]) best = t;
    }
    if (best == tables) break;  // everything capped: leave units unused
    ++alloc[best];
    remainder[best] -= 1.0;
    ++assigned;
  }
  // Any still-unassigned units (all tables capped) go to table 0's
  // group only if it can hold them; otherwise they stay idle, which the
  // caller's geometry check will surface. In practice rows >> shards.

  std::vector<std::uint32_t> result(tables);
  for (std::size_t t = 0; t < tables; ++t) {
    result[t] = static_cast<std::uint32_t>(alloc[t] * col_shards);
  }
  return result;
}

}  // namespace updlrm::partition
