// Cache-aware non-uniform partitioning — Algorithm 1 of the paper.
//
// Partial-sum caching removes many EMT reads but concentrates the
// remaining traffic on whichever DPUs hold popular cache lists, undoing
// the balance non-uniform partitioning won (Fig. 6). Algorithm 1 places
// cache lists and uncached rows jointly: each bin's running load is the
// *effective* access count — the sum of its items' frequencies minus the
// accesses its cached lists avoid (`benefit`, line 10) — so the greedy
// argmin balances EMT + cache traffic together.
#pragma once

#include <cstdint>
#include <span>

#include "cache/cache_list.h"
#include "common/status.h"
#include "partition/plan.h"

namespace updlrm::partition {

struct CacheAwareOptions {
  /// Per-bin byte budgets for the EMT and cache MRAM regions.
  BinCapacity capacity;
  /// When a list fits no bin's remaining cache space: drop it (its items
  /// fall back to the EMT region) instead of failing. Algorithm 1's
  /// "enough cache capacity" guard.
  bool drop_unplaceable_lists = true;

  /// Precomputed descending-frequency order (ItemsByFrequency(freq),
  /// e.g. trace::TableProfile::by_freq) for lines 11-15. Empty =
  /// compute internally; non-empty must have one entry per row.
  std::span<const std::uint32_t> order;
};

struct CacheAwareResult {
  PartitionPlan plan;
  std::size_t dropped_lists = 0;  // lists that found no cache space
};

/// Runs Algorithm 1. `freq` is obj_freq (access count per row);
/// `cache_res` is the (benefit-sorted) cache list collection, already
/// trimmed to the desired capacity fraction (§3.3).
Result<CacheAwareResult> CacheAwarePartition(
    const GroupGeometry& geom, std::span<const std::uint64_t> freq,
    const cache::CacheRes& cache_res, const CacheAwareOptions& options);

}  // namespace updlrm::partition
