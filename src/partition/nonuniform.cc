#include "partition/nonuniform.h"

#include <algorithm>
#include <limits>

#include "trace/profiler.h"

namespace updlrm::partition {

Result<PartitionPlan> NonUniformPartition(
    const GroupGeometry& geom, std::span<const std::uint64_t> freq,
    const NonUniformOptions& options) {
  if (freq.size() != geom.table.rows) {
    return Status::InvalidArgument(
        "freq must have one entry per table row");
  }
  if (options.assignment_batch == 0) {
    return Status::InvalidArgument("assignment_batch must be >= 1");
  }
  if (!options.order.empty() && options.order.size() != freq.size()) {
    return Status::InvalidArgument(
        "order hint must have one entry per table row");
  }
  const std::uint64_t capacity = options.max_rows_per_bin == 0
                                     ? std::numeric_limits<std::uint64_t>::max()
                                     : options.max_rows_per_bin;
  if (capacity * geom.row_shards < geom.table.rows) {
    return Status::CapacityExceeded(
        "rows exceed total bin capacity: " +
        std::to_string(geom.table.rows) + " rows, " +
        std::to_string(capacity) + " per bin x " +
        std::to_string(geom.row_shards) + " bins");
  }

  PartitionPlan plan;
  plan.geom = geom;
  plan.method = Method::kNonUniform;
  plan.row_bin.assign(geom.table.rows, 0);

  std::vector<std::uint32_t> computed_order;
  if (options.order.empty()) computed_order = trace::ItemsByFrequency(freq);
  const std::span<const std::uint32_t> order =
      options.order.empty() ? std::span<const std::uint32_t>(computed_order)
                            : options.order;

  std::vector<std::uint64_t> bin_load(geom.row_shards, 0);
  std::vector<std::uint64_t> bin_rows(geom.row_shards, 0);
  for (std::size_t i = 0; i < order.size();) {
    // Lowest aggregate frequency wins; ties break toward fewer rows so
    // the zero-frequency tail still spreads evenly.
    std::int64_t best = -1;
    for (std::uint32_t b = 0; b < geom.row_shards; ++b) {
      if (bin_rows[b] >= capacity) continue;
      if (best < 0 || bin_load[b] < bin_load[best] ||
          (bin_load[b] == bin_load[best] &&
           bin_rows[b] < bin_rows[best])) {
        best = b;
      }
    }
    UPDLRM_CHECK_MSG(best >= 0, "capacity pre-check guarantees a free bin");
    // Assign up to `assignment_batch` consecutive items, but never past
    // the bin's capacity (the next batch re-runs the argmin). The
    // dominant head is always assigned per-item.
    const bool in_head =
        i < options.head_items_per_bin * geom.row_shards;
    const std::uint64_t take = std::min<std::uint64_t>(
        in_head ? 1 : options.assignment_batch,
        capacity - bin_rows[best]);
    for (std::uint64_t k = 0; k < take && i < order.size(); ++k, ++i) {
      const std::uint32_t row = order[i];
      plan.row_bin[row] = static_cast<std::uint32_t>(best);
      bin_load[best] += freq[row];
      ++bin_rows[best];
    }
  }
  return plan;
}

}  // namespace updlrm::partition
