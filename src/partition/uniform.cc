#include "partition/uniform.h"

#include <array>
#include <cmath>

namespace updlrm::partition {

Result<PartitionPlan> UniformPartition(const GroupGeometry& geom) {
  PartitionPlan plan;
  plan.geom = geom;
  plan.method = Method::kUniform;
  const std::uint64_t nr = geom.UniformRowsPerBin();
  plan.row_bin.resize(geom.table.rows);
  for (std::uint64_t r = 0; r < geom.table.rows; ++r) {
    plan.row_bin[r] = static_cast<std::uint32_t>(r / nr);
  }
  return plan;
}

std::span<const std::uint32_t> DefaultNcCandidates() {
  static constexpr std::array<std::uint32_t, 4> kCandidates = {2, 4, 6, 8};
  return kCandidates;
}

Result<TileOptimizerResult> OptimizeTileShape(
    dlrm::TableShape table, std::uint32_t dpus_per_table,
    std::size_t batch_size, double avg_reduction,
    const pim::DpuSystem& system,
    std::span<const std::uint32_t> nc_candidates) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (avg_reduction < 1.0) {
    return Status::InvalidArgument("avg_reduction must be >= 1");
  }

  // Eq. (2): N_r * N_c <= 64 MB / 4 B per DPU.
  const std::uint64_t max_tile_values = system.config().dpu.mram_bytes / 4;

  TileOptimizerResult result;
  for (std::uint32_t nc : nc_candidates) {
    auto geom_or = GroupGeometry::Make(table, dpus_per_table, nc);
    if (!geom_or.ok()) continue;  // infeasible geometry for this Nc
    const GroupGeometry& geom = geom_or.value();

    TileCandidate cand;
    cand.nc = nc;
    cand.nr = geom.UniformRowsPerBin();
    if (cand.nr * nc > max_tile_values) continue;  // violates Eq. (2)
    if (!system.kernel_cost().ValidateWramFit(geom.row_bytes()).ok()) {
      continue;
    }

    // Balanced-access assumption of §3.1: every DPU of a row shard sees
    // batch * Avg_Red / row_shards lookups per batch.
    const auto lookups_per_dpu = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(batch_size) * avg_reduction /
        static_cast<double>(geom.row_shards)));

    // Stage 2: in-DPU lookup + reduction.
    pim::EmbeddingKernelWork work{
        .num_lookups = lookups_per_dpu,
        .num_cache_reads = 0,
        .num_samples = batch_size,
        .row_bytes = geom.row_bytes(),
    };
    cand.stage2_ns =
        system.transfer().KernelLaunchOverhead() +
        CyclesToNanos(system.kernel_cost().KernelCycles(work),
                      system.config().dpu.clock_hz);

    // Stage 1: indices (4 B each) + per-sample offsets to every DPU.
    const std::uint64_t push_bytes =
        lookups_per_dpu * 4 + (batch_size + 1) * 4;
    // Stage 3: one Nc-wide partial sum per sample from every DPU.
    const std::uint64_t pull_bytes =
        static_cast<std::uint64_t>(batch_size) * geom.row_bytes();
    const std::vector<std::uint64_t> push(system.num_dpus(), push_bytes);
    const std::vector<std::uint64_t> pull(system.num_dpus(), pull_bytes);
    cand.stage1_ns = system.transfer().PushTime(push, /*pad_to_max=*/true);
    cand.stage3_ns = system.transfer().PullTime(pull, /*pad_to_max=*/true);

    cand.total_ns = cand.stage1_ns + cand.stage2_ns + cand.stage3_ns;
    result.candidates.push_back(cand);
  }

  if (result.candidates.empty()) {
    return Status::InvalidArgument(
        "no feasible N_c candidate for this table/DPU configuration");
  }
  result.best = result.candidates.front();
  for (const auto& cand : result.candidates) {
    if (cand.total_ns < result.best.total_ns) result.best = cand;
  }
  return result;
}

}  // namespace updlrm::partition
