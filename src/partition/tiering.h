// Statistical memory tiering + cross-rank sharding (RecShard-style).
//
// Fleet-scale serving cannot hold every table replica in PIM memory,
// and per-row access frequencies are wildly skewed (Fig. 5: up to 340x
// between row blocks). This planner splits each table's rows by their
// access-CDF position into placement tiers and spreads the PIM-resident
// rows across shards (rank groups):
//
//   * host-DRAM tier — the coldest tail of the access CDF (at most
//     `dram_epsilon` of the table's total access mass, always including
//     never-accessed rows) stays host-side; the serving layer answers
//     those lookups from the reference table at CPU gather cost;
//   * PIM tier — every remaining row is assigned to exactly one shard
//     by greedy least-loaded placement in descending-frequency order,
//     so each shard receives an equal slice of the access mass (not
//     just an equal row count);
//   * WRAM hint — the plan forwards a per-shard pinned-row budget to
//     the engine's existing WRAM tier (EngineOptions::wram_cache_rows),
//     which clamps it against the kernel's real WRAM headroom.
//
// The plan is pure metadata: owners + dense local row ids. The sharded
// engine (updlrm/scaleout.h) extracts each shard's rows into a
// sub-model and remaps trace indices through `local`, and the
// partition-method machinery (U/NU/CA) then runs unchanged *within*
// each shard. Determinism: every step is a fixed-order scan over
// by_freq (descending frequency, ties by ascending row id), so the same
// profile always yields the same plan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "trace/profiler.h"

namespace updlrm::partition {

/// Owner sentinel for rows tiered to host DRAM.
inline constexpr std::uint32_t kHostDramShard = 0xFFFFFFFFu;

struct TieringOptions {
  /// PIM shards (rank groups) the hot tier spreads over.
  std::uint32_t num_shards = 1;
  /// Max fraction of each table's total access mass allowed to spill
  /// into the host-DRAM tier (coldest rows first). 0 keeps only
  /// never-accessed rows host-side... and with keep_zero_freq_on_pim
  /// unset even those spill. The paper-faithful flat setup uses
  /// num_shards = 1, dram_epsilon = 0, pim_capacity_rows = 0: every row
  /// stays on the single shard and the plan is the identity.
  double dram_epsilon = 0.0;
  /// When true, rows with zero trace accesses stay PIM-resident (the
  /// trace may not cover future traffic); when false they join the
  /// DRAM tier for free (they carry no access mass).
  bool keep_zero_freq_on_pim = false;
  /// Hard per-shard row capacity (0 = unlimited). When the hot tier
  /// would overflow every shard, the coldest overflow rows spill to
  /// host DRAM regardless of dram_epsilon — capacity is a physical
  /// limit, epsilon a quality target. Audited by check::kTierCapacity.
  std::uint64_t pim_capacity_rows_per_shard = 0;
  /// Per-shard WRAM pinned-row budget forwarded to the engine (engine
  /// clamps against real WRAM headroom). 0 disables.
  std::uint32_t wram_rows = 0;

  Status Validate() const;
};

/// One table's tier + shard assignment.
struct TableTierPlan {
  /// Per-row owner: a shard id < num_shards, or kHostDramShard.
  std::vector<std::uint32_t> owner;
  /// Per-row dense local id within its owner, assigned in ascending
  /// global row id order (so a shard's sub-table preserves relative row
  /// order; the DRAM tier's locals index nothing and are informational).
  std::vector<std::uint32_t> local;
  /// Rows per shard (size == num_shards).
  std::vector<std::uint64_t> shard_rows;
  /// Access mass per shard (size == num_shards).
  std::vector<std::uint64_t> shard_accesses;
  std::uint64_t dram_rows = 0;
  std::uint64_t dram_accesses = 0;
  std::uint64_t total_accesses = 0;

  std::uint64_t num_rows() const { return owner.size(); }
};

/// Whole-model tiering plan: one TableTierPlan per table.
struct TierShardingPlan {
  TieringOptions options;
  std::vector<TableTierPlan> tables;

  /// Largest per-shard access-mass imbalance across tables
  /// (max shard mass / mean shard mass; 1.0 = perfectly even).
  double MaxShardImbalance() const;
};

/// Builds the plan from per-table access profiles (freq size gives each
/// table's row count). Deterministic for a given (profiles, options).
Result<TierShardingPlan> BuildTierShardingPlan(
    std::span<const trace::TableProfile> profiles, TieringOptions options);

}  // namespace updlrm::partition
