#include "partition/tiering.h"

#include <algorithm>

namespace updlrm::partition {

Status TieringOptions::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (num_shards >= kHostDramShard) {
    return Status::InvalidArgument("num_shards collides with the DRAM owner");
  }
  if (dram_epsilon < 0.0 || dram_epsilon > 1.0) {
    return Status::InvalidArgument("dram_epsilon must be in [0, 1]");
  }
  return Status::Ok();
}

double TierShardingPlan::MaxShardImbalance() const {
  double worst = 1.0;
  for (const TableTierPlan& t : tables) {
    std::uint64_t pim_mass = 0;
    std::uint64_t max_mass = 0;
    for (const std::uint64_t m : t.shard_accesses) {
      pim_mass += m;
      max_mass = std::max(max_mass, m);
    }
    if (pim_mass == 0) continue;
    const double mean = static_cast<double>(pim_mass) /
                        static_cast<double>(t.shard_accesses.size());
    worst = std::max(worst, static_cast<double>(max_mass) / mean);
  }
  return worst;
}

namespace {

TableTierPlan PlanTable(const trace::TableProfile& profile,
                        const TieringOptions& options) {
  const std::size_t rows = profile.freq.size();
  const std::uint32_t shards = options.num_shards;
  TableTierPlan plan;
  plan.owner.assign(rows, kHostDramShard);
  plan.local.assign(rows, 0);
  plan.shard_rows.assign(shards, 0);
  plan.shard_accesses.assign(shards, 0);
  for (const std::uint64_t f : profile.freq) plan.total_accesses += f;

  // Tier split: walk the access CDF from the cold end. Zero-frequency
  // rows spill for free unless pinned; accessed rows spill while the
  // cumulative spilled mass stays within epsilon of the total. by_freq
  // is descending with ties by ascending id, so the reverse walk (and
  // therefore the whole plan) is deterministic.
  std::vector<bool> spilled(rows, false);
  const double budget =
      options.dram_epsilon * static_cast<double>(plan.total_accesses);
  std::uint64_t spilled_mass = 0;
  for (std::size_t i = profile.by_freq.size(); i-- > 0;) {
    const std::uint32_t r = profile.by_freq[i];
    const std::uint64_t f = profile.freq[r];
    if (f == 0) {
      if (!options.keep_zero_freq_on_pim) spilled[r] = true;
      continue;
    }
    if (static_cast<double>(spilled_mass + f) > budget) break;
    spilled_mass += f;
    spilled[r] = true;
  }

  // Shard the PIM tier: hottest rows first, each onto the least-loaded
  // shard (by access mass, then row count, then shard id), so shards
  // receive near-equal slices of the access mass. A full shard (row
  // capacity) drops out; when every shard is full the row spills to
  // DRAM — capacity is physical, epsilon is a quality target.
  for (const std::uint32_t r : profile.by_freq) {
    if (spilled[r]) continue;
    std::uint32_t best = kHostDramShard;
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (options.pim_capacity_rows_per_shard > 0 &&
          plan.shard_rows[s] >= options.pim_capacity_rows_per_shard) {
        continue;
      }
      if (best == kHostDramShard ||
          plan.shard_accesses[s] < plan.shard_accesses[best] ||
          (plan.shard_accesses[s] == plan.shard_accesses[best] &&
           plan.shard_rows[s] < plan.shard_rows[best])) {
        best = s;
      }
    }
    if (best == kHostDramShard) {
      spilled[r] = true;
      continue;
    }
    plan.owner[r] = best;
    ++plan.shard_rows[best];
    plan.shard_accesses[best] += profile.freq[r];
  }

  // Dense local ids in ascending global row order per owner (the DRAM
  // tier's ids index the reference table's rows only informationally).
  std::vector<std::uint32_t> next(shards + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint32_t o = plan.owner[r];
    if (o == kHostDramShard) {
      plan.local[r] = next[shards]++;
      ++plan.dram_rows;
      plan.dram_accesses += profile.freq[r];
    } else {
      plan.local[r] = next[o]++;
    }
  }
  return plan;
}

}  // namespace

Result<TierShardingPlan> BuildTierShardingPlan(
    std::span<const trace::TableProfile> profiles, TieringOptions options) {
  UPDLRM_RETURN_IF_ERROR(options.Validate());
  if (profiles.empty()) {
    return Status::InvalidArgument("tiering needs at least one profile");
  }
  TierShardingPlan plan;
  plan.options = options;
  plan.tables.reserve(profiles.size());
  for (const trace::TableProfile& p : profiles) {
    if (p.freq.size() != p.by_freq.size()) {
      return Status::InvalidArgument(
          "profile freq / by_freq size mismatch");
    }
    plan.tables.push_back(PlanTable(p, options));
  }
  return plan;
}

}  // namespace updlrm::partition
