// Load / balance metrics for partition plans (Figs. 5-6 analysis).
//
// ReplayLoads re-executes the routing decision of the DPU kernel over a
// trace — per sample, each >=1-item intersection with a cached list
// costs one cache-region read on the list's bin; every uncached index
// costs one EMT-region read on its row's bin — and reports per-bin
// counts plus balance statistics. This is the ground truth the engine's
// timing is driven by, computable without instantiating a DpuSystem.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/plan.h"
#include "trace/trace.h"

namespace updlrm::partition {

struct LoadReport {
  std::vector<std::uint64_t> emt_reads;    // per bin
  std::vector<std::uint64_t> cache_reads;  // per bin
  std::vector<std::uint64_t> total_reads;  // per bin (emt + cache)

  std::uint64_t sum_reads = 0;       // all bins, after caching
  std::uint64_t uncached_reads = 0;  // trace lookups (no-cache baseline)

  double imbalance = 0.0;     // max / mean of total_reads
  double cv = 0.0;            // coefficient of variation
  double max_min_ratio = 0.0;

  /// Fraction of memory accesses the cache removed (the paper reports
  /// ~40% for Movie with GRACE, Fig. 6).
  double TrafficReduction() const {
    if (uncached_reads == 0) return 0.0;
    return 1.0 - static_cast<double>(sum_reads) /
                     static_cast<double>(uncached_reads);
  }
};

/// Replays `table` against `plan` and accumulates per-bin read counts.
LoadReport ReplayLoads(const trace::TableTrace& table,
                       const PartitionPlan& plan);

}  // namespace updlrm::partition
