#include "partition/metrics.h"

#include <numeric>

#include "common/stats.h"

namespace updlrm::partition {

LoadReport ReplayLoads(const trace::TableTrace& table,
                       const PartitionPlan& plan) {
  const std::uint32_t bins = plan.geom.row_shards;
  LoadReport report;
  report.emt_reads.assign(bins, 0);
  report.cache_reads.assign(bins, 0);
  report.uncached_reads = table.num_lookups();

  const bool cached = plan.has_cache();
  std::vector<bool> list_hit(plan.cache.lists.size(), false);
  std::vector<std::uint32_t> touched;
  for (std::size_t s = 0; s < table.num_samples(); ++s) {
    touched.clear();
    for (std::uint32_t idx : table.Sample(s)) {
      UPDLRM_CHECK(idx < plan.row_bin.size());
      const std::int32_t l =
          cached && !plan.item_list.empty() ? plan.item_list[idx] : -1;
      if (l >= 0) {
        if (!list_hit[l]) {
          list_hit[l] = true;
          touched.push_back(static_cast<std::uint32_t>(l));
        }
      } else {
        ++report.emt_reads[plan.row_bin[idx]];
      }
    }
    // Any nonempty intersection with a cached list is one MRAM read of
    // the matching subset partial sum.
    for (std::uint32_t l : touched) {
      ++report.cache_reads[plan.list_bin[l]];
      list_hit[l] = false;
    }
  }

  report.total_reads.assign(bins, 0);
  for (std::uint32_t b = 0; b < bins; ++b) {
    report.total_reads[b] = report.emt_reads[b] + report.cache_reads[b];
    report.sum_reads += report.total_reads[b];
  }

  const std::vector<double> loads = ToDoubles(report.total_reads);
  report.imbalance = ImbalanceRatio(loads);
  report.cv = CoefficientOfVariation(loads);
  report.max_min_ratio = MaxMinRatio(loads);
  return report;
}

}  // namespace updlrm::partition
