#include "baselines/systems.h"

#include <algorithm>

#include "trace/profiler.h"

namespace updlrm::baselines {

namespace {

std::uint64_t LookupsInRange(const trace::Trace& trace,
                             trace::BatchRange range) {
  std::uint64_t lookups = 0;
  for (const auto& table : trace.tables) {
    lookups +=
        table.offsets()[range.end] - table.offsets()[range.begin];
  }
  return lookups;
}

std::uint32_t GpuKernelCount(const dlrm::DlrmConfig& config) {
  // One kernel per FC layer plus the interaction kernel.
  return static_cast<std::uint32_t>(config.bottom_hidden.size() + 1 +
                                    config.top_hidden.size() + 1 + 1);
}

// Share of lookups the LLC-resident hot rows absorb: the top rows that
// fit the LLC's embedding share, weighted by profiled access frequency.
// The LLC budget splits evenly across tables; each table's share is
// weighted by its lookup volume.
double ComputeLlcHitFraction(const dlrm::DlrmConfig& config,
                             const trace::Trace& trace,
                             const host::CpuTimingModel& cpu) {
  const std::uint32_t row_bytes = config.embedding_dim * 4;
  const std::uint64_t per_table =
      cpu.LlcResidentRows(row_bytes) / config.num_tables;
  if (per_table == 0 || trace.tables.empty()) return 0.0;
  double hit_lookups = 0.0;
  double total_lookups = 0.0;
  for (std::uint32_t t = 0; t < config.num_tables; ++t) {
    const auto freq =
        trace::ItemFrequencies(trace.tables[t], config.RowsInTable(t));
    const auto lookups =
        static_cast<double>(trace.tables[t].num_lookups());
    hit_lookups += trace::TopKAccessShare(freq, per_table) * lookups;
    total_lookups += lookups;
  }
  return total_lookups == 0.0 ? 0.0 : hit_lookups / total_lookups;
}

}  // namespace

std::vector<SystemDescription> Table2() {
  return {
      {"DLRM-CPU [13]", "CPU-only", "Intel Xeon(R) Silver 4110 (2.10GHz) x32",
       "128GB DDR4"},
      {"DLRM-Hybrid [4]", "CPU-GPU hybrid",
       "Intel Xeon(R) Silver 4110 (2.10GHz) x32",
       "128GB DDR4 + 11GB GDDR5X (GTX 1080 Ti)"},
      {"FAE [4]", "CPU-GPU hybrid + hot-row GPU cache",
       "Intel Xeon(R) Silver 4110 (2.10GHz) x32",
       "128GB DDR4 + 11GB GDDR5X (GTX 1080 Ti)"},
      {"UpDLRM (ours)", "CPU + UPMEM PIM",
       "Intel Xeon(R) Silver 4110 (2.10GHz) x32",
       "128GB DDR4 + 256x UPMEM DPU (350MHz, 16GB MRAM)"},
  };
}

// ---------------------------------------------------------------- DlrmCpu

DlrmCpu::DlrmCpu(dlrm::DlrmConfig config, const trace::Trace& trace,
                 host::CpuModelParams cpu)
    : config_(std::move(config)), trace_(trace), cpu_(cpu) {
  llc_hit_fraction_ = ComputeLlcHitFraction(config_, trace_, cpu_);
}

BaselineBatchReport DlrmCpu::RunBatch(trace::BatchRange range) const {
  const std::size_t batch = range.size();
  const std::uint32_t row_bytes = config_.embedding_dim * 4;

  BaselineBatchReport report;
  report.embedding =
      cpu_.GatherTime(LookupsInRange(trace_, range), row_bytes,
                      config_.TotalTableBytes(),
                      llc_hit_fraction_) +
      cpu_.BagOverhead(config_.num_tables);
  report.dense_compute =
      cpu_.MlpTime(batch * (config_.BottomFlopsPerSample() +
                            config_.TopFlopsPerSample())) +
      cpu_.StreamTime(batch *
                      static_cast<std::uint64_t>(config_.num_tables + 1) *
                      config_.embedding_dim * 4);
  report.total = report.embedding + report.dense_compute;
  return report;
}

BaselineReport DlrmCpu::RunAll(std::size_t batch_size) const {
  BaselineReport report;
  for (const auto& range :
       trace::MakeBatches(trace_.num_samples(), batch_size)) {
    report.Accumulate(RunBatch(range));
    report.num_samples += range.size();
  }
  return report;
}

// ------------------------------------------------------------- DlrmHybrid

DlrmHybrid::DlrmHybrid(dlrm::DlrmConfig config, const trace::Trace& trace,
                       host::CpuModelParams cpu, host::GpuModelParams gpu)
    : config_(std::move(config)), trace_(trace), cpu_(cpu), gpu_(gpu) {
  llc_hit_fraction_ = ComputeLlcHitFraction(config_, trace_, cpu_);
}

BaselineBatchReport DlrmHybrid::RunBatch(trace::BatchRange range) const {
  const std::size_t batch = range.size();
  const std::uint32_t row_bytes = config_.embedding_dim * 4;

  BaselineBatchReport report;
  // The CPU still owns the EMTs and executes every lookup; the GPU
  // stalls on this (§4.2).
  report.embedding =
      cpu_.GatherTime(LookupsInRange(trace_, range), row_bytes,
                      config_.TotalTableBytes(),
                      llc_hit_fraction_) +
      cpu_.BagOverhead(config_.num_tables);

  const std::uint64_t dense_bytes =
      batch * static_cast<std::uint64_t>(config_.dense_features) * 4;
  const std::uint64_t pooled_bytes =
      batch * static_cast<std::uint64_t>(config_.num_tables) * row_bytes;
  report.transfer = gpu_.PcieTransfer(dense_bytes) +
                    gpu_.PcieTransfer(pooled_bytes) +
                    gpu_.PcieTransfer(batch * 4);  // CTR back

  report.dense_compute =
      gpu_.MlpTime(batch * (config_.BottomFlopsPerSample() +
                            config_.TopFlopsPerSample()),
                   GpuKernelCount(config_));
  report.overhead = gpu_.BatchSyncOverhead();
  report.total = report.embedding + report.transfer +
                 report.dense_compute + report.overhead;
  return report;
}

BaselineReport DlrmHybrid::RunAll(std::size_t batch_size) const {
  BaselineReport report;
  for (const auto& range :
       trace::MakeBatches(trace_.num_samples(), batch_size)) {
    report.Accumulate(RunBatch(range));
    report.num_samples += range.size();
  }
  return report;
}

// -------------------------------------------------------------------- Fae

Fae::Fae(dlrm::DlrmConfig config, const trace::Trace& trace,
         FaeOptions options, host::CpuModelParams cpu,
         host::GpuModelParams gpu)
    : config_(std::move(config)),
      trace_(trace),
      options_(options),
      cpu_(cpu),
      gpu_(gpu) {}

Result<std::unique_ptr<Fae>> Fae::Create(dlrm::DlrmConfig config,
                                         const trace::Trace& trace,
                                         FaeOptions options,
                                         host::CpuModelParams cpu,
                                         host::GpuModelParams gpu) {
  UPDLRM_RETURN_IF_ERROR(config.Validate());
  if (trace.num_tables() != config.num_tables) {
    return Status::InvalidArgument("trace table count mismatches model");
  }
  std::unique_ptr<Fae> fae(
      new Fae(std::move(config), trace, options, cpu, gpu));
  fae->ClassifyLookups();
  return fae;
}

void Fae::ClassifyLookups() {
  const std::uint32_t row_bytes = config_.embedding_dim * 4;
  const std::uint64_t per_table_bytes =
      options_.hot_cache_bytes / config_.num_tables;
  hot_rows_per_table_ = per_table_bytes / row_bytes;  // per-table budget

  hot_lookups_.assign(trace_.num_samples(), 0);
  cold_lookups_.assign(trace_.num_samples(), 0);
  std::vector<bool> is_hot;
  std::vector<bool> is_llc;
  const std::uint64_t llc_rows_per_table =
      cpu_.LlcResidentRows(row_bytes) / config_.num_tables;
  std::uint64_t cold_total = 0;
  std::uint64_t cold_llc = 0;
  // FAE picks its hot set from *historical* profiling, not the served
  // requests; profile on the first half of the trace so short traces do
  // not oracle-fit the cache to the evaluation samples.
  const std::size_t profile_samples =
      std::max<std::size_t>(1, trace_.num_samples() / 2);
  for (std::uint32_t t = 0; t < config_.num_tables; ++t) {
    const std::uint64_t rows = config_.RowsInTable(t);
    const std::uint64_t hot_budget =
        std::min<std::uint64_t>(rows, hot_rows_per_table_);
    std::vector<std::uint64_t> freq(rows, 0);
    for (std::size_t s = 0; s < profile_samples; ++s) {
      for (std::uint32_t idx : trace_.tables[t].Sample(s)) ++freq[idx];
    }
    const auto by_freq = trace::ItemsByFrequency(freq);
    is_hot.assign(rows, false);
    is_llc.assign(rows, false);
    for (std::uint64_t k = 0; k < hot_budget && freq[by_freq[k]] > 0;
         ++k) {
      is_hot[by_freq[k]] = true;
    }
    // The host LLC caches the hottest rows the GPU does *not* hold.
    std::fill(is_llc.begin(), is_llc.end(), false);
    std::uint64_t llc_used = 0;
    for (std::uint32_t id : by_freq) {
      if (llc_used >= llc_rows_per_table || freq[id] == 0) break;
      if (is_hot[id]) continue;
      is_llc[id] = true;
      ++llc_used;
    }
    for (std::size_t s = 0; s < trace_.num_samples(); ++s) {
      for (std::uint32_t idx : trace_.tables[t].Sample(s)) {
        if (is_hot[idx]) {
          ++hot_lookups_[s];
        } else {
          ++cold_lookups_[s];
          ++cold_total;
          if (is_llc[idx]) ++cold_llc;
        }
      }
    }
  }
  cold_llc_fraction_ =
      cold_total == 0 ? 0.0
                      : static_cast<double>(cold_llc) /
                            static_cast<double>(cold_total);
}

double Fae::HotLookupFraction() const {
  std::uint64_t hot = 0;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < hot_lookups_.size(); ++s) {
    hot += hot_lookups_[s];
    total += hot_lookups_[s] + cold_lookups_[s];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hot) / static_cast<double>(total);
}

BaselineBatchReport Fae::RunBatch(trace::BatchRange range) const {
  const std::size_t batch = range.size();
  const std::uint32_t row_bytes = config_.embedding_dim * 4;

  std::uint64_t hot = 0;
  std::uint64_t cold = 0;
  for (std::size_t s = range.begin; s < range.end; ++s) {
    hot += hot_lookups_[s];
    cold += cold_lookups_[s];
  }

  BaselineBatchReport report;
  // Cold lookups gather on the CPU (with its own LLC-resident hot rows);
  // hot lookups gather in GPU memory.
  report.embedding =
      cpu_.GatherTime(cold, row_bytes,
                      config_.TotalTableBytes(),
                      cold_llc_fraction_) +
      cpu_.BagOverhead(config_.num_tables) +
      gpu_.GatherTime(hot, row_bytes);

  const std::uint64_t dense_bytes =
      batch * static_cast<std::uint64_t>(config_.dense_features) * 4;
  // Cold partial sums cross PCIe and merge with the GPU-resident hot
  // partial sums on device.
  const std::uint64_t cold_partial_bytes =
      batch * static_cast<std::uint64_t>(config_.num_tables) * row_bytes;
  report.transfer = gpu_.PcieTransfer(dense_bytes) +
                    gpu_.PcieTransfer(cold_partial_bytes) +
                    gpu_.PcieTransfer(batch * 4);

  report.dense_compute =
      gpu_.MlpTime(batch * (config_.BottomFlopsPerSample() +
                            config_.TopFlopsPerSample()),
                   GpuKernelCount(config_));
  report.overhead = gpu_.BatchSyncOverhead();
  // Unlike DLRM-Hybrid, FAE pipelines the CPU cold gather with the
  // GPU-side work (hot gathers, MLPs, sync): the batch cost is the
  // slower of the two sides plus the PCIe hops between them.
  const Nanos cpu_side =
      cpu_.GatherTime(cold, row_bytes,
                      config_.TotalTableBytes(),
                      cold_llc_fraction_) +
      cpu_.BagOverhead(config_.num_tables);
  const Nanos gpu_side = gpu_.GatherTime(hot, row_bytes) +
                         report.dense_compute + report.overhead;
  report.total = std::max(cpu_side, gpu_side) + report.transfer;
  return report;
}

BaselineReport Fae::RunAll(std::size_t batch_size) const {
  BaselineReport report;
  for (const auto& range :
       trace::MakeBatches(trace_.num_samples(), batch_size)) {
    report.Accumulate(RunBatch(range));
    report.num_samples += range.size();
  }
  return report;
}

}  // namespace updlrm::baselines
