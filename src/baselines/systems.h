// The three comparison systems of Table 2.
//
//   DLRM-CPU    — EMTs and all computation on the host CPU [13].
//   DLRM-Hybrid — EMTs + embedding lookups on the CPU; dense/interaction
//                 MLPs on the GPU; pooled embeddings cross PCIe [4].
//   FAE         — hybrid plus a GPU-resident cache of the hottest
//                 embedding rows; hot lookups gather in device memory
//                 and skip both the CPU gather and the PCIe hop [4].
//
// All three are analytic timing models driven by the same traces and
// model shapes as the UpDLRM engine; the substitution rationale and
// calibration are documented in DESIGN.md §2 and EXPERIMENTS.md.
//
// FAE substitution note: FAE classifies whole *samples* as hot at small
// pooling factors; at this paper's pooling (53-374 lookups per sample)
// essentially no sample is all-hot, so we apply the cache at lookup
// granularity, which strictly favors FAE — a conservative choice when
// UpDLRM is the system under test.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/report.h"
#include "common/status.h"
#include "dlrm/model.h"
#include "host/cpu_model.h"
#include "host/gpu_model.h"
#include "trace/trace.h"

namespace updlrm::baselines {

/// One row of Table 2, for bench output.
struct SystemDescription {
  std::string implementation;
  std::string architecture;
  std::string cpu;
  std::string memory;
};
std::vector<SystemDescription> Table2();

class DlrmCpu {
 public:
  DlrmCpu(dlrm::DlrmConfig config, const trace::Trace& trace,
          host::CpuModelParams cpu = {});

  BaselineBatchReport RunBatch(trace::BatchRange range) const;
  BaselineReport RunAll(std::size_t batch_size) const;

  /// Share of lookups served by LLC-resident hot rows (derived from the
  /// trace histogram; see CpuTimingModel::GatherTime).
  double llc_hit_fraction() const { return llc_hit_fraction_; }

 private:
  dlrm::DlrmConfig config_;
  const trace::Trace& trace_;
  host::CpuTimingModel cpu_;
  double llc_hit_fraction_ = 0.0;
};

class DlrmHybrid {
 public:
  DlrmHybrid(dlrm::DlrmConfig config, const trace::Trace& trace,
             host::CpuModelParams cpu = {}, host::GpuModelParams gpu = {});

  BaselineBatchReport RunBatch(trace::BatchRange range) const;
  BaselineReport RunAll(std::size_t batch_size) const;

 private:
  dlrm::DlrmConfig config_;
  const trace::Trace& trace_;
  host::CpuTimingModel cpu_;
  host::GpuTimingModel gpu_;
  double llc_hit_fraction_ = 0.0;
};

struct FaeOptions {
  /// Device memory provisioned for the hot-row cache, across all
  /// tables. FAE sizes the hot set by an access threshold, which on
  /// these workloads keeps it a small fraction of the tables.
  std::uint64_t hot_cache_bytes = 64 * kMiB;
};

class Fae {
 public:
  static Result<std::unique_ptr<Fae>> Create(dlrm::DlrmConfig config,
                                             const trace::Trace& trace,
                                             FaeOptions options = {},
                                             host::CpuModelParams cpu = {},
                                             host::GpuModelParams gpu = {});

  BaselineBatchReport RunBatch(trace::BatchRange range) const;
  BaselineReport RunAll(std::size_t batch_size) const;

  /// Fraction of trace lookups served by the GPU cache.
  double HotLookupFraction() const;
  std::uint64_t hot_rows_per_table() const { return hot_rows_per_table_; }
  /// Share of the *cold* lookups the host LLC absorbs (the hottest
  /// non-GPU-cached rows still cache on the CPU side).
  double cold_llc_fraction() const { return cold_llc_fraction_; }

 private:
  Fae(dlrm::DlrmConfig config, const trace::Trace& trace,
      FaeOptions options, host::CpuModelParams cpu,
      host::GpuModelParams gpu);
  void ClassifyLookups();

  dlrm::DlrmConfig config_;
  const trace::Trace& trace_;
  FaeOptions options_;
  host::CpuTimingModel cpu_;
  host::GpuTimingModel gpu_;
  std::uint64_t hot_rows_per_table_ = 0;
  double cold_llc_fraction_ = 0.0;
  // Per-sample lookup counts, summed over tables.
  std::vector<std::uint32_t> hot_lookups_;
  std::vector<std::uint32_t> cold_lookups_;
};

}  // namespace updlrm::baselines
