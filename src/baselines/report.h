// Latency reports for the baseline systems of Table 2.
#pragma once

#include <cstddef>

#include "common/units.h"

namespace updlrm::baselines {

struct BaselineBatchReport {
  Nanos embedding = 0.0;      // lookup/gather path (CPU and/or GPU cache)
  Nanos dense_compute = 0.0;  // MLP stacks + interaction
  Nanos transfer = 0.0;       // PCIe movement (hybrid systems)
  Nanos overhead = 0.0;       // kernel-launch / sync / driver costs
  Nanos total = 0.0;
};

struct BaselineReport {
  Nanos embedding = 0.0;
  Nanos dense_compute = 0.0;
  Nanos transfer = 0.0;
  Nanos overhead = 0.0;
  Nanos total = 0.0;
  std::size_t num_batches = 0;
  std::size_t num_samples = 0;

  void Accumulate(const BaselineBatchReport& batch) {
    embedding += batch.embedding;
    dense_compute += batch.dense_compute;
    transfer += batch.transfer;
    overhead += batch.overhead;
    total += batch.total;
    ++num_batches;
  }

  Nanos AvgBatchTotal() const {
    return num_batches == 0 ? 0.0 : total / static_cast<double>(num_batches);
  }
  Nanos AvgBatchEmbedding() const {
    return num_batches == 0 ? 0.0
                            : embedding / static_cast<double>(num_batches);
  }
};

}  // namespace updlrm::baselines
