// Serving demo: drive the UpDLRM engine through the online serving
// subsystem — open-loop arrivals, dynamic batching, double-buffered
// pipelined execution — and print the tail-latency scorecard. A second
// section then serves the *complete* DLRM path through src/pipeline:
// the data-flow auto-tuner picks the overlap/placement plan, the
// functional engine produces real embeddings, and the batched dense
// stages turn them into per-request CTR predictions.
//
//   build/examples/serving_demo
//   build/examples/serving_demo --qps=150000 --arrival=bursty
//       --batch=32 --delay_us=500 --queue=128 --policy=block --seed=7
//
// Everything below runs in *simulated* time: the arrival stream, batch
// cuts, and the pipelined schedule are all derived from the engine's
// per-batch stage timings, so the numbers are identical on any machine
// and at any host thread count. The CTR floats are real model output
// (fixed-order accumulation: bit-exact at any thread count too).
#include <algorithm>
#include <cstdio>

#include "common/cli.h"
#include "pipeline/runner.h"
#include "pipeline/tuner.h"
#include "serve/server.h"
#include "trace/generator.h"

using namespace updlrm;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::printf("flags: %s\n", cl.status().ToString().c_str());
    return 1;
  }
  const double qps = static_cast<double>(cl->GetInt("qps", 100'000));
  const std::string arrival_name = cl->GetString("arrival", "poisson");
  const std::size_t batch =
      static_cast<std::size_t>(cl->GetInt("batch", 64));
  const double delay_us = static_cast<double>(cl->GetInt("delay_us", 1000));
  const std::size_t queue =
      static_cast<std::size_t>(cl->GetInt("queue", 256));
  const std::string policy = cl->GetString("policy", "shed");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cl->GetInt("seed", 1));

  auto arrival = serve::ParseArrivalProcess(arrival_name);
  if (!arrival.ok()) {
    std::printf("--arrival: %s\n", arrival.status().ToString().c_str());
    return 1;
  }

  // A medium-hot workload on a small timing-only DPU system (serving
  // needs latencies, not embedding bytes).
  trace::DatasetSpec spec;
  spec.name = "serving";
  spec.full_name = "serving demo";
  spec.num_items = 20'000;
  spec.avg_reduction = 40.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.5;
  spec.num_hot_items = 512;
  dlrm::DlrmConfig config;
  config.num_tables = 4;
  config.rows_per_table = spec.num_items;
  config.embedding_dim = 32;
  config.dense_features = 13;
  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = 2048;
  trace_options.num_tables = config.num_tables;
  auto trace = trace::TraceGenerator(spec).Generate(trace_options);
  if (!trace.ok()) {
    std::printf("trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }

  pim::DpuSystemConfig system_config;
  system_config.num_dpus = 64;
  system_config.functional = false;
  auto system = pim::DpuSystem::Create(system_config);
  if (!system.ok()) {
    std::printf("system: %s\n", system.status().ToString().c_str());
    return 1;
  }

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.batch_size = batch;
  auto engine = core::UpDlrmEngine::Create(nullptr, config, *trace,
                                           system->get(), engine_options);
  if (!engine.ok()) {
    std::printf("engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // The open-loop request stream: every trace sample arrives once.
  serve::ArrivalOptions arrivals;
  arrivals.process = *arrival;
  arrivals.qps = qps;
  arrivals.seed = seed;
  auto requests = serve::GenerateRequests(*trace, 0, arrivals);
  if (!requests.ok()) {
    std::printf("arrivals: %s\n", requests.status().ToString().c_str());
    return 1;
  }

  serve::ServeOptions options;
  options.batcher.max_batch_size = batch;
  options.batcher.max_queue_delay_ns = delay_us * 1e3;
  options.batcher.queue_capacity = queue;
  options.batcher.policy = policy == "block"
                               ? serve::AdmissionPolicy::kBlock
                               : serve::AdmissionPolicy::kShed;
  auto result = serve::RunServeSimulation(**engine, *requests, options);
  if (!result.ok()) {
    std::printf("serve: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "== serving %zu requests: %s arrivals at %.0f qps, batch <= %zu, "
      "delay <= %.0f us, queue <= %zu (%s) ==\n\n",
      requests->size(), arrival_name.c_str(), qps, batch, delay_us,
      queue, policy.c_str());
  std::printf("batches        %zu (avg %.1f requests)\n",
              result->num_batches, result->avg_batch_size);
  std::printf("completed      %llu   shed %llu\n",
              static_cast<unsigned long long>(result->completed),
              static_cast<unsigned long long>(result->shed));
  std::printf("makespan       %.2f ms\n", result->makespan_ns / 1e6);
  std::printf("utilization    host %.0f%%   dpu %.0f%%\n",
              100.0 * result->utilization.HostUtilization(),
              100.0 * result->utilization.DpuUtilization());
  std::printf("queue depth    max %zu\n\n", result->max_queue_depth);
  std::printf("latency  p50   %8.1f us\n",
              NanosToMicros(result->latency.PercentileNs(50.0)));
  std::printf("         p95   %8.1f us\n",
              NanosToMicros(result->latency.PercentileNs(95.0)));
  std::printf("         p99   %8.1f us\n",
              NanosToMicros(result->latency.PercentileNs(99.0)));
  std::printf("         max   %8.1f us\n",
              NanosToMicros(result->latency.max_ns()));

  // The scorecard a load balancer would consume, as JSON.
  const serve::SloReport report = result->MakeSloReport(
      qps, /*slo_ns=*/3.0 * result->latency.PercentileNs(50.0));
  std::printf("\nslo report (p99 vs 3x p50): %s\n",
              report.ToJson().c_str());

  // --- End-to-end pipeline: tuned data flow, real CTR outputs. ---
  // A functional engine this time: materialized embedding tables, a
  // real DLRM model, and per-request dense features, so each completed
  // request carries an actual click-through prediction.
  auto created = dlrm::DlrmModel::Create(config);
  if (!created.ok()) {
    std::printf("model: %s\n", created.status().ToString().c_str());
    return 1;
  }
  dlrm::DlrmModel model = std::move(created).value();
  const dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(
      trace_options.num_samples, config.dense_features, seed + 1);
  system_config.functional = true;
  auto e2e_system = pim::DpuSystem::Create(system_config);
  if (!e2e_system.ok()) {
    std::printf("system: %s\n", e2e_system.status().ToString().c_str());
    return 1;
  }
  auto e2e_engine =
      core::UpDlrmEngine::Create(&model, config, *trace,
                                 e2e_system->get(), engine_options);
  if (!e2e_engine.ok()) {
    std::printf("engine: %s\n", e2e_engine.status().ToString().c_str());
    return 1;
  }

  // Let the auto-tuner pick the depth / bottom-split / backend mix for
  // this (model, batch size) point, calibrating its short list against
  // the same request stream it will serve.
  pipeline::DataFlowTuner tuner(pipeline::TunerOptions{});
  auto tuned = tuner.Tune(**e2e_engine, *requests, options.batcher);
  if (!tuned.ok()) {
    std::printf("tuner: %s\n", tuned.status().ToString().c_str());
    return 1;
  }

  pipeline::DataFlowServeOptions e2e_options;
  e2e_options.batcher = options.batcher;
  e2e_options.plan = tuned->best;
  auto e2e = pipeline::RunDataFlowSimulation(**e2e_engine, *requests,
                                             &dense, e2e_options);
  if (!e2e.ok()) {
    std::printf("pipeline: %s\n", e2e.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\n== end-to-end pipeline: tuned data flow %s "
      "(%zu candidates searched) ==\n\n",
      pipeline::Name(tuned->best).c_str(), tuned->candidates.size());
  std::printf("completed      %llu requests, %zu batches\n",
              static_cast<unsigned long long>(e2e->completed),
              e2e->num_batches);
  std::printf("utilization    host-bus %.0f%%   dpu %.0f%%   "
              "host-mlp %.0f%%\n",
              100.0 * e2e->utilization.HostUtilization(),
              100.0 * e2e->utilization.DpuUtilization(),
              100.0 * e2e->utilization.HostMlpUtilization());
  std::printf("full-path latency  p50 %8.1f us   p99 %8.1f us\n",
              NanosToMicros(e2e->latency.PercentileNs(50.0)),
              NanosToMicros(e2e->latency.PercentileNs(99.0)));
  std::printf("\nfirst CTR predictions (request -> click probability):\n");
  const std::size_t show = std::min<std::size_t>(8, e2e->ctr.size());
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("  request %zu   sample %llu   ctr %.6f\n", i,
                static_cast<unsigned long long>((*requests)[i].sample),
                static_cast<double>(e2e->ctr[i]));
  }
  return 0;
}
