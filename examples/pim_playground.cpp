// PIM playground: the UPMEM substrate as a standalone library.
//
//   build/examples/pim_playground
//
// Tours the `pim` layer without the DLRM stack on top:
//   1. functional MRAM banks (write/read, alignment, capacity);
//   2. the Fig. 3 access-latency model and where the 32 B knee sits;
//   3. the tasklet pipeline: analytic makespans vs the cycle-driven
//      kernel simulator across tasklet counts;
//   4. host transfer paths: equal vs ragged (padded / sequential).
#include <cstdio>
#include <vector>

#include "pim/kernel_sim.h"
#include "pim/system.h"

using namespace updlrm;

int main() {
  // --- 1. MRAM banks are functional byte stores. ---
  pim::DpuSystemConfig config;
  config.num_dpus = 64;
  config.dpus_per_rank = 64;
  auto system_or = pim::DpuSystem::Create(config);
  if (!system_or.ok()) {
    std::printf("system: %s\n", system_or.status().ToString().c_str());
    return 1;
  }
  pim::DpuSystem& system = **system_or;
  std::printf("system: %u DPUs in %u rank(s), %.0f MHz, %u tasklets\n\n",
              system.num_dpus(), system.num_ranks(),
              config.dpu.clock_hz / 1e6, config.dpu.num_tasklets);

  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  UPDLRM_CHECK(system.dpu(0).mram().Write(0, payload).ok());
  std::vector<std::uint8_t> readback(8);
  UPDLRM_CHECK(system.dpu(0).mram().Read(0, readback).ok());
  std::printf("MRAM round-trip on DPU 0: wrote/read %u..%u; a misaligned "
              "write reports: %s\n",
              readback.front(), readback.back(),
              system.dpu(0)
                  .mram()
                  .Write(4, payload)
                  .ToString()
                  .c_str());

  // --- 2. The Fig. 3 latency curve. ---
  std::printf("\naccess latency (cycles): ");
  for (std::uint32_t bytes : {8u, 16u, 32u, 64u, 256u, 2048u}) {
    std::printf("%uB=%llu  ", bytes,
                static_cast<unsigned long long>(
                    system.mram_timing().AccessLatency(bytes)));
  }
  std::printf("\n=> flat to 32 B: tile columns should keep Nc*4 <= 32 B\n");

  // --- 3. Pipeline model vs executed kernel. ---
  std::printf("\nkernel of 2000 x 32 B lookups, analytic vs executed:\n");
  const pim::EmbeddingKernelWork work{.num_lookups = 2000,
                                      .num_cache_reads = 0,
                                      .num_samples = 64,
                                      .row_bytes = 32};
  for (std::uint32_t tasklets : {1u, 4u, 11u, 14u, 24u}) {
    pim::DpuConfig dpu = config.dpu;
    dpu.num_tasklets = tasklets;
    const pim::EmbeddingKernelCostModel analytic(
        config.kernel_cost, dpu, pim::MramTimingModel(config.mram_timing));
    const auto sim = pim::SimulateEmbeddingKernel(
        dpu, pim::MramTimingModel(config.mram_timing), config.kernel_cost,
        work);
    std::printf(
        "  %2u tasklets: analytic %7llu cycles, executed %7llu cycles "
        "(utilization %.0f%%)\n",
        tasklets,
        static_cast<unsigned long long>(analytic.KernelCycles(work)),
        static_cast<unsigned long long>(sim.makespan),
        sim.issue_utilization * 100.0);
  }
  std::printf("=> gains saturate near the 11-deep revolver pipeline; the "
              "paper runs 14 tasklets\n");

  // --- 4. Transfer paths. ---
  // Non-uniform partitioning produces mildly ragged index buffers
  // (every DPU gets a similar-but-not-equal share of the batch).
  std::vector<std::uint64_t> equal(system.num_dpus(), 4096);
  std::vector<std::uint64_t> ragged(system.num_dpus());
  for (std::uint32_t d = 0; d < system.num_dpus(); ++d) {
    ragged[d] = 3072 + (d * 37) % 2048;  // 3-5 KiB spread
  }
  std::printf("\nhost->MRAM, 64 DPUs:\n");
  std::printf("  equal 4 KiB buffers       : %8.1f us (parallel)\n",
              system.transfer().PushTime(equal, false) / 1e3);
  std::printf("  ragged 3-5 KiB, padded    : %8.1f us (parallel, padded "
              "to 5 KiB)\n",
              system.transfer().PushTime(ragged, true) / 1e3);
  std::printf("  ragged 3-5 KiB, unpadded  : %8.1f us (sequential!)\n",
              system.transfer().PushTime(ragged, false) / 1e3);
  std::printf("=> §2.2's equal-buffer rule is why the engine pads its "
              "index buffers\n");
  return 0;
}
