// Cache study: mine GRACE-style co-occurrence cache lists from a trace
// and explore the capacity/benefit trade-off of §3.3.
//
//   build/examples/cache_study --dataset=goodreads --samples=2560
//
// Prints the top mined lists, the storage each needs (all non-empty
// subset partial sums), and how much traffic survives at different
// cache-capacity fractions.
#include <cstdio>
#include <iostream>

#include "cache/grace.h"
#include "common/cli.h"
#include "common/table.h"
#include "trace/generator.h"
#include "trace/profiler.h"

using namespace updlrm;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::printf("args: %s\n", cl.status().ToString().c_str());
    return 1;
  }
  const std::string name = cl->GetString("dataset", "goodreads");
  const auto samples =
      static_cast<std::size_t>(cl->GetInt("samples", 2'560));

  auto spec = trace::FindDataset(name);
  if (!spec.ok()) {
    std::printf("unknown dataset '%s'\n", name.c_str());
    return 1;
  }

  trace::TraceGeneratorOptions options;
  options.num_samples = samples;
  options.num_tables = 1;
  auto trace = trace::TraceGenerator(*spec).Generate(options);
  if (!trace.ok()) {
    std::printf("trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const auto& table = trace->tables[0];

  auto mined = cache::GraceMiner().Mine(table, spec->num_items);
  if (!mined.ok()) {
    std::printf("mining: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  const std::uint32_t row_bytes = 32 * 4;  // full 32-dim rows

  std::printf("mined %zu cache lists from %s (%llu lookups); total "
              "benefit %.0f avoided reads (%.1f%% of traffic)\n\n",
              mined->lists.size(), spec->name.c_str(),
              static_cast<unsigned long long>(table.num_lookups()),
              mined->TotalBenefit(),
              100.0 * mined->TotalBenefit() /
                  static_cast<double>(table.num_lookups()));

  TablePrinter top({"rank", "items", "size", "slots", "storage",
                    "benefit (avoided reads)"});
  for (std::size_t l = 0; l < std::min<std::size_t>(10, mined->lists.size());
       ++l) {
    const auto& list = mined->lists[l];
    std::string items;
    for (std::uint32_t item : list.items) {
      if (!items.empty()) items += ",";
      items += std::to_string(item);
    }
    top.AddRow({std::to_string(l + 1), "{" + items + "}",
                std::to_string(list.items.size()),
                TablePrinter::Fmt(list.NumSlots()),
                std::to_string(list.StorageBytes(row_bytes)) + " B",
                TablePrinter::Fmt(list.benefit, 0)});
  }
  top.Print(std::cout);

  std::printf("\ncapacity sweep (§3.3):\n");
  TablePrinter sweep({"capacity fraction", "lists kept", "storage",
                      "benefit kept"});
  const double full_benefit = mined->TotalBenefit();
  for (double fraction : {0.1, 0.4, 0.7, 1.0}) {
    const cache::CacheRes trimmed =
        mined->TrimToBudgetFraction(row_bytes, fraction);
    sweep.AddRow({TablePrinter::FmtPercent(fraction, 0),
                  TablePrinter::Fmt(trimmed.lists.size()),
                  TablePrinter::Fmt(static_cast<double>(
                                        trimmed.TotalStorageBytes(
                                            row_bytes)) /
                                        1024.0,
                                    1) +
                      " KiB",
                  TablePrinter::FmtPercent(
                      full_benefit == 0.0
                          ? 0.0
                          : trimmed.TotalBenefit() / full_benefit,
                      1)});
  }
  sweep.Print(std::cout);
  std::printf(
      "\nnote how the benefit concentrates in the highest-ranked lists: "
      "a partial cache keeps most of the win (the paper's 40%%->17%%, "
      "100%%->26%% lookup-time reductions)\n");
  return 0;
}
