// Partitioning explorer: inspect how the three EMT partitioning methods
// map a workload onto DPUs, and what the §3.1 tile optimizer chooses.
//
//   build/examples/partitioning_explorer --dataset=read --samples=2560
//
// For the chosen Table 1 workload it prints (a) the Eq. 1-3 candidate
// table with per-stage estimates, and (b) for each method the per-bin
// load balance obtained by replaying the trace.
#include <cstdio>
#include <iostream>

#include "cache/grace.h"
#include "common/cli.h"
#include "common/table.h"
#include "partition/cache_aware.h"
#include "partition/metrics.h"
#include "partition/nonuniform.h"
#include "partition/uniform.h"
#include "pim/system.h"
#include "trace/generator.h"
#include "trace/profiler.h"

using namespace updlrm;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::printf("args: %s\n", cl.status().ToString().c_str());
    return 1;
  }
  const std::string name = cl->GetString("dataset", "read");
  const auto samples =
      static_cast<std::size_t>(cl->GetInt("samples", 2'560));

  auto spec = trace::FindDataset(name);
  if (!spec.ok()) {
    std::printf("unknown dataset '%s'; try clo/home/meta1/meta2/read/"
                "read2/movie/twitch/goodreads\n",
                name.c_str());
    return 1;
  }
  std::printf("dataset %s (%s): %llu items, avg reduction %.2f\n\n",
              spec->name.c_str(), spec->full_name.c_str(),
              static_cast<unsigned long long>(spec->num_items),
              spec->avg_reduction);

  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = samples;
  trace_options.num_tables = 1;
  auto trace = trace::TraceGenerator(*spec).Generate(trace_options);
  if (!trace.ok()) {
    std::printf("trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const auto& table = trace->tables[0];
  const auto freq = trace::ItemFrequencies(table, spec->num_items);

  // --- The §3.1 tile-shape optimizer on the Table 2 system. ---
  pim::DpuSystemConfig system_config;
  system_config.functional = false;
  auto system = pim::DpuSystem::Create(system_config);
  UPDLRM_CHECK(system.ok());
  const dlrm::TableShape shape{spec->num_items, 32};
  auto tiles = partition::OptimizeTileShape(shape, 32, 64,
                                            spec->avg_reduction, **system);
  if (!tiles.ok()) {
    std::printf("optimizer: %s\n", tiles.status().ToString().c_str());
    return 1;
  }
  std::printf("Eq. 1-3 tile optimizer (32 DPUs per table, batch 64):\n");
  TablePrinter tile_table({"Nc", "Nr (rows/bin)", "stage1", "stage2",
                           "stage3", "total", ""});
  for (const auto& cand : tiles->candidates) {
    tile_table.AddRow(
        {std::to_string(cand.nc), TablePrinter::Fmt(cand.nr),
         TablePrinter::FmtMicros(cand.stage1_ns, 0),
         TablePrinter::FmtMicros(cand.stage2_ns, 0),
         TablePrinter::FmtMicros(cand.stage3_ns, 0),
         TablePrinter::FmtMicros(cand.total_ns, 0),
         cand.nc == tiles->best.nc ? "<= chosen" : ""});
  }
  tile_table.Print(std::cout);

  // --- Per-method balance at the chosen Nc. ---
  auto geom = partition::GroupGeometry::Make(shape, 32, tiles->best.nc);
  UPDLRM_CHECK(geom.ok());
  std::printf("\nper-bin load balance (%u bins, replayed trace):\n",
              geom->row_shards);
  TablePrinter balance({"method", "total MRAM reads", "traffic cut",
                        "max/mean", "CV"});

  auto add_row = [&](const char* label,
                     const partition::PartitionPlan& plan) {
    const auto report = partition::ReplayLoads(table, plan);
    balance.AddRow({label, TablePrinter::Fmt(report.sum_reads),
                    TablePrinter::FmtPercent(report.TrafficReduction(), 1),
                    TablePrinter::Fmt(report.imbalance, 2),
                    TablePrinter::Fmt(report.cv, 3)});
  };

  auto uniform = partition::UniformPartition(*geom);
  UPDLRM_CHECK(uniform.ok());
  add_row("uniform (U)", *uniform);

  auto nu = partition::NonUniformPartition(*geom, freq);
  UPDLRM_CHECK(nu.ok());
  add_row("non-uniform (NU)", *nu);

  auto mined = cache::GraceMiner().Mine(table, spec->num_items);
  UPDLRM_CHECK(mined.ok());
  partition::CacheAwareOptions ca_options;
  ca_options.capacity = partition::BinCapacity::FromMram(
      64 * kMiB, 8 * kMiB,
      AlignUp(mined->TotalStorageBytes(geom->row_bytes()) * 13 /
                  (10 * geom->row_shards),
              8));
  auto ca = partition::CacheAwarePartition(*geom, freq, *mined, ca_options);
  UPDLRM_CHECK(ca.ok());
  add_row("cache-aware (CA)", ca->plan);
  balance.Print(std::cout);

  std::printf("\ncache mining: %zu lists, %zu dropped for capacity, "
              "est. benefit %.0f avoided reads\n",
              ca->plan.cache.lists.size(), ca->dropped_lists,
              ca->plan.cache.TotalBenefit());
  return 0;
}
