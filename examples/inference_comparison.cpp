// Inference comparison: the four Table 2 systems on one workload.
//
//   build/examples/inference_comparison --dataset=read2 --samples=1280
//
// Runs DLRM-CPU, DLRM-Hybrid, FAE and UpDLRM (cache-aware) on the same
// trace and prints per-batch latency with each system's own cost
// breakdown — a single-workload slice of the Fig. 8 experiment.
#include <cstdio>
#include <iostream>

#include "baselines/systems.h"
#include "common/cli.h"
#include "common/table.h"
#include "trace/generator.h"
#include "updlrm/engine.h"

using namespace updlrm;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::printf("args: %s\n", cl.status().ToString().c_str());
    return 1;
  }
  const std::string name = cl->GetString("dataset", "read2");
  const auto samples =
      static_cast<std::size_t>(cl->GetInt("samples", 1'280));
  const std::size_t batch = 64;

  auto spec = trace::FindDataset(name);
  if (!spec.ok()) {
    std::printf("unknown dataset '%s'\n", name.c_str());
    return 1;
  }

  dlrm::DlrmConfig config;
  config.num_tables = 8;
  config.rows_per_table = spec->num_items;
  config.embedding_dim = 32;
  config.dense_features = 13;

  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = samples;
  trace_options.num_tables = 8;
  auto trace = trace::TraceGenerator(*spec).Generate(trace_options);
  if (!trace.ok()) {
    std::printf("trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  std::printf("workload %s: %zu inferences, measured avg reduction "
              "%.1f, batch %zu\n\n",
              spec->name.c_str(), samples,
              trace->tables[0].MeasuredAvgReduction(), batch);

  TablePrinter out({"system", "embedding", "dense/MLP", "transfer",
                    "overhead", "total (ms/batch)", "vs DLRM-CPU"});
  auto add = [&](const char* label, const baselines::BaselineReport& r,
                 double cpu_total) {
    const auto n = static_cast<double>(r.num_batches);
    out.AddRow({label, TablePrinter::FmtMicros(r.embedding / n, 0),
                TablePrinter::FmtMicros(r.dense_compute / n, 0),
                TablePrinter::FmtMicros(r.transfer / n, 0),
                TablePrinter::FmtMicros(r.overhead / n, 0),
                TablePrinter::Fmt(r.total / n / 1e6, 3),
                TablePrinter::FmtSpeedup(cpu_total / (r.total / n))});
  };

  const baselines::DlrmCpu cpu(config, *trace);
  const auto cpu_report = cpu.RunAll(batch);
  const double cpu_total =
      cpu_report.total / static_cast<double>(cpu_report.num_batches);
  add("DLRM-CPU", cpu_report, cpu_total);

  const baselines::DlrmHybrid hybrid(config, *trace);
  add("DLRM-Hybrid", hybrid.RunAll(batch), cpu_total);

  baselines::FaeOptions fae_options;
  fae_options.hot_cache_bytes = 64 * kMiB;
  auto fae = baselines::Fae::Create(config, *trace, fae_options);
  UPDLRM_CHECK(fae.ok());
  add("FAE", (*fae)->RunAll(batch), cpu_total);
  std::printf("FAE hot-row cache: %llu rows/table, serving %.0f%% of "
              "lookups from GPU memory\n",
              static_cast<unsigned long long>((*fae)->hot_rows_per_table()),
              (*fae)->HotLookupFraction() * 100.0);

  pim::DpuSystemConfig system_config;  // Table 2: 256 DPUs
  system_config.functional = false;
  auto system = pim::DpuSystem::Create(system_config);
  UPDLRM_CHECK(system.ok());
  core::EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.batch_size = batch;
  auto engine = core::UpDlrmEngine::Create(nullptr, config, *trace,
                                           system->get(), options);
  if (!engine.ok()) {
    std::printf("engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto up = (*engine)->RunAll(nullptr);
  UPDLRM_CHECK(up.ok());
  {
    const auto n = static_cast<double>(up->num_batches);
    baselines::BaselineReport as_baseline;
    as_baseline.embedding = up->stages.dpu_lookup;
    as_baseline.dense_compute = up->bottom_mlp + up->interaction_top;
    as_baseline.transfer =
        up->stages.cpu_to_dpu + up->stages.dpu_to_cpu;
    as_baseline.overhead = up->stages.cpu_aggregate;
    as_baseline.total = up->total;
    as_baseline.num_batches = up->num_batches;
    add("UpDLRM (CA)", as_baseline, cpu_total);
    std::printf("UpDLRM: Nc=%u auto-tuned; DPU lookup %.0f us/batch of "
                "embedding pipeline\n\n",
                (*engine)->nc(), up->stages.dpu_lookup / n / 1e3);
  }
  out.Print(std::cout);
  return 0;
}
