// Quickstart: run DLRM inference with the embedding layer offloaded to
// a (simulated) UPMEM DPU system, and verify the accelerated pipeline
// against the reference model.
//
//   build/examples/quickstart
//
// Walks the full UpDLRM flow of Fig. 4 in functional mode:
//   1. build a DLRM model and a synthetic access trace;
//   2. create a small DPU system and an engine with cache-aware
//      partitioning (Nc auto-tuned by the §3.1 optimizer);
//   3. run one batch — the engine routes indices to DPUs, executes the
//      lookup/reduce kernel on real MRAM bytes, and aggregates partial
//      sums — and check the CTR output is bit-identical to the
//      reference DLRM forward pass.
#include <cstdio>

#include "trace/generator.h"
#include "updlrm/engine.h"

using namespace updlrm;

int main() {
  // 1. Model: 4 embedding tables of 20,000 rows x 32 dims.
  dlrm::DlrmConfig config;
  config.num_tables = 4;
  config.rows_per_table = 20'000;
  config.embedding_dim = 32;
  config.dense_features = 13;
  auto model = dlrm::DlrmModel::Create(config);
  if (!model.ok()) {
    std::printf("model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Workload: a Zipf-skewed multi-hot trace with co-occurring items.
  trace::DatasetSpec spec;
  spec.name = "quickstart";
  spec.full_name = "quickstart demo";
  spec.num_items = config.rows_per_table;
  spec.avg_reduction = 40.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.5;
  spec.num_hot_items = 512;
  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = 256;
  trace_options.num_tables = config.num_tables;
  auto trace = trace::TraceGenerator(spec).Generate(trace_options);
  if (!trace.ok()) {
    std::printf("trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }

  // 2. A small functional DPU system: 16 DPUs (4 per table).
  pim::DpuSystemConfig system_config;
  system_config.num_dpus = 16;
  system_config.dpus_per_rank = 16;
  system_config.dpu.mram_bytes = 16 * kMiB;
  system_config.functional = true;
  auto system = pim::DpuSystem::Create(system_config);
  if (!system.ok()) {
    std::printf("system: %s\n", system.status().ToString().c_str());
    return 1;
  }

  core::EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.batch_size = 64;
  options.reserved_io_bytes = 1 * kMiB;
  auto engine = core::UpDlrmEngine::Create(&model.value(), config, *trace,
                                           system->get(), options);
  if (!engine.ok()) {
    std::printf("engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine ready: %u DPUs, Nc=%u (auto-tuned), %zu cache "
              "lists on table 0\n",
              (*system)->num_dpus(), (*engine)->nc(),
              (*engine)->groups()[0].plan.cache.lists.size());

  // 3. One batch of 64 inferences.
  const auto dense = dlrm::DenseInputs::Generate(256, 13, 7);
  auto batch = (*engine)->RunBatch({0, 64}, &dense);
  if (!batch.ok()) {
    std::printf("batch: %s\n", batch.status().ToString().c_str());
    return 1;
  }

  std::printf("\nfirst CTR predictions: ");
  for (int i = 0; i < 5; ++i) std::printf("%.4f ", batch->ctr[i]);
  std::printf("...\n");

  // Verify against the reference forward pass (same fixed-point path).
  const auto expected = model->ForwardBatch(dense, *trace, {0, 64}, true);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (batch->ctr[i] != expected[i]) {
      std::printf("MISMATCH at sample %zu: %f vs %f\n", i, batch->ctr[i],
                  expected[i]);
      return 1;
    }
  }
  std::printf("verified: all 64 CTRs bit-identical to the reference "
              "DLRM forward pass\n");

  std::printf("\nsimulated embedding-layer latency (batch of 64):\n");
  std::printf("  stage 1  CPU->DPU indices   %8.1f us\n",
              batch->stages.cpu_to_dpu / 1e3);
  std::printf("  stage 2  DPU lookup+reduce  %8.1f us\n",
              batch->stages.dpu_lookup / 1e3);
  std::printf("  stage 3  DPU->CPU partials  %8.1f us\n",
              batch->stages.dpu_to_cpu / 1e3);
  std::printf("  CPU aggregation             %8.1f us\n",
              batch->stages.cpu_aggregate / 1e3);
  std::printf("  end-to-end (with MLPs)      %8.1f us\n",
              batch->total / 1e3);
  return 0;
}
