// Heterogeneous DLRM: mixed table sizes and DPU allocation policies.
//
//   build/examples/heterogeneous_dlrm
//
// The paper's evaluation duplicates one dataset into 8 identical EMTs;
// real recommenders mix giant user/item tables with small side tables.
// This example builds such a model end to end — per-table dataset
// specs, a heterogeneous trace, traffic-proportional DPU groups — runs
// a functional batch, verifies it against the reference model, and
// shows how the group sizes track each table's traffic.
#include <cstdio>

#include "trace/generator.h"
#include "updlrm/engine.h"

using namespace updlrm;

int main() {
  // A miniature production-shaped model: one big "items" table, one
  // medium "users" table, two small side tables.
  struct TableSpec {
    const char* name;
    std::uint64_t rows;
    double avg_reduction;
    double alpha;
  };
  const TableSpec tables[] = {
      {"items", 40'000, 48.0, 1.0},
      {"users", 10'000, 12.0, 0.9},
      {"geo", 500, 4.0, 0.6},
      {"device", 100, 2.0, 0.4},
  };

  dlrm::DlrmConfig config;
  config.num_tables = 4;
  config.embedding_dim = 16;
  config.dense_features = 8;
  std::vector<trace::DatasetSpec> specs;
  for (const TableSpec& t : tables) {
    config.table_rows.push_back(t.rows);
    trace::DatasetSpec spec;
    spec.name = t.name;
    spec.full_name = t.name;
    spec.num_items = t.rows;
    spec.avg_reduction = t.avg_reduction;
    spec.zipf_alpha = t.alpha;
    spec.rank_jitter = 0.15;
    spec.clique_prob = 0.4;
    spec.num_hot_items = 256;
    spec.seed = 11;
    specs.push_back(std::move(spec));
  }

  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = 256;
  auto trace = trace::GenerateHeterogeneousTrace(specs, trace_options);
  if (!trace.ok()) {
    std::printf("trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }

  auto model = dlrm::DlrmModel::Create(config);
  if (!model.ok()) {
    std::printf("model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  pim::DpuSystemConfig system_config;
  system_config.num_dpus = 32;
  system_config.dpus_per_rank = 32;
  system_config.dpu.mram_bytes = 16 * kMiB;
  system_config.functional = true;
  auto system = pim::DpuSystem::Create(system_config);
  UPDLRM_CHECK(system.ok());

  core::EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.batch_size = 64;
  options.reserved_io_bytes = 1 * kMiB;
  options.allocation =
      partition::DpuAllocationPolicy::kProportionalTraffic;
  auto engine = core::UpDlrmEngine::Create(&model.value(), config, *trace,
                                           system->get(), options);
  if (!engine.ok()) {
    std::printf("engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("traffic-proportional DPU groups (Nc=%u auto-tuned):\n",
              (*engine)->nc());
  for (std::uint32_t t = 0; t < config.num_tables; ++t) {
    const auto& group = (*engine)->groups()[t];
    std::printf(
        "  %-7s %6llu rows, avg reduction %5.1f  ->  %2u DPUs "
        "(%u row shards x %u column shards), %zu cache lists\n",
        tables[t].name,
        static_cast<unsigned long long>(config.table_rows[t]),
        trace->tables[t].MeasuredAvgReduction(),
        group.plan.geom.dpus_per_table, group.plan.geom.row_shards,
        group.plan.geom.col_shards, group.plan.cache.lists.size());
  }

  const auto dense = dlrm::DenseInputs::Generate(256, 8, 21);
  auto batch = (*engine)->RunBatch({0, 64}, &dense);
  if (!batch.ok()) {
    std::printf("batch: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  const auto expected = model->ForwardBatch(dense, *trace, {0, 64}, true);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (batch->ctr[i] != expected[i]) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }
  std::printf(
      "\nverified: 64 CTRs bit-identical to the reference model\n");
  std::printf("embedding pipeline: %.0f us/batch (stage2 %.0f us)\n",
              batch->stages.EmbeddingTotal() / 1e3,
              batch->stages.dpu_lookup / 1e3);
  return 0;
}
