// Ablation: tasklet count vs DPU lookup time.
//
// The paper runs 14 tasklets per DPU (§4.1) and credits the tasklet
// pipeline with masking MRAM latency (§4.4). This ablation sweeps the
// tasklet count on the GoodReads workload to show the saturation point
// near the 11-stage revolver depth — the design rationale for 14.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf("== Ablation: tasklets per DPU vs lookup time (GoodReads, "
              "CA, Nc=8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);
  const std::vector<trace::TableProfile> profiles =
      bench::ProfileTables(w);
  const std::vector<cache::CacheRes> caches =
      bench::MineCaches(w, 0, &profiles);

  TablePrinter out(
      {"tasklets", "lookup time (us/batch)", "speedup vs 1 tasklet"});
  double t1 = 0.0;
  for (std::uint32_t tasklets : {1u, 2u, 4u, 8u, 11u, 14u, 16u, 24u}) {
    pim::DpuSystemConfig config;
    config.functional = false;
    config.dpu.num_tasklets = tasklets;
    auto system = pim::DpuSystem::Create(config);
    UPDLRM_CHECK(system.ok());
    core::EngineOptions options = bench::PaperEngineOptions(
        partition::Method::kCacheAware, 8, scale);
    options.premined_cache = &caches;
    options.preprofiled = &profiles;
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, system->get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
    const double t = report->stages.dpu_lookup /
                     static_cast<double>(report->num_batches);
    if (tasklets == 1) t1 = t;
    out.AddRow({std::to_string(tasklets),
                TablePrinter::FmtMicros(t, 0),
                TablePrinter::FmtSpeedup(t1 / t)});
  }
  out.Print(std::cout);
  std::printf(
      "\nexpected: near-linear gains until ~11 tasklets (the revolver "
      "pipeline depth), then saturation — the paper's 14 sits safely on "
      "the plateau\n");
  return 0;
}
