// Table 1: workload configurations.
//
// Prints the published per-dataset statistics alongside the measured
// statistics of our synthetic reproductions: average reduction, row-
// block skew, and hot-item concentration — the properties the
// partitioning and caching algorithms consume.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "trace/profiler.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf("== Table 1: workload configurations ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  TablePrinter table({"Category", "Workload", "#Items", "Avg.Red (paper)",
                      "Avg.Red (measured)", "block max/min",
                      "top-1% share"});
  for (const auto& spec : trace::Table1Workloads()) {
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    const auto& t0 = w.trace.tables[0];
    const auto freq = trace::ItemFrequencies(t0, spec.num_items);
    const auto blocks = trace::RowBlockCounts(freq, 8);
    const auto skew = trace::AnalyzeSkew(blocks);
    const double top1 =
        trace::TopKAccessShare(freq, spec.num_items / 100);
    table.AddRow({std::string(trace::HotnessName(spec.hotness)),
                  spec.name + " (" + spec.full_name + ")",
                  TablePrinter::Fmt(spec.num_items),
                  TablePrinter::Fmt(spec.avg_reduction, 2),
                  TablePrinter::Fmt(t0.MeasuredAvgReduction(), 2),
                  TablePrinter::Fmt(skew.max_min_ratio, 1),
                  TablePrinter::FmtPercent(top1, 1)});
  }
  table.Print(std::cout);
  std::printf("\npaper: #Items and Avg.Reduction as published; skew and "
              "co-occurrence are calibration targets (DESIGN.md §2)\n");
  return 0;
}
