// Ablation (extension): adaptive hot-row replication.
//
// Beyond the paper: even frequency-balanced partitions suffer per-batch
// variance — stage 2 waits for the slowest DPU. Replicating the top-k
// hottest uncached rows into every bin and routing their lookups to the
// least-loaded DPU shaves the per-batch maximum toward the mean, at the
// cost of k extra row slices per MRAM bank. This bench sweeps k on the
// GoodReads workload over NU and CA partitionings.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: hot-row replication (GoodReads, Nc=8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);
  const std::vector<trace::TableProfile> profiles =
      bench::ProfileTables(w);
  const std::vector<cache::CacheRes> caches =
      bench::MineCaches(w, 0, &profiles);

  TablePrinter out({"method", "replicated rows", "replica MRAM/DPU",
                    "stage2 (us/batch)", "embedding (us/batch)",
                    "vs k=0"});
  for (partition::Method method : {partition::Method::kNonUniform,
                                   partition::Method::kCacheAware}) {
    double base_emb = 0.0;
    for (std::uint32_t k : {0u, 256u, 1024u, 4096u, 16384u}) {
      auto system = bench::MakePaperSystem();
      core::EngineOptions options =
          bench::PaperEngineOptions(method, 8, scale);
      options.premined_cache = &caches;
      options.preprofiled = &profiles;
      options.replicate_hot_rows = k;
      auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                               system.get(), options);
      UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
      auto report = (*engine)->RunAll(nullptr);
      UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
      const auto batches = static_cast<double>(report->num_batches);
      const double emb = report->EmbeddingTotal() / batches;
      if (k == 0) base_emb = emb;
      out.AddRow(
          {std::string(partition::MethodShortName(method)),
           std::to_string(k),
           std::to_string(
               (*engine)->groups()[0].plan.ReplicaBytesPerBin() / kKiB) +
               " KiB",
           TablePrinter::FmtMicros(
               report->stages.dpu_lookup / batches, 0),
           TablePrinter::FmtMicros(emb, 0),
           TablePrinter::FmtSpeedup(base_emb / emb)});
    }
  }
  out.Print(std::cout);
  std::printf(
      "\nreplication attacks the per-batch max-DPU tail that static "
      "frequency balancing cannot; gains saturate once the replicated "
      "head covers the per-batch hot set\n");
  return 0;
}
