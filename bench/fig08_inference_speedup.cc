// Figure 8 (+ Table 2): inference speedup over DLRM-CPU.
//
// Paper result: across the six Table 1 workloads, UpDLRM (cache-aware
// partitioning, auto-tuned Nc) accelerates inference by 1.9x-3.2x over
// DLRM-CPU, 2.2x-4.6x over DLRM-Hybrid and 1.1x-2.3x over FAE, with
// larger gains at higher average reduction; DLRM-Hybrid is the slowest
// (the GPU stalls on CPU-side lookups plus PCIe/sync overheads).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "updlrm/comparison.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf("== Table 2: evaluated hardware architectures ==\n\n");
  {
    TablePrinter t2({"Implementation", "Architecture", "CPU", "Memory"});
    for (const auto& row : baselines::Table2()) {
      t2.AddRow({row.implementation, row.architecture, row.cpu,
                 row.memory});
    }
    t2.Print(std::cout);
  }

  std::printf("\n== Figure 8: inference speedup over DLRM-CPU ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  const bench::HostTimer timer("fig08_inference_speedup", scale);

  // One task per dataset, each producing its comparison into its own
  // slot; rows and the min/max summary fold serially in dataset order,
  // so the printed figure is identical at any thread count.
  const auto specs = trace::Table1Workloads();
  std::vector<core::SystemComparison> comparisons(specs.size());
  ParallelFor(
      specs.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t ds = begin; ds < end; ++ds) {
          const bench::Workload w =
              bench::PrepareWorkload(specs[ds], scale);
          core::ComparisonOptions options;
          options.batch_size = scale.batch_size;
          options.engine = bench::PaperEngineOptions(
              partition::Method::kCacheAware, 0, scale);
          options.fae = bench::PaperFaeOptions();
          options.system.functional = false;  // Table 2, timing-only
          options.num_threads = scale.threads;
          auto cmp = core::CompareSystems(w.config, w.trace, options);
          UPDLRM_CHECK_MSG(cmp.ok(), cmp.status().ToString());
          comparisons[ds] = std::move(cmp).value();
        }
      },
      scale.threads);

  TablePrinter out({"workload", "DLRM-CPU (ms/batch)", "Hybrid speedup",
                    "FAE speedup", "UpDLRM speedup", "UpDLRM/Hybrid",
                    "UpDLRM/FAE", "Nc*"});
  double min_cpu = 1e18, max_cpu = 0, min_hy = 1e18, max_hy = 0,
         min_fae = 1e18, max_fae = 0;
  for (std::size_t ds = 0; ds < specs.size(); ++ds) {
    const core::SystemComparison& cmp = comparisons[ds];
    const double t_cpu = cmp.dlrm_cpu.AvgBatchTotal();
    const double t_hybrid = cmp.dlrm_hybrid.AvgBatchTotal();
    const double t_fae = cmp.fae.AvgBatchTotal();

    const double s_cpu = cmp.UpdlrmSpeedupVsCpu();
    const double s_hybrid = cmp.UpdlrmSpeedupVsHybrid();
    const double s_fae = cmp.UpdlrmSpeedupVsFae();
    min_cpu = std::min(min_cpu, s_cpu);
    max_cpu = std::max(max_cpu, s_cpu);
    min_hy = std::min(min_hy, s_hybrid);
    max_hy = std::max(max_hy, s_hybrid);
    min_fae = std::min(min_fae, s_fae);
    max_fae = std::max(max_fae, s_fae);

    out.AddRow({specs[ds].name, TablePrinter::Fmt(t_cpu / 1e6, 2),
                TablePrinter::FmtSpeedup(t_cpu / t_hybrid),
                TablePrinter::FmtSpeedup(t_cpu / t_fae),
                TablePrinter::FmtSpeedup(s_cpu),
                TablePrinter::FmtSpeedup(s_hybrid),
                TablePrinter::FmtSpeedup(s_fae),
                std::to_string(cmp.nc)});
  }
  out.Print(std::cout);
  std::printf(
      "\n(\"speedup\" columns are relative to DLRM-CPU; Nc* is the "
      "Eq.1-3 auto-tuned tile width)\n");
  std::printf(
      "paper: UpDLRM 1.9-3.2x vs CPU, 2.2-4.6x vs Hybrid, 1.1-2.3x vs "
      "FAE\nmeasured: %.1f-%.1fx vs CPU, %.1f-%.1fx vs Hybrid, "
      "%.1f-%.1fx vs FAE\n",
      min_cpu, max_cpu, min_hy, max_hy, min_fae, max_fae);
  return 0;
}
