// Wall-clock microbenchmarks (google-benchmark) of the library's own
// hot paths: trace sampling, profiling, partitioning, cache mining and
// the engine's per-batch routing. These measure the *simulator's*
// execution cost, not the simulated latencies the fig* benches report.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/grace.h"
#include "common/rng.h"
#include "partition/cache_aware.h"
#include "partition/nonuniform.h"
#include "partition/uniform.h"
#include "trace/generator.h"
#include "trace/profiler.h"
#include "updlrm/engine.h"

namespace updlrm {
namespace {

trace::DatasetSpec BenchSpec(std::uint64_t items = 200'000) {
  trace::DatasetSpec spec;
  spec.name = "micro";
  spec.num_items = items;
  spec.avg_reduction = 64.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.5;
  spec.num_hot_items = 2048;
  spec.seed = 11;
  return spec;
}

const trace::Trace& SharedTrace() {
  static const trace::Trace trace = [] {
    trace::TraceGeneratorOptions options;
    options.num_samples = 1'024;
    options.num_tables = 1;
    auto t = trace::TraceGenerator(BenchSpec()).Generate(options);
    UPDLRM_CHECK(t.ok());
    return std::move(t).value();
  }();
  return trace;
}

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 1.05);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_TraceGeneration(benchmark::State& state) {
  const trace::TraceGenerator gen(BenchSpec(50'000));
  trace::TraceGeneratorOptions options;
  options.num_samples = static_cast<std::size_t>(state.range(0));
  options.num_tables = 1;
  for (auto _ : state) {
    auto t = gen.Generate(options);
    benchmark::DoNotOptimize(t.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(64)->Arg(256);

void BM_ItemFrequencies(benchmark::State& state) {
  const auto& trace = SharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::ItemFrequencies(trace.tables[0], trace.num_items));
  }
}
BENCHMARK(BM_ItemFrequencies);

void BM_NonUniformPartition(benchmark::State& state) {
  const auto& trace = SharedTrace();
  const auto freq =
      trace::ItemFrequencies(trace.tables[0], trace.num_items);
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{trace.num_items, 32}, 32, 8);
  UPDLRM_CHECK(geom.ok());
  for (auto _ : state) {
    auto plan = partition::NonUniformPartition(*geom, freq);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(state.iterations() * trace.num_items);
}
BENCHMARK(BM_NonUniformPartition);

void BM_GraceMining(benchmark::State& state) {
  const auto& trace = SharedTrace();
  const cache::GraceMiner miner;
  for (auto _ : state) {
    auto res = miner.Mine(trace.tables[0], trace.num_items);
    benchmark::DoNotOptimize(res.ok());
  }
}
BENCHMARK(BM_GraceMining);

void BM_CacheAwarePartition(benchmark::State& state) {
  const auto& trace = SharedTrace();
  const auto freq =
      trace::ItemFrequencies(trace.tables[0], trace.num_items);
  auto mined = cache::GraceMiner().Mine(trace.tables[0], trace.num_items);
  UPDLRM_CHECK(mined.ok());
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{trace.num_items, 32}, 32, 8);
  UPDLRM_CHECK(geom.ok());
  partition::CacheAwareOptions options;
  options.capacity = partition::BinCapacity::FromMram(
      64 * kMiB, 8 * kMiB, 8 * kMiB);
  for (auto _ : state) {
    auto plan =
        partition::CacheAwarePartition(*geom, freq, *mined, options);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(state.iterations() * trace.num_items);
}
BENCHMARK(BM_CacheAwarePartition);

void BM_EngineRunBatch(benchmark::State& state) {
  // One timing-only inference batch: routing + cost models.
  static const trace::Trace trace = [] {
    trace::TraceGeneratorOptions options;
    options.num_samples = 256;
    options.num_tables = 8;
    auto t = trace::TraceGenerator(BenchSpec()).Generate(options);
    UPDLRM_CHECK(t.ok());
    return std::move(t).value();
  }();
  dlrm::DlrmConfig config;
  config.num_tables = 8;
  config.rows_per_table = trace.num_items;
  config.embedding_dim = 32;
  pim::DpuSystemConfig sys;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  core::EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.nc = 8;
  auto engine = core::UpDlrmEngine::Create(nullptr, config, trace,
                                           system->get(), options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
  for (auto _ : state) {
    auto batch = (*engine)->RunBatch({0, 64}, nullptr);
    benchmark::DoNotOptimize(batch.ok());
  }
}
BENCHMARK(BM_EngineRunBatch);

}  // namespace
}  // namespace updlrm

BENCHMARK_MAIN();
