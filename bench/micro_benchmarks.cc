// Wall-clock microbenchmarks (google-benchmark) of the library's own
// hot paths: trace sampling, profiling, partitioning, cache mining and
// the engine's per-batch routing. These measure the *simulator's*
// execution cost, not the simulated latencies the fig* benches report.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "cache/grace.h"
#include "common/rng.h"
#include "common/simd.h"
#include "partition/cache_aware.h"
#include "partition/nonuniform.h"
#include "partition/uniform.h"
#include "trace/generator.h"
#include "trace/profiler.h"
#include "updlrm/engine.h"

namespace updlrm {
namespace {

trace::DatasetSpec BenchSpec(std::uint64_t items = 200'000) {
  trace::DatasetSpec spec;
  spec.name = "micro";
  spec.num_items = items;
  spec.avg_reduction = 64.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.5;
  spec.num_hot_items = 2048;
  spec.seed = 11;
  return spec;
}

const trace::Trace& SharedTrace() {
  static const trace::Trace trace = [] {
    trace::TraceGeneratorOptions options;
    options.num_samples = 1'024;
    options.num_tables = 1;
    auto t = trace::TraceGenerator(BenchSpec()).Generate(options);
    UPDLRM_CHECK(t.ok());
    return std::move(t).value();
  }();
  return trace;
}

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 1.05);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_TraceGeneration(benchmark::State& state) {
  const trace::TraceGenerator gen(BenchSpec(50'000));
  trace::TraceGeneratorOptions options;
  options.num_samples = static_cast<std::size_t>(state.range(0));
  options.num_tables = 1;
  for (auto _ : state) {
    auto t = gen.Generate(options);
    benchmark::DoNotOptimize(t.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(64)->Arg(256);

void BM_ItemFrequencies(benchmark::State& state) {
  const auto& trace = SharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::ItemFrequencies(trace.tables[0], trace.num_items));
  }
}
BENCHMARK(BM_ItemFrequencies);

void BM_NonUniformPartition(benchmark::State& state) {
  const auto& trace = SharedTrace();
  const auto freq =
      trace::ItemFrequencies(trace.tables[0], trace.num_items);
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{trace.num_items, 32}, 32, 8);
  UPDLRM_CHECK(geom.ok());
  for (auto _ : state) {
    auto plan = partition::NonUniformPartition(*geom, freq);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(state.iterations() * trace.num_items);
}
BENCHMARK(BM_NonUniformPartition);

void BM_GraceMining(benchmark::State& state) {
  const auto& trace = SharedTrace();
  const cache::GraceMiner miner;
  for (auto _ : state) {
    auto res = miner.Mine(trace.tables[0], trace.num_items);
    benchmark::DoNotOptimize(res.ok());
  }
}
BENCHMARK(BM_GraceMining);

void BM_CacheAwarePartition(benchmark::State& state) {
  const auto& trace = SharedTrace();
  const auto freq =
      trace::ItemFrequencies(trace.tables[0], trace.num_items);
  auto mined = cache::GraceMiner().Mine(trace.tables[0], trace.num_items);
  UPDLRM_CHECK(mined.ok());
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{trace.num_items, 32}, 32, 8);
  UPDLRM_CHECK(geom.ok());
  partition::CacheAwareOptions options;
  options.capacity = partition::BinCapacity::FromMram(
      64 * kMiB, 8 * kMiB, 8 * kMiB);
  for (auto _ : state) {
    auto plan =
        partition::CacheAwarePartition(*geom, freq, *mined, options);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(state.iterations() * trace.num_items);
}
BENCHMARK(BM_CacheAwarePartition);

void BM_EngineRunBatch(benchmark::State& state) {
  // One timing-only inference batch: routing + cost models.
  static const trace::Trace trace = [] {
    trace::TraceGeneratorOptions options;
    options.num_samples = 256;
    options.num_tables = 8;
    auto t = trace::TraceGenerator(BenchSpec()).Generate(options);
    UPDLRM_CHECK(t.ok());
    return std::move(t).value();
  }();
  dlrm::DlrmConfig config;
  config.num_tables = 8;
  config.rows_per_table = trace.num_items;
  config.embedding_dim = 32;
  pim::DpuSystemConfig sys;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  core::EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.nc = 8;
  auto engine = core::UpDlrmEngine::Create(nullptr, config, trace,
                                           system->get(), options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
  for (auto _ : state) {
    auto batch = (*engine)->RunBatch({0, 64}, nullptr);
    benchmark::DoNotOptimize(batch.ok());
  }
}
BENCHMARK(BM_EngineRunBatch);

// ---------------------------------------------------------------------
// Vectorized host-runtime kernels (common/simd.h): scalar vs dispatched
// throughput of the pooled-sum reduction and the dedup gather-map
// counting pass. state.range(0) toggles ForceScalar, so each pair of
// rows reads off the AVX2 speedup directly.
// ---------------------------------------------------------------------

constexpr std::size_t kSimdN = 1 << 16;

void BM_PooledSumAddI32(benchmark::State& state) {
  simd::ForceScalar(state.range(0) != 0);
  std::vector<std::int32_t> src(kSimdN);
  std::vector<std::int64_t> acc(kSimdN, 0);
  Rng rng(3);
  for (auto& v : src) v = static_cast<std::int32_t>(rng.NextU64());
  for (auto _ : state) {
    simd::AddI32ToI64(src.data(), acc.data(), kSimdN);
    benchmark::DoNotOptimize(acc.data());
  }
  simd::ForceScalar(false);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * kSimdN *
      (sizeof(std::int32_t) + sizeof(std::int64_t)));
  state.SetLabel(state.range(0) != 0 ? "scalar"
                                     : (simd::Avx2Available() ? "avx2"
                                                              : "scalar"));
}
BENCHMARK(BM_PooledSumAddI32)->Arg(0)->Arg(1);

void BM_GatherMapUniqueCounts(benchmark::State& state) {
  simd::ForceScalar(state.range(0) != 0);
  Rng rng(4);
  std::vector<std::uint64_t> keys(kSimdN);
  for (auto& k : keys) {
    k = ((rng.NextU64() % 3) << 62) | (rng.NextU64() % (kSimdN / 8));
  }
  std::sort(keys.begin(), keys.end());
  for (auto _ : state) {
    std::uint64_t counts[3] = {0, 0, 0};
    simd::UniqueStreamCounts(keys.data(), kSimdN, counts);
    benchmark::DoNotOptimize(counts);
  }
  simd::ForceScalar(false);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSimdN * sizeof(std::uint64_t));
  state.SetLabel(state.range(0) != 0 ? "scalar"
                                     : (simd::Avx2Available() ? "avx2"
                                                              : "scalar"));
}
BENCHMARK(BM_GatherMapUniqueCounts)->Arg(0)->Arg(1);

void BM_CrossRankReduceAddI64(benchmark::State& state) {
  simd::ForceScalar(state.range(0) != 0);
  std::vector<std::int64_t> src(kSimdN);
  std::vector<std::int64_t> acc(kSimdN, 0);
  Rng rng(8);
  for (auto& v : src) v = static_cast<std::int64_t>(rng.NextU64());
  for (auto _ : state) {
    simd::AddI64ToI64(src.data(), acc.data(), kSimdN);
    benchmark::DoNotOptimize(acc.data());
  }
  simd::ForceScalar(false);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSimdN * 2 * sizeof(std::int64_t));
  state.SetLabel(state.range(0) != 0 ? "scalar"
                                     : (simd::Avx2Available() ? "avx2"
                                                              : "scalar"));
}
BENCHMARK(BM_CrossRankReduceAddI64)->Arg(0)->Arg(1);

// Timed outside google-benchmark so the result lands in
// BENCH_host.json next to the fig* host timings: GB/s of each kernel
// on the scalar and dispatched paths.
double MeasureGbps(void (*run)(), std::uint64_t bytes_per_run) {
  using clock = std::chrono::steady_clock;
  // Warm, then time enough repetitions for ~50 ms.
  run();
  std::size_t reps = 1;
  for (;;) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < reps; ++i) run();
    const double s = std::chrono::duration<double>(clock::now() - start)
                         .count();
    if (s >= 0.05) {
      return static_cast<double>(bytes_per_run) *
             static_cast<double>(reps) / s / 1e9;
    }
    reps *= 4;
  }
}

std::vector<std::int32_t>& SimdSrc() {
  static std::vector<std::int32_t> src = [] {
    std::vector<std::int32_t> v(kSimdN);
    Rng rng(5);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.NextU64());
    return v;
  }();
  return src;
}
std::vector<std::int64_t>& SimdAcc() {
  static std::vector<std::int64_t> acc(kSimdN, 0);
  return acc;
}
std::vector<std::uint64_t>& SimdKeys() {
  static std::vector<std::uint64_t> keys = [] {
    std::vector<std::uint64_t> k(kSimdN);
    Rng rng(6);
    for (auto& x : k) {
      x = ((rng.NextU64() % 3) << 62) | (rng.NextU64() % (kSimdN / 8));
    }
    std::sort(k.begin(), k.end());
    return k;
  }();
  return keys;
}

void RunPooledSum() {
  simd::AddI32ToI64(SimdSrc().data(), SimdAcc().data(), kSimdN);
}
void RunUniqueCounts() {
  std::uint64_t counts[3] = {0, 0, 0};
  simd::UniqueStreamCounts(SimdKeys().data(), kSimdN, counts);
  benchmark::DoNotOptimize(counts);
}

// Cross-rank/cross-shard merge kernel: the int64 lane addition the
// hierarchical reduction tree and the ShardedEngine merge both stream
// through (simd::AddI64ToI64).
std::vector<std::int64_t>& SimdRankSrc() {
  static std::vector<std::int64_t> src = [] {
    std::vector<std::int64_t> v(kSimdN);
    Rng rng(7);
    for (auto& x : v) x = static_cast<std::int64_t>(rng.NextU64());
    return v;
  }();
  return src;
}
void RunRankMerge() {
  static std::vector<std::int64_t> acc(kSimdN, 0);
  simd::AddI64ToI64(SimdRankSrc().data(), acc.data(), kSimdN);
  benchmark::DoNotOptimize(acc.data());
}

}  // namespace

void WriteSimdThroughputRows() {
  constexpr std::uint64_t kPooledBytes =
      kSimdN * (sizeof(std::int32_t) + sizeof(std::int64_t));
  constexpr std::uint64_t kKeyBytes = kSimdN * sizeof(std::uint64_t);
  constexpr std::uint64_t kMergeBytes =
      kSimdN * 2 * sizeof(std::int64_t);  // read partial + read/write acc

  simd::ForceScalar(true);
  const double pooled_scalar = MeasureGbps(RunPooledSum, kPooledBytes);
  const double gather_scalar = MeasureGbps(RunUniqueCounts, kKeyBytes);
  const double merge_scalar = MeasureGbps(RunRankMerge, kMergeBytes);
  simd::ForceScalar(false);
  const double pooled_simd = MeasureGbps(RunPooledSum, kPooledBytes);
  const double gather_simd = MeasureGbps(RunUniqueCounts, kKeyBytes);
  const double merge_simd = MeasureGbps(RunRankMerge, kMergeBytes);

  std::ostringstream payload;
  payload << "{\"dispatch\": \""
          << (simd::UsingAvx2() ? "avx2" : "scalar")
          << "\", \"pooled_sum_gbps\": {\"scalar\": " << pooled_scalar
          << ", \"simd\": " << pooled_simd
          << "}, \"gather_map_gbps\": {\"scalar\": " << gather_scalar
          << ", \"simd\": " << gather_simd
          << "}, \"cross_rank_reduce_gbps\": {\"scalar\": " << merge_scalar
          << ", \"simd\": " << merge_simd << "}}";
  bench::WriteBenchHostEntry("micro_simd_kernels", payload.str());
  std::printf("# simd kernels: pooled-sum %.2f -> %.2f GB/s, "
              "gather-map %.2f -> %.2f GB/s, cross-rank reduce "
              "%.2f -> %.2f GB/s (scalar -> %s) -> BENCH_host.json\n",
              pooled_scalar, pooled_simd, gather_scalar, gather_simd,
              merge_scalar, merge_simd,
              simd::UsingAvx2() ? "avx2" : "scalar");
}

}  // namespace updlrm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  updlrm::WriteSimdThroughputRows();
  return 0;
}
