// Figure 9: embedding-layer speedup of the three partitioning methods.
//
// Paper result: uniform (U), non-uniform (NU) and cache-aware (CA)
// partitioning, each at Nc in {2, 4, 8}, compared on embedding-layer
// time against DLRM-CPU. Key observations: (1) CA wins clearly on the
// High Hot datasets; (2) the three methods tie on "clo" (balanced
// accesses, low cache rate); (3) no single Nc is best for every
// dataset.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "pim/stats_summary.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Figure 9: embedding-layer speedup over DLRM-CPU (U / NU / CA, "
      "Nc = 2/4/8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  const bench::HostTimer timer("fig09_partitioning_speedup", scale);

  const partition::Method methods[] = {partition::Method::kUniform,
                                       partition::Method::kNonUniform,
                                       partition::Method::kCacheAware};
  const std::uint32_t ncs[] = {2, 4, 8};

  // Datasets are independent experiments: fan out one task per dataset,
  // collect each dataset's rows in its own slot, and print in dataset
  // order afterwards — same table at any thread count. The inner
  // engine/mining regions fan out through the same pool.
  const auto specs = trace::Table1Workloads();
  std::vector<std::vector<std::vector<std::string>>> rows(specs.size());
  // Straggler report slots: the slowest DPU per (dataset, method) at
  // Nc=8, so the U/NU/CA balance claim is inspectable per run.
  std::vector<std::vector<std::vector<std::string>>> stragglers(
      specs.size());
  ParallelFor(
      specs.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t ds = begin; ds < end; ++ds) {
          const trace::DatasetSpec& spec = specs[ds];
          const bench::Workload w = bench::PrepareWorkload(spec, scale);
          const baselines::DlrmCpu cpu(w.config, w.trace);
          const double t_cpu_emb =
              cpu.RunAll(scale.batch_size).AvgBatchEmbedding();
          // One profiling pass (histogram + descending-frequency sort)
          // serves the miner and all 9 engine configurations below.
          const std::vector<trace::TableProfile> profiles =
              bench::ProfileTables(w, scale.threads);
          const std::vector<cache::CacheRes> caches =
              bench::MineCaches(w, scale.threads, &profiles);

          for (partition::Method method : methods) {
            std::vector<std::string> row = {
                spec.name,
                std::string(partition::MethodShortName(method))};
            double best_speedup = 0.0;
            std::uint32_t best_nc = 0;
            for (std::uint32_t nc : ncs) {
              const std::string label =
                  spec.name + "/" +
                  std::string(partition::MethodShortName(method)) +
                  "/nc" + std::to_string(nc);
              auto system = bench::MakePaperSystem();
              core::EngineOptions options =
                  bench::PaperEngineOptions(method, nc, scale);
              options.premined_cache = &caches;
              options.preprofiled = &profiles;
              auto engine = core::UpDlrmEngine::Create(
                  nullptr, w.config, w.trace, system.get(), options);
              UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
              auto report = (*engine)->RunAll(nullptr);
              UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
              bench::AssertChecksClean(**engine, label);
              if (nc == 8) {
                pim::DpuStatsSummary stats = pim::SummarizeStats(*system);
                stats.check_violations = (*engine)->check_violations();
                // The registry is mutex-guarded and map-keyed, so the
                // snapshot is identical at any thread count.
                pim::ExportStats(stats,
                                 telemetry::MetricsRegistry::Global(),
                                 "pim." + label);
                for (auto& row :
                     bench::StragglerRows(**engine, label, /*k=*/1)) {
                  stragglers[ds].push_back(std::move(row));
                }
              }
              const double speedup =
                  t_cpu_emb / report->AvgBatchEmbedding();
              if (speedup > best_speedup) {
                best_speedup = speedup;
                best_nc = nc;
              }
              row.push_back(TablePrinter::FmtSpeedup(speedup));
            }
            row.push_back(std::to_string(best_nc));
            rows[ds].push_back(std::move(row));
          }
        }
      },
      scale.threads);

  TablePrinter out({"workload", "method", "Nc=2", "Nc=4", "Nc=8",
                    "best Nc"});
  for (auto& dataset_rows : rows) {
    for (auto& row : dataset_rows) {
      out.AddRow(std::move(row));
    }
  }
  out.Print(std::cout);

  std::printf(
      "\n== straggler report: slowest DPU per method at Nc=8 ==\n\n");
  TablePrinter straggler_table(bench::kStragglerColumns);
  for (auto& dataset_rows : stragglers) {
    for (auto& row : dataset_rows) {
      straggler_table.AddRow(std::move(row));
    }
  }
  straggler_table.Print(std::cout);

  std::printf(
      "\npaper: CA > NU > U on High Hot datasets; ~tie on clo; the best "
      "Nc varies by dataset (4 for the first three, 8 for the rest)\n");
  return 0;
}
