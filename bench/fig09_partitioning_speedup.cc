// Figure 9: embedding-layer speedup of the three partitioning methods.
//
// Paper result: uniform (U), non-uniform (NU) and cache-aware (CA)
// partitioning, each at Nc in {2, 4, 8}, compared on embedding-layer
// time against DLRM-CPU. Key observations: (1) CA wins clearly on the
// High Hot datasets; (2) the three methods tie on "clo" (balanced
// accesses, low cache rate); (3) no single Nc is best for every
// dataset.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Figure 9: embedding-layer speedup over DLRM-CPU (U / NU / CA, "
      "Nc = 2/4/8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  const partition::Method methods[] = {partition::Method::kUniform,
                                       partition::Method::kNonUniform,
                                       partition::Method::kCacheAware};
  const std::uint32_t ncs[] = {2, 4, 8};

  TablePrinter out({"workload", "method", "Nc=2", "Nc=4", "Nc=8",
                    "best Nc"});
  for (const auto& spec : trace::Table1Workloads()) {
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    const baselines::DlrmCpu cpu(w.config, w.trace);
    const double t_cpu_emb =
        cpu.RunAll(scale.batch_size).AvgBatchEmbedding();
    const std::vector<cache::CacheRes> caches = bench::MineCaches(w);

    for (partition::Method method : methods) {
      std::vector<std::string> row = {
          spec.name, std::string(partition::MethodShortName(method))};
      double best_speedup = 0.0;
      std::uint32_t best_nc = 0;
      for (std::uint32_t nc : ncs) {
        auto system = bench::MakePaperSystem();
        core::EngineOptions options =
            bench::PaperEngineOptions(method, nc, scale);
        options.premined_cache = &caches;
        auto engine = core::UpDlrmEngine::Create(
            nullptr, w.config, w.trace, system.get(), options);
        UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
        auto report = (*engine)->RunAll(nullptr);
        UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
        const double speedup = t_cpu_emb / report->AvgBatchEmbedding();
        if (speedup > best_speedup) {
          best_speedup = speedup;
          best_nc = nc;
        }
        row.push_back(TablePrinter::FmtSpeedup(speedup));
      }
      row.push_back(std::to_string(best_nc));
      out.AddRow(std::move(row));
    }
  }
  out.Print(std::cout);
  std::printf(
      "\npaper: CA > NU > U on High Hot datasets; ~tie on clo; the best "
      "Nc varies by dataset (4 for the first three, 8 for the rest)\n");
  return 0;
}
