// Figure 6: access pattern with and without caching (Movie dataset).
//
// Paper observation: non-uniform partitioning balances per-partition
// accesses, and GRACE caching removes ~40% of the memory traffic — but
// applying the cache *obliviously* on top of the NU partitioning makes
// the access pattern imbalanced again, because cached-partial-sum reads
// concentrate on whichever partitions hold the popular lists. The
// cache-aware partitioner (Algorithm 1) restores balance at the reduced
// traffic level.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "cache/grace.h"
#include "common/table.h"
#include "partition/cache_aware.h"
#include "partition/metrics.h"
#include "partition/nonuniform.h"
#include "trace/profiler.h"

namespace updlrm {
namespace {

// "w/ cache" in Fig. 6: apply caching on top of the NU row placement
// with a load-oblivious, capacity-driven list layout — fill each bin's
// cache region in benefit order, moving to the next bin when full. The
// highest-traffic lists pile into the first bins, which is exactly the
// imbalance Algorithm 1 exists to fix.
partition::PartitionPlan CacheObliviousPlan(
    partition::PartitionPlan nu_plan, const cache::CacheRes& res) {
  nu_plan.cache = res;
  nu_plan.item_list = res.BuildItemToList(nu_plan.geom.table.rows);
  nu_plan.list_bin.clear();
  const std::uint32_t bins = nu_plan.geom.row_shards;
  const std::uint64_t per_bin_budget =
      CeilDiv(res.TotalStorageBytes(nu_plan.geom.row_bytes()), bins);
  std::uint32_t bin = 0;
  std::uint64_t used = 0;
  for (const auto& list : nu_plan.cache.lists) {
    const std::uint64_t need =
        list.StorageBytes(nu_plan.geom.row_bytes());
    if (used + need > per_bin_budget && bin + 1 < bins) {
      ++bin;
      used = 0;
    }
    used += need;
    nu_plan.list_bin.push_back(static_cast<std::int32_t>(bin));
    for (std::uint32_t item : list.items) nu_plan.row_bin[item] = bin;
  }
  return nu_plan;
}

void PrintRow(TablePrinter& table, const char* name,
              const partition::LoadReport& report) {
  std::vector<std::string> row = {name};
  for (std::uint64_t reads : report.total_reads) {
    row.push_back(TablePrinter::Fmt(reads));
  }
  row.push_back(TablePrinter::Fmt(report.imbalance, 2));
  row.push_back(TablePrinter::FmtPercent(report.TrafficReduction(), 1));
  table.AddRow(std::move(row));
}

}  // namespace
}  // namespace updlrm

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Figure 6: per-partition accesses w/ and w/o cache (Movie) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("movie");
  UPDLRM_CHECK(spec.ok());
  trace::TraceGeneratorOptions options;
  options.num_samples = scale.num_samples;
  options.num_tables = 1;
  auto trace = trace::TraceGenerator(*spec).Generate(options);
  UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());
  const auto& table_trace = trace->tables[0];
  const auto freq =
      trace::ItemFrequencies(table_trace, spec->num_items);

  // 8 partitions, as in the paper's figure (one column shard).
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{spec->num_items, 32}, 8, 32);
  UPDLRM_CHECK(geom.ok());

  auto nu = partition::NonUniformPartition(*geom, freq);
  UPDLRM_CHECK(nu.ok());

  auto mined = cache::GraceMiner().Mine(table_trace, spec->num_items);
  UPDLRM_CHECK_MSG(mined.ok(), mined.status().ToString());

  const partition::PartitionPlan oblivious =
      CacheObliviousPlan(*nu, *mined);

  partition::CacheAwareOptions ca_options;
  ca_options.capacity = partition::BinCapacity::FromMram(
      64 * kMiB, 8 * kMiB,
      AlignUp(mined->TotalStorageBytes(geom->row_bytes()) / 8 * 13 / 10,
              8));
  auto ca =
      partition::CacheAwarePartition(*geom, freq, *mined, ca_options);
  UPDLRM_CHECK_MSG(ca.ok(), ca.status().ToString());

  TablePrinter out({"configuration", "p0", "p1", "p2", "p3", "p4", "p5",
                    "p6", "p7", "max/mean", "traffic cut"});
  PrintRow(out, "NU, w/o cache", partition::ReplayLoads(table_trace, *nu));
  const auto oblivious_report =
      partition::ReplayLoads(table_trace, oblivious);
  PrintRow(out, "NU + GRACE (cache-oblivious)", oblivious_report);
  const auto ca_report = partition::ReplayLoads(table_trace, ca->plan);
  PrintRow(out, "CA (Algorithm 1)", ca_report);
  out.Print(std::cout);

  std::printf(
      "\npaper: caching cuts total accesses ~40%% but imbalances them; "
      "measured: cache-oblivious cut %.0f%% with max/mean %.2f, "
      "cache-aware cut %.0f%% with max/mean %.2f\n",
      oblivious_report.TrafficReduction() * 100.0,
      oblivious_report.imbalance, ca_report.TrafficReduction() * 100.0,
      ca_report.imbalance);
  return 0;
}
