// Extension (§2.3 motivation): energy per inference across the four
// Table-2 systems.
//
// The paper motivates PIM with UPMEM's reported TCO/energy advantages
// (up to 60% energy reduction). This bench combines the timing results
// with the host/energy model: each component draws active power while
// busy and idle power for the rest of the batch window. Component busy
// times are taken from the per-system cost breakdowns (CPU busy during
// gathers/MLPs/transfer orchestration, GPU during dense compute and
// PCIe, DPU ranks during stage-2 kernels).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "host/energy.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf("== Extension: energy per inference (mJ) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  const host::EnergyModel energy;

  TablePrinter out({"workload", "DLRM-CPU", "DLRM-Hybrid", "FAE",
                    "UpDLRM", "UpDLRM vs CPU"});
  for (const auto& spec : trace::Table1Workloads()) {
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    const auto batches = static_cast<double>(
        trace::MakeBatches(scale.num_samples, scale.batch_size).size());

    // DLRM-CPU: the host is busy for the entire window.
    const baselines::DlrmCpu cpu(w.config, w.trace);
    const auto cpu_report = cpu.RunAll(scale.batch_size);
    host::ComponentActivity cpu_activity;
    cpu_activity.window_ns = cpu_report.total / batches;
    cpu_activity.cpu_busy_ns = cpu_activity.window_ns;
    const double mj_cpu =
        energy.MillijoulesPerInference(cpu_activity, scale.batch_size);

    // DLRM-Hybrid: CPU busy during gathers, GPU during MLPs + PCIe.
    const baselines::DlrmHybrid hybrid(w.config, w.trace);
    const auto hy = hybrid.RunAll(scale.batch_size);
    host::ComponentActivity hy_activity;
    hy_activity.window_ns = hy.total / batches;
    hy_activity.cpu_busy_ns = (hy.embedding + hy.transfer) / batches;
    hy_activity.has_gpu = true;
    hy_activity.gpu_busy_ns = (hy.dense_compute + hy.transfer) / batches;
    const double mj_hybrid =
        energy.MillijoulesPerInference(hy_activity, scale.batch_size);

    // FAE: like the hybrid, with the GPU also gathering hot rows.
    auto fae = baselines::Fae::Create(w.config, w.trace,
                                      bench::PaperFaeOptions());
    UPDLRM_CHECK(fae.ok());
    const auto fr = (*fae)->RunAll(scale.batch_size);
    host::ComponentActivity fae_activity;
    fae_activity.window_ns = fr.total / batches;
    fae_activity.cpu_busy_ns = fr.embedding / batches;
    fae_activity.has_gpu = true;
    fae_activity.gpu_busy_ns =
        (fr.dense_compute + fr.transfer) / batches;
    const double mj_fae =
        energy.MillijoulesPerInference(fae_activity, scale.batch_size);

    // UpDLRM: CPU orchestrates transfers/aggregation/MLPs; the DPU
    // ranks are busy during stage 2.
    auto system = bench::MakePaperSystem();
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, system.get(),
        bench::PaperEngineOptions(partition::Method::kCacheAware, 0,
                                  scale));
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto up = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK(up.ok());
    host::ComponentActivity up_activity;
    up_activity.window_ns = up->total / batches;
    up_activity.cpu_busy_ns =
        (up->stages.cpu_to_dpu + up->stages.dpu_to_cpu +
         up->stages.cpu_aggregate + up->bottom_mlp + up->interaction_top) /
        batches;
    up_activity.dpu_busy_ns = up->stages.dpu_lookup / batches;
    up_activity.dpu_ranks = system->num_ranks();
    const double mj_up =
        energy.MillijoulesPerInference(up_activity, scale.batch_size);

    out.AddRow({spec.name, TablePrinter::Fmt(mj_cpu, 2),
                TablePrinter::Fmt(mj_hybrid, 2),
                TablePrinter::Fmt(mj_fae, 2),
                TablePrinter::Fmt(mj_up, 2),
                "-" + TablePrinter::FmtPercent(1.0 - mj_up / mj_cpu, 0)});
  }
  out.Print(std::cout);
  std::printf(
      "\nUPMEM's technical material (cited in §2.3) projects up to ~60%% "
      "energy reduction for PIM offload; the saving here comes from the "
      "shorter batch window plus idle CPU time during stage 2\n");
  return 0;
}
