// Ablation: inter-batch pipelining of the embedding layer.
//
// The paper's execution is serial per batch (stage 1 -> 2 -> 3). Since
// stages 1/3 run on the host and stage 2 on the DPUs, a double-buffered
// serving loop can overlap them across consecutive batches. This bench
// estimates the steady-state gain per workload and reports which
// resource (host transfers vs DPU lookups) bounds the pipeline.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "serve/executor.h"
#include "updlrm/pipelining.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: inter-batch pipelining of the embedding layer "
      "(CA, auto Nc) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  TablePrinter out({"workload", "serial (ms)", "bound (ms)",
                    "executed (ms)", "speedup", "bound by"});
  for (const auto& spec : trace::Table1Workloads()) {
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    auto system = bench::MakePaperSystem();
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, system.get(),
        bench::PaperEngineOptions(partition::Method::kCacheAware, 0,
                                  scale));
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());

    std::vector<core::StageBreakdown> batches;
    for (const auto& range :
         trace::MakeBatches(scale.num_samples, scale.batch_size)) {
      auto batch = (*engine)->RunBatch(range, nullptr);
      UPDLRM_CHECK_MSG(batch.ok(), batch.status().ToString());
      batches.push_back(batch->stages);
    }
    const core::PipelineEstimate estimate =
        core::EstimatePipelinedEmbedding(batches);
    // The executed double-buffered schedule (serve/executor.h), all
    // batches available up front — the realized counterpart of the
    // two-resource estimate.
    const serve::PipelinedExecutor executed =
        serve::ExecutePipelined(batches);
    out.AddRow({spec.name,
                TablePrinter::Fmt(estimate.serial_ns / 1e6, 2),
                TablePrinter::Fmt(estimate.pipelined_ns / 1e6, 2),
                TablePrinter::Fmt(executed.MakespanNs() / 1e6, 2),
                TablePrinter::FmtSpeedup(estimate.serial_ns /
                                         executed.MakespanNs()),
                estimate.HostBound() ? "host transfers" : "DPU lookups"});
  }
  out.Print(std::cout);
  std::printf(
      "\na double-buffered serving loop overlaps stage-1/3 transfers "
      "with stage-2 kernels of adjacent batches; 'bound' is the "
      "two-resource steady-state estimate (updlrm/pipelining.h), "
      "'executed' the schedule realized by the serving executor "
      "(serve/executor.h), and speedup = serial / executed\n");
  return 0;
}
