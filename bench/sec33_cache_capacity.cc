// §3.3 cache-capacity study: embedding lookup time vs provisioned
// cache size (GoodReads).
//
// Paper result: provisioning the cache region at 40% / 70% / 100% of
// the mined cache lists' storage requirement reduces embedding lookup
// time by 17% / 22% / 26% versus no caching; 100% is the default.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== §3.3: lookup-time reduction vs cache capacity (GoodReads) "
      "==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);
  const std::vector<trace::TableProfile> profiles =
      bench::ProfileTables(w);
  const std::vector<cache::CacheRes> caches =
      bench::MineCaches(w, 0, &profiles);

  auto lookup_time = [&](partition::Method method, double fraction) {
    auto system = bench::MakePaperSystem();
    core::EngineOptions options =
        bench::PaperEngineOptions(method, 8, scale);
    options.premined_cache = &caches;
    options.preprofiled = &profiles;
    options.cache_capacity_fraction = fraction;
    auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                             system.get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
    return report->stages.dpu_lookup /
           static_cast<double>(report->num_batches);
  };

  const double baseline =
      lookup_time(partition::Method::kNonUniform, 1.0);

  TablePrinter out({"cache capacity", "lookup time (us/batch)",
                    "reduction vs no cache", "paper"});
  out.AddRow({"no cache (NU)", TablePrinter::FmtMicros(baseline, 0), "-",
              "-"});
  const double fractions[] = {0.4, 0.7, 1.0};
  const char* paper[] = {"17%", "22%", "26%"};
  for (int i = 0; i < 3; ++i) {
    const double t =
        lookup_time(partition::Method::kCacheAware, fractions[i]);
    out.AddRow({TablePrinter::FmtPercent(fractions[i], 0),
                TablePrinter::FmtMicros(t, 0),
                TablePrinter::FmtPercent(1.0 - t / baseline, 1),
                paper[i]});
  }
  out.Print(std::cout);
  std::printf(
      "\npaper: larger cache share => larger lookup-time reduction, at "
      "the cost of MRAM capacity; 100%% is the default\n");
  return 0;
}
