// Ablation: the asymmetric data-flow auto-tuner vs every static plan.
//
// The end-to-end pipeline has a placement/overlap decision per
// (workload, batch size): pipeline depth, bottom-MLP split point, and
// CPU-vs-GPU backend for the dense stages. This bench runs the tuner
// in full-calibration mode (every enumerated candidate measured with a
// real simulated serving run, not just the predicted short list) on
// two Table 1 workloads and verifies the headline claim: the tuned
// flow's p99 is <= every static candidate's p99 on each dataset. It
// also reports how well the analytic predictor ranked the field.
//
// Exits non-zero if any static plan beats the tuner's pick. Emits
// BENCH_dataflow.json (per workload: the winner plus every candidate's
// predicted score and measured p99). Under --check the data-flow
// audits (plan shape, MRAM capacity-vs-depth, stage ordering) ride
// along on every calibration run and any violation aborts the bench.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "common/table.h"
#include "pipeline/runner.h"
#include "pipeline/tuner.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: data-flow auto-tuning vs static stage placement "
      "(CA, full calibration) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  bench::HostTimer timer("abl_dataflow", scale);

  auto arrival = serve::ParseArrivalProcess(scale.arrival);
  UPDLRM_CHECK_MSG(arrival.ok(), arrival.status().ToString());

  TablePrinter out({"workload", "plan", "predicted (us)", "p99 (us)",
                    "vs tuned", "verdict"});
  std::ostringstream entries;
  bool first_entry = true;

  // Two qualitatively different datasets: "clo" is nearly balanced
  // with mild skew, "home" is hotter with heavier reduction — enough
  // to move the host/DPU slack the overlap decision depends on.
  for (const std::size_t wi : {0u, 1u}) {
    const auto& spec = trace::Table1Workloads()[wi];
    timer.BeginPhase("setup");
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    auto system = bench::MakePaperSystem();
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, system.get(),
        bench::PaperEngineOptions(partition::Method::kCacheAware, 0,
                                  scale));
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());

    // Capacity calibration, as in serve_latency: the offered stream
    // runs at 1.0x the embedding pipeline's steady-state capacity.
    timer.BeginPhase("calibrate");
    auto profile = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(profile.ok(), profile.status().ToString());
    const double nb = static_cast<double>(profile->num_batches);
    const Nanos host_per_batch = (profile->stages.cpu_to_dpu +
                                  profile->stages.dpu_to_cpu +
                                  profile->stages.cpu_aggregate) /
                                 nb;
    const Nanos dpu_per_batch = profile->stages.dpu_lookup / nb;
    const Nanos batch_total = profile->stages.EmbeddingTotal() / nb;
    const double capacity_qps =
        static_cast<double>(scale.batch_size) /
        (std::max(host_per_batch, dpu_per_batch) / kNanosPerSecond);

    serve::ArrivalOptions arrivals;
    arrivals.process = *arrival;
    arrivals.qps = capacity_qps;
    arrivals.seed = scale.seed + 1;
    auto requests = serve::GenerateRequests(w.trace, 0, arrivals);
    UPDLRM_CHECK_MSG(requests.ok(), requests.status().ToString());

    serve::BatcherOptions batcher;
    batcher.max_batch_size = scale.batch_size;
    batcher.max_queue_delay_ns = batch_total;
    batcher.queue_capacity = 4 * scale.batch_size;
    batcher.policy = serve::AdmissionPolicy::kShed;

    timer.BeginPhase("tune");
    pipeline::TunerOptions tuner_options;
    tuner_options.calibrate_top_n = 0;  // measure every candidate
    pipeline::DataFlowTuner tuner(tuner_options);
    auto tuned = tuner.Tune(**engine, *requests, batcher);
    UPDLRM_CHECK_MSG(tuned.ok(), tuned.status().ToString());

    // Under --check, replay the winner with the audits attached: one
    // clean full-path run gates shape + capacity + ordering.
    if (scale.check) {
      timer.BeginPhase("check");
      check::CheckReport audit;
      pipeline::DataFlowServeOptions options;
      options.batcher = batcher;
      options.plan = tuned->best;
      options.num_threads = scale.threads;
      options.audit = &audit;
      auto replay = pipeline::RunDataFlowSimulation(**engine, *requests,
                                                    nullptr, options);
      UPDLRM_CHECK_MSG(replay.ok(), replay.status().ToString());
      if (audit.clean()) {
        std::printf("# check[%s-dataflow]: clean (0 violations)\n",
                    spec.name.c_str());
      } else {
        std::printf("# check[%s-dataflow]: %s", spec.name.c_str(),
                    audit.ToString().c_str());
        UPDLRM_CHECK_MSG(false,
                         "data-flow audits reported violations");
      }
      bench::AssertChecksClean(**engine, spec.name);
    }

    // The headline gate: no static plan beats the tuned pick.
    std::size_t beaten_by = 0;
    std::ostringstream candidates;
    for (const auto& c : tuned->candidates) {
      UPDLRM_CHECK_MSG(c.calibrated,
                       "full calibration left a candidate unmeasured");
      const bool is_best = c.plan == tuned->best;
      if (c.measured_p99_ns < tuned->best_p99_ns) ++beaten_by;
      out.AddRow(
          {spec.name, pipeline::Name(c.plan),
           TablePrinter::Fmt(NanosToMicros(c.predicted_ns), 1),
           TablePrinter::Fmt(NanosToMicros(c.measured_p99_ns), 1),
           TablePrinter::FmtSpeedup(c.measured_p99_ns /
                                    tuned->best_p99_ns),
           is_best ? "tuned" : ""});
      if (candidates.tellp() > 0) candidates << ",\n";
      candidates << "      {\"plan\": \"" << pipeline::Name(c.plan)
                 << "\", \"predicted_us\": "
                 << NanosToMicros(c.predicted_ns)
                 << ", \"p99_us\": "
                 << NanosToMicros(c.measured_p99_ns) << "}";
    }
    UPDLRM_CHECK_MSG(beaten_by == 0,
                     "a static data flow beat the tuned plan on " +
                         spec.name);
    std::printf("# %s: tuned %s holds p99 <= all %zu static plans at "
                "%.0f qps\n",
                spec.name.c_str(), pipeline::Name(tuned->best).c_str(),
                tuned->candidates.size(), capacity_qps);

    if (!first_entry) entries << ",\n";
    first_entry = false;
    entries << "    \"" << spec.name << "\": {\"tuned\": \""
            << pipeline::Name(tuned->best)
            << "\", \"p99_us\": " << NanosToMicros(tuned->best_p99_ns)
            << ", \"offered_qps\": " << capacity_qps
            << ",\n     \"candidates\": [\n"
            << candidates.str() << "\n    ]}";
  }
  out.Print(std::cout);

  std::ofstream json("BENCH_dataflow.json", std::ios::trunc);
  json << "{\n  \"batch_size\": " << scale.batch_size
       << ",\n  \"arrival\": \"" << scale.arrival
       << "\",\n  \"workloads\": {\n"
       << entries.str() << "\n  }\n}\n";
  std::printf(
      "\nevery enumerated data flow was calibrated with a real "
      "simulated serving run at 1.0x embedding capacity; 'vs tuned' = "
      "candidate p99 / tuned p99 (>= 1.00x everywhere is the tuner's "
      "dominance claim) -> BENCH_dataflow.json\n");
  return 0;
}
