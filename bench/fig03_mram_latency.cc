// Figure 3: MRAM read latency vs access size.
//
// Paper observation: latency is nearly flat from 8 B to 32 B, then
// grows close to linearly up to the 2048 B maximum; accesses are
// 8-byte aligned. This bench prints the calibrated model's curve and
// the derived per-access bandwidth, plus the §3.1 conclusion the curve
// implies (prefer Nc*4 <= 32 B).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "pim/mram_timing.h"

int main() {
  using namespace updlrm;
  std::printf("== Figure 3: MRAM read latency vs access size ==\n\n");

  const pim::MramTimingModel model;
  const double clock = 350.0 * kMHz;

  TablePrinter table({"access size", "latency (cycles)", "latency (ns)",
                      "bandwidth (MB/s)", "rel. to 8B"});
  const Cycles lat8 = model.AccessLatency(8);
  for (std::uint32_t bytes = 8; bytes <= 2048; bytes *= 2) {
    const Cycles lat = model.AccessLatency(bytes);
    table.AddRow({std::to_string(bytes) + " B",
                  TablePrinter::Fmt(static_cast<std::uint64_t>(lat)),
                  TablePrinter::Fmt(CyclesToNanos(lat, clock), 1),
                  TablePrinter::Fmt(
                      model.StreamingBandwidth(bytes, clock) / 1.0e6, 1),
                  TablePrinter::Fmt(static_cast<double>(lat) /
                                        static_cast<double>(lat8),
                                    2)});
  }
  table.Print(std::cout);

  const double flat_ratio = static_cast<double>(model.AccessLatency(32)) /
                            static_cast<double>(lat8);
  const double knee_ratio = static_cast<double>(model.AccessLatency(128)) /
                            static_cast<double>(model.AccessLatency(32));
  std::printf(
      "\npaper: latency 8B..32B nearly flat, then grows; our model: "
      "32B/8B = %.2fx (flat), 128B/32B = %.2fx (growing)\n",
      flat_ratio, knee_ratio);
  std::printf(
      "=> partitioning should keep Nc*4B <= 32B, i.e. Nc <= 8 (§3.1)\n");
  return 0;
}
