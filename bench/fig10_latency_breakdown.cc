// Figure 10: latency breakdown of the embedding layer (GoodReads).
//
// Paper result: decomposing embedding time into stage 1 (CPU->DPU),
// stage 2 (DPU lookup) and stage 3 (DPU->CPU) for U/NU/CA x Nc=2/4/8:
// (1) CA cuts the lookup share from 71-77% to 43-52% — caching removes
// the stage-2 bottleneck; (2) growing Nc shrinks the stage-1 share
// (fewer lookups per DPU) and grows the stage-3 share (wider partial
// results), e.g. CA: stage 1 31%->21%, stage 3 17%->35% from Nc=2 to 8.
#include <cstdio>
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "common/table.h"
#include "pim/stats_summary.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Figure 10: embedding-layer latency breakdown (GoodReads) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  bench::HostTimer timer("fig10_latency_breakdown", scale);

  timer.BeginPhase("setup");
  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);
  const std::vector<trace::TableProfile> profiles =
      bench::ProfileTables(w);
  const std::vector<cache::CacheRes> caches =
      bench::MineCaches(w, 0, &profiles);

  const partition::Method methods[] = {partition::Method::kUniform,
                                       partition::Method::kNonUniform,
                                       partition::Method::kCacheAware};

  // The dedup/WRAM counter columns reconcile the stage shares with the
  // Eq. 1-3 terms: both are 0% with the hot-path levers off; pass
  // --dedup / --wram=N to see how the levers shift the breakdown.
  TablePrinter out({"method", "Nc", "stage1 CPU->DPU", "stage2 lookup",
                    "stage3 DPU->CPU", "total (ms/batch)", "wram hit%",
                    "dedup saved%"});
  double ca_lookup_share_min = 1.0, ca_lookup_share_max = 0.0;
  double other_lookup_share_min = 1.0, other_lookup_share_max = 0.0;
  std::vector<std::vector<std::string>> stragglers;
  for (partition::Method method : methods) {
    for (std::uint32_t nc : {2u, 4u, 8u}) {
      const std::string label =
          std::string(partition::MethodShortName(method)) + "/nc" +
          std::to_string(nc);
      timer.BeginPhase("setup");
      // --trace-out captures the last configuration (CA, Nc=8): sim
      // clocks restart at 0 per run, so one trace holds one run.
      std::optional<bench::TraceSession> trace_session;
      if (method == partition::Method::kCacheAware && nc == 8) {
        trace_session.emplace(scale);
      }
      auto system = bench::MakePaperSystem();
      core::EngineOptions options =
          bench::PaperEngineOptions(method, nc, scale);
      options.premined_cache = &caches;
      options.preprofiled = &profiles;
      auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                               system.get(), options);
      UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
      timer.BeginPhase("run_batches");
      auto report = (*engine)->RunAll(nullptr);
      UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
      trace_session.reset();  // write + validate the trace, if tracing
      bench::AssertChecksClean(**engine, label);

      // Stage shares over the three transfer/lookup stages, as in the
      // paper's stacked bars.
      const double stages_total = report->stages.cpu_to_dpu +
                                  report->stages.dpu_lookup +
                                  report->stages.dpu_to_cpu;
      const double s1 = report->stages.cpu_to_dpu / stages_total;
      const double s2 = report->stages.dpu_lookup / stages_total;
      const double s3 = report->stages.dpu_to_cpu / stages_total;
      if (method == partition::Method::kCacheAware) {
        ca_lookup_share_min = std::min(ca_lookup_share_min, s2);
        ca_lookup_share_max = std::max(ca_lookup_share_max, s2);
      } else {
        other_lookup_share_min = std::min(other_lookup_share_min, s2);
        other_lookup_share_max = std::max(other_lookup_share_max, s2);
      }
      pim::DpuStatsSummary stats = pim::SummarizeStats(*system);
      stats.check_violations = (*engine)->check_violations();
      pim::ExportStats(stats, telemetry::MetricsRegistry::Global(),
                       "pim." + label);
      for (auto& row : bench::StragglerRows(**engine, label)) {
        stragglers.push_back(std::move(row));
      }
      out.AddRow({std::string(partition::MethodShortName(method)),
                  std::to_string(nc), TablePrinter::FmtPercent(s1, 0),
                  TablePrinter::FmtPercent(s2, 0),
                  TablePrinter::FmtPercent(s3, 0),
                  TablePrinter::Fmt(
                      stages_total / 1e6 /
                          static_cast<double>(report->num_batches),
                      3),
                  TablePrinter::FmtPercent(stats.wram_hit_share, 1),
                  TablePrinter::FmtPercent(stats.dedup_saved_share, 1)});
    }
  }
  out.Print(std::cout);

  std::printf("\n== straggler report: top-%d slowest DPUs per config ==\n\n",
              3);
  TablePrinter straggler_table(bench::kStragglerColumns);
  for (auto& row : stragglers) straggler_table.AddRow(std::move(row));
  straggler_table.Print(std::cout);

  std::printf(
      "\npaper: CA lookup share 43-52%% vs 71-77%% for U/NU; measured: "
      "CA %.0f-%.0f%%, U/NU %.0f-%.0f%%\n",
      ca_lookup_share_min * 100, ca_lookup_share_max * 100,
      other_lookup_share_min * 100, other_lookup_share_max * 100);
  std::printf(
      "paper: with Nc 2->8, stage-1 share falls (31%%->21%%) and stage-3 "
      "share rises (17%%->35%%) — compare the CA rows above\n");
  return 0;
}
