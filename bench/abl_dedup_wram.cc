// Ablation: embedding hot-path levers — batch dedup, WRAM hot-row
// caching, coalesced transfer planning.
//
// Each lever targets one term of the Eq. 1-3 embedding decomposition:
// dedup shrinks the stage-1 index payload and the stage-2 MRAM lookup
// count at once; the WRAM tier serves the hottest resident rows without
// an MRAM DMA; the coalesced plan re-derives the padded-vs-ragged
// transfer choice from the actual (deduped) buffer sizes and amortizes
// the launch overhead. The table reports modeled embedding time per
// batch for every Table 1 dataset and partitioning method, one column
// per lever plus all three combined.
//
// Flags: --wram=N overrides the pinned rows per DPU (default 512).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "pim/stats_summary.h"

namespace {

struct LeverConfig {
  const char* name;
  bool dedup;
  bool wram;
  bool coalesce;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: dedup / WRAM hot rows / coalesced transfers "
      "(Table 1 workloads, Nc=8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  const std::uint32_t wram_rows = scale.wram > 0 ? scale.wram : 512;

  const partition::Method methods[] = {partition::Method::kUniform,
                                       partition::Method::kNonUniform,
                                       partition::Method::kCacheAware};
  const LeverConfig configs[] = {
      {"base", false, false, false},  {"+dedup", true, false, false},
      {"+wram", false, true, false},  {"+coalesce", false, false, true},
      {"all", true, true, true},
  };

  TablePrinter out({"dataset", "method", "base (us/batch)", "+dedup",
                    "+wram", "+coalesce", "all", "all vs base",
                    "wram hit%", "dedup saved%"});
  int datasets_meeting_bar = 0;
  int num_datasets = 0;
  for (const trace::DatasetSpec& spec : trace::Table1Workloads()) {
    ++num_datasets;
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    const std::vector<trace::TableProfile> profiles =
        bench::ProfileTables(w);
    const std::vector<cache::CacheRes> caches =
        bench::MineCaches(w, 0, &profiles);
    int methods_improved = 0;
    for (partition::Method method : methods) {
      std::vector<double> us_per_batch;
      double wram_share = 0.0, dedup_share = 0.0;
      for (const LeverConfig& cfg : configs) {
        auto system = bench::MakePaperSystem();
        core::EngineOptions options =
            bench::PaperEngineOptions(method, 8, scale);
        options.premined_cache = &caches;
        options.preprofiled = &profiles;
        options.dedup = cfg.dedup;
        options.wram_cache_rows = cfg.wram ? wram_rows : 0;
        options.coalesce_transfers = cfg.coalesce;
        auto engine = core::UpDlrmEngine::Create(nullptr, w.config,
                                                 w.trace, system.get(),
                                                 options);
        UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
        auto report = (*engine)->RunAll(nullptr);
        UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
        bench::AssertChecksClean(
            **engine, std::string(spec.name) + "/" +
                          std::string(partition::MethodShortName(method)) +
                          "/" + cfg.name);
        us_per_batch.push_back(report->EmbeddingTotal() /
                               static_cast<double>(report->num_batches));
        if (cfg.dedup && cfg.wram && cfg.coalesce) {
          const pim::DpuStatsSummary stats =
              pim::SummarizeStats(*system);
          wram_share = stats.wram_hit_share;
          dedup_share = stats.dedup_saved_share;
        }
      }
      const double base = us_per_batch.front();
      const double all = us_per_batch.back();
      if (all < base) ++methods_improved;
      out.AddRow({std::string(spec.name),
                  std::string(partition::MethodShortName(method)),
                  TablePrinter::FmtMicros(base, 0),
                  TablePrinter::FmtMicros(us_per_batch[1], 0),
                  TablePrinter::FmtMicros(us_per_batch[2], 0),
                  TablePrinter::FmtMicros(us_per_batch[3], 0),
                  TablePrinter::FmtMicros(all, 0),
                  TablePrinter::Fmt(base / all, 2) + "x",
                  TablePrinter::FmtPercent(wram_share, 1),
                  TablePrinter::FmtPercent(dedup_share, 1)});
    }
    if (methods_improved >= 2) ++datasets_meeting_bar;
  }
  out.Print(std::cout);
  std::printf(
      "\nall levers on improve embedding latency for >=2 of {U, NU, CA} "
      "on %d/%d datasets (%u WRAM rows pinned per DPU; each lever off "
      "is bit-identical to the baseline engine)\n",
      datasets_meeting_bar, num_datasets, wram_rows);
  return datasets_meeting_bar == num_datasets ? 0 : 1;
}
