// Extension (§6 future work): UpDLRM-G, the DPU-GPU heterogeneous
// system.
//
// Embeddings stay on the DPUs; the MLP stacks move to the GPU, with the
// bottom MLP overlapping the embedding pipeline. At the paper's batch
// 64 with compact MLPs the PCIe/launch/sync overheads exceed the CPU's
// MLP time — the same effect that sinks DLRM-Hybrid — so this bench
// sweeps batch size and MLP width to locate the crossover where the
// heterogeneous system starts paying off.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "updlrm/hetero.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Extension: UpDLRM vs UpDLRM-G (DPU embeddings + GPU MLPs) "
      "==\n\n");
  bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());

  struct MlpShape {
    const char* name;
    std::vector<std::uint32_t> bottom;
    std::vector<std::uint32_t> top;
  };
  const MlpShape shapes[] = {
      {"compact (64-32 / 96-64)", {64, 32}, {96, 64}},
      {"production (512-256-64 / 1024-512-256)",
       {512, 256, 64},
       {1024, 512, 256}},
  };

  TablePrinter out({"MLP stack", "batch", "UpDLRM (ms/batch)",
                    "UpDLRM-G (ms/batch)", "winner"});
  for (const MlpShape& shape : shapes) {
    for (std::size_t batch : {64ul, 256ul, 1024ul}) {
      bench::BenchScale run_scale = scale;
      run_scale.batch_size = batch;
      // Keep the batch count constant across batch sizes.
      run_scale.num_samples = batch * 10;
      bench::Workload w = bench::PrepareWorkload(*spec, run_scale);
      w.config.bottom_hidden = shape.bottom;
      w.config.top_hidden = shape.top;

      auto system1 = bench::MakePaperSystem();
      core::EngineOptions options = bench::PaperEngineOptions(
          partition::Method::kNonUniform, 8, run_scale);
      auto plain = core::UpDlrmEngine::Create(
          nullptr, w.config, w.trace, system1.get(), options);
      UPDLRM_CHECK_MSG(plain.ok(), plain.status().ToString());
      auto plain_report = (*plain)->RunAll(nullptr);
      UPDLRM_CHECK(plain_report.ok());

      auto system2 = bench::MakePaperSystem();
      core::HeteroOptions hetero_options;
      hetero_options.engine = options;
      auto hetero = core::UpDlrmHetero::Create(w.config, w.trace,
                                               system2.get(),
                                               hetero_options);
      UPDLRM_CHECK_MSG(hetero.ok(), hetero.status().ToString());
      auto hetero_report = (*hetero)->RunAll();
      UPDLRM_CHECK(hetero_report.ok());

      const double t_plain = plain_report->AvgBatchTotal() / 1e6;
      const double t_hetero = hetero_report->AvgBatchTotal() / 1e6;
      out.AddRow({shape.name, std::to_string(batch),
                  TablePrinter::Fmt(t_plain, 3),
                  TablePrinter::Fmt(t_hetero, 3),
                  t_plain < t_hetero ? "UpDLRM" : "UpDLRM-G"});
    }
  }
  out.Print(std::cout);
  std::printf(
      "\nexpected: CPU-side MLPs win at the paper's batch 64 with "
      "compact stacks (PCIe + sync overheads dominate, as for "
      "DLRM-Hybrid); the GPU side pays off for production-width stacks "
      "and large batches\n");
  return 0;
}
