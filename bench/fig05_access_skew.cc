// Figure 5: proportion of partitions (row blocks) being accessed.
//
// Paper observation: dividing each EMT's rows into 8 equal blocks, all
// three trace-study datasets (Goodreads, Movie, Twitch) show strongly
// imbalanced access counts — the most popular block sees up to ~340x
// the accesses of the least popular one. This imbalance is what breaks
// uniform partitioning (§3.2).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "trace/profiler.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf("== Figure 5: accesses per row block (8 blocks) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  TablePrinter table({"dataset", "b0", "b1", "b2", "b3", "b4", "b5", "b6",
                      "b7", "max/min", "top share"});
  double worst_ratio = 0.0;
  for (const auto& spec : trace::AccessPatternDatasets()) {
    trace::TraceGeneratorOptions options;
    options.num_samples = scale.num_samples;
    options.num_tables = 1;
    auto trace = trace::TraceGenerator(spec).Generate(options);
    UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());
    const auto freq =
        trace::ItemFrequencies(trace->tables[0], spec.num_items);
    const auto blocks = trace::RowBlockCounts(freq, 8);
    const auto skew = trace::AnalyzeSkew(blocks);
    worst_ratio = std::max(worst_ratio, skew.max_min_ratio);

    std::vector<std::string> row = {spec.name};
    for (std::uint64_t b : blocks) row.push_back(TablePrinter::Fmt(b));
    row.push_back(TablePrinter::Fmt(skew.max_min_ratio, 1));
    row.push_back(TablePrinter::FmtPercent(skew.top_block_share, 1));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\npaper: most popular block up to ~340x the least popular; "
              "our worst max/min ratio: %.0fx\n",
              worst_ratio);
  return 0;
}
