// Figure 11 (§4.4 sensitivity study): DPU lookup time vs average
// reduction and lookup data size.
//
// Paper setup: synthetic datasets with *balanced* access patterns,
// average reduction 50..300, Nc from 2 to 32 (lookup sizes 8B..128B),
// batch 64. Paper observations: (1) at 8 B the lookup time grows
// ~linearly with reduction (406us -> 1786us); (2) at >=64 B the growth
// flattens — 14 tasklets mask the MRAM latency; (3) at fixed reduction,
// growing the lookup size 8B->32B cuts lookup time (same payload, 4x
// fewer reads at ~equal latency), while beyond 32 B the per-read
// latency growth erodes the gain — hence Nc <= 8 in the main
// experiments.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Figure 11: DPU lookup time (us/batch) vs avg reduction x "
      "lookup size ==\n\n");
  bench::BenchScale scale = bench::ParseScale(argc, argv);

  constexpr std::uint64_t kItems = 2'000'000;
  const std::uint32_t ncs[] = {2, 4, 8, 16, 32};
  const double reductions[] = {50, 100, 150, 200, 250, 300};

  TablePrinter out({"avg reduction", "8B (Nc=2)", "16B (Nc=4)",
                    "32B (Nc=8)", "64B (Nc=16)", "128B (Nc=32)"});
  std::vector<std::vector<double>> grid;  // [red][nc] lookup us
  for (double red : reductions) {
    const trace::DatasetSpec spec =
        trace::MakeBalancedSyntheticSpec(kItems, red);
    const bench::Workload w = bench::PrepareWorkload(spec, scale);

    std::vector<std::string> row = {TablePrinter::Fmt(red, 0)};
    std::vector<double> series;
    for (std::uint32_t nc : ncs) {
      auto system = bench::MakePaperSystem();
      auto engine = core::UpDlrmEngine::Create(
          nullptr, w.config, w.trace, system.get(),
          bench::PaperEngineOptions(partition::Method::kUniform, nc,
                                    scale));
      UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
      auto report = (*engine)->RunAll(nullptr);
      UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
      const double lookup_us =
          report->stages.dpu_lookup / 1.0e3 /
          static_cast<double>(report->num_batches);
      series.push_back(lookup_us);
      row.push_back(TablePrinter::Fmt(lookup_us, 0) + " us");
    }
    grid.push_back(series);
    out.AddRow(std::move(row));
  }
  out.Print(std::cout);

  const double growth_8b = grid.back()[0] / grid.front()[0];
  const double growth_64b = grid.back()[3] / grid.front()[3];
  std::printf(
      "\npaper: 8B series grows ~4.4x from red 50->300 (406->1786us); "
      "64B series grows only ~1.7x and flattens\nmeasured: 8B grows "
      "%.1fx (%.0f->%.0fus), 64B grows %.1fx\n",
      growth_8b, grid.front()[0], grid.back()[0], growth_64b);
  std::printf(
      "paper: at fixed reduction, 8B->32B cuts lookup time, beyond 32B "
      "the gain erodes; measured at red=300: 8B=%.0fus, 32B=%.0fus, "
      "128B=%.0fus\n",
      grid.back()[0], grid.back()[2], grid.back()[4]);
  return 0;
}
